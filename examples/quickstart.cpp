// Quickstart: a ZipLine compression node as a library, in 60 lines.
//
// The moving parts, smallest first:
//
//   * zipline::Node     — the software network element: bursts of packets
//                         in, compressed (or restored) packets out.
//   * io::MemoryRing    — a DPDK-style burst ring standing in for a NIC
//                         queue pair.
//   * io::Runner        — pumps source -> node -> sink until drained.
//
// We generate noisy 32-byte sensor readings (the paper's motivating
// traffic), push them through an encode node, carry the compressed
// packets over a ring to a decode node, and verify every reading comes
// back bit-exact while most packets shrank 32 B -> 3 B.
//
// Build & run:  ./examples/quickstart

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "gd/codec.hpp"
#include "io/memory_ring.hpp"
#include "io/node.hpp"
#include "io/runner.hpp"

int main() {
  using namespace zipline;

  // Paper parameters: Hamming(255, 247) via CRC-8, 256-bit chunks,
  // 15-bit identifiers (32,768 cached bases).
  const gd::GdParams params;

  // A "sensor" whose readings are one stable value plus 1-bit noise. The
  // stable value is canonical (a codeword), so every noisy neighbour maps
  // to the same dictionary basis — that is generalized deduplication.
  Rng rng(2020);
  bits::BitVector reading(params.chunk_bits);
  for (std::size_t i = 0; i < params.chunk_bits; ++i) {
    if (rng.next_bool(0.5)) reading.set(i);
  }
  const gd::GdTransform transform(params);
  const gd::TransformedChunk snapped = transform.forward(reading);
  reading = transform.inverse(snapped.excess, snapped.basis, /*syndrome=*/0);

  // 1000 noisy readings staged into an RX ring, 250 per burst.
  io::MemoryRing rx_ring(4);
  std::vector<std::vector<std::uint8_t>> sent;
  {
    io::Burst burst;
    for (int i = 0; i < 1000; ++i) {
      bits::BitVector noisy = reading;
      noisy.flip(rng.next_below(params.n()));  // sensor noise
      sent.push_back(noisy.to_bytes());
      burst.append(gd::PacketType::raw, 0, 0, sent.back(), io::PacketMeta{});
      if (burst.size() == 250) {
        (void)rx_ring.try_push(burst);
        burst.clear();
      }
    }
  }
  std::printf("sending 1000 noisy readings of one 32 B sensor value...\n\n");

  // Encode node -> wire ring. NodeOptions is a builder: this one is the
  // serial arrangement; add .with_workers(8).with_shared_dictionary()
  // and it becomes a multi-core middlebox with one shared table.
  io::MemoryRing wire_ring(4);
  Node encoder(NodeOptions{}.with_params(params));
  io::MemoryRingSource rx(rx_ring);
  io::MemoryRingSink wire_tx(wire_ring);
  io::Runner runner;
  const io::RunnerStats wire = runner.run(rx, encoder, wire_tx);

  // Decode node on the far side of the "wire".
  io::MemoryRing out_ring(4);
  Node decoder(NodeOptions{}.with_direction(io::Direction::decode)
                   .with_params(params));
  io::MemoryRingSource wire_rx(wire_ring);
  io::MemoryRingSink out_tx(out_ring);
  (void)runner.run(wire_rx, decoder, out_tx);

  // Every reading must come back bit-exact, in order.
  io::Burst burst;
  std::size_t index = 0;
  while (out_ring.try_pop(burst)) {
    for (std::size_t i = 0; i < burst.size(); ++i, ++index) {
      const auto got = burst.payload(i);
      if (!std::equal(got.begin(), got.end(), sent[index].begin(),
                      sent[index].end())) {
        std::printf("round-trip mismatch at packet %zu!\n", index);
        return 1;
      }
    }
  }
  if (index != sent.size()) {
    std::printf("packet count mismatch: %zu of %zu\n", index, sent.size());
    return 1;
  }

  const io::NodeStats stats = encoder.stats();
  std::printf("chunks encoded:        %llu (32 B each)\n",
              static_cast<unsigned long long>(stats.engine.chunks));
  std::printf("uncompressed packets:  %llu (33 B, unknown basis)\n",
              static_cast<unsigned long long>(
                  stats.engine.uncompressed_packets));
  std::printf("compressed packets:    %llu (3 B: syndrome + MSB + ID)\n",
              static_cast<unsigned long long>(stats.engine.compressed_packets));
  std::printf("bases in dictionary:   %zu\n", stats.dictionary_bases);
  std::printf("bytes: %llu -> %llu (ratio %.3f)\n",
              static_cast<unsigned long long>(wire.payload_bytes_in),
              static_cast<unsigned long long>(wire.payload_bytes_out),
              static_cast<double>(wire.payload_bytes_out) /
                  static_cast<double>(wire.payload_bytes_in));
  std::printf("\nevery reading decoded bit-exactly. One basis covers all"
              " 256 single-bit\nneighborhoods of the codeword -- that is"
              " generalized deduplication.\n");
  return 0;
}
