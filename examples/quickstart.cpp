// Quickstart: the ZipLine GD codec as a library, in 60 lines.
//
// Encodes a stream of near-duplicate 32-byte records (sensor readings),
// transmits them as ZipLine packets, decodes them on the other side, and
// prints what the dictionary learned. No switch, no simulator — just the
// core algorithm the paper builds on.
//
// Build & run:  ./examples/quickstart

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "gd/codec.hpp"

int main() {
  using namespace zipline;

  // Paper parameters: Hamming(255, 247) via CRC-8, 256-bit chunks,
  // 15-bit identifiers (32,768 cached bases).
  const gd::GdParams params;
  gd::GdEncoder encoder{params};
  gd::GdDecoder decoder{params};

  // A "sensor" whose readings are one stable value plus 1-bit noise. The
  // stable value is canonical (a codeword), so every noisy neighbour maps
  // to the same basis.
  Rng rng(2020);
  bits::BitVector reading(params.chunk_bits);
  for (std::size_t i = 0; i < params.chunk_bits; ++i) {
    if (rng.next_bool(0.5)) reading.set(i);
  }
  const gd::TransformedChunk snapped = encoder.transform().forward(reading);
  reading = encoder.transform().inverse(snapped.excess, snapped.basis,
                                        /*syndrome=*/0);

  std::printf("sending 1000 noisy readings of one 32 B sensor value...\n\n");
  std::uint64_t wire_bytes = 0;
  for (int i = 0; i < 1000; ++i) {
    bits::BitVector noisy = reading;
    noisy.flip(rng.next_below(params.n()));  // sensor noise

    // Encoder side: chunk -> packet (type 2 first time, type 3 after).
    const gd::GdPacket packet = encoder.encode_chunk(noisy);
    const auto wire = packet.serialize(params);
    wire_bytes += wire.size();

    // Decoder side: packet -> original chunk, bit exact.
    const gd::GdPacket parsed = gd::GdPacket::parse(params, packet.type, wire);
    const bits::BitVector restored = decoder.decode_chunk(parsed);
    if (restored != noisy) {
      std::printf("round-trip mismatch at packet %d!\n", i);
      return 1;
    }
  }

  const auto& stats = encoder.stats();
  std::printf("chunks encoded:        %llu (32 B each)\n",
              static_cast<unsigned long long>(stats.chunks));
  std::printf("uncompressed packets:  %llu (33 B, unknown basis)\n",
              static_cast<unsigned long long>(stats.uncompressed_packets));
  std::printf("compressed packets:    %llu (3 B: syndrome + MSB + ID)\n",
              static_cast<unsigned long long>(stats.compressed_packets));
  std::printf("bases in dictionary:   %zu\n", encoder.dictionary().size());
  std::printf("bytes: %llu -> %llu (ratio %.3f)\n",
              static_cast<unsigned long long>(stats.bytes_in),
              static_cast<unsigned long long>(wire_bytes),
              static_cast<double>(wire_bytes) /
                  static_cast<double>(stats.bytes_in));
  std::printf("\nevery reading decoded bit-exactly. One basis covers all"
              " 256 single-bit\nneighborhoods of the codeword -- that is"
              " generalized deduplication.\n");

  // The same codec, batch-oriented: for bulk data, hand the engine a
  // whole payload and a reusable arena instead of going chunk by chunk.
  // In steady state this path performs zero heap allocations per chunk.
  engine::Engine batch_encoder{params};
  engine::Engine batch_decoder{params};
  std::vector<std::uint8_t> bulk(64 * params.raw_payload_bytes());
  for (auto& b : bulk) b = static_cast<std::uint8_t>(rng.next_u64());

  engine::EncodeBatch encoded;
  engine::DecodeBatch decoded;
  batch_encoder.encode_payload(bulk, encoded);   // 64 chunks, one call
  batch_decoder.decode_batch(encoded, decoded);  // straight into the arena
  const auto restored_bulk = decoded.bytes();
  if (restored_bulk.size() != bulk.size() ||
      !std::equal(restored_bulk.begin(), restored_bulk.end(), bulk.begin())) {
    std::printf("batch round-trip mismatch!\n");
    return 1;
  }
  std::printf("\nbatch API: %zu chunks -> %zu wire bytes in one"
              " encode_payload call,\ndecoded back bit-exactly.\n",
              encoded.size(), encoded.storage_bytes());
  return 0;
}
