// DNS query compression — the paper's real-world dataset scenario.
//
// A campus's DNS queries (34 B each, transaction IDs excluded by the
// paper's filter) replayed through a ZipLine switch, compared against
// host-side gzip and classic exact deduplication on the same data.
//
// Build & run:  ./examples/dns_compression

#include <cstdio>

#include "baseline/dedup.hpp"
#include "baseline/deflate.hpp"
#include "common/hexdump.hpp"
#include "io/node.hpp"
#include "io/runner.hpp"
#include "io/trace_source.hpp"
#include "sim/replay.hpp"
#include "trace/dns.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;

  trace::DnsTraceConfig config;
  config.query_count = 100000;
  const auto queries = trace::generate_dns_queries(config);
  const auto payloads = trace::strip_transaction_ids(queries);
  const double original =
      static_cast<double>(payloads.size()) * payloads.front().size();
  std::printf("trace: %zu DNS queries to the campus resolver, %zu distinct"
              " names\n(34 B each; 2 B random transaction ID stripped by the"
              " filter -> %s effective)\n\n",
              queries.size(), config.name_count,
              format_size(original).c_str());

  // In-network GD with dynamic learning.
  sim::ReplayConfig replay_config;
  replay_config.table_mode = sim::TableMode::dynamic;
  sim::TraceReplay replay(replay_config);
  const auto gd_result = replay.replay(payloads);

  // The same queries through a multi-core software node with ONE shared
  // dictionary (queries from 16 "client ports" steered across 2 workers)
  // — the engine's wire path, learning instantly instead of through the
  // control plane. The gap between this row and the in-network row IS
  // the control-plane learning delay.
  io::TraceSourceOptions source_options;
  source_options.flow_of = [](std::size_t i) {
    return static_cast<std::uint32_t>(i % 16);
  };
  io::TraceSource node_source(payloads, source_options);
  io::CountingBurstSink node_wire;
  Node node(NodeOptions{}
                .with_workers(2)
                .with_shared_dictionary()
                .with_steering(engine::FlowSteering::load_aware)
                .with_work_stealing(true));
  io::Runner runner;
  (void)runner.run(node_source, node, node_wire);

  // Host-side gzip on the concatenated payloads (the paper's method).
  const auto flat = trace::concatenate(payloads);
  const auto gz = baseline::gzip_compress(flat);

  // Classic exact dedup with the same dictionary budget.
  baseline::ExactDedup dedup{gd::GdParams{}};
  for (const auto& p : payloads) {
    (void)dedup.process_chunk(bits::BitVector::from_bytes(p, 256));
  }

  std::printf("%-28s %12s %8s\n", "method", "size", "ratio");
  std::printf("%-28s %12s %8.3f\n", "original", format_size(original).c_str(),
              1.0);
  std::printf("%-28s %12s %8.3f  (in-network, line rate)\n",
              "ZipLine dynamic learning",
              format_size(static_cast<double>(gd_result.output_bytes)).c_str(),
              gd_result.ratio());
  std::printf("%-28s %12s %8.3f  (software node, %zu workers, shared"
              " table: %zu bases)\n",
              "ZipLine software node",
              format_size(static_cast<double>(node_wire.payload_bytes)).c_str(),
              static_cast<double>(node_wire.payload_bytes) /
                  static_cast<double>(original),
              node.stats().workers, node.stats().dictionary_bases);
  std::printf("%-28s %12s %8.3f  (host CPU, %zu distinct bases learned)\n",
              "exact dedup",
              format_size(static_cast<double>(dedup.stats().bytes_out)).c_str(),
              dedup.stats().compression_ratio(),
              dedup.dictionary().size());
  std::printf("%-28s %12s %8.3f  (host CPU, unbounded window)\n", "gzip",
              format_size(static_cast<double>(gz.size())).c_str(),
              static_cast<double>(gz.size()) / static_cast<double>(flat.size()));

  std::printf("\nZipLine learned %llu bases; %llu packets went uncompressed"
              " while the control\nplane installed mappings (~1.77 ms each),"
              " the rest shrank 32 B -> 3 B.\n",
              static_cast<unsigned long long>(gd_result.bases_learned),
              static_cast<unsigned long long>(gd_result.type2_packets));
  return 0;
}
