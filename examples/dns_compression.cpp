// DNS query compression — the paper's real-world dataset scenario.
//
// A campus's DNS queries (34 B each, transaction IDs excluded by the
// paper's filter) replayed through a ZipLine switch, compared against
// host-side gzip and classic exact deduplication on the same data.
//
// Build & run:  ./examples/dns_compression

#include <cstdio>

#include "baseline/dedup.hpp"
#include "baseline/deflate.hpp"
#include "common/hexdump.hpp"
#include "sim/replay.hpp"
#include "trace/dns.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;

  trace::DnsTraceConfig config;
  config.query_count = 100000;
  const auto queries = trace::generate_dns_queries(config);
  const auto payloads = trace::strip_transaction_ids(queries);
  const double original =
      static_cast<double>(payloads.size()) * payloads.front().size();
  std::printf("trace: %zu DNS queries to the campus resolver, %zu distinct"
              " names\n(34 B each; 2 B random transaction ID stripped by the"
              " filter -> %s effective)\n\n",
              queries.size(), config.name_count,
              format_size(original).c_str());

  // In-network GD with dynamic learning.
  sim::ReplayConfig replay_config;
  replay_config.table_mode = sim::TableMode::dynamic;
  sim::TraceReplay replay(replay_config);
  const auto gd_result = replay.replay(payloads);

  // Host-side gzip on the concatenated payloads (the paper's method).
  const auto flat = trace::concatenate(payloads);
  const auto gz = baseline::gzip_compress(flat);

  // Classic exact dedup with the same dictionary budget.
  baseline::ExactDedup dedup{gd::GdParams{}};
  for (const auto& p : payloads) {
    (void)dedup.process_chunk(bits::BitVector::from_bytes(p, 256));
  }

  std::printf("%-28s %12s %8s\n", "method", "size", "ratio");
  std::printf("%-28s %12s %8.3f\n", "original", format_size(original).c_str(),
              1.0);
  std::printf("%-28s %12s %8.3f  (in-network, line rate)\n",
              "ZipLine dynamic learning",
              format_size(static_cast<double>(gd_result.output_bytes)).c_str(),
              gd_result.ratio());
  std::printf("%-28s %12s %8.3f  (host CPU, %zu distinct bases learned)\n",
              "exact dedup",
              format_size(static_cast<double>(dedup.stats().bytes_out)).c_str(),
              dedup.stats().compression_ratio(),
              dedup.dictionary().size());
  std::printf("%-28s %12s %8.3f  (host CPU, unbounded window)\n", "gzip",
              format_size(static_cast<double>(gz.size())).c_str(),
              static_cast<double>(gz.size()) / static_cast<double>(flat.size()));

  std::printf("\nZipLine learned %llu bases; %llu packets went uncompressed"
              " while the control\nplane installed mappings (~1.77 ms each),"
              " the rest shrank 32 B -> 3 B.\n",
              static_cast<unsigned long long>(gd_result.bases_learned),
              static_cast<unsigned long long>(gd_result.type2_packets));
  return 0;
}
