// Two-switch deployment: compress on the WAN ingress switch, decompress on
// the WAN egress switch — the deployment §5's two-phase install protocol
// is designed for ("the control plane first sets the reverse mapping
// (ID-basis) in the destination switch to make sure that compressed
// packets can always be uncompressed").
//
//   host1 --- [switch A: encode] === WAN === [switch B: decode] --- host2
//
// One controller manages both switches: digests from A, identifier pool,
// installs into B first, then A. The example verifies every payload
// arrives at host2 bit-exactly while the WAN link carries a fraction of
// the bytes.
//
// Build & run:  ./examples/wan_pair

#include <cstdio>
#include <string>
#include <unordered_map>

#include "common/hexdump.hpp"
#include "io/runner.hpp"
#include "io/sim_port.hpp"
#include "io/trace_source.hpp"
#include "sim/event_queue.hpp"
#include "sim/host.hpp"
#include "sim/switch_node.hpp"
#include "trace/synthetic.hpp"
#include "zipline/controller.hpp"

int main() {
  using namespace zipline;

  sim::EventQueue events;

  // Switch programs: A encodes towards the WAN, B decodes towards host2.
  prog::ZipLineConfig config_a;
  config_a.op = prog::SwitchOp::encode;
  config_a.learning = prog::LearningMode::control_plane;
  prog::ZipLineConfig config_b;
  config_b.op = prog::SwitchOp::decode;
  auto program_a = std::make_shared<prog::ZipLineProgram>(config_a);
  auto program_b = std::make_shared<prog::ZipLineProgram>(config_b);

  sim::SwitchNode switch_a(
      events, std::make_shared<tofino::SwitchModel>("site-a", program_a));
  sim::SwitchNode switch_b(
      events, std::make_shared<tofino::SwitchModel>("site-b", program_b));

  // Telemetry is paced (~50 kpkt/s), not line rate: readings trickle in
  // from the field, and the control plane keeps up with basis drift.
  sim::HostTiming host_timing;
  host_timing.tx_cpu_per_packet = 20000;  // 20 us between readings
  sim::Host host1(events, net::MacAddress::local(1), host_timing);
  sim::Host host2(events, net::MacAddress::local(2));

  // host1 -- A (100G access), A == B (100G WAN, 2 ms propagation),
  // B -- host2 (100G access).
  sim::Link access_a(events, 100.0, 25);
  sim::Link wan(events, 100.0, 2_ms);
  sim::Link access_b(events, 100.0, 25);
  access_a.attach(&host1, switch_a.port_endpoint(1, &access_a));
  wan.attach(switch_a.port_endpoint(2, &wan), switch_b.port_endpoint(1, &wan));
  access_b.attach(switch_b.port_endpoint(2, &access_b), &host2);
  host1.attach_link(&access_a);
  host2.attach_link(&access_b);

  // One control plane spanning both sites: decoder-side (B) installs
  // happen strictly before encoder-side (A) installs.
  prog::Controller controller(events, *program_a, *program_b);
  switch_a.set_post_process_hook([&] { controller.poll_digests(); });

  // Traffic: batched sensor telemetry.
  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 50000;
  trace_config.sensor_count = 20;
  const auto payloads = trace::generate_synthetic_sensor(trace_config);

  // Verify every arrival against what was sent. Receive-completion jitter
  // can reorder the application-level taps, so verification is by
  // multiset, not by sequence.
  std::unordered_map<std::string, std::int64_t> outstanding;
  for (const auto& p : payloads) {
    ++outstanding[std::string(p.begin(), p.end())];
  }
  std::uint64_t verified = 0;
  std::uint64_t mismatches = 0;
  host2.set_rx_tap([&](const net::EthernetFrame& frame, SimTime) {
    const std::string key(frame.payload.begin(), frame.payload.end());
    const auto it = outstanding.find(key);
    if (it != outstanding.end() && it->second > 0) {
      --it->second;
      ++verified;
    } else {
      ++mismatches;
    }
  });

  // Stage the telemetry through the io burst layer into host1's paced TX
  // path (trace source -> host TX sink), then run the WAN.
  io::TraceSourceOptions source_options;
  source_options.burst_size = 4096;
  io::TraceSource source(payloads, source_options);
  io::HostTxSink tx(host1, host2.mac());
  io::Runner runner;
  (void)runner.run(source, tx);
  tx.launch(/*start_at=*/0);
  events.run_until(30_s);

  using prog::PacketClass;
  const double sent_bytes = static_cast<double>(payloads.size()) * 32;
  const double wan_bytes =
      static_cast<double>(program_a->class_bytes(PacketClass::raw_to_type2) +
                          program_a->class_bytes(PacketClass::raw_to_type3));
  std::printf("payloads sent:       %zu (%s)\n", payloads.size(),
              format_size(sent_bytes).c_str());
  std::printf("WAN payload bytes:   %s (ratio %.3f)\n",
              format_size(wan_bytes).c_str(), wan_bytes / sent_bytes);
  std::printf("decoded at site B:   %llu type-3, %llu type-2\n",
              static_cast<unsigned long long>(
                  program_b->class_packets(PacketClass::type3_to_raw)),
              static_cast<unsigned long long>(
                  program_b->class_packets(PacketClass::type2_to_raw)));
  std::printf("verified bit-exact:  %llu / %zu (mismatches: %llu)\n",
              static_cast<unsigned long long>(verified), payloads.size(),
              static_cast<unsigned long long>(mismatches));
  std::printf("unknown-ID drops:    %llu (two-phase install prevents"
              " these)\n",
              static_cast<unsigned long long>(
                  program_b->class_packets(PacketClass::decode_unknown_id)));
  std::printf("bases learned:       %llu, evictions: %llu\n",
              static_cast<unsigned long long>(
                  controller.stats().mappings_installed),
              static_cast<unsigned long long>(controller.stats().evictions));
  return mismatches == 0 ? 0 : 1;
}
