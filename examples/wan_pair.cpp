// WAN proxy pair over real TCP sockets.
//
// The deployment §5 sketches, promoted from a simulation to live
// transport: an encode proxy serves one loopback port, a decode proxy
// serves another, and everything between them rides ONE multiplexed
// compressed link:
//
//   clients ==N sessions==> [encode Node] ==trunk==> [decode Node]
//        ==downlink==> collector (byte-exact verification)
//
// Each proxy is the netio serving shape this example exists to
// demonstrate: a SocketTransport pumped by io::Runner's idle-hook
// overload, so the loop BLOCKS in epoll_wait when no frames are in
// flight instead of burning a core. The client side (main thread) opens
// --sessions concurrent TCP sessions, pushes --frames redundant
// telemetry payloads down each, and verifies that every session's byte
// stream arrives bit-exactly at the collector while the trunk carried a
// fraction of the bytes.
//
// Build & run:  ./examples/wan_pair [--sessions N] [--frames N]
//               [--workers N] [--quick]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "io/node.hpp"
#include "io/runner.hpp"
#include "netio/transport.hpp"

using namespace zipline;

namespace {

struct Options {
  std::size_t sessions = 1000;
  std::size_t frames_per_session = 16;
  std::size_t workers = 1;
};

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::size_t {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : 0;
    };
    if (arg == "--sessions") {
      options.sessions = next();
    } else if (arg == "--frames") {
      options.frames_per_session = next();
    } else if (arg == "--workers") {
      options.workers = next();
    } else if (arg == "--quick") {
      options.sessions = 50;
      options.frames_per_session = 8;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// One proxy: transport pumped through a Node by the Runner idle-hook
/// loop, blocking in the poller until frames (or a stop request) arrive.
void serve_proxy(netio::SocketTransport& transport, io::Node& node,
                 netio::SocketSink& sink) {
  netio::SocketSource source(transport);
  io::Runner runner;
  runner.run(source, node, sink, [&transport] {
    transport.poll(-1);  // blocks until readiness or request_stop's wake
    return !transport.stop_requested();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  const gd::GdParams params;

  // Encode proxy: every client session is its own flow; encoded frames
  // leave on one multiplexed trunk, flow ids preserved in link headers.
  netio::TransportOptions edge_options;
  edge_options.flow_mode = netio::FlowIdMode::per_session;
  netio::SocketTransport encode_transport(edge_options);
  const std::uint16_t encode_port = encode_transport.listen(0);

  // Decode proxy and collector speak the trunk shape: flow identity
  // comes from the link headers.
  netio::TransportOptions trunk_options;
  trunk_options.flow_mode = netio::FlowIdMode::from_header;
  netio::SocketTransport decode_transport(trunk_options);
  const std::uint16_t decode_port = decode_transport.listen(0);

  netio::SocketTransport client_transport(trunk_options);
  const std::uint16_t collector_port = client_transport.listen(0);

  const std::uint32_t trunk_flow = encode_transport.connect(decode_port);
  const std::uint32_t downlink_flow =
      decode_transport.connect(collector_port);
  if (trunk_flow == 0 || downlink_flow == 0) {
    std::fprintf(stderr, "failed to establish trunk/downlink\n");
    return 1;
  }

  // One shared dictionary per direction — the switch's single table.
  const auto node_options = [&](io::Direction direction) {
    return io::NodeOptions{}
        .with_direction(direction)
        .with_params(params)
        .with_shared_dictionary()
        .with_workers(options.workers);
  };
  io::Node encode_node(node_options(io::Direction::encode));
  io::Node decode_node(node_options(io::Direction::decode));
  netio::SocketSink encode_sink(encode_transport, trunk_flow);
  netio::SocketSink decode_sink(decode_transport, downlink_flow);

  std::thread encode_thread([&] {
    serve_proxy(encode_transport, encode_node, encode_sink);
  });
  std::thread decode_thread([&] {
    serve_proxy(decode_transport, decode_node, decode_sink);
  });

  // Open every client session up front — the concurrency target is the
  // point, not an artifact.
  std::vector<std::uint32_t> client_flows;
  for (std::size_t s = 0; s < options.sessions; ++s) {
    const std::uint32_t flow = client_transport.connect(encode_port);
    if (flow == 0) {
      std::fprintf(stderr, "session %zu failed to connect\n", s);
      return 1;
    }
    client_flows.push_back(flow);
  }

  // Redundant telemetry: payloads drawn from a small chunk pool with bit
  // noise — the traffic shape the dictionary compresses. The first four
  // bytes of each session's stream carry its index, so the collector can
  // match decoded streams back to senders without trusting flow ids.
  Rng rng(0x3A9);
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  std::vector<std::vector<std::uint8_t>> pool;
  for (int i = 0; i < 32; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> workloads(
      options.sessions);
  std::vector<std::vector<std::uint8_t>> expected(options.sessions);
  std::size_t total_payload_bytes = 0;
  for (std::size_t s = 0; s < options.sessions; ++s) {
    for (std::size_t f = 0; f < options.frames_per_session; ++f) {
      std::vector<std::uint8_t> payload;
      const std::size_t chunks = 1 + rng.next_below(4);
      for (std::size_t c = 0; c < chunks; ++c) {
        auto chunk = pool[rng.next_below(pool.size())];
        if (rng.next_bool(0.25)) {
          chunk[rng.next_below(chunk.size())] ^= 1;
        }
        payload.insert(payload.end(), chunk.begin(), chunk.end());
      }
      if (f == 0) {
        netio::wire::put_u32_be(payload.data(),
                                static_cast<std::uint32_t>(s));
      }
      expected[s].insert(expected[s].end(), payload.begin(), payload.end());
      total_payload_bytes += payload.size();
      workloads[s].push_back(std::move(payload));
    }
  }

  // Feed and collect from the main thread: push pending frames (retrying
  // under backpressure), pump, and accumulate decoded streams.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::size_t> next_frame(options.sessions, 0);
  std::map<std::uint32_t, std::vector<std::uint8_t>> collected;
  std::size_t collected_bytes = 0;
  io::Burst burst;
  bool done = false;
  const auto deadline = start + std::chrono::seconds(120);
  while (!done) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "stalled: %zu/%zu bytes collected\n",
                   collected_bytes, total_payload_bytes);
      return 1;
    }
    for (std::size_t s = 0; s < options.sessions; ++s) {
      while (next_frame[s] < options.frames_per_session) {
        netio::LinkHeader header;
        header.type = gd::PacketType::raw;
        if (!client_transport.send_frame(client_flows[s], header,
                                         workloads[s][next_frame[s]])) {
          break;  // queue pushed back; retry next round
        }
        ++next_frame[s];
      }
    }
    client_transport.poll(1);
    while (client_transport.rx_burst(burst) > 0) {
      for (std::size_t i = 0; i < burst.size(); ++i) {
        const auto payload = burst.payload(i);
        auto& stream = collected[burst.meta(i).flow];
        stream.insert(stream.end(), payload.begin(), payload.end());
        collected_bytes += payload.size();
      }
    }
    done = collected_bytes == total_payload_bytes;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  encode_transport.request_stop();
  decode_transport.request_stop();
  encode_thread.join();
  decode_thread.join();

  // Verification: every session's byte stream must match bit-exactly,
  // matched via the stamped stream head.
  std::size_t verified = 0;
  std::size_t mismatches = 0;
  std::vector<bool> matched(options.sessions, false);
  for (const auto& [flow, stream] : collected) {
    bool ok = stream.size() >= 4;
    std::uint32_t s = 0;
    if (ok) {
      s = netio::wire::get_u32_be(stream.data());
      ok = s < options.sessions && !matched[s] && stream == expected[s];
    }
    if (ok) {
      matched[s] = true;
      ++verified;
    } else {
      ++mismatches;
    }
  }

  const netio::TransportStats edge = encode_transport.stats();
  const netio::TransportStats trunk = decode_transport.stats();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  const double wan_payload = static_cast<double>(edge.bytes_tx);
  std::printf("sessions:            %zu concurrent (accepted %llu)\n",
              options.sessions,
              static_cast<unsigned long long>(edge.sessions_accepted));
  std::printf("frames in:           %llu (%zu payload bytes)\n",
              static_cast<unsigned long long>(edge.frames_rx),
              total_payload_bytes);
  std::printf("WAN link bytes:      %.0f (ratio %.3f, framing included)\n",
              wan_payload,
              wan_payload / static_cast<double>(total_payload_bytes));
  std::printf("decoded frames out:  %llu\n",
              static_cast<unsigned long long>(trunk.frames_tx));
  std::printf("rebuffered bytes:    %llu edge, %llu trunk (partial-frame"
              " resumes)\n",
              static_cast<unsigned long long>(edge.bytes_rebuffered),
              static_cast<unsigned long long>(trunk.bytes_rebuffered));
  std::printf("partial writes:      %llu\n",
              static_cast<unsigned long long>(
                  edge.partial_writes + trunk.partial_writes));
  std::printf("elapsed:             %.2fs (%.0f frames/s end-to-end)\n",
              secs, static_cast<double>(edge.frames_rx) / secs);
  std::printf("verified bit-exact:  %zu / %zu sessions (mismatches: %zu)\n",
              verified, options.sessions, mismatches);
  return mismatches == 0 && verified == options.sessions ? 0 : 1;
}
