// Sensor telemetry through a ZipLine switch — the paper's motivating IoT
// scenario end to end.
//
// A fleet of sensors behind server 1 streams 256-bit readings across a
// 100 Gbit/s link; the switch compresses in-network with dynamic learning
// through the control plane. The example prints the packet classification
// counters (paper §5), the savings, the control-plane activity, and the
// program's resource report.
//
// Build & run:  ./examples/sensor_telemetry

#include <cstdio>

#include "common/hexdump.hpp"
#include "io/runner.hpp"
#include "io/sim_port.hpp"
#include "io/trace_source.hpp"
#include "sim/testbed.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace zipline;

  // Generate ten seconds of batched telemetry from 50 sensors.
  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 100000;
  const auto payloads = trace::generate_synthetic_sensor(trace_config);
  std::printf("trace: %zu readings x 32 B from %zu sensors (%s)\n",
              payloads.size(), trace_config.sensor_count,
              format_size(static_cast<double>(payloads.size()) * 32).c_str());

  // The paper's testbed: two servers, one switch, control-plane learning.
  // Telemetry is paced (~100 kpkt/s): readings trickle in from the field,
  // so the control plane keeps up with basis drift.
  sim::TestbedConfig config;
  config.switch_config.op = prog::SwitchOp::encode;
  config.switch_config.learning = prog::LearningMode::control_plane;
  config.host_timing.tx_cpu_per_packet = 10000;  // 10 us between readings
  sim::Testbed bed(config);

  // Stage the trace through the io burst layer into server 1's paced TX
  // path: trace source -> host TX sink, pumped by the runner (the same
  // backends the software node runs on).
  io::TraceSourceOptions source_options;
  source_options.burst_size = 4096;
  io::TraceSource source(payloads, source_options);
  io::HostTxSink tx(bed.server1(), bed.server2().mac());
  io::Runner runner;
  (void)runner.run(source, tx);
  tx.launch(/*start_at=*/0);
  bed.events().run_until(10_s);

  using prog::PacketClass;
  const auto& program = bed.program();
  const std::uint64_t type2 = program.class_packets(PacketClass::raw_to_type2);
  const std::uint64_t type3 = program.class_packets(PacketClass::raw_to_type3);
  const std::uint64_t out_bytes = program.class_bytes(PacketClass::raw_to_type2) +
                                  program.class_bytes(PacketClass::raw_to_type3);
  const double in_bytes = static_cast<double>(payloads.size()) * 32;

  std::printf("\npacket classification (paper §5 counters):\n");
  std::printf("  raw -> type 2 (uncompressed):  %8llu packets\n",
              static_cast<unsigned long long>(type2));
  std::printf("  raw -> type 3 (compressed):    %8llu packets\n",
              static_cast<unsigned long long>(type3));
  std::printf("\ncontrol plane:\n");
  std::printf("  digests seen: %llu (duplicates suppressed: %llu)\n",
              static_cast<unsigned long long>(
                  bed.controller().stats().digests_seen),
              static_cast<unsigned long long>(
                  bed.controller().stats().duplicate_digests));
  std::printf("  mappings installed: %llu, evictions: %llu\n",
              static_cast<unsigned long long>(
                  bed.controller().stats().mappings_installed),
              static_cast<unsigned long long>(
                  bed.controller().stats().evictions));
  std::printf("\nbytes on the wire: %s -> %s  (saved %.1f%%)\n",
              format_size(in_bytes).c_str(),
              format_size(static_cast<double>(out_bytes)).c_str(),
              100.0 * (1.0 - static_cast<double>(out_bytes) / in_bytes));
  std::printf("\n%s", program.resource_report().c_str());
  return 0;
}
