// zipline_pcap: run a pcap trace through the engine's parallel pipeline
// with the SHARED dictionary service — the offline equivalent of putting a
// multi-core ZipLine middlebox on the path of a capture. One dictionary
// per direction serves every flow in the trace (flows are MAC pairs,
// steered across the worker pool with power-of-two-choices placement and
// work stealing), so redundancy is eliminated across flows exactly as the
// switch's one-table-per-direction design intends, and dictionary memory
// stays constant however many cores or flows the trace brings.
//
//   zipline_pcap encode <in.pcap> <out.pcap>   compress raw chunk frames
//   zipline_pcap decode <in.pcap> <out.pcap>   restore ZipLine frames
//   zipline_pcap demo                          generate, encode, decode,
//                                              verify and report
//
// Frames whose EtherType is not ZipLine's (or whose payload is not one
// chunk) pass through untouched, exactly as on the switch. The ordered
// drain keeps the output capture in input order, and the ordered resolve
// sequencing makes the compressed trace replayable: decoding it (with this
// tool or a one-table switch) rebuilds the identical dictionary.
//
// Build & run:  ./examples/zipline_pcap demo

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/hexdump.hpp"
#include "engine/parallel.hpp"
#include "gd/packet.hpp"
#include "net/pcap.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace zipline;

struct PcapRunStats {
  std::uint64_t frames = 0;
  std::uint64_t processed = 0;  ///< frames that went through the pipeline
  std::uint64_t payload_in = 0;
  std::uint64_t payload_out = 0;
  std::uint64_t dictionary_bases = 0;
  std::size_t workers = 0;
};

/// Flow identity of a frame: one direction of one MAC pair.
std::uint32_t flow_of(const net::EthernetFrame& frame) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::array<std::uint8_t, 6>& octets) {
    for (const std::uint8_t byte : octets) {
      h = (h ^ byte) * 0x100000001b3ULL;
    }
  };
  mix(frame.src.octets());
  mix(frame.dst.octets());
  return static_cast<std::uint32_t>(h >> 32) ^ static_cast<std::uint32_t>(h);
}

engine::ParallelOptions pipeline_options() {
  engine::ParallelOptions options;
  options.workers = std::max(2u, std::thread::hardware_concurrency());
  options.ownership = engine::DictionaryOwnership::shared;
  options.steering = engine::FlowSteering::load_aware;
  options.work_stealing = true;
  return options;
}

/// Frames per streaming window: the trace is read, transformed and
/// written window by window (flush() at each boundary), so memory stays
/// constant in the trace size while the shared dictionary — which lives
/// in the pipeline, outside the loop — keeps learning across windows.
constexpr std::size_t kWindowFrames = 4096;

/// Encode pass: every raw chunk frame becomes one type-2/3 frame; the
/// whole trace shares one dictionary service.
PcapRunStats encode_pcap(const std::string& in_path,
                         const std::string& out_path,
                         const gd::GdParams& params) {
  net::PcapReader reader(in_path);
  net::PcapWriter writer(out_path);
  PcapRunStats stats;

  // Per-window staging, reused across windows. Output frames are index-
  // aligned with the window so the capture order survives the pool.
  std::vector<net::PcapRecord> records;
  std::vector<net::EthernetFrame> frames;
  std::vector<net::EthernetFrame> outputs;
  std::vector<std::size_t> unit_frame;  // unit seq within window -> index
  std::uint64_t window_base_seq = 0;

  const std::size_t chunk_bytes = params.raw_payload_bytes();
  engine::ParallelEncoder pipeline(
      params, pipeline_options(),
      [&](const engine::ParallelEncoder::Unit& unit) {
        const std::size_t index = unit_frame[unit.seq - window_base_seq];
        ZL_ASSERT(unit.output->size() == 1);
        const engine::PacketDesc& desc = unit.output->packet(0);
        net::EthernetFrame& out = outputs[index];
        out.dst = frames[index].dst;
        out.src = frames[index].src;
        out.ether_type = gd::ether_type_for(desc.type);
        const auto payload = unit.output->payload(desc);
        out.payload.assign(payload.begin(), payload.end());
      });

  bool more = true;
  while (more) {
    records.clear();
    frames.clear();
    while (records.size() < kWindowFrames) {
      auto record = reader.next();
      if (!record) {
        more = false;
        break;
      }
      frames.push_back(net::EthernetFrame::parse(record->data,
                                                 /*verify_fcs=*/false));
      records.push_back(std::move(*record));
    }
    outputs.assign(frames.size(), net::EthernetFrame{});
    unit_frame.clear();
    window_base_seq = pipeline.submitted();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const net::EthernetFrame& frame = frames[i];
      stats.payload_in += frame.payload.size();
      if (frame.ether_type == gd::ether_type_for(gd::PacketType::raw) &&
          frame.payload.size() >= chunk_bytes) {
        // The chunk is the payload prefix; the rest is Ethernet minimum-
        // frame padding, which the switch also strips on encode.
        unit_frame.push_back(i);
        ++stats.processed;
        pipeline.submit(flow_of(frame),
                        std::span(frame.payload).first(chunk_bytes));
      } else {
        outputs[i] = frame;  // passthrough, exactly as on the switch
      }
    }
    pipeline.flush();
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      stats.payload_out += outputs[i].payload.size();
      writer.write_frame(outputs[i], records[i].timestamp_us);
    }
    stats.frames += frames.size();
  }
  stats.dictionary_bases = pipeline.shared_dictionary()->size();
  stats.workers = pipeline.options().workers;
  return stats;
}

/// Decode pass: type-2/3 frames are restored to raw chunk frames through
/// the mirrored shared dictionary (rebuilt from the trace itself).
PcapRunStats decode_pcap(const std::string& in_path,
                         const std::string& out_path,
                         const gd::GdParams& params) {
  net::PcapReader reader(in_path);
  net::PcapWriter writer(out_path);
  PcapRunStats stats;

  std::vector<net::PcapRecord> records;
  std::vector<net::EthernetFrame> frames;
  std::vector<net::EthernetFrame> outputs;
  std::vector<std::size_t> unit_frame;
  // Staging batches sized to the window once; clear() keeps their arenas.
  std::vector<engine::EncodeBatch> staged(kWindowFrames);
  std::uint64_t window_base_seq = 0;

  engine::ParallelDecoder pipeline(
      params, pipeline_options(),
      [&](const engine::ParallelDecoder::Unit& unit) {
        const std::size_t index = unit_frame[unit.seq - window_base_seq];
        net::EthernetFrame& out = outputs[index];
        out.dst = frames[index].dst;
        out.src = frames[index].src;
        out.ether_type = gd::ether_type_for(gd::PacketType::raw);
        const auto bytes = unit.output->bytes();
        out.payload.assign(bytes.begin(), bytes.end());
      });

  // A ZipLine frame decodes only if it actually carries a full packet
  // body; anything shorter (e.g. clipped by a capture snap length)
  // passes through untouched instead of aborting the conversion.
  const auto decodable = [&params](const net::EthernetFrame& frame) {
    if (!gd::is_zipline_ether_type(frame.ether_type)) return false;
    const gd::PacketType type = gd::packet_type_for_ether(frame.ether_type);
    if (type == gd::PacketType::raw) return false;
    const std::size_t body = type == gd::PacketType::uncompressed
                                 ? params.type2_payload_bytes()
                                 : params.type3_payload_bytes();
    return frame.payload.size() >= body;
  };

  bool more = true;
  while (more) {
    records.clear();
    frames.clear();
    while (records.size() < kWindowFrames) {
      auto record = reader.next();
      if (!record) {
        more = false;
        break;
      }
      frames.push_back(net::EthernetFrame::parse(record->data,
                                                 /*verify_fcs=*/false));
      records.push_back(std::move(*record));
    }
    outputs.assign(frames.size(), net::EthernetFrame{});
    unit_frame.clear();
    window_base_seq = pipeline.submitted();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const net::EthernetFrame& frame = frames[i];
      stats.payload_in += frame.payload.size();
      if (decodable(frame)) {
        engine::EncodeBatch& batch = staged[unit_frame.size()];
        batch.clear();
        batch.append(gd::packet_type_for_ether(frame.ether_type), 0, 0,
                     frame.payload);
        unit_frame.push_back(i);
        ++stats.processed;
        pipeline.submit(flow_of(frame), &batch);
      } else {
        outputs[i] = frame;
      }
    }
    pipeline.flush();
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      stats.payload_out += outputs[i].payload.size();
      writer.write_frame(outputs[i], records[i].timestamp_us);
    }
    stats.frames += frames.size();
  }
  stats.dictionary_bases = pipeline.shared_dictionary()->size();
  stats.workers = pipeline.options().workers;
  return stats;
}

PcapRunStats run_pcap(const std::string& in_path, const std::string& out_path,
                      bool encode) {
  const gd::GdParams params;  // the paper's deployment parameters
  return encode ? encode_pcap(in_path, out_path, params)
                : decode_pcap(in_path, out_path, params);
}

int demo() {
  const std::string dir = std::string("/tmp");
  const std::string raw = dir + "/zipline_demo_raw.pcap";
  const std::string enc = dir + "/zipline_demo_encoded.pcap";
  const std::string dec = dir + "/zipline_demo_decoded.pcap";

  trace::SyntheticSensorConfig config;
  config.chunk_count = 50000;
  const auto payloads = trace::generate_synthetic_sensor(config);
  trace::write_payloads_pcap(raw, payloads, 10000.0);
  std::printf("wrote %zu-frame trace: %s\n", payloads.size(), raw.c_str());

  const auto enc_stats = run_pcap(raw, enc, /*encode=*/true);
  std::printf("encode: payload %s -> %s (ratio %.3f) on %zu workers,"
              " shared dictionary holds %llu bases\n",
              format_size(static_cast<double>(enc_stats.payload_in)).c_str(),
              format_size(static_cast<double>(enc_stats.payload_out)).c_str(),
              static_cast<double>(enc_stats.payload_out) /
                  static_cast<double>(enc_stats.payload_in),
              enc_stats.workers,
              static_cast<unsigned long long>(enc_stats.dictionary_bases));

  const auto dec_stats = run_pcap(enc, dec, /*encode=*/false);
  std::printf("decode: payload %s -> %s, mirrored dictionary holds %llu"
              " bases\n",
              format_size(static_cast<double>(dec_stats.payload_in)).c_str(),
              format_size(static_cast<double>(dec_stats.payload_out)).c_str(),
              static_cast<unsigned long long>(dec_stats.dictionary_bases));

  // Verify the decoded trace matches the original chunks.
  const auto decoded = trace::read_payloads_pcap(dec);
  if (decoded.size() != payloads.size()) {
    std::printf("FRAME COUNT MISMATCH\n");
    return 1;
  }
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (!std::equal(payloads[i].begin(), payloads[i].end(),
                    decoded[i].begin())) {
      std::printf("PAYLOAD MISMATCH at frame %zu\n", i);
      return 1;
    }
  }
  std::printf("verified: all %zu frames decoded bit-exactly\n",
              decoded.size());
  std::remove(raw.c_str());
  std::remove(enc.c_str());
  std::remove(dec.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "demo") == 0) {
    return demo();
  }
  if (argc != 4 || (std::strcmp(argv[1], "encode") != 0 &&
                    std::strcmp(argv[1], "decode") != 0)) {
    std::fprintf(stderr,
                 "usage: zipline_pcap encode <in.pcap> <out.pcap>\n"
                 "       zipline_pcap decode <in.pcap> <out.pcap>\n"
                 "       zipline_pcap demo\n");
    return 2;
  }
  try {
    const auto stats =
        run_pcap(argv[2], argv[3], std::strcmp(argv[1], "encode") == 0);
    std::printf("%llu frames (%llu transformed), payload %llu -> %llu"
                " bytes, %llu dictionary bases\n",
                static_cast<unsigned long long>(stats.frames),
                static_cast<unsigned long long>(stats.processed),
                static_cast<unsigned long long>(stats.payload_in),
                static_cast<unsigned long long>(stats.payload_out),
                static_cast<unsigned long long>(stats.dictionary_bases));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "zipline_pcap: %s\n", e.what());
    return 1;
  }
  return 0;
}
