// zipline_pcap: run a pcap trace through the ZipLine switch model and
// write the transformed trace back out — the offline equivalent of putting
// the switch on the path of a capture.
//
//   zipline_pcap encode <in.pcap> <out.pcap>   compress raw chunk frames
//   zipline_pcap decode <in.pcap> <out.pcap>   restore ZipLine frames
//   zipline_pcap demo                          generate, encode, decode,
//                                              verify and report
//
// Frames whose EtherType is not ZipLine's pass through untouched, exactly
// as on the switch. Learning uses the data-plane register path so a single
// offline pass behaves deterministically without a control-plane clock.
//
// Build & run:  ./examples/zipline_pcap demo

#include <cstdio>
#include <cstring>
#include <string>

#include "common/hexdump.hpp"
#include "net/pcap.hpp"
#include "trace/synthetic.hpp"
#include "zipline/program.hpp"

namespace {

using namespace zipline;

struct PcapRunStats {
  std::uint64_t frames = 0;
  std::uint64_t payload_in = 0;
  std::uint64_t payload_out = 0;
};

PcapRunStats run_pcap(const std::string& in_path, const std::string& out_path,
                      prog::SwitchOp op) {
  prog::ZipLineConfig config;
  config.op = op;
  config.learning = prog::LearningMode::data_plane;
  auto program = std::make_shared<prog::ZipLineProgram>(config);
  tofino::SwitchModel sw("pcap", program);

  net::PcapReader reader(in_path);
  net::PcapWriter writer(out_path);
  PcapRunStats stats;
  while (auto record = reader.next()) {
    const auto frame = net::EthernetFrame::parse(record->data,
                                                 /*verify_fcs=*/false);
    const auto result =
        sw.process(frame, /*ingress_port=*/1,
                   static_cast<SimTime>(record->timestamp_us) * 1000);
    ++stats.frames;
    stats.payload_in += frame.payload.size();
    if (result.dropped) continue;
    stats.payload_out += result.frame.payload.size();
    writer.write_frame(result.frame, record->timestamp_us);
  }
  return stats;
}

int demo() {
  const std::string dir = std::string("/tmp");
  const std::string raw = dir + "/zipline_demo_raw.pcap";
  const std::string enc = dir + "/zipline_demo_encoded.pcap";
  const std::string dec = dir + "/zipline_demo_decoded.pcap";

  trace::SyntheticSensorConfig config;
  config.chunk_count = 50000;
  const auto payloads = trace::generate_synthetic_sensor(config);
  trace::write_payloads_pcap(raw, payloads, 10000.0);
  std::printf("wrote %zu-frame trace: %s\n", payloads.size(), raw.c_str());

  const auto enc_stats = run_pcap(raw, enc, prog::SwitchOp::encode);
  std::printf("encode: payload %s -> %s (ratio %.3f)\n",
              format_size(static_cast<double>(enc_stats.payload_in)).c_str(),
              format_size(static_cast<double>(enc_stats.payload_out)).c_str(),
              static_cast<double>(enc_stats.payload_out) /
                  static_cast<double>(enc_stats.payload_in));

  const auto dec_stats = run_pcap(enc, dec, prog::SwitchOp::decode);
  std::printf("decode: payload %s -> %s\n",
              format_size(static_cast<double>(dec_stats.payload_in)).c_str(),
              format_size(static_cast<double>(dec_stats.payload_out)).c_str());

  // Verify the decoded trace matches the original chunks.
  const auto decoded = trace::read_payloads_pcap(dec);
  if (decoded.size() != payloads.size()) {
    std::printf("FRAME COUNT MISMATCH\n");
    return 1;
  }
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (!std::equal(payloads[i].begin(), payloads[i].end(),
                    decoded[i].begin())) {
      std::printf("PAYLOAD MISMATCH at frame %zu\n", i);
      return 1;
    }
  }
  std::printf("verified: all %zu frames decoded bit-exactly\n",
              decoded.size());
  std::remove(raw.c_str());
  std::remove(enc.c_str());
  std::remove(dec.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "demo") == 0) {
    return demo();
  }
  if (argc != 4 || (std::strcmp(argv[1], "encode") != 0 &&
                    std::strcmp(argv[1], "decode") != 0)) {
    std::fprintf(stderr,
                 "usage: zipline_pcap encode <in.pcap> <out.pcap>\n"
                 "       zipline_pcap decode <in.pcap> <out.pcap>\n"
                 "       zipline_pcap demo\n");
    return 2;
  }
  try {
    const auto op = std::strcmp(argv[1], "encode") == 0
                        ? prog::SwitchOp::encode
                        : prog::SwitchOp::decode;
    const auto stats = run_pcap(argv[2], argv[3], op);
    std::printf("%llu frames, payload %llu -> %llu bytes\n",
                static_cast<unsigned long long>(stats.frames),
                static_cast<unsigned long long>(stats.payload_in),
                static_cast<unsigned long long>(stats.payload_out));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "zipline_pcap: %s\n", e.what());
    return 1;
  }
  return 0;
}
