// zipline_pcap: run a pcap trace through a zipline::Node with the SHARED
// dictionary service — the offline equivalent of putting a multi-core
// ZipLine middlebox on the path of a capture. One dictionary per
// direction serves every flow in the trace (flows are MAC pairs, steered
// across the worker pool with power-of-two-choices placement and work
// stealing), so redundancy is eliminated across flows exactly as the
// switch's one-table-per-direction design intends, and dictionary memory
// stays constant however many cores or flows the trace brings.
//
//   zipline_pcap encode <in.pcap> <out.pcap>   compress raw chunk frames
//   zipline_pcap decode <in.pcap> <out.pcap>   restore ZipLine frames
//   zipline_pcap demo                          generate, encode, decode,
//                                              verify and report
//
// The whole replay is three io backends around one node:
//
//   io::PcapSource -> zipline::Node -> io::PcapSink
//
// pumped by io::Runner burst by burst (memory constant in the trace
// size; the dictionary lives in the node, across bursts). Frames whose
// EtherType is not ZipLine's (or whose payload is not one chunk) pass
// through untouched, exactly as on the switch; the node's ordered drain
// keeps the output capture in input order, and the ordered resolve
// sequencing makes the compressed trace replayable: decoding it (with
// this tool or a one-table switch) rebuilds the identical dictionary.
//
// Build & run:  ./examples/zipline_pcap demo

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/hexdump.hpp"
#include "io/node.hpp"
#include "io/pcap_io.hpp"
#include "io/runner.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace zipline;

struct PcapRunStats {
  std::uint64_t frames = 0;
  std::uint64_t processed = 0;  ///< frames that went through the node
  std::uint64_t payload_in = 0;
  std::uint64_t payload_out = 0;
  std::uint64_t dictionary_bases = 0;
  std::size_t workers = 0;
};

NodeOptions node_options(io::Direction direction, const gd::GdParams& params) {
  return NodeOptions{}
      .with_direction(direction)
      .with_params(params)
      .with_workers(std::max(2u, std::thread::hardware_concurrency()))
      .with_shared_dictionary()
      .with_steering(engine::FlowSteering::load_aware)
      .with_work_stealing(true);
}

PcapRunStats run_pcap(const std::string& in_path, const std::string& out_path,
                      bool encode) {
  const gd::GdParams params;  // the paper's deployment parameters
  const io::Direction direction =
      encode ? io::Direction::encode : io::Direction::decode;

  io::PcapSourceOptions source_options;
  source_options.direction = direction;
  source_options.params = params;
  source_options.flow_key = io::FlowKey::mac_pair;
  io::PcapSource source(in_path, source_options);
  io::PcapSink sink(out_path);
  Node node(node_options(direction, params));

  io::Runner runner;
  const io::RunnerStats run = runner.run(source, node, sink);
  const io::NodeStats stats = node.stats();

  PcapRunStats result;
  result.frames = run.packets_in;
  result.processed = stats.units;
  result.payload_in = run.payload_bytes_in;
  result.payload_out = run.payload_bytes_out;
  result.dictionary_bases = stats.dictionary_bases;
  result.workers = stats.workers;
  return result;
}

int demo() {
  const std::string dir = std::string("/tmp");
  const std::string raw = dir + "/zipline_demo_raw.pcap";
  const std::string enc = dir + "/zipline_demo_encoded.pcap";
  const std::string dec = dir + "/zipline_demo_decoded.pcap";

  trace::SyntheticSensorConfig config;
  config.chunk_count = 50000;
  const auto payloads = trace::generate_synthetic_sensor(config);
  trace::write_payloads_pcap(raw, payloads, 10000.0);
  std::printf("wrote %zu-frame trace: %s\n", payloads.size(), raw.c_str());

  const auto enc_stats = run_pcap(raw, enc, /*encode=*/true);
  std::printf("encode: payload %s -> %s (ratio %.3f) on %zu workers,"
              " shared dictionary holds %llu bases\n",
              format_size(static_cast<double>(enc_stats.payload_in)).c_str(),
              format_size(static_cast<double>(enc_stats.payload_out)).c_str(),
              static_cast<double>(enc_stats.payload_out) /
                  static_cast<double>(enc_stats.payload_in),
              enc_stats.workers,
              static_cast<unsigned long long>(enc_stats.dictionary_bases));

  const auto dec_stats = run_pcap(enc, dec, /*encode=*/false);
  std::printf("decode: payload %s -> %s, mirrored dictionary holds %llu"
              " bases\n",
              format_size(static_cast<double>(dec_stats.payload_in)).c_str(),
              format_size(static_cast<double>(dec_stats.payload_out)).c_str(),
              static_cast<unsigned long long>(dec_stats.dictionary_bases));

  // Verify the decoded trace matches the original chunks.
  const auto decoded = trace::read_payloads_pcap(dec);
  if (decoded.size() != payloads.size()) {
    std::printf("FRAME COUNT MISMATCH\n");
    return 1;
  }
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (!std::equal(payloads[i].begin(), payloads[i].end(),
                    decoded[i].begin())) {
      std::printf("PAYLOAD MISMATCH at frame %zu\n", i);
      return 1;
    }
  }
  std::printf("verified: all %zu frames decoded bit-exactly\n",
              decoded.size());
  std::remove(raw.c_str());
  std::remove(enc.c_str());
  std::remove(dec.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "demo") == 0) {
    return demo();
  }
  if (argc != 4 || (std::strcmp(argv[1], "encode") != 0 &&
                    std::strcmp(argv[1], "decode") != 0)) {
    std::fprintf(stderr,
                 "usage: zipline_pcap encode <in.pcap> <out.pcap>\n"
                 "       zipline_pcap decode <in.pcap> <out.pcap>\n"
                 "       zipline_pcap demo\n");
    return 2;
  }
  try {
    const auto stats =
        run_pcap(argv[2], argv[3], std::strcmp(argv[1], "encode") == 0);
    std::printf("%llu frames (%llu transformed), payload %llu -> %llu"
                " bytes, %llu dictionary bases\n",
                static_cast<unsigned long long>(stats.frames),
                static_cast<unsigned long long>(stats.processed),
                static_cast<unsigned long long>(stats.payload_in),
                static_cast<unsigned long long>(stats.payload_out),
                static_cast<unsigned long long>(stats.dictionary_bases));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "zipline_pcap: %s\n", e.what());
    return 1;
  }
  return 0;
}
