// gdzip: a command-line file compressor built on the GD stream container —
// the file-compression use of generalized deduplication from the line of
// work the paper builds on (refs [35, 37]).
//
//   gdzip c <input> <output.gdz>    compress
//   gdzip d <input.gdz> <output>    decompress
//   gdzip demo                      run on a generated sensor dataset and
//                                   compare against the gzip baseline
//
// Build & run:  ./examples/gdzip demo

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baseline/deflate.hpp"
#include "common/hexdump.hpp"
#include "gd/stream.hpp"
#include "io/node.hpp"
#include "io/runner.hpp"
#include "io/trace_source.hpp"
#include "trace/synthetic.hpp"

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "gdzip: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "gdzip: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

int demo() {
  using namespace zipline;
  std::printf("generating 1,000,000 sensor readings (32 MB)...\n");
  trace::SyntheticSensorConfig config;
  config.chunk_count = 1000000;
  const auto payloads = trace::generate_synthetic_sensor(config);
  const auto data = trace::concatenate(payloads);

  gd::StreamStats stats;
  const auto gdz = gd::gd_stream_compress(data, gd::stream_default_params(),
                                          &stats);
  const auto gz = baseline::gzip_compress(data);

  // The same readings as network traffic: one packet per reading through
  // a serial zipline::Node (the wire path zipline_pcap runs multi-core),
  // counting what would leave the middlebox. Same codec, no container
  // framing — this is the in-network view of the file above.
  io::TraceSource source(payloads);
  io::CountingBurstSink wire;
  Node node(NodeOptions{}.with_params(gd::stream_default_params()));
  io::Runner runner;
  const io::RunnerStats wire_run = runner.run(source, node, wire);

  std::printf("\n%-12s %14s %8s\n", "format", "size", "ratio");
  std::printf("%-12s %14s %8.3f\n", "original",
              format_size(static_cast<double>(data.size())).c_str(), 1.0);
  std::printf("%-12s %14s %8.3f  (%llu bases learned)\n", "gdz",
              format_size(static_cast<double>(gdz.size())).c_str(),
              stats.ratio(),
              static_cast<unsigned long long>(stats.uncompressed_packets));
  std::printf("%-12s %14s %8.3f  (wire path: %llu of %llu packets"
              " compressed)\n",
              "node (wire)",
              format_size(static_cast<double>(wire.payload_bytes)).c_str(),
              static_cast<double>(wire_run.payload_bytes_out) /
                  static_cast<double>(wire_run.payload_bytes_in),
              static_cast<unsigned long long>(wire.compressed),
              static_cast<unsigned long long>(wire.packets));
  std::printf("%-12s %14s %8.3f\n", "gzip",
              format_size(static_cast<double>(gz.size())).c_str(),
              static_cast<double>(gz.size()) /
                  static_cast<double>(data.size()));

  std::printf("\nverifying gdz round trip... ");
  if (gd::gd_stream_decompress(gdz) != data) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("bit-exact.\n");
  std::printf("\nGD's edge here is chunk-level random access and O(1)"
              " memory per chunk;\ngzip needs its full window. On"
              " general-purpose files gzip wins — GD is a\nstructured-data"
              " compressor, not a DEFLATE replacement.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zipline;
  if (argc == 2 && std::strcmp(argv[1], "demo") == 0) {
    return demo();
  }
  if (argc != 4 || (std::strcmp(argv[1], "c") != 0 &&
                    std::strcmp(argv[1], "d") != 0)) {
    std::fprintf(stderr,
                 "usage: gdzip c <input> <output.gdz>\n"
                 "       gdzip d <input.gdz> <output>\n"
                 "       gdzip demo\n");
    return 2;
  }
  const auto input = read_file(argv[2]);
  if (std::strcmp(argv[1], "c") == 0) {
    gd::StreamStats stats;
    const auto out =
        gd::gd_stream_compress(input, gd::stream_default_params(), &stats);
    write_file(argv[3], out);
    std::printf("%zu -> %zu bytes (ratio %.3f, %llu chunks, %llu bases)\n",
                input.size(), out.size(), stats.ratio(),
                static_cast<unsigned long long>(stats.chunks),
                static_cast<unsigned long long>(stats.uncompressed_packets));
  } else {
    try {
      const auto out = gd::gd_stream_decompress(input);
      write_file(argv[3], out);
      std::printf("%zu -> %zu bytes\n", input.size(), out.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gdzip: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
