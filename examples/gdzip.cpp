// gdzip: a command-line file compressor built on the GD stream container —
// the file-compression use of generalized deduplication from the line of
// work the paper builds on (refs [35, 37]).
//
//   gdzip c <input> <output.gdz>    compress
//   gdzip d <input.gdz> <output>    decompress
//   gdzip demo                      run on a generated sensor dataset and
//                                   compare against the gzip baseline
//
// Build & run:  ./examples/gdzip demo

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baseline/deflate.hpp"
#include "common/hexdump.hpp"
#include "gd/stream.hpp"
#include "trace/synthetic.hpp"

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "gdzip: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "gdzip: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

int demo() {
  using namespace zipline;
  std::printf("generating 1,000,000 sensor readings (32 MB)...\n");
  trace::SyntheticSensorConfig config;
  config.chunk_count = 1000000;
  const auto data = trace::concatenate(generate_synthetic_sensor(config));

  gd::StreamStats stats;
  const auto gdz = gd::gd_stream_compress(data, gd::stream_default_params(),
                                          &stats);
  const auto gz = baseline::gzip_compress(data);

  std::printf("\n%-12s %14s %8s\n", "format", "size", "ratio");
  std::printf("%-12s %14s %8.3f\n", "original",
              format_size(static_cast<double>(data.size())).c_str(), 1.0);
  std::printf("%-12s %14s %8.3f  (%llu bases learned)\n", "gdz",
              format_size(static_cast<double>(gdz.size())).c_str(),
              stats.ratio(),
              static_cast<unsigned long long>(stats.uncompressed_packets));
  std::printf("%-12s %14s %8.3f\n", "gzip",
              format_size(static_cast<double>(gz.size())).c_str(),
              static_cast<double>(gz.size()) /
                  static_cast<double>(data.size()));

  std::printf("\nverifying gdz round trip... ");
  if (gd::gd_stream_decompress(gdz) != data) {
    std::printf("FAILED\n");
    return 1;
  }
  std::printf("bit-exact.\n");
  std::printf("\nGD's edge here is chunk-level random access and O(1)"
              " memory per chunk;\ngzip needs its full window. On"
              " general-purpose files gzip wins — GD is a\nstructured-data"
              " compressor, not a DEFLATE replacement.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zipline;
  if (argc == 2 && std::strcmp(argv[1], "demo") == 0) {
    return demo();
  }
  if (argc != 4 || (std::strcmp(argv[1], "c") != 0 &&
                    std::strcmp(argv[1], "d") != 0)) {
    std::fprintf(stderr,
                 "usage: gdzip c <input> <output.gdz>\n"
                 "       gdzip d <input.gdz> <output>\n"
                 "       gdzip demo\n");
    return 2;
  }
  const auto input = read_file(argv[2]);
  if (std::strcmp(argv[1], "c") == 0) {
    gd::StreamStats stats;
    const auto out =
        gd::gd_stream_compress(input, gd::stream_default_params(), &stats);
    write_file(argv[3], out);
    std::printf("%zu -> %zu bytes (ratio %.3f, %llu chunks, %llu bases)\n",
                input.size(), out.size(), stats.ratio(),
                static_cast<unsigned long long>(stats.chunks),
                static_cast<unsigned long long>(stats.uncompressed_packets));
  } else {
    try {
      const auto out = gd::gd_stream_decompress(input);
      write_file(argv[3], out);
      std::printf("%zu -> %zu bytes\n", input.size(), out.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gdzip: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
