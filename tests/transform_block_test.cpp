// Byte-identity property suite for the block transform fast path: at
// every forced kernel level, GdTransform::forward_block must decompose a
// unit of chunks exactly like chunk-at-a-time forward(), and the staged
// inverse_block path must regenerate exactly the chunks inverse() does.
// The chunk-at-a-time path is the oracle — it predates the block kernels
// and is what GDZ1 byte-compatibility rests on.

#include "gd/transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace zipline {
namespace {

/// Every level this host can actually run (table_for clamps the rest).
std::vector<simd::KernelLevel> supported_levels() {
  std::vector<simd::KernelLevel> levels{simd::KernelLevel::scalar};
  for (const auto level :
       {simd::KernelLevel::sse42, simd::KernelLevel::neon,
        simd::KernelLevel::avx2, simd::KernelLevel::avx512}) {
    if (simd::supported(level)) levels.push_back(level);
  }
  return levels;
}

class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(simd::KernelLevel level)
      : previous_(simd::set_active_for_testing(level)) {}
  ~ScopedKernelLevel() { simd::set_active_for_testing(previous_); }

 private:
  simd::KernelLevel previous_;
};

/// The parameter matrix: byte-aligned chunk sizes around the word
/// boundaries, with excess widths of 1 bit, sub-word, and >64 bits (the
/// excess peel straddles plane words in the last case).
std::vector<gd::GdParams> parameter_matrix() {
  std::vector<gd::GdParams> out;
  const auto add = [&out](int m, std::size_t chunk_bits) {
    gd::GdParams p;
    p.m = m;
    p.chunk_bits = chunk_bits;
    p.id_bits = std::min<std::size_t>(8, p.k() - 1);  // validate: id_bits < k
    out.push_back(p);
  };
  add(3, 16);    // n=7, excess 9
  add(4, 24);    // n=15, excess 9
  add(6, 64);    // n=63, excess 1
  add(6, 128);   // n=63, excess 65 (straddles a plane word)
  add(8, 256);   // the paper deployment: n=255, excess 1
  add(8, 320);   // n=255, excess 65
  add(10, 1032); // n=1023: chunk rows wider than one AVX-512 vector
  return out;
}

TEST(TransformBlock, ForwardMatchesChunkAtATimeEverywhere) {
  for (const auto& params : parameter_matrix()) {
    const gd::GdTransform transform(params);
    const std::size_t chunk_bytes = params.chunk_bits / 8;
    Rng rng(0xF0CA ^ params.chunk_bits ^ static_cast<std::size_t>(params.m));
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
          std::size_t{16}}) {
      std::vector<std::uint8_t> payload(count * chunk_bytes);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      // Oracle: the per-chunk path at the scalar level.
      std::vector<gd::TransformedChunk> reference(count);
      {
        ScopedKernelLevel forced(simd::KernelLevel::scalar);
        for (std::size_t c = 0; c < count; ++c) {
          bits::BitVector chunk;
          chunk.assign_from_bytes(
              {payload.data() + c * chunk_bytes, chunk_bytes},
              params.chunk_bits);
          reference[c] = transform.forward(chunk);
        }
      }
      for (const auto level : supported_levels()) {
        ScopedKernelLevel forced(level);
        gd::TransformBlockScratch scratch;
        std::vector<gd::TransformedChunk> out(count);
        transform.forward_block(payload, count, out, scratch);
        for (std::size_t c = 0; c < count; ++c) {
          EXPECT_EQ(out[c].excess, reference[c].excess)
              << "level=" << simd::level_name(level) << " m=" << params.m
              << " chunk_bits=" << params.chunk_bits << " count=" << count
              << " chunk=" << c;
          EXPECT_EQ(out[c].basis, reference[c].basis)
              << "level=" << simd::level_name(level) << " m=" << params.m
              << " chunk_bits=" << params.chunk_bits << " count=" << count
              << " chunk=" << c;
          EXPECT_EQ(out[c].syndrome, reference[c].syndrome)
              << "level=" << simd::level_name(level) << " m=" << params.m
              << " chunk_bits=" << params.chunk_bits << " count=" << count
              << " chunk=" << c;
        }
      }
    }
  }
}

TEST(TransformBlock, InverseMatchesChunkAtATimeEverywhere) {
  for (const auto& params : parameter_matrix()) {
    const gd::GdTransform transform(params);
    const std::size_t n = params.n();
    Rng rng(0x1CE ^ params.chunk_bits ^ static_cast<std::size_t>(params.m));
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{13}}) {
      // Forward a random payload chunk-at-a-time to get valid
      // (excess, basis, syndrome) triples, then invert both ways.
      std::vector<gd::TransformedChunk> triples(count);
      std::vector<bits::BitVector> expected(count);
      {
        ScopedKernelLevel forced(simd::KernelLevel::scalar);
        for (std::size_t c = 0; c < count; ++c) {
          bits::BitVector chunk(params.chunk_bits);
          for (std::size_t i = 0; i < params.chunk_bits; ++i) {
            if (rng.next_bool(0.5)) chunk.set(i);
          }
          triples[c] = transform.forward(chunk);
          expected[c] = chunk;
        }
      }
      for (const auto level : supported_levels()) {
        ScopedKernelLevel forced(level);
        gd::TransformBlockScratch scratch;
        transform.inverse_block_reserve(count, scratch);
        for (std::size_t c = 0; c < count; ++c) {
          transform.inverse_block_stage(scratch, c, triples[c].basis,
                                        triples[c].syndrome);
        }
        transform.inverse_block_expand(scratch, count);
        bits::BitVector rebuilt;
        for (std::size_t c = 0; c < count; ++c) {
          rebuilt.assign_from_words(transform.chunk_row(scratch, c),
                                    params.chunk_bits);
          rebuilt.accumulate_shifted(triples[c].excess, n);
          EXPECT_EQ(rebuilt, expected[c])
              << "level=" << simd::level_name(level) << " m=" << params.m
              << " chunk_bits=" << params.chunk_bits << " count=" << count
              << " chunk=" << c;
        }
      }
    }
  }
}

TEST(TransformBlock, ScratchReuseAcrossDirectionsStaysClean) {
  // The engine reuses ONE scratch for forward and inverse blocks; a
  // forward pass stages full chunks (excess bits beyond the n-bit word)
  // into the plane, and inverse_block_reserve must scrub them so
  // chunk_row()'s zeros-above-n contract holds.
  gd::GdParams params;  // paper defaults: m=8, 256-bit chunks
  const gd::GdTransform transform(params);
  const std::size_t count = 6;
  const std::size_t chunk_bytes = params.chunk_bits / 8;
  std::vector<std::uint8_t> payload(count * chunk_bytes);
  for (auto& b : payload) b = 0xFF;  // excess bit set in every chunk
  gd::TransformBlockScratch scratch;
  std::vector<gd::TransformedChunk> fwd(count);
  transform.forward_block(payload, count, fwd, scratch);
  transform.inverse_block_reserve(count, scratch);
  for (std::size_t c = 0; c < count; ++c) {
    transform.inverse_block_stage(scratch, c, fwd[c].basis, fwd[c].syndrome);
  }
  transform.inverse_block_expand(scratch, count);
  bits::BitVector rebuilt;
  bits::BitVector original;
  for (std::size_t c = 0; c < count; ++c) {
    rebuilt.assign_from_words(transform.chunk_row(scratch, c),
                              params.chunk_bits);
    rebuilt.accumulate_shifted(fwd[c].excess, params.n());
    original.assign_from_bytes({payload.data() + c * chunk_bytes, chunk_bytes},
                               params.chunk_bits);
    EXPECT_EQ(rebuilt, original) << "chunk=" << c;
  }
}

}  // namespace
}  // namespace zipline
