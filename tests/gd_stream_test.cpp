// GD stream container tests: round-trips across data shapes, header
// validation, corruption detection, and ratio behaviour on the sensor
// workload versus incompressible data.
#include "gd/stream.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/synthetic.hpp"

namespace zipline::gd {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  return data;
}

TEST(GdStream, EmptyInput) {
  const auto container = gd_stream_compress({});
  EXPECT_TRUE(gd_stream_decompress(container).empty());
}

TEST(GdStream, RoundTripsArbitrarySizes) {
  Rng rng(1);
  for (const std::size_t size : {1u, 31u, 32u, 33u, 64u, 1000u, 40000u}) {
    const auto data = random_bytes(rng, size);
    const auto container = gd_stream_compress(data);
    EXPECT_EQ(gd_stream_decompress(container), data) << "size " << size;
  }
}

TEST(GdStream, SensorDataCompresses) {
  trace::SyntheticSensorConfig config;
  config.chunk_count = 20000;
  const auto data = trace::concatenate(generate_synthetic_sensor(config));
  StreamStats stats;
  const auto container = gd_stream_compress(data, stream_default_params(),
                                            &stats);
  EXPECT_EQ(gd_stream_decompress(container), data);
  // Mirrored learning: one uncompressed packet per basis, the rest 3 B.
  EXPECT_LT(stats.ratio(), 0.15);
  EXPECT_GT(stats.compressed_packets, 19000u);
}

TEST(GdStream, IncompressibleDataExpandsOnlySlightly) {
  Rng rng(2);
  const auto data = random_bytes(rng, 32000);  // 1000 random chunks
  StreamStats stats;
  const auto container =
      gd_stream_compress(data, stream_default_params(), &stats);
  EXPECT_EQ(gd_stream_decompress(container), data);
  // Every chunk is a fresh basis: 32 -> 33 B (type 2 + tag). Overhead
  // bounded by ~7% (tag + container header/trailer).
  EXPECT_LT(stats.ratio(), 1.07);
}

TEST(GdStream, NonDefaultParameters) {
  GdParams params = stream_default_params();
  params.m = 10;  // (1023, 1013), 128-byte chunks
  params.chunk_bits = 1024;
  Rng rng(3);
  // Repetitive data at the larger chunk size.
  std::vector<std::uint8_t> data;
  const auto base = random_bytes(rng, 128);
  for (int i = 0; i < 200; ++i) {
    data.insert(data.end(), base.begin(), base.end());
  }
  data.resize(data.size() + 17, 0xEE);  // ragged tail
  const auto container = gd_stream_compress(data, params);
  EXPECT_EQ(gd_stream_decompress(container), data);
}

TEST(GdStream, DetectsCorruption) {
  Rng rng(4);
  const auto data = random_bytes(rng, 5000);
  auto container = gd_stream_compress(data);
  // Body corruption -> CRC mismatch.
  auto corrupted = container;
  corrupted[container.size() / 2] ^= 0x10;
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  // Magic corruption.
  corrupted = container;
  corrupted[0] = 'X';
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  // Truncation.
  corrupted.assign(container.begin(),
                   container.begin() + static_cast<std::ptrdiff_t>(
                                           container.size() / 2));
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  // Bad header parameters.
  corrupted = container;
  corrupted[5] = 99;  // m = 99
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
}

TEST(GdStream, RejectsUnsupportedVersion) {
  auto container = gd_stream_compress({});
  container[4] = 9;
  EXPECT_THROW((void)gd_stream_decompress(container), std::runtime_error);
}

TEST(GdStream, ParallelCompressIsByteIdenticalToSerial) {
  Rng rng(77);
  std::vector<std::vector<std::uint8_t>> inputs;
  for (std::size_t i = 0; i < 9; ++i) {
    // Mixed sizes, including empty and non-chunk-aligned tails.
    inputs.push_back(random_bytes(rng, i * 333));
  }
  std::vector<std::span<const std::uint8_t>> views(inputs.begin(),
                                                   inputs.end());

  std::vector<StreamStats> stats;
  const auto containers = gd_stream_compress_parallel(
      views, stream_default_params(), /*workers=*/3, &stats);
  ASSERT_EQ(containers.size(), inputs.size());
  ASSERT_EQ(stats.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    StreamStats serial_stats;
    const auto serial =
        gd_stream_compress(inputs[i], stream_default_params(), &serial_stats);
    EXPECT_EQ(containers[i], serial) << "container " << i;
    EXPECT_EQ(stats[i].chunks, serial_stats.chunks);
    EXPECT_EQ(stats[i].compressed_packets, serial_stats.compressed_packets);
    EXPECT_EQ(stats[i].output_bytes, serial_stats.output_bytes);
  }
}

TEST(GdStream, ParallelDecompressRoundTrips) {
  Rng rng(78);
  std::vector<std::vector<std::uint8_t>> inputs;
  std::vector<std::vector<std::uint8_t>> containers;
  for (std::size_t i = 0; i < 7; ++i) {
    inputs.push_back(random_bytes(rng, 100 + i * 217));
    containers.push_back(gd_stream_compress(inputs[i]));
  }
  std::vector<std::span<const std::uint8_t>> views(containers.begin(),
                                                   containers.end());
  const auto outputs = gd_stream_decompress_parallel(views, /*workers=*/4);
  ASSERT_EQ(outputs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(outputs[i], inputs[i]) << "stream " << i;
  }
}

TEST(GdStream, ParallelDecompressSurfacesWorkerSideCorruption) {
  // The CRC/structural validation runs inside the workers; a corrupted
  // container must still surface as std::runtime_error on the caller.
  Rng rng(80);
  const auto good = gd_stream_compress(random_bytes(rng, 512));
  auto corrupted = good;
  corrupted[corrupted.size() / 2] ^= 0x20;
  const std::span<const std::uint8_t> views[] = {good, corrupted};
  EXPECT_THROW((void)gd_stream_decompress_parallel(views, 2),
               std::runtime_error);
}

TEST(GdStream, ParallelDecompressRejectsMixedParameters) {
  Rng rng(79);
  const auto a = gd_stream_compress(random_bytes(rng, 256));
  GdParams other = stream_default_params();
  other.id_bits = 8;
  const auto b = gd_stream_compress(random_bytes(rng, 256), other);
  const std::span<const std::uint8_t> views[] = {a, b};
  EXPECT_THROW((void)gd_stream_decompress_parallel(views, 2),
               std::runtime_error);
}

// --- container format v2: policy + shard count in the header --------------

// The policy byte and the shard count recorded in the v2 header drive the
// decoder's dictionary, so every policy × shard combination round-trips —
// including the ones whose identifier allocation diverges from LRU/1.
TEST(GdStream, RoundTripsEveryPolicyAndShardCount) {
  Rng rng(90);
  // Small id space (via m staying default but id_bits shrunk) so evictions
  // exercise each policy's allocator.
  GdParams params = stream_default_params();
  params.id_bits = 6;
  std::vector<std::uint8_t> data;
  const auto base = random_bytes(rng, 32);
  for (int i = 0; i < 300; ++i) {
    auto chunk = base;
    chunk[rng.next_below(chunk.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  for (const auto policy : {EvictionPolicy::lru, EvictionPolicy::fifo,
                            EvictionPolicy::random}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{8}}) {
      const auto container =
          gd_stream_compress(data, params, nullptr, policy, shards);
      // Header records what the encoder ran.
      EXPECT_EQ(container[9], static_cast<std::uint8_t>(policy));
      EXPECT_EQ(container[10], static_cast<std::uint8_t>(shards));
      EXPECT_EQ(gd_stream_decompress(container), data)
          << "policy " << static_cast<int>(policy) << " shards " << shards;
    }
  }
}

// A version-1 container (reserved byte zero, no shard byte) still decodes:
// LRU with a single shard is implied.
TEST(GdStream, DecodesVersion1Containers) {
  Rng rng(91);
  const auto data = random_bytes(rng, 3000);
  const auto v2 = gd_stream_compress(data);  // LRU, 1 shard
  // Rewrite the v2 header (11 bytes) as v1 (10 bytes: version 1, one zero
  // reserved byte, no shard count).
  std::vector<std::uint8_t> v1(v2.begin(), v2.end());
  v1[4] = 1;                                  // version
  v1[9] = 0;                                  // reserved (was policy = lru)
  v1.erase(v1.begin() + 10);                  // drop the shard byte
  EXPECT_EQ(gd_stream_decompress(v1), data);
}

TEST(GdStream, RejectsUnknownPolicyAndBadShardCount) {
  const auto container = gd_stream_compress({});
  auto corrupted = container;
  corrupted[9] = 7;  // no such eviction policy
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  corrupted = container;
  corrupted[10] = 0;  // zero shards
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  corrupted = container;
  corrupted[10] = 7;  // does not divide the 2^15 identifier space
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
}

TEST(GdStream, ParallelDecompressRejectsMixedPolicies) {
  Rng rng(92);
  const auto a = gd_stream_compress(random_bytes(rng, 256));
  const auto b = gd_stream_compress(random_bytes(rng, 256),
                                    stream_default_params(), nullptr,
                                    EvictionPolicy::fifo);
  const std::span<const std::uint8_t> views[] = {a, b};
  EXPECT_THROW((void)gd_stream_decompress_parallel(views, 2),
               std::runtime_error);
}

// --- shared-dictionary stream pools ---------------------------------------

// With one dictionary service across the pool, later streams compress
// against what earlier streams taught: identical inputs collapse to
// almost-nothing after the first stream — the cross-stream redundancy
// elimination a per-stream dictionary cannot express — and the set decodes
// back exactly through the mirrored shared pool.
TEST(GdStream, SharedPoolDeduplicatesAcrossStreams) {
  Rng rng(93);
  const auto shared_payload = random_bytes(rng, 6400);  // 200 chunks
  std::vector<std::vector<std::uint8_t>> inputs(4, shared_payload);
  std::vector<std::span<const std::uint8_t>> views(inputs.begin(),
                                                   inputs.end());

  StreamPoolOptions pool;
  pool.workers = 3;
  pool.shared_dictionary = true;
  std::vector<StreamStats> stats;
  const auto containers =
      gd_stream_compress_parallel(views, stream_default_params(), pool,
                                  &stats);
  ASSERT_EQ(containers.size(), inputs.size());
  ASSERT_EQ(stats.size(), inputs.size());
  // Stream 0 learns every basis (type 2); streams 1..3 are pure type 3.
  EXPECT_EQ(stats[0].uncompressed_packets, 200u);
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    EXPECT_EQ(stats[i].compressed_packets, 200u) << "stream " << i;
    EXPECT_LT(containers[i].size(), containers[0].size() / 5);
  }

  // Contrast: a private-dictionary pool re-learns per stream.
  std::vector<StreamStats> private_stats;
  const auto private_containers = gd_stream_compress_parallel(
      views, stream_default_params(), /*workers=*/3, &private_stats);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(private_stats[i].uncompressed_packets, 200u);
  }
  (void)private_containers;

  // The shared set round-trips through the mirrored shared decode pool.
  std::vector<std::span<const std::uint8_t>> container_views(
      containers.begin(), containers.end());
  const auto outputs = gd_stream_decompress_parallel(container_views, pool);
  ASSERT_EQ(outputs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(outputs[i], inputs[i]) << "stream " << i;
  }
}

// Mixed workloads through the shared pool: distinct streams with partial
// overlap and ragged tails still round-trip exactly, across policies.
TEST(GdStream, SharedPoolRoundTripsMixedStreams) {
  for (const auto policy : {EvictionPolicy::lru, EvictionPolicy::fifo,
                            EvictionPolicy::random}) {
    Rng rng(94 + static_cast<std::uint64_t>(policy));
    std::vector<std::vector<std::uint8_t>> inputs;
    const auto common = random_bytes(rng, 1600);
    for (std::size_t i = 0; i < 6; ++i) {
      auto data = random_bytes(rng, 300 + i * 217);
      data.insert(data.end(), common.begin(), common.end());
      inputs.push_back(std::move(data));
    }
    std::vector<std::span<const std::uint8_t>> views(inputs.begin(),
                                                     inputs.end());
    StreamPoolOptions pool;
    pool.workers = 4;
    pool.policy = policy;
    pool.dictionary_shards = 2;
    pool.shared_dictionary = true;
    const auto containers =
        gd_stream_compress_parallel(views, stream_default_params(), pool);
    std::vector<std::span<const std::uint8_t>> container_views(
        containers.begin(), containers.end());
    const auto outputs = gd_stream_decompress_parallel(container_views, pool);
    ASSERT_EQ(outputs.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(outputs[i], inputs[i])
          << "policy " << static_cast<int>(policy) << " stream " << i;
    }
  }
}

}  // namespace
}  // namespace zipline::gd
