// GD stream container tests: round-trips across data shapes, header
// validation, corruption detection, and ratio behaviour on the sensor
// workload versus incompressible data.
#include "gd/stream.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "trace/synthetic.hpp"

namespace zipline::gd {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  return data;
}

TEST(GdStream, EmptyInput) {
  const auto container = gd_stream_compress({});
  EXPECT_TRUE(gd_stream_decompress(container).empty());
}

TEST(GdStream, RoundTripsArbitrarySizes) {
  Rng rng(1);
  for (const std::size_t size : {1u, 31u, 32u, 33u, 64u, 1000u, 40000u}) {
    const auto data = random_bytes(rng, size);
    const auto container = gd_stream_compress(data);
    EXPECT_EQ(gd_stream_decompress(container), data) << "size " << size;
  }
}

TEST(GdStream, SensorDataCompresses) {
  trace::SyntheticSensorConfig config;
  config.chunk_count = 20000;
  const auto data = trace::concatenate(generate_synthetic_sensor(config));
  StreamStats stats;
  const auto container = gd_stream_compress(data, stream_default_params(),
                                            &stats);
  EXPECT_EQ(gd_stream_decompress(container), data);
  // Mirrored learning: one uncompressed packet per basis, the rest 3 B.
  EXPECT_LT(stats.ratio(), 0.15);
  EXPECT_GT(stats.compressed_packets, 19000u);
}

TEST(GdStream, IncompressibleDataExpandsOnlySlightly) {
  Rng rng(2);
  const auto data = random_bytes(rng, 32000);  // 1000 random chunks
  StreamStats stats;
  const auto container =
      gd_stream_compress(data, stream_default_params(), &stats);
  EXPECT_EQ(gd_stream_decompress(container), data);
  // Every chunk is a fresh basis: 32 -> 33 B (type 2 + tag). Overhead
  // bounded by ~7% (tag + container header/trailer).
  EXPECT_LT(stats.ratio(), 1.07);
}

TEST(GdStream, NonDefaultParameters) {
  GdParams params = stream_default_params();
  params.m = 10;  // (1023, 1013), 128-byte chunks
  params.chunk_bits = 1024;
  Rng rng(3);
  // Repetitive data at the larger chunk size.
  std::vector<std::uint8_t> data;
  const auto base = random_bytes(rng, 128);
  for (int i = 0; i < 200; ++i) {
    data.insert(data.end(), base.begin(), base.end());
  }
  data.resize(data.size() + 17, 0xEE);  // ragged tail
  const auto container = gd_stream_compress(data, params);
  EXPECT_EQ(gd_stream_decompress(container), data);
}

TEST(GdStream, DetectsCorruption) {
  Rng rng(4);
  const auto data = random_bytes(rng, 5000);
  auto container = gd_stream_compress(data);
  // Body corruption -> CRC mismatch.
  auto corrupted = container;
  corrupted[container.size() / 2] ^= 0x10;
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  // Magic corruption.
  corrupted = container;
  corrupted[0] = 'X';
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  // Truncation.
  corrupted.assign(container.begin(),
                   container.begin() + static_cast<std::ptrdiff_t>(
                                           container.size() / 2));
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
  // Bad header parameters.
  corrupted = container;
  corrupted[5] = 99;  // m = 99
  EXPECT_THROW((void)gd_stream_decompress(corrupted), std::runtime_error);
}

TEST(GdStream, RejectsUnsupportedVersion) {
  auto container = gd_stream_compress({});
  container[4] = 9;
  EXPECT_THROW((void)gd_stream_decompress(container), std::runtime_error);
}

}  // namespace
}  // namespace zipline::gd
