// Parallel pipeline correctness: with ordered drain, the worker pool's
// output must be byte-identical to running every flow through a
// single-threaded Engine in submission order — across all three eviction
// policies, dictionary shard counts {1, 2, 8} and several worker counts —
// and the parallel decode path must restore the exact original payloads.
#include "engine/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::engine {
namespace {

using gd::EvictionPolicy;
using gd::GdParams;

/// Value snapshot of an encoded batch (descriptors + arena bytes).
struct BatchImage {
  std::vector<PacketDesc> packets;
  std::vector<std::uint8_t> storage;

  static BatchImage of(const EncodeBatch& batch) {
    BatchImage image;
    image.packets.assign(batch.packets().begin(), batch.packets().end());
    image.storage.assign(batch.storage().begin(), batch.storage().end());
    return image;
  }

  friend bool operator==(const BatchImage& a, const BatchImage& b) {
    if (a.storage != b.storage || a.packets.size() != b.packets.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.packets.size(); ++i) {
      const PacketDesc& x = a.packets[i];
      const PacketDesc& y = b.packets[i];
      if (x.type != y.type || x.offset != y.offset || x.size != y.size ||
          x.syndrome != y.syndrome || x.basis_id != y.basis_id) {
        return false;
      }
    }
    return true;
  }
};

/// A submission schedule: interleaved (flow, payload) units with enough
/// redundancy for hits, misses and (with small dictionaries) evictions.
struct Schedule {
  std::vector<std::uint32_t> flows;
  std::vector<std::vector<std::uint8_t>> payloads;
};

Schedule make_schedule(Rng& rng, const GdParams& params, std::size_t units,
                       std::uint32_t flow_count) {
  Schedule schedule;
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  // Small per-flow pools so the same chunks recur within a flow.
  std::vector<std::vector<std::uint8_t>> pool;
  for (std::size_t i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  for (std::size_t u = 0; u < units; ++u) {
    schedule.flows.push_back(
        static_cast<std::uint32_t>(rng.next_below(flow_count)));
    const std::size_t chunks = 1 + rng.next_below(12);
    std::vector<std::uint8_t> payload;
    for (std::size_t c = 0; c < chunks; ++c) {
      auto chunk = pool[rng.next_below(pool.size())];
      if (rng.next_bool(0.4)) {
        chunk[rng.next_below(chunk.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      payload.insert(payload.end(), chunk.begin(), chunk.end());
    }
    if (rng.next_bool(0.3)) {
      for (std::size_t t = 0; t < 3 + rng.next_below(10); ++t) {
        payload.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
    }
    schedule.payloads.push_back(std::move(payload));
  }
  return schedule;
}

/// The serial reference: one single-threaded Engine per flow, units
/// processed in submission order.
std::vector<BatchImage> serial_reference(const GdParams& params,
                                         const ParallelOptions& options,
                                         const Schedule& schedule) {
  std::map<std::uint32_t, Engine> engines;
  std::vector<BatchImage> images;
  EncodeBatch batch;
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    const std::uint32_t flow = schedule.flows[u];
    auto it = engines.find(flow);
    if (it == engines.end()) {
      it = engines
               .emplace(std::piecewise_construct, std::forward_as_tuple(flow),
                        std::forward_as_tuple(params, options.policy,
                                              options.learn,
                                              options.dictionary_shards))
               .first;
    }
    batch.clear();
    it->second.encode_payload(schedule.payloads[u], batch);
    images.push_back(BatchImage::of(batch));
  }
  return images;
}

class ParallelProperty
    : public ::testing::TestWithParam<
          std::tuple<EvictionPolicy, std::size_t, std::size_t>> {};

// The acceptance property: ordered parallel output is byte-identical to
// the single-threaded engine, for every eviction policy, shard count and
// worker count.
TEST_P(ParallelProperty, OrderedDrainIsByteIdenticalToSerialEngine) {
  const auto [policy, shards, workers] = GetParam();
  GdParams params;
  params.id_bits = 4;  // 16 identifiers -> evictions under load
  ParallelOptions options;
  options.workers = workers;
  options.queue_depth = 4;  // small ring -> exercises backpressure
  options.dictionary_shards = shards;
  options.policy = policy;

  Rng rng(0xBEEF + static_cast<std::uint64_t>(policy) * 97 + shards * 13 +
          workers);
  const Schedule schedule = make_schedule(rng, params, 120, 6);
  const auto expected = serial_reference(params, options, schedule);

  std::vector<BatchImage> actual(schedule.flows.size());
  std::vector<bool> seen(schedule.flows.size(), false);
  std::uint64_t expected_seq = 0;
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit& unit) {
                            // Ordered drain: global submission order.
                            EXPECT_EQ(unit.seq, expected_seq++);
                            ASSERT_LT(unit.seq, actual.size());
                            EXPECT_FALSE(seen[unit.seq]);
                            seen[unit.seq] = true;
                            actual[unit.seq] = BatchImage::of(*unit.output);
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    encoder.submit(schedule.flows[u], schedule.payloads[u]);
  }
  encoder.flush();

  ASSERT_EQ(encoder.delivered(), schedule.flows.size());
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    ASSERT_TRUE(seen[u]);
    EXPECT_TRUE(actual[u] == expected[u])
        << "unit " << u << " (flow " << schedule.flows[u]
        << ") diverged from the serial engine";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesShardsWorkers, ParallelProperty,
    ::testing::Combine(::testing::Values(EvictionPolicy::lru,
                                         EvictionPolicy::fifo,
                                         EvictionPolicy::random),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

TEST(ParallelPipeline, EncodeDecodeRoundTripAcrossWorkers) {
  GdParams params;
  params.id_bits = 6;
  ParallelOptions options;
  options.workers = 3;
  options.queue_depth = 8;
  options.dictionary_shards = 2;

  Rng rng(0x70BE);
  const Schedule schedule = make_schedule(rng, params, 90, 5);

  // Encode in parallel, keeping a value copy of every encoded batch.
  std::vector<EncodeBatch> encoded(schedule.flows.size());
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit& unit) {
                            for (const PacketDesc& desc :
                                 unit.output->packets()) {
                              encoded[unit.seq].append(
                                  desc.type, desc.syndrome, desc.basis_id,
                                  unit.output->payload(desc));
                            }
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    encoder.submit(schedule.flows[u], schedule.payloads[u]);
  }
  encoder.flush();

  // Decode in parallel: same flow pinning, mirrored dictionaries replay.
  std::vector<std::vector<std::uint8_t>> decoded(schedule.flows.size());
  ParallelDecoder decoder(params, options,
                          [&](const ParallelDecoder::Unit& unit) {
                            const auto bytes = unit.output->bytes();
                            decoded[unit.seq].assign(bytes.begin(),
                                                     bytes.end());
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    decoder.submit(schedule.flows[u], &encoded[u]);
  }
  decoder.flush();

  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    EXPECT_EQ(decoded[u], schedule.payloads[u]) << "unit " << u;
  }
}

TEST(ParallelPipeline, UnorderedModeDeliversEveryUnitExactlyOnce) {
  GdParams params;
  ParallelOptions options;
  options.workers = 4;
  options.queue_depth = 2;
  options.ordered = false;

  Rng rng(0x0D0);
  const Schedule schedule = make_schedule(rng, params, 64, 8);
  std::vector<int> delivered(schedule.flows.size(), 0);
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit& unit) {
                            ASSERT_LT(unit.seq, delivered.size());
                            ++delivered[unit.seq];
                            EXPECT_EQ(unit.flow, schedule.flows[unit.seq]);
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    encoder.submit(schedule.flows[u], schedule.payloads[u]);
  }
  encoder.flush();
  for (const int count : delivered) EXPECT_EQ(count, 1);
}

TEST(ParallelPipeline, StageExceptionsSurfaceAtFlushNotTerminate) {
  GdParams params;
  ParallelOptions options;
  options.workers = 2;

  // A compressed packet referencing an identifier nobody ever installed:
  // the decode stage hits a contract violation on the worker thread, which
  // must be ferried to the caller, not std::terminate the process.
  EncodeBatch poisoned;
  const std::vector<std::uint8_t> body(params.type3_payload_bytes(), 0);
  poisoned.append(gd::PacketType::compressed, 0, 0, body);

  Engine encoder{params};
  Rng rng(0xBAD);
  std::vector<std::uint8_t> payload(4 * params.raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  EncodeBatch healthy;
  encoder.encode_payload(payload, healthy);

  std::size_t delivered_ok = 0;
  ParallelDecoder decoder(params, options,
                          [&](const ParallelDecoder::Unit& unit) {
                            EXPECT_EQ(unit.flow, 1u);
                            ++delivered_ok;
                          });
  decoder.submit(/*flow=*/0, &poisoned);
  decoder.submit(/*flow=*/1, &healthy);  // other flow, other worker
  EXPECT_THROW(decoder.flush(), ContractViolation);
  // The failed unit is dropped; the healthy one still arrived, and the
  // pipeline stays usable afterwards.
  EXPECT_EQ(delivered_ok, 1u);
  EXPECT_EQ(decoder.delivered(), 2u);
  decoder.submit(/*flow=*/1, &healthy);
  decoder.flush();
  EXPECT_EQ(delivered_ok, 2u);
}

TEST(ParallelPipeline, ThrowingSinkLeavesPipelineConsistent) {
  GdParams params;
  ParallelOptions options;
  options.workers = 2;
  options.queue_depth = 2;

  Rng rng(0x51CC);
  std::vector<std::uint8_t> payload(4 * params.raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());

  std::size_t calls = 0;
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit& unit) {
                            if (unit.seq == 0) {
                              throw std::runtime_error("sink failure");
                            }
                            ++calls;
                          });
  encoder.submit(/*flow=*/0, payload);
  EXPECT_THROW(encoder.flush(), std::runtime_error);
  // The unit still counted as delivered and its slot was recycled, so the
  // pipeline keeps working (and the destructor will not hang).
  EXPECT_EQ(encoder.delivered(), 1u);
  encoder.submit(/*flow=*/0, payload);
  encoder.submit(/*flow=*/1, payload);
  encoder.flush();
  EXPECT_EQ(encoder.delivered(), 3u);
  EXPECT_EQ(calls, 2u);
}

TEST(ParallelPipeline, FlowStatsAggregateAcrossUnits) {
  GdParams params;
  ParallelOptions options;
  options.workers = 2;
  ParallelEncoder encoder(params, options, nullptr);

  Rng rng(0x57A7);
  std::vector<std::uint8_t> payload(8 * params.raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  encoder.submit(/*flow=*/7, payload);
  encoder.submit(/*flow=*/7, payload);
  encoder.flush();

  const EngineStats* stats = encoder.flow_stats(7);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->batches, 2u);
  EXPECT_EQ(stats->chunks, 16u);
  // Second pass over identical chunks: everything compresses.
  EXPECT_EQ(stats->compressed_packets, 8u);
  EXPECT_EQ(encoder.flow_stats(8), nullptr);
}

}  // namespace
}  // namespace zipline::engine
