// Tests of the ZipLine pipeline program: encode path (Fig. 1), decode path
// (Fig. 2), packet classification counters, and the equivalence of the
// switch data path with the reference GD codec.
#include "zipline/program.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "gd/codec.hpp"
#include "gd/transform.hpp"
#include "tofino/pipeline.hpp"

namespace zipline::prog {
namespace {

using bits::BitVector;

net::EthernetFrame chunk_frame(const std::vector<std::uint8_t>& payload) {
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::local(2);
  frame.src = net::MacAddress::local(1);
  frame.ether_type = 0x5A01;
  frame.payload = payload;
  return frame;
}

std::vector<std::uint8_t> random_chunk_bytes(Rng& rng, std::size_t bytes = 32) {
  std::vector<std::uint8_t> payload(bytes);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  return payload;
}

ZipLineConfig encode_config(LearningMode learning) {
  ZipLineConfig config;
  config.op = SwitchOp::encode;
  config.learning = learning;
  return config;
}

TEST(ZipLineProgram, EncodeUnknownBasisEmitsType2AndDigest) {
  auto program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::control_plane));
  tofino::SwitchModel sw("sw", program);
  Rng rng(1);
  const auto result = sw.process(chunk_frame(random_chunk_bytes(rng)), 1, 0);
  ASSERT_FALSE(result.dropped);
  EXPECT_EQ(result.frame.ether_type,
            gd::ether_type_for(gd::PacketType::uncompressed));
  EXPECT_EQ(result.frame.payload.size(), 33u);  // paper's padded type 2
  EXPECT_EQ(program->class_packets(PacketClass::raw_to_type2), 1u);
  EXPECT_FALSE(program->digests().empty());
}

TEST(ZipLineProgram, EncodeKnownBasisEmitsType3) {
  auto program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::control_plane));
  tofino::SwitchModel sw("sw", program);
  Rng rng(2);
  const auto payload = random_chunk_bytes(rng);
  // Compute the basis offline and install it, as the control plane would.
  const gd::GdTransform transform(program->config().params);
  const auto chunk = BitVector::from_bytes(payload, 256);
  program->install_mapping(77, transform.forward(chunk).basis, 0);

  const auto result = sw.process(chunk_frame(payload), 1, 0);
  ASSERT_FALSE(result.dropped);
  EXPECT_EQ(result.frame.ether_type,
            gd::ether_type_for(gd::PacketType::compressed));
  EXPECT_EQ(result.frame.payload.size(), 3u);  // 8 + 1 + 15 bits
  EXPECT_EQ(program->class_packets(PacketClass::raw_to_type3), 1u);
  // The identifier inside the packet is the installed one.
  const auto parsed = gd::GdPacket::parse(program->config().params,
                                          gd::PacketType::compressed,
                                          result.frame.payload);
  EXPECT_EQ(parsed.basis_id, 77u);
}

TEST(ZipLineProgram, NonChunkTrafficPassesThrough) {
  auto program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::control_plane));
  tofino::SwitchModel sw("sw", program);
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::local(2);
  frame.src = net::MacAddress::local(1);
  frame.ether_type = 0x0800;  // IPv4, not ZipLine traffic
  frame.payload.assign(100, 0xAB);
  const auto result = sw.process(frame, 1, 0);
  ASSERT_FALSE(result.dropped);
  EXPECT_EQ(result.frame.ether_type, 0x0800);
  EXPECT_EQ(result.frame.payload, frame.payload);
  EXPECT_EQ(program->class_packets(PacketClass::passthrough), 1u);
}

TEST(ZipLineProgram, MinFramePaddingIgnoredByParser) {
  // A 32 B chunk inside a padded 46 B payload (64 B minimum frame) must
  // encode exactly like the unpadded payload.
  auto program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::control_plane));
  tofino::SwitchModel sw("sw", program);
  Rng rng(3);
  auto payload = random_chunk_bytes(rng);
  auto padded = payload;
  padded.resize(46, 0);
  const auto result = sw.process(chunk_frame(padded), 1, 0);
  EXPECT_EQ(result.frame.ether_type,
            gd::ether_type_for(gd::PacketType::uncompressed));
  const auto parsed = gd::GdPacket::parse(program->config().params,
                                          gd::PacketType::uncompressed,
                                          result.frame.payload);
  const gd::GdTransform transform(program->config().params);
  const auto expected =
      transform.forward(BitVector::from_bytes(payload, 256));
  EXPECT_EQ(parsed.basis, expected.basis);
  EXPECT_EQ(parsed.syndrome, expected.syndrome);
}

TEST(ZipLineProgram, EncodeThenDecodeRestoresChunkExactly) {
  // Two programs: an encoder switch and a decoder switch, tables synced by
  // hand — the two-switch deployment of §5.
  ZipLineConfig enc_config = encode_config(LearningMode::control_plane);
  ZipLineConfig dec_config;
  dec_config.op = SwitchOp::decode;
  auto encoder = std::make_shared<ZipLineProgram>(enc_config);
  auto decoder = std::make_shared<ZipLineProgram>(dec_config);
  tofino::SwitchModel enc_sw("enc", encoder);
  tofino::SwitchModel dec_sw("dec", decoder);

  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const auto payload = random_chunk_bytes(rng);
    const auto enc_result = enc_sw.process(chunk_frame(payload), 1, trial);
    ASSERT_FALSE(enc_result.dropped);
    const auto dec_result =
        dec_sw.process(enc_result.frame, 1, trial);
    ASSERT_FALSE(dec_result.dropped);
    EXPECT_EQ(dec_result.frame.ether_type,
              gd::ether_type_for(gd::PacketType::raw));
    EXPECT_EQ(dec_result.frame.payload, payload) << "trial " << trial;
  }
  EXPECT_EQ(decoder->class_packets(PacketClass::type2_to_raw), 200u);
}

TEST(ZipLineProgram, CompressedPathRoundTripsThroughBothTables) {
  ZipLineConfig enc_config = encode_config(LearningMode::control_plane);
  ZipLineConfig dec_config;
  dec_config.op = SwitchOp::decode;
  auto encoder = std::make_shared<ZipLineProgram>(enc_config);
  auto decoder = std::make_shared<ZipLineProgram>(dec_config);
  tofino::SwitchModel enc_sw("enc", encoder);
  tofino::SwitchModel dec_sw("dec", decoder);

  Rng rng(5);
  const auto payload = random_chunk_bytes(rng);
  const gd::GdTransform transform(enc_config.params);
  const auto basis =
      transform.forward(BitVector::from_bytes(payload, 256)).basis;
  // Two-phase install: decoder first, then encoder.
  decoder->install_decoder_mapping(5, basis, 0);
  encoder->install_encoder_mapping(5, basis, 0);

  // Noisy variants of the canonical payload all take the compressed path
  // and must all be restored exactly.
  const auto canonical = transform.inverse(
      transform.forward(BitVector::from_bytes(payload, 256)).excess, basis, 0);
  for (int trial = 0; trial < 100; ++trial) {
    BitVector noisy = canonical;
    noisy.flip(rng.next_below(255));
    const auto enc_result =
        enc_sw.process(chunk_frame(noisy.to_bytes()), 1, trial);
    EXPECT_EQ(enc_result.frame.ether_type,
              gd::ether_type_for(gd::PacketType::compressed));
    const auto dec_result = dec_sw.process(enc_result.frame, 1, trial);
    EXPECT_EQ(dec_result.frame.payload, noisy.to_bytes());
  }
  EXPECT_EQ(decoder->class_packets(PacketClass::type3_to_raw), 100u);
}

TEST(ZipLineProgram, DecodeUnknownIdDropsAndCounts) {
  ZipLineConfig config;
  config.op = SwitchOp::decode;
  auto program = std::make_shared<ZipLineProgram>(config);
  tofino::SwitchModel sw("sw", program);
  const auto pkt = gd::GdPacket::make_compressed(1, BitVector(1), 123);
  net::EthernetFrame frame;
  frame.ether_type = gd::ether_type_for(gd::PacketType::compressed);
  frame.payload = pkt.serialize(config.params);
  const auto result = sw.process(frame, 1, 0);
  EXPECT_TRUE(result.dropped);
  EXPECT_EQ(program->class_packets(PacketClass::decode_unknown_id), 1u);
}

TEST(ZipLineProgram, RegisterLearningIsInstant) {
  // The paper's abandoned data-plane design (§6): the second packet with
  // the same basis already compresses — no control-plane delay.
  auto program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::data_plane));
  tofino::SwitchModel sw("sw", program);
  Rng rng(6);
  const auto payload = random_chunk_bytes(rng);
  const auto first = sw.process(chunk_frame(payload), 1, 0);
  EXPECT_EQ(first.frame.ether_type,
            gd::ether_type_for(gd::PacketType::uncompressed));
  const auto second = sw.process(chunk_frame(payload), 1, 1);
  EXPECT_EQ(second.frame.ether_type,
            gd::ether_type_for(gd::PacketType::compressed));
  // No digests in the register design.
  EXPECT_TRUE(program->digests().empty());
}

TEST(ZipLineProgram, RegisterLearningDecodesViaSharedHashSlots) {
  auto encoder = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::data_plane));
  ZipLineConfig dec_config;
  dec_config.op = SwitchOp::decode;
  dec_config.learning = LearningMode::data_plane;
  auto decoder = std::make_shared<ZipLineProgram>(dec_config);
  tofino::SwitchModel enc_sw("enc", encoder);
  tofino::SwitchModel dec_sw("dec", decoder);
  Rng rng(7);
  const auto payload = random_chunk_bytes(rng);
  // First packet: type 2 teaches the decoder's registers.
  auto r = dec_sw.process(enc_sw.process(chunk_frame(payload), 1, 0).frame, 1, 0);
  EXPECT_EQ(r.frame.payload, payload);
  // Second packet: type 3 resolved from the decoder's registers.
  r = dec_sw.process(enc_sw.process(chunk_frame(payload), 1, 1).frame, 1, 1);
  EXPECT_EQ(r.frame.payload, payload);
  EXPECT_EQ(decoder->class_packets(PacketClass::type3_to_raw), 1u);
}

TEST(ZipLineProgram, StaticModeNeverEmitsDigests) {
  auto program =
      std::make_shared<ZipLineProgram>(encode_config(LearningMode::none));
  tofino::SwitchModel sw("sw", program);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    (void)sw.process(chunk_frame(random_chunk_bytes(rng)), 1, i);
  }
  EXPECT_TRUE(program->digests().empty());
  EXPECT_EQ(program->class_packets(PacketClass::raw_to_type2), 10u);
}

TEST(ZipLineProgram, MatchesReferenceCodecOnRandomStream) {
  // The switch data path and the host-side GdEncoder must produce
  // byte-identical packets given the same dictionary state.
  auto program =
      std::make_shared<ZipLineProgram>(encode_config(LearningMode::none));
  tofino::SwitchModel sw("sw", program);
  gd::GdEncoder reference{program->config().params, gd::EvictionPolicy::lru,
                          /*learn_on_miss=*/false};
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    const auto payload = random_chunk_bytes(rng);
    const auto result = sw.process(chunk_frame(payload), 1, trial);
    const auto expected =
        reference.encode_chunk(BitVector::from_bytes(payload, 256));
    EXPECT_EQ(result.frame.payload,
              expected.serialize(program->config().params));
  }
}

TEST(ZipLineProgram, BatchRunEncodesAndDecodesDescriptors) {
  // run_batch consumes engine batch descriptors directly: a staged batch
  // of raw chunks goes through the encode pipeline, its output batch
  // through the decode pipeline, and the final arena holds the original
  // chunks byte-for-byte.
  auto enc_program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::data_plane));
  ZipLineConfig dec_config;
  dec_config.op = SwitchOp::decode;
  dec_config.learning = LearningMode::data_plane;
  auto dec_program = std::make_shared<ZipLineProgram>(dec_config);
  tofino::SwitchModel enc_sw("enc", enc_program);
  tofino::SwitchModel dec_sw("dec", dec_program);

  Rng rng(42);
  engine::EncodeBatch staged;
  std::vector<std::vector<std::uint8_t>> originals;
  for (int i = 0; i < 32; ++i) {
    // Repeat chunks so the register-learning path produces both type-2
    // and type-3 packets within one batch.
    if (i >= 8 && rng.next_bool(0.5)) {
      originals.push_back(originals[rng.next_below(originals.size())]);
    } else {
      originals.push_back(random_chunk_bytes(rng));
    }
    staged.append(gd::PacketType::raw, 0, 0, originals.back());
  }

  engine::EncodeBatch encoded;
  const auto enc_result = run_batch(enc_sw, staged, &encoded, 1);
  EXPECT_EQ(enc_result.forwarded, 32u);
  EXPECT_EQ(enc_result.dropped, 0u);
  ASSERT_EQ(encoded.size(), 32u);
  std::uint64_t compressed = 0;
  for (const engine::PacketDesc& desc : encoded.packets()) {
    EXPECT_NE(desc.type, gd::PacketType::raw);
    if (desc.type == gd::PacketType::compressed) ++compressed;
  }
  EXPECT_GT(compressed, 0u);

  engine::EncodeBatch decoded;
  const auto dec_result = run_batch(dec_sw, encoded, &decoded, 1);
  EXPECT_EQ(dec_result.forwarded, 32u);
  ASSERT_EQ(decoded.size(), 32u);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded.packet(i).type, gd::PacketType::raw);
    const auto view = decoded.payload(i);
    ASSERT_EQ(view.size(), originals[i].size());
    EXPECT_TRUE(std::equal(view.begin(), view.end(), originals[i].begin()));
  }
}

TEST(ZipLineProgram, ForwardOpTouchesNothing) {
  ZipLineConfig config;
  config.op = SwitchOp::forward;
  auto program = std::make_shared<ZipLineProgram>(config);
  tofino::SwitchModel sw("sw", program);
  Rng rng(10);
  const auto payload = random_chunk_bytes(rng);
  const auto result = sw.process(chunk_frame(payload), 1, 0);
  EXPECT_EQ(result.frame.ether_type, 0x5A01);
  EXPECT_EQ(result.frame.payload, payload);
}

TEST(ZipLineProgram, UnknownIngressPortDrops) {
  auto program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::control_plane));
  tofino::SwitchModel sw("sw", program);
  Rng rng(11);
  const auto result = sw.process(chunk_frame(random_chunk_bytes(rng)), 9, 0);
  EXPECT_TRUE(result.dropped);
}

TEST(ZipLineProgram, ResourceReportMentionsTables) {
  auto program = std::make_shared<ZipLineProgram>(
      encode_config(LearningMode::control_plane));
  const std::string report = program->resource_report();
  EXPECT_NE(report.find("mask table"), std::string::npos);
  EXPECT_NE(report.find("basis table"), std::string::npos);
  EXPECT_NE(report.find("type-2 padding"), std::string::npos);
}

}  // namespace
}  // namespace zipline::prog
