// Kernel-parity suite for zipline::simd: every dispatch level must be
// byte-identical to the scalar reference — for the raw kernels, for the
// BitWriter/BitReader paths built on them, and for SyndromeCrc::compute
// against the bit-serial oracle. CI runs this binary once per forced
// ZIPLINE_SIMD level on top of the in-process level sweep below.

#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitio.hpp"
#include "common/bitvector.hpp"
#include "common/rng.hpp"
#include "crc/syndrome_crc.hpp"

namespace zipline {
namespace {

/// Every level this host can actually run (scalar always; vector tiers
/// when the probe admits them). table_for clamps, so unsupported names
/// are still exercised through ResolutionClamps below.
std::vector<simd::KernelLevel> supported_levels() {
  std::vector<simd::KernelLevel> levels{simd::KernelLevel::scalar};
  for (const auto level :
       {simd::KernelLevel::sse42, simd::KernelLevel::neon,
        simd::KernelLevel::avx2, simd::KernelLevel::avx512}) {
    if (simd::supported(level)) levels.push_back(level);
  }
  return levels;
}

/// RAII forced dispatch level, restoring the previous one on scope exit.
class ScopedKernelLevel {
 public:
  explicit ScopedKernelLevel(simd::KernelLevel level)
      : previous_(simd::set_active_for_testing(level)) {}
  ~ScopedKernelLevel() { simd::set_active_for_testing(previous_); }

 private:
  simd::KernelLevel previous_;
};

bits::BitVector random_bits(Rng& rng, std::size_t n) {
  bits::BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

TEST(SimdDispatch, NamesRoundTrip) {
  for (const auto level :
       {simd::KernelLevel::scalar, simd::KernelLevel::sse42,
        simd::KernelLevel::neon, simd::KernelLevel::avx2,
        simd::KernelLevel::avx512}) {
    const auto parsed = simd::parse_level(simd::level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(simd::parse_level("AVX2").has_value());
  EXPECT_FALSE(simd::parse_level("").has_value());
  EXPECT_FALSE(simd::parse_level("sse").has_value());
}

TEST(SimdDispatch, ResolutionClamps) {
  // The probe result is by definition supported, and every table_for
  // request lands on a supported level at or below the request.
  EXPECT_TRUE(simd::supported(simd::probe()));
  for (const auto level :
       {simd::KernelLevel::scalar, simd::KernelLevel::sse42,
        simd::KernelLevel::neon, simd::KernelLevel::avx2,
        simd::KernelLevel::avx512}) {
    const simd::KernelTable& table = simd::table_for(level);
    EXPECT_TRUE(simd::supported(table.level));
    if (simd::supported(level)) {
      EXPECT_EQ(table.level, level);
    }
  }
  // The active table is one of the supported ones (env override already
  // applied by the time this runs; CI forces each name in turn).
  EXPECT_TRUE(simd::supported(simd::level()));
}

TEST(SimdKernel, CrcFoldParity) {
  Rng rng(0xC0FFEE);
  for (const std::size_t groups : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{3},
                                   std::size_t{4}, std::size_t{7},
                                   std::size_t{16}, std::size_t{33}}) {
    std::vector<std::array<std::uint32_t, 256>> tables(8 * groups);
    for (auto& table : tables) {
      for (auto& entry : table) {
        entry = static_cast<std::uint32_t>(rng.next_u64());
      }
    }
    std::vector<std::uint64_t> words(groups == 0 ? 1 : groups);
    for (auto& w : words) w = rng.next_u64();
    const std::uint32_t reference =
        simd::table_for(simd::KernelLevel::scalar)
            .crc_fold(tables.data(), words.data(), groups);
    for (const auto level : supported_levels()) {
      EXPECT_EQ(simd::table_for(level).crc_fold(tables.data(), words.data(),
                                                groups),
                reference)
          << "level=" << simd::level_name(level) << " groups=" << groups;
    }
  }
}

TEST(SimdDispatch, RequestedAndSlotLevelsCoherent) {
  // requested() is what was asked for; level() is post-clamp, so it can
  // only be <= the request. Every slot level reports a tier at or below
  // the table's headline level (slots without an implementation at the
  // headline tier fall back to a lower one, never up).
  EXPECT_LE(static_cast<int>(simd::level()),
            static_cast<int>(simd::requested()));
  const simd::KernelTable& table = simd::active();
  for (std::size_t slot = 0; slot < simd::kKernelSlotCount; ++slot) {
    EXPECT_LE(static_cast<int>(table.slot_levels[slot]),
              static_cast<int>(table.level))
        << "slot=" << simd::kernel_slot_name(
               static_cast<simd::KernelSlot>(slot));
  }
  // Forcing a level records it as the request too.
  {
    ScopedKernelLevel forced(simd::KernelLevel::scalar);
    EXPECT_EQ(simd::level(), simd::KernelLevel::scalar);
    EXPECT_EQ(simd::requested(), simd::KernelLevel::scalar);
  }
}

TEST(SimdKernel, CrcFoldMultiParity) {
  Rng rng(0xFADED);
  for (const std::size_t groups :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{7}}) {
    std::vector<std::array<std::uint32_t, 256>> tables(8 * groups);
    for (auto& table : tables) {
      for (auto& entry : table) {
        entry = static_cast<std::uint32_t>(rng.next_u64());
      }
    }
    for (const std::size_t count :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
          std::size_t{5}, std::size_t{8}, std::size_t{17}}) {
      // Rows wider than `groups` (the engine's chunk plane has excess
      // words past the fold region) plus vector-tier tail padding.
      const std::size_t stride = groups + 2;
      std::vector<std::uint64_t> plane(count * stride + 8);
      for (auto& w : plane) w = rng.next_u64();
      std::vector<std::uint32_t> reference(count + 1, 0xDEADBEEF);
      simd::table_for(simd::KernelLevel::scalar)
          .crc_fold_multi(tables.data(), plane.data(), stride, groups,
                          reference.data(), count);
      // The multi-stream fold IS count serial folds.
      for (std::size_t c = 0; c < count; ++c) {
        EXPECT_EQ(reference[c],
                  simd::table_for(simd::KernelLevel::scalar)
                      .crc_fold(tables.data(), plane.data() + c * stride,
                                groups))
            << "groups=" << groups << " row=" << c;
      }
      for (const auto level : supported_levels()) {
        std::vector<std::uint32_t> out(count + 1, 0xDEADBEEF);
        simd::table_for(level).crc_fold_multi(tables.data(), plane.data(),
                                              stride, groups, out.data(),
                                              count);
        EXPECT_EQ(out, reference)
            << "level=" << simd::level_name(level) << " groups=" << groups
            << " count=" << count;
      }
    }
  }
}

TEST(SimdKernel, BlockShiftParity) {
  Rng rng(0xB10C);
  const simd::KernelTable& scalar = simd::table_for(simd::KernelLevel::scalar);
  for (const auto& [src_words, dst_words] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {2, 2}, {3, 3}, {4, 4}, {4, 3}, {3, 4}, {8, 8},
           {8, 7}, {7, 8}, {10, 10}, {12, 9}}) {  // >8 words: scalar fallback
    for (const unsigned shift : {1u, 3u, 8u, 15u, 31u, 63u}) {
      for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                      std::size_t{5}, std::size_t{9}}) {
        const std::size_t src_stride = src_words + 1;
        const std::size_t dst_stride = dst_words + 2;
        const std::uint64_t top_mask =
            rng.next_u64() | (std::uint64_t{1} << 63);  // keep it non-trivial
        std::vector<std::uint64_t> src(count * src_stride + 8);
        for (auto& w : src) w = rng.next_u64();
        std::vector<std::uint64_t> ref_shr(count * dst_stride + 8, 0x55);
        std::vector<std::uint64_t> ref_shl(count * dst_stride + 8, 0x55);
        scalar.block_shr(ref_shr.data(), dst_stride, src.data(), src_stride,
                         count, shift, src_words, dst_words, top_mask);
        scalar.block_shl(ref_shl.data(), dst_stride, src.data(), src_stride,
                         count, shift, src_words, dst_words, top_mask);
        for (const auto level : supported_levels()) {
          const simd::KernelTable& table = simd::table_for(level);
          std::vector<std::uint64_t> out(count * dst_stride + 8, 0x55);
          table.block_shr(out.data(), dst_stride, src.data(), src_stride,
                          count, shift, src_words, dst_words, top_mask);
          for (std::size_t c = 0; c < count; ++c) {
            for (std::size_t w = 0; w < dst_words; ++w) {
              EXPECT_EQ(out[c * dst_stride + w], ref_shr[c * dst_stride + w])
                  << "shr level=" << simd::level_name(level)
                  << " src_words=" << src_words << " dst_words=" << dst_words
                  << " shift=" << shift << " row=" << c << " word=" << w;
            }
          }
          std::fill(out.begin(), out.end(), 0x55);
          table.block_shl(out.data(), dst_stride, src.data(), src_stride,
                          count, shift, src_words, dst_words, top_mask);
          for (std::size_t c = 0; c < count; ++c) {
            for (std::size_t w = 0; w < dst_words; ++w) {
              EXPECT_EQ(out[c * dst_stride + w], ref_shl[c * dst_stride + w])
                  << "shl level=" << simd::level_name(level)
                  << " src_words=" << src_words << " dst_words=" << dst_words
                  << " shift=" << shift << " row=" << c << " word=" << w;
            }
          }
        }
      }
    }
  }
}

TEST(SimdKernel, PackUnpackParity) {
  Rng rng(0xBEEF);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{8}, std::size_t{9},
        std::size_t{16}, std::size_t{33}}) {
    std::vector<std::uint64_t> words(n == 0 ? 1 : n);
    for (auto& w : words) w = rng.next_u64();
    std::vector<std::uint8_t> reference(8 * n + 1, 0xA5);
    simd::table_for(simd::KernelLevel::scalar)
        .pack_words_be_rev(reference.data(), words.data(), n);
    for (const auto level : supported_levels()) {
      const simd::KernelTable& table = simd::table_for(level);
      std::vector<std::uint8_t> packed(8 * n + 1, 0xA5);
      table.pack_words_be_rev(packed.data(), words.data(), n);
      EXPECT_EQ(packed, reference) << "level=" << simd::level_name(level)
                                   << " n=" << n;
      // Round trip through the mirrored unpack restores the exact words.
      std::vector<std::uint64_t> unpacked(n == 0 ? 1 : n, 0);
      table.unpack_words_be_rev(unpacked.data(), packed.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(unpacked[i], words[i])
            << "level=" << simd::level_name(level) << " n=" << n
            << " word=" << i;
      }
    }
  }
}

TEST(SimdKernel, SyndromeCrcMatchesSlowAtEveryLevel) {
  for (const auto& [poly, n] :
       std::vector<std::pair<std::uint64_t, std::size_t>>{
           {0x13, 15}, {0x11D, 15}, {0x11D, 255}, {0x11D, 1024}}) {
    const crc::Gf2Poly g(poly);
    const crc::SyndromeCrc engine(g, n);
    Rng rng(0x5EED ^ n);
    for (int trial = 0; trial < 32; ++trial) {
      const auto word = random_bits(rng, n);
      const std::uint32_t slow = crc::SyndromeCrc::compute_slow(g, word);
      for (const auto level : supported_levels()) {
        ScopedKernelLevel forced(level);
        EXPECT_EQ(engine.compute(word), slow)
            << "level=" << simd::level_name(level) << " n=" << n;
      }
    }
  }
}

// One randomized serialization script: a mix of write_uint fields (every
// width 1..64 over time), whole BitVectors (the basis/excess path),
// alignment and padding — the exact op set the engine's emit/parse loops
// use. The scalar level's byte stream is the oracle.
struct Script {
  struct Field {
    std::uint64_t value;
    std::size_t width;
  };
  std::vector<Field> fields;          // interleaved per step_kinds order
  std::vector<bits::BitVector> vectors;
  std::vector<std::size_t> paddings;
  std::vector<int> step_kinds;        // 0 = field, 1 = vector, 2 = align,
                                      // 3 = padding
};

Script random_script(std::uint64_t seed) {
  Rng rng(seed);
  Script script;
  const int steps = 20 + static_cast<int>(rng.next_below(40));
  for (int i = 0; i < steps; ++i) {
    const auto kind = rng.next_below(8);
    if (kind < 4) {
      const std::size_t width = 1 + rng.next_below(64);
      const std::uint64_t value =
          width == 64 ? rng.next_u64()
                      : rng.next_u64() & ((std::uint64_t{1} << width) - 1);
      script.fields.push_back({value, width});
      script.step_kinds.push_back(0);
    } else if (kind < 6) {
      // Sizes around the word boundaries and the 247-bit basis width,
      // so both the aligned bulk-kernel path and the straddling
      // word-at-a-time path run.
      const std::size_t size = 1 + rng.next_below(300);
      script.vectors.push_back(random_bits(rng, size));
      script.step_kinds.push_back(1);
    } else if (kind == 6) {
      script.step_kinds.push_back(2);
    } else {
      script.paddings.push_back(rng.next_below(70));
      script.step_kinds.push_back(3);
    }
  }
  return script;
}

void run_script(const Script& script, bits::BitWriter& w) {
  std::size_t field = 0;
  std::size_t vector = 0;
  std::size_t padding = 0;
  for (const int kind : script.step_kinds) {
    switch (kind) {
      case 0:
        w.write_uint(script.fields[field].value, script.fields[field].width);
        ++field;
        break;
      case 1:
        w.write_bits(script.vectors[vector++]);
        break;
      case 2:
        w.align_to_byte();
        break;
      default:
        w.write_padding(script.paddings[padding++]);
        break;
    }
  }
}

TEST(SimdKernel, BitWriterScriptParityAcrossLevels) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Script script = random_script(seed);
    std::vector<std::uint8_t> reference;
    std::size_t reference_bits = 0;
    {
      ScopedKernelLevel forced(simd::KernelLevel::scalar);
      bits::BitWriter w;
      run_script(script, w);
      reference = w.to_bytes();
      reference_bits = w.bit_count();
    }
    for (const auto level : supported_levels()) {
      ScopedKernelLevel forced(level);
      bits::BitWriter w;
      run_script(script, w);
      EXPECT_EQ(w.bit_count(), reference_bits)
          << "level=" << simd::level_name(level) << " seed=" << seed;
      EXPECT_EQ(w.to_bytes(), reference)
          << "level=" << simd::level_name(level) << " seed=" << seed;
    }
  }
}

TEST(SimdKernel, BitReaderRoundTripsScriptAtEveryLevel) {
  for (std::uint64_t seed = 25; seed <= 40; ++seed) {
    const Script script = random_script(seed);
    std::vector<std::uint8_t> bytes;
    {
      ScopedKernelLevel forced(simd::KernelLevel::scalar);
      bits::BitWriter w;
      run_script(script, w);
      bytes = w.to_bytes();
    }
    for (const auto level : supported_levels()) {
      ScopedKernelLevel forced(level);
      bits::BitReader r(bytes);
      std::size_t field = 0;
      std::size_t vector = 0;
      std::size_t padding = 0;
      std::size_t bit = 0;
      bits::BitVector scratch;
      for (const int kind : script.step_kinds) {
        switch (kind) {
          case 0: {
            const auto& f = script.fields[field++];
            EXPECT_EQ(r.read_uint(f.width), f.value)
                << "level=" << simd::level_name(level) << " seed=" << seed;
            bit += f.width;
            break;
          }
          case 1: {
            const auto& v = script.vectors[vector++];
            r.read_bits_into(v.size(), scratch);
            EXPECT_EQ(scratch, v)
                << "level=" << simd::level_name(level) << " seed=" << seed;
            bit += v.size();
            break;
          }
          case 2:
            r.skip((8 - bit % 8) % 8);
            bit += (8 - bit % 8) % 8;
            break;
          default: {
            const std::size_t count = script.paddings[padding++];
            r.skip(count);
            bit += count;
            break;
          }
        }
        EXPECT_EQ(r.bits_consumed(), bit);
      }
    }
  }
}

}  // namespace
}  // namespace zipline
