// Tests of the BCH(255, 239, t=2) extension (paper §8 future work):
// GF(2^8) arithmetic, generator construction, syndrome decoding, and the
// total/lossless GD transform built on an imperfect code.
#include "hamming/bch.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "hamming/gf256.hpp"
#include "hamming/hamming.hpp"

namespace zipline::hamming {
namespace {

using bits::BitVector;

TEST(Gf256, FieldAxiomsSpotChecks) {
  // alpha^255 = 1; alpha generates the whole multiplicative group.
  EXPECT_EQ(Gf256::alpha_pow(255), 1);
  EXPECT_EQ(Gf256::alpha_pow(0), 1);
  std::unordered_set<std::uint8_t> seen;
  for (int i = 0; i < 255; ++i) seen.insert(Gf256::alpha_pow(i));
  EXPECT_EQ(seen.size(), 255u);
  // Multiplication agrees with the log/exp identity and distributes.
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
              Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
  }
}

TEST(Gf256, InverseAndDivision) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(Gf256::mul(a, Gf256::inverse(a)), 1);
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(Gf256::mul(Gf256::div(a, b), b), a);
  }
  EXPECT_THROW((void)Gf256::inverse(0), ContractViolation);
  EXPECT_THROW((void)Gf256::div(1, 0), ContractViolation);
}

TEST(Gf256, PrimitivePolynomialIsItsOwnRoot) {
  // alpha is a root of x^8+x^4+x^3+x^2+1 by construction.
  EXPECT_EQ(Gf256::eval_poly_bits(0x11D, Gf256::alpha_pow(1)), 0);
  // alpha^3 is NOT a root of m1 (it has its own minimal polynomial).
  EXPECT_NE(Gf256::eval_poly_bits(0x11D, Gf256::alpha_pow(3)), 0);
}

TEST(Bch255, GeneratorProperties) {
  const Bch255 bch;
  EXPECT_EQ(bch.generator().degree(), 16);
  // g(alpha) = g(alpha^3) = 0: both minimal polynomials divide g.
  EXPECT_EQ(Gf256::eval_poly_bits(bch.generator().bits(), Gf256::alpha_pow(1)),
            0);
  EXPECT_EQ(Gf256::eval_poly_bits(bch.generator().bits(), Gf256::alpha_pow(3)),
            0);
  // Not primitive as a degree-16 polynomial (it is a product), but square
  // free and without the factor x.
  EXPECT_EQ(bch.generator().bits() & 1, 1u);
}

TEST(Bch255, EncodeProducesCodewords) {
  const Bch255 bch;
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector msg(Bch255::k);
    for (std::size_t i = 0; i < Bch255::k; ++i) {
      if (rng.next_bool(0.5)) msg.set(i);
    }
    const BitVector cw = bch.encode(msg);
    EXPECT_EQ(cw.size(), Bch255::n);
    EXPECT_TRUE(bch.is_codeword(cw));
    EXPECT_EQ(cw.slice(Bch255::parity_bits, Bch255::k), msg);
  }
}

TEST(Bch255, DecodesSingleErrors) {
  const Bch255 bch;
  Rng rng(4);
  BitVector msg(Bch255::k);
  for (std::size_t i = 0; i < Bch255::k; ++i) {
    if (rng.next_bool(0.5)) msg.set(i);
  }
  const BitVector cw = bch.encode(msg);
  for (std::size_t pos = 0; pos < Bch255::n; pos += 7) {
    BitVector word = cw;
    word.flip(pos);
    const auto pattern = bch.decode_syndrome(bch.syndrome(word));
    ASSERT_EQ(pattern.count, 1) << "pos " << pos;
    EXPECT_EQ(pattern.positions[0], pos);
  }
}

TEST(Bch255, DecodesDoubleErrors) {
  const Bch255 bch;
  Rng rng(5);
  BitVector msg(Bch255::k);
  for (std::size_t i = 0; i < Bch255::k; ++i) {
    if (rng.next_bool(0.5)) msg.set(i);
  }
  const BitVector cw = bch.encode(msg);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t i = rng.next_below(Bch255::n);
    std::size_t j = rng.next_below(Bch255::n);
    while (j == i) j = rng.next_below(Bch255::n);
    BitVector word = cw;
    word.flip(i);
    word.flip(j);
    const auto pattern = bch.decode_syndrome(bch.syndrome(word));
    ASSERT_EQ(pattern.count, 2) << i << "," << j;
    const std::unordered_set<std::uint16_t> positions{pattern.positions[0],
                                                      pattern.positions[1]};
    EXPECT_TRUE(positions.contains(static_cast<std::uint16_t>(i)));
    EXPECT_TRUE(positions.contains(static_cast<std::uint16_t>(j)));
  }
}

TEST(Bch255, TripleErrorsReportedUndecodable) {
  const Bch255 bch;
  Rng rng(6);
  const BitVector cw = bch.encode(BitVector(Bch255::k));
  int undecodable = 0;
  int misdecoded_as_fewer = 0;
  for (int trial = 0; trial < 200; ++trial) {
    BitVector word = cw;
    std::unordered_set<std::size_t> positions;
    while (positions.size() < 3) positions.insert(rng.next_below(Bch255::n));
    for (const auto pos : positions) word.flip(pos);
    const auto pattern = bch.decode_syndrome(bch.syndrome(word));
    if (pattern.count < 0) {
      ++undecodable;
    } else {
      ++misdecoded_as_fewer;  // landed inside another codeword's sphere
    }
  }
  // Most triples fall outside every sphere; some alias (expected for an
  // imperfect code).
  EXPECT_GT(undecodable, 100);
}

TEST(Bch255, CanonicalMaskAlwaysReproducesSyndrome) {
  // The key totality property: for every syndrome value (decodable or
  // not), the canonical mask's remainder equals the syndrome.
  const Bch255 bch;
  const crc::SyndromeCrc crc(bch.generator(), Bch255::n);
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(1u << 16));
    const BitVector mask = bch.canonical_mask(s);
    EXPECT_EQ(crc.compute(mask), s);
  }
}

TEST(Bch255, GdTransformTotalAndLossless) {
  const Bch255 bch;
  Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    BitVector word(Bch255::n);
    for (std::size_t i = 0; i < Bch255::n; ++i) {
      if (rng.next_bool(0.5)) word.set(i);
    }
    const BchCanonical c = bch.canonicalize(word);
    EXPECT_EQ(bch.expand(c.basis, c.syndrome), word) << "trial " << trial;
  }
}

TEST(Bch255, TwoBitNoiseSharesBasisWhereHammingSplits) {
  // The paper's §8 motivation quantified: under 2-bit noise BCH keeps one
  // basis per sensor; Hamming needs many.
  const Bch255 bch;
  const HammingCode hamming(8);
  Rng rng(9);
  BitVector msg(Bch255::k);
  for (std::size_t i = 0; i < Bch255::k; ++i) {
    if (rng.next_bool(0.5)) msg.set(i);
  }
  const BitVector cw = bch.encode(msg);
  std::unordered_set<std::uint64_t> bch_bases;
  std::unordered_set<std::uint64_t> hamming_bases;
  for (int trial = 0; trial < 200; ++trial) {
    BitVector word = cw;
    const std::size_t i = rng.next_below(Bch255::n);
    std::size_t j = rng.next_below(Bch255::n);
    while (j == i) j = rng.next_below(Bch255::n);
    word.flip(i);
    word.flip(j);
    bch_bases.insert(bch.canonicalize(word).basis.hash());
    hamming_bases.insert(hamming.canonicalize(word).basis.hash());
  }
  EXPECT_EQ(bch_bases.size(), 1u);
  EXPECT_GT(hamming_bases.size(), 50u);
}

TEST(Bch255, DeviationCostVersusHamming) {
  // 16-bit deviation vs 8: the §8 trade-off, in packet-size terms.
  // type 3 with BCH: 16 (syndrome) + 1 (excess) + 15 (id) = 32 bits = 4 B
  // versus Hamming's 24 bits = 3 B.
  EXPECT_EQ(Bch255::parity_bits, 16u);
  EXPECT_EQ((Bch255::parity_bits + 1 + 15 + 7) / 8, 4u);
}

}  // namespace
}  // namespace zipline::hamming
