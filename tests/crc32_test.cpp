#include "crc/crc32.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace zipline::crc {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // Standard IEEE check values.
  EXPECT_EQ(Crc32::of(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32::of(bytes_of("")), 0x00000000u);
  EXPECT_EQ(Crc32::of(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32::of(bytes_of("abc")), 0x352441C2u);
  EXPECT_EQ(Crc32::of(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("hello, zipline world");
  Crc32 inc;
  for (const auto b : data) inc.update(b);
  EXPECT_EQ(inc.value(), Crc32::of(data));

  Crc32 split;
  split.update(std::span(data).first(7));
  split.update(std::span(data).subspan(7));
  EXPECT_EQ(split.value(), Crc32::of(data));
}

TEST(Crc32, ResetRestoresInitialState) {
  Crc32 c;
  c.update(bytes_of("garbage"));
  c.reset();
  c.update(bytes_of("123456789"));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  auto data = bytes_of("sensor-payload-0123456789");
  const auto before = Crc32::of(data);
  data[5] ^= 0x01;
  EXPECT_NE(Crc32::of(data), before);
}

TEST(Crc32, AllZeroBufferNonTrivial) {
  const std::vector<std::uint8_t> zeros(64, 0);
  // CRC-32 of zeros is not zero thanks to init/final-xor.
  EXPECT_NE(Crc32::of(zeros), 0u);
}

}  // namespace
}  // namespace zipline::crc
