#include "crc/syndrome_crc.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::crc {
namespace {

using bits::BitVector;

// Paper Table 2b: CRC-3 of one-hot 7-bit sequences under g = x^3+x+1.
TEST(SyndromeCrc, PaperTable2Exact) {
  const SyndromeCrc crc(Gf2Poly(0b1011), 7);
  const std::uint32_t expected[7] = {0b001, 0b010, 0b100, 0b011,
                                     0b110, 0b111, 0b101};
  for (std::size_t pos = 0; pos < 7; ++pos) {
    EXPECT_EQ(crc.single_bit(pos), expected[pos]) << "x^" << pos;
    BitVector v(7);
    v.set(pos);
    EXPECT_EQ(crc.compute(v), expected[pos]);
  }
}

TEST(SyndromeCrc, ZeroWordHasZeroSyndrome) {
  const SyndromeCrc crc(Gf2Poly(0x11D), 255);
  EXPECT_EQ(crc.compute(BitVector(255)), 0u);
}

// The linearity property CRC(A^B) = CRC(A)^CRC(B) the paper relies on (§2).
TEST(SyndromeCrc, LinearityUnderXor) {
  const SyndromeCrc crc(Gf2Poly(0x11D), 255);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector a(255);
    BitVector b(255);
    for (std::size_t i = 0; i < 255; ++i) {
      if (rng.next_bool(0.5)) a.set(i);
      if (rng.next_bool(0.5)) b.set(i);
    }
    EXPECT_EQ(crc.compute(a ^ b), crc.compute(a) ^ crc.compute(b));
  }
}

// CRC(B) equals the XOR of single-bit CRCs of B's set bits — the matrix
// form CRC(B) = B·Hᵀ from §2.
TEST(SyndromeCrc, MatrixFormDecomposition) {
  const SyndromeCrc crc(Gf2Poly(0b100101), 31);  // m=5
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector v(31);
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < 31; ++i) {
      if (rng.next_bool(0.4)) {
        v.set(i);
        acc ^= crc.single_bit(i);
      }
    }
    EXPECT_EQ(crc.compute(v), acc);
  }
}

TEST(SyndromeCrc, FastMatchesSlowReference) {
  Rng rng(7);
  for (const int m : {3, 5, 8, 11}) {
    const Gf2Poly g = default_hamming_generator(m);
    const std::size_t n = (std::size_t{1} << m) - 1;
    const SyndromeCrc crc(g, n);
    for (int trial = 0; trial < 25; ++trial) {
      BitVector v(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.next_bool(0.5)) v.set(i);
      }
      EXPECT_EQ(crc.compute(v), SyndromeCrc::compute_slow(g, v))
          << "m=" << m << " trial=" << trial;
    }
  }
}

TEST(SyndromeCrc, SingleBitSyndromesDistinctAndNonzeroForPrimitiveG) {
  // This is exactly what makes the Hamming decode table well-defined.
  for (const int m : {3, 4, 8, 10}) {
    const std::size_t n = (std::size_t{1} << m) - 1;
    const SyndromeCrc crc(default_hamming_generator(m), n);
    std::vector<bool> seen(std::size_t{1} << m, false);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::uint32_t s = crc.single_bit(pos);
      EXPECT_NE(s, 0u);
      EXPECT_FALSE(seen[s]) << "duplicate syndrome at pos " << pos;
      seen[s] = true;
    }
  }
}

TEST(SyndromeCrc, RemainderMatchesPolynomialMod) {
  // Cross-check against Gf2Poly::mod for inputs that fit in 64 bits.
  const Gf2Poly g(0b1011);
  const SyndromeCrc crc(g, 7);
  for (std::uint64_t w = 0; w < 128; ++w) {
    BitVector v(7, w);
    EXPECT_EQ(crc.compute(v), Gf2Poly(w).mod(g).bits()) << "w=" << w;
  }
}

TEST(SyndromeCrc, WrongLengthThrows) {
  const SyndromeCrc crc(Gf2Poly(0b1011), 7);
  EXPECT_THROW((void)crc.compute(BitVector(8)), zipline::ContractViolation);
  EXPECT_THROW((void)crc.single_bit(7), zipline::ContractViolation);
}

TEST(SyndromeCrc, NonByteMultipleLengths) {
  // n = 255 exercises the partial top byte path.
  const SyndromeCrc crc(Gf2Poly(0x11D), 255);
  BitVector v(255);
  v.set(254);
  EXPECT_EQ(crc.compute(v),
            static_cast<std::uint32_t>(
                Gf2Poly::x_pow_mod(254, Gf2Poly(0x11D)).bits()));
}

}  // namespace
}  // namespace zipline::crc
