// Simulator core tests: event ordering, link serialization arithmetic,
// host pacing against the paper's 7 Mpkt/s generator bottleneck, and the
// end-to-end testbed wiring.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/host.hpp"
#include "sim/link.hpp"
#include "sim/stats.hpp"
#include "sim/testbed.hpp"

namespace zipline::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(300, [&] { order.push_back(3); });
  q.schedule(100, [&] { order.push_back(1); });
  q.schedule(200, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(50, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(100, [&] { ++fired; });
  q.schedule(200, [&] { ++fired; });
  EXPECT_EQ(q.run_until(150), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 150);  // clock advances to the boundary
  EXPECT_EQ(q.run_until(250), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) q.schedule(q.now() + 10, tick);
  };
  q.schedule(0, tick);
  q.run_all();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.now(), 90);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule(100, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule(50, [] {}), ContractViolation);
}

class RecordingEndpoint final : public LinkEndpoint {
 public:
  void on_frame(const net::EthernetFrame& frame, SimTime now) override {
    arrivals.emplace_back(now, frame.frame_bytes());
  }
  std::vector<std::pair<SimTime, std::size_t>> arrivals;
};

TEST(Link, SerializationAndPropagationDelays) {
  EventQueue q;
  Link link(q, /*gbps=*/100.0, /*propagation=*/500);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.attach(&a, &b);
  net::EthernetFrame frame;
  frame.payload.assign(1500 - 18, 0);  // 1500 B frame
  (void)link.transmit(&a, frame, 1000);
  q.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  // serialization of 1520 B at 100G = 121.6 ns; arrival = 1000 + 121 + 500.
  EXPECT_NEAR(static_cast<double>(b.arrivals[0].first), 1621.6, 2.0);
}

TEST(Link, BackToBackFramesQueueBehindEachOther) {
  EventQueue q;
  Link link(q, 100.0, 0);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.attach(&a, &b);
  net::EthernetFrame frame;
  frame.payload.assign(46, 0);  // 64 B min frame, 6.72 ns wire time
  for (int i = 0; i < 3; ++i) {
    (void)link.transmit(&a, frame, 0);
  }
  q.run_all();
  ASSERT_EQ(b.arrivals.size(), 3u);
  // Spaced by one serialization time each.
  const auto t0 = b.arrivals[0].first;
  const auto t1 = b.arrivals[1].first;
  const auto t2 = b.arrivals[2].first;
  EXPECT_EQ(t1 - t0, t2 - t1);
  EXPECT_GT(t1, t0);
}

TEST(Link, DirectionsAreIndependent) {
  EventQueue q;
  Link link(q, 100.0, 0);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.attach(&a, &b);
  net::EthernetFrame frame;
  frame.payload.assign(8982, 0);  // 9000 B jumbo: long serialization
  (void)link.transmit(&a, frame, 0);
  (void)link.transmit(&b, frame, 0);
  q.run_all();
  ASSERT_EQ(a.arrivals.size(), 1u);
  ASSERT_EQ(b.arrivals.size(), 1u);
  // Both delivered at the same time: full duplex.
  EXPECT_EQ(a.arrivals[0].first, b.arrivals[0].first);
}

TEST(Host, StreamRateCappedByCpu) {
  // 7 Mpkt/s CPU cap must dominate for 64 B frames on a 100 G link.
  EventQueue q;
  HostTiming timing;  // 143 ns per packet
  Host sender(q, net::MacAddress::local(1), timing);
  RecordingEndpoint sink;
  Link link(q, 100.0, 0);
  link.attach(&sender, &sink);
  sender.attach_link(&link);
  sender.start_stream(net::MacAddress::local(2), 70000, 46, 0x0800, 0);
  q.run_all();
  ASSERT_EQ(sink.arrivals.size(), 70000u);
  const double seconds =
      to_seconds(sink.arrivals.back().first - sink.arrivals.front().first);
  const double mpps = 70000.0 / seconds / 1e6;
  EXPECT_NEAR(mpps, 7.0, 0.2);
}

TEST(Host, JumboFramesAreLineRateLimited) {
  EventQueue q;
  Host sender(q, net::MacAddress::local(1));
  RecordingEndpoint sink;
  Link link(q, 100.0, 0);
  link.attach(&sender, &sink);
  sender.attach_link(&link);
  sender.start_stream(net::MacAddress::local(2), 2000, 9000 - 18, 0x0800, 0);
  q.run_all();
  const double seconds =
      to_seconds(sink.arrivals.back().first - sink.arrivals.front().first);
  const double gbps = 2000.0 * 9000 * 8 / seconds / 1e9;
  // 9000 B frames: 9020 B on the wire -> 99.78 Gbit/s of frame bytes.
  EXPECT_NEAR(gbps, 99.8, 0.3);
}

TEST(Stats, SummarizeMatchesHandComputation) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  const SampleStats s = summarize(samples);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_NEAR(s.ci95_half_width, 1.96 * 1.5811 / std::sqrt(5.0), 1e-3);
  EXPECT_TRUE(summarize({}).count == 0);
  EXPECT_DOUBLE_EQ(summarize({7.0}).mean, 7.0);
}

TEST(Testbed, FramesTraverseServerSwitchServer) {
  TestbedConfig config;
  config.switch_config.op = prog::SwitchOp::forward;
  Testbed bed(config);
  bed.server1().start_stream(bed.server2().mac(), 100, 46, 0x0800, 0);
  bed.events().run_until(1_ms);
  EXPECT_EQ(bed.server2().sink().frames, 100u);
  EXPECT_EQ(bed.switch_model().stats().packets_in, 100u);
}

TEST(Testbed, HairpinReturnsFramesToSender) {
  TestbedConfig config;
  config.switch_config.op = prog::SwitchOp::forward;
  config.hairpin = true;
  Testbed bed(config);
  bed.server1().start_probes(bed.server1().mac(), 10, 46, 100000, 0);
  bed.events().run_until(5_ms);
  EXPECT_EQ(bed.server1().rtt_samples().size(), 10u);
  for (const double rtt_ns : bed.server1().rtt_samples()) {
    EXPECT_GT(rtt_ns, 1000.0);     // more than a microsecond
    EXPECT_LT(rtt_ns, 100000.0);   // well under 100 us
  }
}

TEST(Testbed, EncodeShrinksChunkTrafficOnTheWire) {
  TestbedConfig config;
  config.switch_config.op = prog::SwitchOp::encode;
  Testbed bed(config);
  // Same payload every frame: after learning, frames leave as type 3.
  std::vector<std::uint8_t> payload(32, 0x5A);
  bed.server1().start_stream(
      bed.server2().mac(), 50000,
      [payload](std::uint64_t) { return payload; },
      [](std::uint64_t) { return std::uint16_t{0x5A01}; }, 0);
  bed.events().run_until(50_ms);
  using prog::PacketClass;
  // ~1.77 ms of learning at ~7 Mpkt/s leaves ~12.4k uncompressed packets;
  // everything after the install compresses.
  EXPECT_GT(bed.program().class_packets(PacketClass::raw_to_type3), 35000u);
  EXPECT_NEAR(
      static_cast<double>(bed.program().class_packets(PacketClass::raw_to_type2)),
      12400.0, 2000.0);
  EXPECT_EQ(bed.controller().stats().mappings_installed, 1u);
}

}  // namespace
}  // namespace zipline::sim
