#include "common/bitio.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::bits {
namespace {

TEST(BitWriter, PacksMsbFirst) {
  BitWriter w;
  w.write_uint(0b101, 3);
  w.write_uint(0b01, 2);
  w.write_uint(0b110, 3);
  const auto bytes = w.to_bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10101110);
}

TEST(BitWriter, PartialFinalByteZeroPadded) {
  BitWriter w;
  w.write_uint(0b11, 2);
  const auto bytes = w.to_bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b11000000);
  EXPECT_EQ(w.bit_count(), 2u);
}

TEST(BitWriter, AlignToByte) {
  BitWriter w;
  w.write_uint(1, 1);
  w.align_to_byte();
  EXPECT_EQ(w.bit_count(), 8u);
  w.align_to_byte();  // already aligned: no-op
  EXPECT_EQ(w.bit_count(), 8u);
  w.write_uint(0xAB, 8);
  const auto bytes = w.to_bytes();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x80);
  EXPECT_EQ(bytes[1], 0xAB);
}

TEST(BitWriter, WidthValidation) {
  BitWriter w;
  EXPECT_THROW(w.write_uint(0, 65), ContractViolation);
  EXPECT_THROW(w.write_uint(0b100, 2), ContractViolation);  // doesn't fit
  EXPECT_NO_THROW(w.write_uint(~0ull, 64));
}

TEST(BitWriter, WritesBitVectorMsbFirst) {
  BitWriter w;
  w.write_bits(BitVector::from_string("10110011"));
  const auto bytes = w.to_bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110011);
}

TEST(BitReader, ReadsBackFields) {
  BitWriter w;
  w.write_uint(0x5A, 8);
  w.write_uint(0x3, 2);
  w.write_uint(0x1234, 15);
  const auto bytes = w.to_bytes();
  BitReader r(bytes);
  EXPECT_EQ(r.read_uint(8), 0x5Au);
  EXPECT_EQ(r.read_uint(2), 0x3u);
  EXPECT_EQ(r.read_uint(15), 0x1234u);
  EXPECT_EQ(r.bits_consumed(), 25u);
}

TEST(BitReader, ReadsBitVectors) {
  BitWriter w;
  const auto v = BitVector::from_string("110100111010001");
  w.write_bits(v);
  const auto bytes = w.to_bytes();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(15), v);
}

TEST(BitReader, SkipAdvances) {
  const std::vector<std::uint8_t> bytes = {0xFF, 0x00, 0xF0};
  BitReader r(bytes);
  r.skip(9);
  EXPECT_EQ(r.read_uint(7), 0u);
  EXPECT_EQ(r.read_uint(4), 0xFu);
}

TEST(BitReader, OverrunThrows) {
  const std::vector<std::uint8_t> bytes = {0xAA};
  BitReader r(bytes);
  EXPECT_NO_THROW((void)r.read_uint(8));
  EXPECT_THROW((void)r.read_uint(1), ContractViolation);
  BitReader r2(bytes);
  EXPECT_THROW(r2.skip(9), ContractViolation);
}

// Property: random field sequences round-trip for any width mix.
class BitIoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitIoRoundTrip, RandomFieldSequences) {
  Rng rng(GetParam());
  std::vector<std::pair<std::uint64_t, std::size_t>> fields;
  BitWriter w;
  const int field_count = 1 + static_cast<int>(rng.next_below(40));
  for (int i = 0; i < field_count; ++i) {
    const std::size_t width = 1 + rng.next_below(64);
    const std::uint64_t value =
        width == 64 ? rng.next_u64() : rng.next_u64() & ((1ull << width) - 1);
    fields.emplace_back(value, width);
    w.write_uint(value, width);
  }
  const auto bytes = w.to_bytes();
  BitReader r(bytes);
  for (const auto& [value, width] : fields) {
    EXPECT_EQ(r.read_uint(width), value);
  }
  EXPECT_EQ(r.bits_consumed(), w.bit_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace zipline::bits
