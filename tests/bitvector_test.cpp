#include "common/bitvector.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::bits {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
}

TEST(BitVector, ZeroInitialized) {
  BitVector v(300);
  EXPECT_EQ(v.size(), 300u);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 300; i += 37) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetResetFlip) {
  BitVector v(130);
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 3u);
  v.reset(64);
  EXPECT_FALSE(v.get(64));
  v.flip(64);
  EXPECT_TRUE(v.get(64));
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, ValueConstructorPlacesLowBits) {
  BitVector v(16, 0b1010'0001);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(5));
  EXPECT_TRUE(v.get(7));
  EXPECT_FALSE(v.get(8));
  EXPECT_EQ(v.to_uint64(), 0b1010'0001u);
}

TEST(BitVector, ValueMustFit) {
  EXPECT_THROW(BitVector(3, 0b1000), ContractViolation);
  EXPECT_NO_THROW(BitVector(3, 0b111));
}

TEST(BitVector, StringRoundTrip) {
  const auto v = BitVector::from_string("1011");
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_EQ(v.to_string(), "1011");
}

TEST(BitVector, BytesRoundTripAligned) {
  const std::vector<std::uint8_t> bytes = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto v = BitVector::from_bytes(bytes, 32);
  EXPECT_EQ(v.to_bytes(), bytes);
  // 0xEF low byte: bit 0 set (0xEF & 1).
  EXPECT_TRUE(v.get(0));
  // 0xDE high byte: bit 31 = MSB of 0xDE = 1.
  EXPECT_TRUE(v.get(31));
}

TEST(BitVector, BytesRoundTripUnaligned) {
  // 12 bits from two bytes: leading 4 bits of the first byte are skipped.
  const std::vector<std::uint8_t> bytes = {0x0A, 0xBC};
  const auto v = BitVector::from_bytes(bytes, 12);
  EXPECT_EQ(v.to_string(), "101010111100");
  const auto back = v.to_bytes();
  EXPECT_EQ(back, bytes);
}

TEST(BitVector, XorMatchesBitwise) {
  Rng rng(42);
  BitVector a(257);
  BitVector b(257);
  for (std::size_t i = 0; i < 257; ++i) {
    if (rng.next_bool(0.5)) a.set(i);
    if (rng.next_bool(0.5)) b.set(i);
  }
  const BitVector c = a ^ b;
  for (std::size_t i = 0; i < 257; ++i) {
    EXPECT_EQ(c.get(i), a.get(i) != b.get(i)) << "bit " << i;
  }
}

TEST(BitVector, XorSizeMismatchThrows) {
  BitVector a(10);
  BitVector b(11);
  EXPECT_THROW(a ^= b, ContractViolation);
}

TEST(BitVector, SliceExtractsBitRange) {
  auto v = BitVector::from_string("110100111010");
  // slice(lo=2, len=5) keeps bits 2..6 (low powers on the right).
  // v = bit11..bit0 = 1 1 0 1 0 0 1 1 1 0 1 0; bits 6..2 = 0 1 1 1 0.
  EXPECT_EQ(v.slice(2, 5).to_string(), "01110");
  EXPECT_EQ(v.slice(0, 12).to_string(), "110100111010");
  EXPECT_EQ(v.slice(11, 1).to_string(), "1");
  EXPECT_EQ(v.slice(4, 0).size(), 0u);
}

TEST(BitVector, SliceAcrossWordBoundary) {
  BitVector v(200);
  v.set(60);
  v.set(70);
  v.set(199);
  const auto s = v.slice(58, 130);
  EXPECT_TRUE(s.get(2));    // was 60
  EXPECT_TRUE(s.get(12));   // was 70
  EXPECT_EQ(s.popcount(), 2u);
}

TEST(BitVector, ConcatPlacesHighAboveLow) {
  const auto high = BitVector::from_string("101");
  const auto low = BitVector::from_string("0011");
  const auto c = BitVector::concat(high, low);
  EXPECT_EQ(c.size(), 7u);
  EXPECT_EQ(c.to_string(), "1010011");
}

TEST(BitVector, ConcatSliceInverse) {
  Rng rng(7);
  BitVector v(255);
  for (std::size_t i = 0; i < 255; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  const auto low = v.slice(0, 100);
  const auto high = v.slice(100, 155);
  EXPECT_EQ(BitVector::concat(high, low), v);
}

TEST(BitVector, ShiftedUpMultipliesByPowerOfX) {
  const auto v = BitVector::from_string("11");
  const auto s = v.shifted_up(3);
  EXPECT_EQ(s.to_string(), "11000");
  EXPECT_EQ(s.size(), 5u);
}

TEST(BitVector, ComparisonOrdersByValue) {
  EXPECT_EQ(BitVector::from_string("0101"), BitVector::from_string("0101"));
  EXPECT_NE(BitVector::from_string("0101"), BitVector::from_string("0100"));
  EXPECT_LT(BitVector::from_string("0100"), BitVector::from_string("0101"));
  // Size participates: shorter vectors order first.
  EXPECT_LT(BitVector::from_string("111"), BitVector::from_string("0000"));
}

TEST(BitVector, HashDiffersForDifferentContent) {
  const auto a = BitVector::from_string("10110");
  auto b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.flip(3);
  EXPECT_NE(a.hash(), b.hash());
  // Same bits, different sizes must not collide trivially.
  EXPECT_NE(BitVector(64).hash(), BitVector(65).hash());
}

TEST(BitVector, OutOfRangeAccessThrows) {
  BitVector v(10);
  EXPECT_THROW((void)v.get(10), ContractViolation);
  EXPECT_THROW(v.set(10), ContractViolation);
  EXPECT_THROW(v.flip(10), ContractViolation);
  EXPECT_THROW((void)v.slice(5, 6), ContractViolation);
  EXPECT_THROW((void)BitVector(100).to_uint64(), ContractViolation);
}

// Property sweep: byte round-trip for many sizes.
class BitVectorRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorRoundTrip, BytesPreserveContent) {
  const std::size_t size = GetParam();
  Rng rng(size * 2654435761u + 1);
  BitVector v(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  const auto bytes = v.to_bytes();
  EXPECT_EQ(bytes.size(), (size + 7) / 8);
  EXPECT_EQ(BitVector::from_bytes(bytes, size), v);
}

TEST_P(BitVectorRoundTrip, StringPreservesContent) {
  const std::size_t size = GetParam();
  Rng rng(size * 11400714819323198485ull + 3);
  BitVector v(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.next_bool(0.3)) v.set(i);
  }
  EXPECT_EQ(BitVector::from_string(v.to_string()), v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorRoundTrip,
                         ::testing::Values(1, 7, 8, 9, 15, 63, 64, 65, 127,
                                           247, 255, 256, 511, 1023, 4096));

}  // namespace
}  // namespace zipline::bits
