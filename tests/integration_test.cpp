// Cross-module integration tests: trace -> pcap -> replay -> switch
// encode -> switch decode -> bit-exact payloads; codec/switch equivalence;
// failure injection at the packet and frame layers; learning under
// dictionary pressure.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "gd/codec.hpp"
#include "net/pcap.hpp"
#include "sim/event_queue.hpp"
#include "sim/host.hpp"
#include "sim/replay.hpp"
#include "sim/switch_node.hpp"
#include "sim/testbed.hpp"
#include "trace/dns.hpp"
#include "trace/synthetic.hpp"
#include "zipline/controller.hpp"

namespace zipline {
namespace {

using bits::BitVector;

TEST(Integration, TraceToPcapToReplayToDecode) {
  // The paper's full experimental pipeline, end to end, with on-disk pcap
  // in the middle and a second switch decoding the encoder's output.
  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 5000;
  trace_config.sensor_count = 5;
  const auto payloads = trace::generate_synthetic_sensor(trace_config);

  const auto path = (std::filesystem::temp_directory_path() /
                     "zipline_integration.pcap")
                        .string();
  trace::write_payloads_pcap(path, payloads, 100000.0);
  const auto replayed = trace::read_payloads_pcap(path);
  std::remove(path.c_str());
  ASSERT_EQ(replayed.size(), payloads.size());

  // Encode switch with mirrored-learning reference decoder behind it.
  prog::ZipLineConfig enc_config;
  enc_config.op = prog::SwitchOp::encode;
  enc_config.learning = prog::LearningMode::data_plane;  // instant learning
  prog::ZipLineConfig dec_config = enc_config;
  dec_config.op = prog::SwitchOp::decode;
  auto encoder = std::make_shared<prog::ZipLineProgram>(enc_config);
  auto decoder = std::make_shared<prog::ZipLineProgram>(dec_config);
  tofino::SwitchModel enc_sw("enc", encoder);
  tofino::SwitchModel dec_sw("dec", decoder);

  for (std::size_t i = 0; i < replayed.size(); ++i) {
    net::EthernetFrame frame;
    frame.dst = net::MacAddress::local(2);
    frame.src = net::MacAddress::local(1);
    frame.ether_type = 0x5A01;
    frame.payload = replayed[i];  // includes min-frame padding from pcap
    const auto encoded = enc_sw.process(frame, 1, static_cast<SimTime>(i));
    ASSERT_FALSE(encoded.dropped);
    const auto decoded =
        dec_sw.process(encoded.frame, 1, static_cast<SimTime>(i));
    ASSERT_FALSE(decoded.dropped);
    // The decoded chunk equals the original payload's first 32 bytes.
    ASSERT_EQ(decoded.frame.payload.size(), 32u);
    EXPECT_TRUE(std::equal(decoded.frame.payload.begin(),
                           decoded.frame.payload.end(), payloads[i].begin()))
        << "packet " << i;
  }
  using prog::PacketClass;
  // Instant learning: exactly one type 2 per distinct basis.
  EXPECT_EQ(encoder->class_packets(PacketClass::raw_to_type2),
            decoder->class_packets(PacketClass::type2_to_raw));
  EXPECT_GT(decoder->class_packets(PacketClass::type3_to_raw), 4000u);
}

TEST(Integration, SwitchPathMatchesHostCodecOnDnsTrace) {
  // The switch data plane and the host-side reference codec must agree
  // byte for byte across a whole workload (static dictionaries).
  trace::DnsTraceConfig config;
  config.query_count = 20000;
  config.name_count = 200;
  const auto payloads =
      trace::strip_transaction_ids(trace::generate_dns_queries(config));

  const gd::GdParams params;
  prog::ZipLineConfig switch_config;
  switch_config.op = prog::SwitchOp::encode;
  switch_config.learning = prog::LearningMode::none;
  auto program = std::make_shared<prog::ZipLineProgram>(switch_config);
  tofino::SwitchModel sw("sw", program);
  gd::GdEncoder reference{params, gd::EvictionPolicy::lru,
                          /*learn_on_miss=*/false};

  // Preload both with the same dictionary in the same order.
  const gd::GdTransform transform(params);
  std::size_t preloaded = 0;
  for (const auto& p : payloads) {
    const auto basis = transform.forward(BitVector::from_bytes(p, 256)).basis;
    if (!reference.dictionary().peek(basis)) {
      program->install_mapping(static_cast<std::uint32_t>(preloaded), basis, 0);
      ++preloaded;
    }
    reference.preload(basis);
  }

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    net::EthernetFrame frame;
    frame.dst = net::MacAddress::local(2);
    frame.src = net::MacAddress::local(1);
    frame.ether_type = 0x5A01;
    frame.payload = payloads[i];
    const auto result = sw.process(frame, 1, static_cast<SimTime>(i));
    const auto expected =
        reference.encode_chunk(BitVector::from_bytes(payloads[i], 256));
    ASSERT_EQ(result.frame.payload, expected.serialize(params)) << i;
  }
}

TEST(Integration, CorruptedCompressedPacketIsDroppedNotMisdecoded) {
  prog::ZipLineConfig config;
  config.op = prog::SwitchOp::decode;
  auto program = std::make_shared<prog::ZipLineProgram>(config);
  tofino::SwitchModel sw("sw", program);
  // Install one mapping; then present an ID outside the installed set.
  Rng rng(3);
  BitVector basis(247);
  for (std::size_t i = 0; i < 247; ++i) {
    if (rng.next_bool(0.5)) basis.set(i);
  }
  program->install_mapping(7, basis, 0);

  const auto good = gd::GdPacket::make_compressed(1, BitVector(1), 7);
  const auto bad = gd::GdPacket::make_compressed(1, BitVector(1), 8);
  net::EthernetFrame frame;
  frame.ether_type = gd::ether_type_for(gd::PacketType::compressed);
  frame.payload = good.serialize(config.params);
  EXPECT_FALSE(sw.process(frame, 1, 0).dropped);
  frame.payload = bad.serialize(config.params);
  EXPECT_TRUE(sw.process(frame, 1, 1).dropped);
  EXPECT_EQ(program->class_packets(prog::PacketClass::decode_unknown_id), 1u);
}

TEST(Integration, TruncatedPayloadsRejectedAtParse) {
  const gd::GdParams params;
  const std::vector<std::uint8_t> short2(10, 0);
  EXPECT_THROW(
      (void)gd::GdPacket::parse(params, gd::PacketType::uncompressed, short2),
      ContractViolation);
  const std::vector<std::uint8_t> short3(2, 0);
  EXPECT_THROW(
      (void)gd::GdPacket::parse(params, gd::PacketType::compressed, short3),
      ContractViolation);
}

TEST(Integration, LearningUnderEvictionPressureKeepsDecoding) {
  // Identifier pool much smaller than the basis population: the control
  // plane must recycle identifiers continuously. In-flight compressed
  // packets can race an eviction (a property of the real system too), so
  // the assertion is on liveness and on the vast majority of packets
  // decoding exactly — not on perfection.
  sim::EventQueue events;
  prog::ZipLineConfig enc_config;
  enc_config.op = prog::SwitchOp::encode;
  enc_config.learning = prog::LearningMode::control_plane;
  enc_config.params.id_bits = 4;  // 16 identifiers
  prog::ZipLineConfig dec_config = enc_config;
  dec_config.op = prog::SwitchOp::decode;
  auto encoder = std::make_shared<prog::ZipLineProgram>(enc_config);
  auto decoder = std::make_shared<prog::ZipLineProgram>(dec_config);
  tofino::SwitchModel enc_sw("enc", encoder);
  tofino::SwitchModel dec_sw("dec", decoder);
  prog::Controller controller(events, *encoder, *decoder);

  trace::SyntheticSensorConfig trace_config;
  trace_config.chunk_count = 30000;
  trace_config.sensor_count = 8;
  trace_config.drift_every = 300;  // ~100 bases through a 16-entry pool
  const auto payloads = trace::generate_synthetic_sensor(trace_config);

  std::uint64_t exact = 0;
  SimTime t = 0;
  for (const auto& p : payloads) {
    events.run_until(t);
    net::EthernetFrame frame;
    frame.dst = net::MacAddress::local(2);
    frame.src = net::MacAddress::local(1);
    frame.ether_type = 0x5A01;
    frame.payload = p;
    const auto enc_result = enc_sw.process(frame, 1, t);
    controller.poll_digests();
    if (!enc_result.dropped) {
      const auto dec_result = dec_sw.process(enc_result.frame, 1, t);
      if (!dec_result.dropped && dec_result.frame.payload == p) {
        ++exact;
      }
    }
    t += 100000;  // 10 kpkt/s
  }
  events.run_until(t + 10_ms);
  EXPECT_GT(controller.stats().evictions, 50u);
  // At least 95% of packets decode bit-exactly despite constant recycling.
  EXPECT_GT(exact, payloads.size() * 95 / 100);
}

TEST(Integration, TestbedCountersConsistentAcrossLayers) {
  // Switch-level, program-level and host-level counters must agree.
  sim::TestbedConfig config;
  config.switch_config.op = prog::SwitchOp::encode;
  sim::Testbed bed(config);
  std::vector<std::uint8_t> payload(32, 0x11);
  bed.server1().start_stream(
      bed.server2().mac(), 5000,
      [payload](std::uint64_t) { return payload; },
      [](std::uint64_t) { return std::uint16_t{0x5A01}; }, 0);
  bed.events().run_until(100_ms);

  const auto& sw_stats = bed.switch_model().stats();
  EXPECT_EQ(sw_stats.packets_in, 5000u);
  EXPECT_EQ(sw_stats.packets_out, 5000u);
  EXPECT_EQ(sw_stats.packets_dropped, 0u);
  EXPECT_EQ(bed.server2().sink().frames, 5000u);
  using prog::PacketClass;
  const auto& program = bed.program();
  EXPECT_EQ(program.class_packets(PacketClass::raw_to_type2) +
                program.class_packets(PacketClass::raw_to_type3),
            5000u);
}

}  // namespace
}  // namespace zipline
