#include "crc/polynomial.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace zipline::crc {
namespace {

TEST(Gf2Poly, DegreeAndZero) {
  EXPECT_EQ(Gf2Poly(0).degree(), -1);
  EXPECT_TRUE(Gf2Poly(0).is_zero());
  EXPECT_EQ(Gf2Poly(1).degree(), 0);
  EXPECT_EQ(Gf2Poly(0b1011).degree(), 3);
  EXPECT_EQ(Gf2Poly(1ull << 63).degree(), 63);
}

TEST(Gf2Poly, CrcParamStripsLeadingTerm) {
  EXPECT_EQ(Gf2Poly(0b1011).crc_param(), 0b011u);   // x^3+x+1 -> 0x3
  EXPECT_EQ(Gf2Poly(0x11D).crc_param(), 0x1Du);     // paper Table 1, m=8
  EXPECT_EQ(Gf2Poly(0x8003).crc_param(), 0x003u);   // m=15
}

TEST(Gf2Poly, MultiplicationCarryless) {
  // (x+1)(x+1) = x^2+1 over GF(2)
  EXPECT_EQ(Gf2Poly(0b11) * Gf2Poly(0b11), Gf2Poly(0b101));
  // (x^2+x+1)(x+1) = x^3+1
  EXPECT_EQ(Gf2Poly(0b111) * Gf2Poly(0b11), Gf2Poly(0b1001));
  EXPECT_EQ(Gf2Poly(0) * Gf2Poly(0b101), Gf2Poly(0));
}

TEST(Gf2Poly, ModReducesBelowDivisorDegree) {
  const Gf2Poly g(0b1011);  // x^3+x+1
  // x^3 mod g = x+1
  EXPECT_EQ(Gf2Poly(0b1000).mod(g), Gf2Poly(0b011));
  // x^6 mod g = x^2+1 (paper Table 2b)
  EXPECT_EQ(Gf2Poly(0b1000000).mod(g), Gf2Poly(0b101));
  // A codeword divides evenly: g itself.
  EXPECT_EQ(g.mod(g), Gf2Poly(0));
}

TEST(Gf2Poly, MulModConsistency) {
  const Gf2Poly g(0x11D);
  // (a*b) mod g computed two ways.
  const Gf2Poly a(0xAB);
  const Gf2Poly b(0xCD);
  const Gf2Poly direct = (a * b).mod(g);
  // Horner via x_pow_mod: a*b = sum over set bits of b of a*x^i
  Gf2Poly acc(0);
  for (int i = 0; i < 8; ++i) {
    if ((b.bits() >> i) & 1) {
      acc = acc ^ (a * Gf2Poly(1ull << i)).mod(g);
    }
  }
  EXPECT_EQ(direct, acc);
}

TEST(Gf2Poly, XPowModMatchesRepeatedMultiplication) {
  const Gf2Poly g(0b1011);
  Gf2Poly acc(1);
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(Gf2Poly::x_pow_mod(e, g), acc) << "e=" << e;
    acc = (acc * Gf2Poly(2)).mod(g);
  }
}

TEST(Gf2Poly, XPowModPeriodIsGroupOrder) {
  // For primitive g of degree m, x has order 2^m - 1.
  const Gf2Poly g(0x11D);  // primitive degree 8
  EXPECT_EQ(Gf2Poly::x_pow_mod(255, g), Gf2Poly(1));
  EXPECT_NE(Gf2Poly::x_pow_mod(85, g), Gf2Poly(1));   // 255/3
  EXPECT_NE(Gf2Poly::x_pow_mod(51, g), Gf2Poly(1));   // 255/5
  EXPECT_NE(Gf2Poly::x_pow_mod(15, g), Gf2Poly(1));   // 255/17
}

TEST(Gf2Poly, GcdBasics) {
  const Gf2Poly a(0b110);   // x^2+x = x(x+1)
  const Gf2Poly b(0b10);    // x
  EXPECT_EQ(Gf2Poly::gcd(a, b), Gf2Poly(0b10));
  // Coprime polynomials have gcd 1.
  EXPECT_EQ(Gf2Poly::gcd(Gf2Poly(0b1011), Gf2Poly(0b111)).degree(), 0);
}

TEST(Gf2Poly, IrreducibilityKnownCases) {
  EXPECT_TRUE(Gf2Poly(0b1011).is_irreducible());   // x^3+x+1
  EXPECT_TRUE(Gf2Poly(0b1101).is_irreducible());   // x^3+x^2+1
  EXPECT_FALSE(Gf2Poly(0b1001).is_irreducible());  // x^3+1 = (x+1)(x^2+x+1)
  EXPECT_FALSE(Gf2Poly(0b101).is_irreducible());   // x^2+1 = (x+1)^2
  EXPECT_TRUE(Gf2Poly(0b111).is_irreducible());    // x^2+x+1
}

TEST(Gf2Poly, PrimitivityKnownCases) {
  EXPECT_TRUE(Gf2Poly(0b1011).is_primitive());
  // x^4+x^3+x^2+x+1 is irreducible but NOT primitive (x has order 5, not 15).
  EXPECT_TRUE(Gf2Poly(0b11111).is_irreducible());
  EXPECT_FALSE(Gf2Poly(0b11111).is_primitive());
  EXPECT_TRUE(Gf2Poly(0b10011).is_primitive());  // x^4+x+1
  EXPECT_FALSE(Gf2Poly(0b1001).is_primitive());  // reducible
}

TEST(Gf2Poly, AllDefaultHammingGeneratorsArePrimitive) {
  for (int m = 3; m <= 15; ++m) {
    const Gf2Poly g = default_hamming_generator(m);
    EXPECT_EQ(g.degree(), m);
    EXPECT_TRUE(g.is_primitive()) << "m=" << m << " g=" << g.to_string();
  }
}

TEST(Gf2Poly, PaperTable1AlternativeGenerators) {
  // Table 1 lists second options for (31,26) and (511,502).
  EXPECT_TRUE(Gf2Poly::from_crc_param(5, 0x17).is_primitive());
  EXPECT_TRUE(
      Gf2Poly(0b1111100011).is_primitive());  // x^9+x^8+x^7+x^6+x^5+x+1
}

TEST(Gf2Poly, ToStringHumanReadable) {
  EXPECT_EQ(Gf2Poly(0b1011).to_string(), "x^3 + x + 1");
  EXPECT_EQ(Gf2Poly(0b11).to_string(), "x + 1");
  EXPECT_EQ(Gf2Poly(1).to_string(), "1");
  EXPECT_EQ(Gf2Poly(0).to_string(), "0");
  EXPECT_EQ(Gf2Poly(0x11D).to_string(), "x^8 + x^4 + x^3 + x^2 + 1");
}

TEST(Gf2Poly, DefaultGeneratorRejectsOutOfRange) {
  EXPECT_THROW(default_hamming_generator(2), zipline::ContractViolation);
  EXPECT_THROW(default_hamming_generator(16), zipline::ContractViolation);
}

}  // namespace
}  // namespace zipline::crc
