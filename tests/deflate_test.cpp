#include "baseline/deflate.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string_view>

#include "baseline/huffman.hpp"
#include "common/rng.hpp"

namespace zipline::baseline {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  std::vector<std::uint64_t> freqs(10, 0);
  freqs[4] = 100;
  const HuffmanCode hc = build_huffman(freqs, 15);
  EXPECT_EQ(hc.lengths[4], 1);
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (s != 4) {
      EXPECT_EQ(hc.lengths[s], 0);
    }
  }
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs = {1000, 500, 250, 125, 60, 30, 15, 8};
  const HuffmanCode hc = build_huffman(freqs, 15);
  for (std::size_t s = 1; s < freqs.size(); ++s) {
    EXPECT_LE(hc.lengths[s - 1], hc.lengths[s]);
  }
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freqs(60);
    for (auto& f : freqs) f = rng.next_below(10000);
    freqs[0] = 1;  // ensure at least one live symbol
    for (const int max_bits : {7, 9, 15}) {
      const HuffmanCode hc = build_huffman(freqs, max_bits);
      std::uint64_t kraft = 0;
      for (const auto l : hc.lengths) {
        EXPECT_LE(l, max_bits);
        if (l > 0) kraft += std::uint64_t{1} << (max_bits - l);
      }
      EXPECT_LE(kraft, std::uint64_t{1} << max_bits);
    }
  }
}

TEST(Huffman, DepthLimitForcesRebalance) {
  // Exponential frequencies would want depth ~30; limit to 7.
  std::vector<std::uint64_t> freqs(30);
  std::uint64_t f = 1;
  for (auto& v : freqs) {
    v = f;
    f = f * 2 + 1;
  }
  const HuffmanCode hc = build_huffman(freqs, 7);
  std::uint64_t kraft = 0;
  for (const auto l : hc.lengths) {
    EXPECT_GE(l, 1);
    EXPECT_LE(l, 7);
    kraft += std::uint64_t{1} << (7 - l);
  }
  EXPECT_LE(kraft, std::uint64_t{1} << 7);
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  std::vector<std::uint64_t> freqs = {5, 9, 12, 13, 16, 45};
  const HuffmanCode hc = build_huffman(freqs, 15);
  for (std::size_t a = 0; a < freqs.size(); ++a) {
    for (std::size_t b = 0; b < freqs.size(); ++b) {
      if (a == b) continue;
      const int la = hc.lengths[a];
      const int lb = hc.lengths[b];
      if (la == 0 || lb == 0 || la > lb) continue;
      // code a must not be a prefix of code b.
      EXPECT_NE(hc.codes[a], hc.codes[b] >> (lb - la))
          << "symbol " << a << " prefixes " << b;
    }
  }
}

TEST(Huffman, DecoderInvertsEncoder) {
  Rng rng(13);
  std::vector<std::uint64_t> freqs(40);
  for (auto& f : freqs) f = 1 + rng.next_below(500);
  const HuffmanCode hc = build_huffman(freqs, 12);
  HuffmanDecoder decoder(hc);
  for (std::size_t sym = 0; sym < freqs.size(); ++sym) {
    const int len = hc.lengths[sym];
    int decoded = -1;
    for (int i = len - 1; i >= 0; --i) {
      decoded = decoder.feed((hc.codes[sym] >> i) & 1);
      if (i > 0) {
        EXPECT_EQ(decoded, -1);
      }
    }
    EXPECT_EQ(decoded, static_cast<int>(sym));
  }
}

TEST(Deflate, EmptyInput) {
  const auto compressed = deflate_compress({});
  EXPECT_FALSE(compressed.empty());
  EXPECT_TRUE(deflate_decompress(compressed).empty());
}

TEST(Deflate, TinyInputs) {
  for (const auto text : {"a", "ab", "abc", "\x00\x00\x00", "zzzzzz"}) {
    const auto data = bytes_of(text);
    EXPECT_EQ(deflate_decompress(deflate_compress(data)), data) << text;
  }
}

TEST(Deflate, TextRoundTripAndShrinks) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 200; ++i) {
    const auto line = bytes_of(
        "the quick brown fox jumps over the lazy dog; pack my box with five "
        "dozen liquor jugs\n");
    data.insert(data.end(), line.begin(), line.end());
  }
  const auto compressed = deflate_compress(data);
  EXPECT_EQ(deflate_decompress(compressed), data);
  EXPECT_LT(compressed.size(), data.size() / 10);  // highly repetitive text
}

TEST(Deflate, IncompressibleRandomDataRoundTrips) {
  Rng rng(17);
  std::vector<std::uint8_t> data(100000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto compressed = deflate_compress(data);
  EXPECT_EQ(deflate_decompress(compressed), data);
  // Random bytes cannot shrink; expansion must stay small (<1%).
  EXPECT_LT(compressed.size(), data.size() * 101 / 100);
}

TEST(Deflate, AllZerosCompressExtremelyWell) {
  const std::vector<std::uint8_t> data(1 << 16, 0);
  const auto compressed = deflate_compress(data);
  EXPECT_EQ(deflate_decompress(compressed), data);
  EXPECT_LT(compressed.size(), 300u);
}

TEST(Deflate, LongRangeMatchesAcrossWindow) {
  // Two identical 10 kB segments 20 kB apart: still inside the window.
  Rng rng(19);
  std::vector<std::uint8_t> segment(10000);
  for (auto& b : segment) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> filler(20000);
  for (auto& b : filler) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> data;
  data.insert(data.end(), segment.begin(), segment.end());
  data.insert(data.end(), filler.begin(), filler.end());
  data.insert(data.end(), segment.begin(), segment.end());
  const auto compressed = deflate_compress(data);
  EXPECT_EQ(deflate_decompress(compressed), data);
  // The second segment must be found as matches: output well below 2x
  // segment+filler entropy size.
  EXPECT_LT(compressed.size(), 32000u);
}

TEST(Deflate, NearDuplicateChunksLikeSensorData) {
  // The paper's synthetic workload shape: 32 B chunks, few distinct bases,
  // single-bit noise. DEFLATE copes but pays for broken matches.
  Rng rng(23);
  std::vector<std::vector<std::uint8_t>> bases(8);
  for (auto& basis : bases) {
    basis.resize(32);
    for (auto& b : basis) b = static_cast<std::uint8_t>(rng.next_u64());
  }
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 5000; ++i) {
    auto chunk = bases[rng.next_below(bases.size())];
    chunk[28 + rng.next_below(4)] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  const auto compressed = deflate_compress(data);
  EXPECT_EQ(deflate_decompress(compressed), data);
  EXPECT_LT(compressed.size(), data.size() / 4);
}

TEST(Deflate, MultiBlockStreams) {
  // Force several blocks with a small block_tokens.
  DeflateOptions options;
  options.block_tokens = 512;
  Rng rng(29);
  std::vector<std::uint8_t> data(200000);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>('a' + rng.next_below(4));
  }
  const auto compressed = deflate_compress(data, options);
  EXPECT_EQ(deflate_decompress(compressed), data);
}

TEST(Deflate, StoredBlocksDecodable) {
  // Decoder must handle stored blocks (we emit them for empty input; also
  // craft one by hand here): BFINAL=1 BTYPE=00, LEN=3.
  const std::vector<std::uint8_t> stream = {0x01, 0x03, 0x00, 0xFC, 0xFF,
                                            'x',  'y',  'z'};
  EXPECT_EQ(deflate_decompress(stream), bytes_of("xyz"));
}

TEST(Deflate, CorruptStreamsThrow) {
  const auto data = bytes_of("hello world hello world hello world");
  auto compressed = deflate_compress(data);
  // Truncation.
  const std::span<const std::uint8_t> truncated(compressed.data(),
                                                compressed.size() / 2);
  EXPECT_THROW((void)deflate_decompress(truncated), std::runtime_error);
  // Invalid block type 11 at the start.
  const std::vector<std::uint8_t> bad_type = {0x07};
  EXPECT_THROW((void)deflate_decompress(bad_type), std::runtime_error);
}

TEST(Gzip, ContainerRoundTrip) {
  const auto data = bytes_of("zipline compresses packets at line speed");
  const auto container = gzip_compress(data);
  // RFC 1952 magic.
  ASSERT_GE(container.size(), 18u);
  EXPECT_EQ(container[0], 0x1F);
  EXPECT_EQ(container[1], 0x8B);
  EXPECT_EQ(container[2], 0x08);
  EXPECT_EQ(gzip_decompress(container), data);
}

TEST(Gzip, DetectsCorruptedPayload) {
  const auto data = bytes_of("payload payload payload payload");
  auto container = gzip_compress(data);
  // Flip a bit in the stored CRC.
  container[container.size() - 6] ^= 1;
  EXPECT_THROW((void)gzip_decompress(container), std::runtime_error);
}

TEST(Gzip, RejectsBadMagic) {
  std::vector<std::uint8_t> garbage(32, 0xAA);
  EXPECT_THROW((void)gzip_decompress(garbage), std::runtime_error);
  EXPECT_THROW((void)gzip_decompress(std::vector<std::uint8_t>{0x1F}),
               std::runtime_error);
}

// Property sweep: deterministic pseudo-random inputs of many sizes and
// alphabet widths all round-trip.
struct DeflateCase {
  std::size_t size;
  int alphabet;
};

class DeflateRoundTrip : public ::testing::TestWithParam<DeflateCase> {};

TEST_P(DeflateRoundTrip, Lossless) {
  const auto [size, alphabet] = GetParam();
  Rng rng(size * 31 + static_cast<std::uint64_t>(alphabet));
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.next_below(
        static_cast<std::uint64_t>(alphabet)));
  }
  EXPECT_EQ(deflate_decompress(deflate_compress(data)), data);
  EXPECT_EQ(gzip_decompress(gzip_compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, DeflateRoundTrip,
    ::testing::Values(DeflateCase{1, 1}, DeflateCase{100, 2},
                      DeflateCase{1000, 3}, DeflateCase{4096, 16},
                      DeflateCase{65535, 64}, DeflateCase{65536, 256},
                      DeflateCase{100001, 5}, DeflateCase{300000, 200}));

}  // namespace
}  // namespace zipline::baseline
