// Load-aware flow steering + shared-dictionary correctness properties.
//
// The acceptance property of the shared dictionary service: a parallel
// pipeline whose workers share one ConcurrentShardedDictionary, with
// power-of-two-choices placement and work stealing, fed a heavily skewed
// (Zipf) flow distribution, must
//
//   1. deliver units in global submission order (hence per-flow in order),
//   2. produce output BYTE-IDENTICAL to one single-threaded Engine
//      processing every unit in submission order (the ordered resolve
//      turnstile pins the dictionary op sequence), and
//   3. decode back to the exact submitted payloads — through a serial
//      shared-style engine as well as through a shared parallel decoder —
//   across all eviction policies × shard counts {1, 2, 8} × worker counts.
#include "engine/parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/rng.hpp"

namespace zipline::engine {
namespace {

using gd::EvictionPolicy;
using gd::GdParams;

/// Value snapshot of an encoded batch (descriptors + arena bytes).
struct BatchImage {
  std::vector<PacketDesc> packets;
  std::vector<std::uint8_t> storage;

  static BatchImage of(const EncodeBatch& batch) {
    BatchImage image;
    image.packets.assign(batch.packets().begin(), batch.packets().end());
    image.storage.assign(batch.storage().begin(), batch.storage().end());
    return image;
  }

  friend bool operator==(const BatchImage& a, const BatchImage& b) {
    if (a.storage != b.storage || a.packets.size() != b.packets.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.packets.size(); ++i) {
      const PacketDesc& x = a.packets[i];
      const PacketDesc& y = b.packets[i];
      if (x.type != y.type || x.offset != y.offset || x.size != y.size ||
          x.syndrome != y.syndrome || x.basis_id != y.basis_id) {
        return false;
      }
    }
    return true;
  }
};

/// Zipf(s≈1.1) sampler over `n` flows: flow 0 dominates, the tail is long
/// — the skew that starves a static flow % workers pin.
class Zipf {
 public:
  Zipf(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0;
    for (std::size_t k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::uint32_t operator()(Rng& rng) const {
    const double u = rng.next_double();
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return static_cast<std::uint32_t>(i);
    }
    return static_cast<std::uint32_t>(cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

struct Schedule {
  std::vector<std::uint32_t> flows;
  std::vector<std::vector<std::uint8_t>> payloads;
};

/// Zipf-skewed submission schedule with enough chunk redundancy (within
/// AND across flows — the shared dictionary deduplicates both) for hits,
/// misses and evictions, plus ragged raw tails.
Schedule make_zipf_schedule(Rng& rng, const GdParams& params,
                            std::size_t units, std::size_t flow_count) {
  const Zipf zipf(flow_count, 1.1);
  Schedule schedule;
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  std::vector<std::vector<std::uint8_t>> pool;
  for (std::size_t i = 0; i < 24; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  for (std::size_t u = 0; u < units; ++u) {
    schedule.flows.push_back(zipf(rng));
    const std::size_t chunks = 1 + rng.next_below(10);
    std::vector<std::uint8_t> payload;
    for (std::size_t c = 0; c < chunks; ++c) {
      auto chunk = pool[rng.next_below(pool.size())];
      if (rng.next_bool(0.35)) {
        chunk[rng.next_below(chunk.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      payload.insert(payload.end(), chunk.begin(), chunk.end());
    }
    if (rng.next_bool(0.25)) {
      for (std::size_t t = 0; t < 1 + rng.next_below(12); ++t) {
        payload.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
    }
    schedule.payloads.push_back(std::move(payload));
  }
  return schedule;
}

/// The serial reference for the shared dictionary: ONE engine (hence one
/// dictionary) encodes every unit in submission order, exactly as the
/// switch's single table sees the interleaved flows of its direction.
std::vector<BatchImage> serial_shared_reference(const GdParams& params,
                                                const ParallelOptions& options,
                                                const Schedule& schedule) {
  Engine engine(params, options.policy, options.learn,
                options.dictionary_shards);
  std::vector<BatchImage> images;
  EncodeBatch batch;
  for (const auto& payload : schedule.payloads) {
    batch.clear();
    engine.encode_payload(payload, batch);
    images.push_back(BatchImage::of(batch));
  }
  return images;
}

ParallelOptions shared_options(EvictionPolicy policy, std::size_t shards,
                               std::size_t workers) {
  ParallelOptions options;
  options.workers = workers;
  options.queue_depth = 4;  // small rings -> backpressure + steal pressure
  options.dictionary_shards = shards;
  options.policy = policy;
  options.ownership = DictionaryOwnership::shared;
  options.steering = FlowSteering::load_aware;
  options.work_stealing = workers > 1;
  return options;
}

class SteeringProperty
    : public ::testing::TestWithParam<
          std::tuple<EvictionPolicy, std::size_t, std::size_t>> {};

// Acceptance: shared-dictionary parallel encode under Zipf skew with p2c
// steering + work stealing is byte-identical to the serial engine, unit
// for unit, and the whole stream decodes back to the submitted payloads.
TEST_P(SteeringProperty, SharedDictionaryZipfIsDecodeIdenticalToSerial) {
  const auto [policy, shards, workers] = GetParam();
  GdParams params;
  params.id_bits = 5;  // 32 identifiers -> evictions under load
  const ParallelOptions options = shared_options(policy, shards, workers);

  Rng rng(0x21FF + static_cast<std::uint64_t>(policy) * 131 + shards * 17 +
          workers * 3);
  const Schedule schedule = make_zipf_schedule(rng, params, 150, 12);
  const auto expected = serial_shared_reference(params, options, schedule);

  std::vector<BatchImage> actual(schedule.flows.size());
  std::uint64_t expected_seq = 0;
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit& unit) {
                            // Ordered drain: global submission order, which
                            // subsumes per-flow order.
                            EXPECT_EQ(unit.seq, expected_seq++);
                            actual[unit.seq] = BatchImage::of(*unit.output);
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    encoder.submit(schedule.flows[u], schedule.payloads[u]);
  }
  encoder.flush();
  ASSERT_EQ(encoder.delivered(), schedule.flows.size());

  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    ASSERT_TRUE(actual[u] == expected[u])
        << "unit " << u << " (flow " << schedule.flows[u]
        << ") diverged from the serial shared-dictionary engine";
  }

  // One shared service, not one per worker: its insertion count matches
  // the single serial dictionary exactly.
  ASSERT_NE(encoder.shared_dictionary(), nullptr);
  Engine serial(params, options.policy, options.learn,
                options.dictionary_shards);
  EncodeBatch scratch;
  for (const auto& payload : schedule.payloads) {
    scratch.clear();
    serial.encode_payload(payload, scratch);
  }
  EXPECT_EQ(encoder.shared_dictionary()->stats().insertions,
            serial.dictionary().stats().insertions);

  // Decode-identical: a serial engine decoding the delivered stream in
  // order recovers every payload bit-exactly (the parallel-encoded stream
  // replays like a serial one because resolve order == submission order).
  Engine decoder(params, options.policy, options.learn,
                 options.dictionary_shards);
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    EncodeBatch encoded;
    for (const PacketDesc& desc : actual[u].packets) {
      encoded.append(desc.type, desc.syndrome, desc.basis_id,
                     std::span(actual[u].storage)
                         .subspan(desc.offset, desc.size));
    }
    DecodeBatch decoded;
    decoder.decode_batch(encoded, decoded);
    const auto bytes = decoded.bytes();
    EXPECT_EQ(std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
              schedule.payloads[u])
        << "unit " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesShardsWorkers, SteeringProperty,
    ::testing::Combine(::testing::Values(EvictionPolicy::lru,
                                         EvictionPolicy::fifo,
                                         EvictionPolicy::random),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

// The full parallel round trip: shared parallel encode, then shared
// parallel DECODE of the delivered stream (same submission order) — the
// decoder's sequenced resolve replays the encoder's op order, so mirrored
// shared dictionaries stay synchronized across thread boundaries.
TEST(FlowSteering, SharedParallelDecodeMirrorsSharedParallelEncode) {
  GdParams params;
  params.id_bits = 6;
  const ParallelOptions options =
      shared_options(EvictionPolicy::lru, 2, /*workers=*/3);

  Rng rng(0xD1CE);
  const Schedule schedule = make_zipf_schedule(rng, params, 120, 10);

  std::vector<EncodeBatch> encoded(schedule.flows.size());
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit& unit) {
                            for (const PacketDesc& desc :
                                 unit.output->packets()) {
                              encoded[unit.seq].append(
                                  desc.type, desc.syndrome, desc.basis_id,
                                  unit.output->payload(desc));
                            }
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    encoder.submit(schedule.flows[u], schedule.payloads[u]);
  }
  encoder.flush();

  std::vector<std::vector<std::uint8_t>> decoded(schedule.flows.size());
  ParallelDecoder decoder(params, options,
                          [&](const ParallelDecoder::Unit& unit) {
                            const auto bytes = unit.output->bytes();
                            decoded[unit.seq].assign(bytes.begin(),
                                                     bytes.end());
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    decoder.submit(schedule.flows[u], &encoded[u]);
  }
  decoder.flush();

  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    EXPECT_EQ(decoded[u], schedule.payloads[u]) << "unit " << u;
  }
}

// p2c placement must respect stickiness: every unit of a flow runs through
// the worker chosen at the flow's first unit (what preserves per-flow
// submission order on one ring), and under skew the hot flows must not all
// collapse onto one worker.
TEST(FlowSteering, LoadAwarePlacementIsStickyAndSpreads) {
  GdParams params;
  ParallelOptions options = shared_options(EvictionPolicy::lru, 1,
                                           /*workers=*/4);
  options.work_stealing = false;  // placement only

  Rng rng(0x5EED);
  const Schedule schedule = make_zipf_schedule(rng, params, 200, 32);
  ParallelEncoder encoder(params, options, nullptr);
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    encoder.submit(schedule.flows[u], schedule.payloads[u]);
    // Sticky: the mapping the steerer records never changes afterwards.
    const auto worker = encoder.flow_worker(schedule.flows[u]);
    ASSERT_TRUE(worker.has_value());
  }
  encoder.flush();

  std::vector<std::size_t> flows_per_worker(options.workers, 0);
  std::vector<bool> seen(32, false);
  for (std::uint32_t flow = 0; flow < 32; ++flow) {
    const auto worker = encoder.flow_worker(flow);
    if (!worker.has_value()) continue;
    ++flows_per_worker[*worker];
  }
  (void)seen;
  // Two-choice placement over 4 workers and ~32 flows: no worker ends up
  // empty and no worker hoards everything.
  std::size_t populated = 0;
  std::size_t max_flows = 0;
  std::size_t total = 0;
  for (const std::size_t count : flows_per_worker) {
    if (count > 0) ++populated;
    max_flows = std::max(max_flows, count);
    total += count;
  }
  EXPECT_GE(populated, 3u);
  EXPECT_LT(max_flows, total);
}

// Free-running shared mode (ordered=false): no byte determinism, but the
// compound miss-then-learn dictionary transitions are atomic per stripe,
// so many workers racing to learn the SAME fresh bases must never trip
// the insert-absent contract — every unit is delivered exactly once and
// flush() never throws. (The TSan CI job runs this under contention.)
TEST(FlowSteering, UnorderedSharedModeToleratesRacingLearners) {
  GdParams params;
  ParallelOptions options;
  options.workers = 4;
  options.queue_depth = 2;
  options.ordered = false;
  options.ownership = DictionaryOwnership::shared;
  options.steering = FlowSteering::load_aware;

  Rng rng(0xACE5);
  std::vector<std::uint8_t> payload(24 * params.raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());

  std::size_t delivered = 0;
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit&) { ++delivered; });
  // Every flow submits the identical fresh payload: all workers race to
  // learn the same 24 bases at once, repeatedly.
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t flow = 0; flow < 8; ++flow) {
      encoder.submit(flow, payload);
    }
    encoder.flush();
  }
  EXPECT_EQ(delivered, 64u);
  ASSERT_NE(encoder.shared_dictionary(), nullptr);
  EXPECT_EQ(encoder.shared_dictionary()->size(), 24u)
      << "each basis learned exactly once despite the races";
}

// Work stealing requires the shared dictionary + ordered drain — a private
// per-flow dictionary on a stolen worker would fork the flow's replay.
TEST(FlowSteering, WorkStealingRequiresSharedOrderedPipeline) {
  GdParams params;
  ParallelOptions options;
  options.workers = 2;
  options.work_stealing = true;  // per_flow ownership: must be rejected
  EXPECT_THROW(ParallelEncoder(params, options, nullptr), ContractViolation);

  options.ownership = DictionaryOwnership::shared;
  options.ordered = false;
  EXPECT_THROW(ParallelEncoder(params, options, nullptr), ContractViolation);
}

// A stage failure inside the shared split-phase path must advance the
// resolve turnstile (or every later unit deadlocks) and surface at
// flush(), exactly like the private mode.
TEST(FlowSteering, SharedModeStageExceptionsSurfaceAtFlush) {
  GdParams params;
  const ParallelOptions options =
      shared_options(EvictionPolicy::lru, 1, /*workers=*/2);

  // A compressed packet referencing an identifier nobody ever installed.
  EncodeBatch poisoned;
  const std::vector<std::uint8_t> body(params.type3_payload_bytes(), 0);
  poisoned.append(gd::PacketType::compressed, 0, 0, body);

  Engine encoder{params};
  Rng rng(0xBAD2);
  std::vector<std::uint8_t> payload(4 * params.raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  EncodeBatch healthy;
  encoder.encode_payload(payload, healthy);

  std::size_t delivered_ok = 0;
  ParallelDecoder decoder(params, options,
                          [&](const ParallelDecoder::Unit&) {
                            ++delivered_ok;
                          });
  decoder.submit(/*flow=*/0, &poisoned);
  decoder.submit(/*flow=*/1, &healthy);
  EXPECT_THROW(decoder.flush(), ContractViolation);
  EXPECT_EQ(decoder.delivered(), 2u);
  // The pipeline (and its turnstile) stays usable afterwards. The healthy
  // unit may or may not have decoded cleanly depending on what the
  // poisoned unit taught the shared dictionary before failing; what
  // matters is that nothing deadlocked and later units flow.
  decoder.submit(/*flow=*/1, &healthy);
  decoder.flush();
  EXPECT_EQ(decoder.delivered(), 3u);
  EXPECT_GE(delivered_ok, 1u);
}

}  // namespace
}  // namespace zipline::engine
