// ZLF1 framing properties (netio/frame_codec.hpp).
//
// The wire format exists so a TCP byte stream can be cut anywhere —
// mid-prefix, mid-payload, between frames — and reassemble bit-exactly.
// The central property test here proves exactly that: a multi-frame wire
// image fed to the decoder split at EVERY byte position (and under
// 1-byte feeds and random chunkings) yields the same frames as feeding
// it whole, with the rebuffering odometer accounting for every partial
// byte carried across a feed boundary. Protocol violations (zero-length
// and oversize prefixes) must stop consumption immediately and latch the
// decoder dead.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "io/buffer_pool.hpp"
#include "netio/frame_codec.hpp"

namespace zipline::netio {
namespace {

std::vector<std::vector<std::uint8_t>> make_frames(Rng& rng,
                                                   std::size_t count) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t i = 0; i < count; ++i) {
    // Cover the edge sizes deliberately: the 1-byte minimum frame and a
    // frame spanning several reads.
    std::size_t bytes;
    if (i == 0) {
      bytes = 1;
    } else if (i == 1) {
      bytes = 2;
    } else {
      bytes = 1 + rng.next_below(200);
    }
    std::vector<std::uint8_t> frame(bytes);
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next_u64());
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<std::uint8_t> wire_image(
    const std::vector<std::vector<std::uint8_t>>& frames) {
  std::vector<std::uint8_t> wire;
  for (const auto& frame : frames) FrameEncoder::append_frame(wire, frame);
  return wire;
}

/// Feeds `wire` to a fresh decoder in the given chunk sizes and returns
/// the decoded frames (copied out of their segments).
struct DecodeRun {
  std::vector<std::vector<std::uint8_t>> frames;
  std::uint64_t bytes_rebuffered = 0;
  FrameError error = FrameError::none;
};

DecodeRun run_chunked(io::BufferPool& pool, std::span<const std::uint8_t> wire,
                      const std::vector<std::size_t>& chunks,
                      std::size_t max_frame_bytes = kDefaultMaxFrameBytes) {
  FrameDecoder decoder(pool, max_frame_bytes);
  DecodeRun run;
  std::size_t offset = 0;
  for (const std::size_t chunk : chunks) {
    const auto piece = wire.subspan(offset, chunk);
    offset += chunk;
    const FrameError err = decoder.feed(
        piece, [&](std::span<const std::uint8_t> frame,
                   const io::SegmentRef& segment) {
          // The frame span must point into the segment's live memory.
          EXPECT_GE(frame.data(), segment.data());
          run.frames.emplace_back(frame.begin(), frame.end());
        });
    if (err != FrameError::none) {
      run.error = err;
      break;
    }
  }
  run.bytes_rebuffered = decoder.bytes_rebuffered();
  return run;
}

TEST(FrameCodecTest, WholeFeedDecodesBackToBackFrames) {
  Rng rng(0x2F1);
  io::BufferPool pool(4096, 16);
  const auto frames = make_frames(rng, 8);
  const auto wire = wire_image(frames);

  const DecodeRun run = run_chunked(pool, wire, {wire.size()});
  EXPECT_EQ(run.error, FrameError::none);
  EXPECT_EQ(run.frames, frames);
  // Whole frames per feed — nothing was ever held across a boundary.
  EXPECT_EQ(run.bytes_rebuffered, 0u);
}

// The headline property: for EVERY split point s, feeding [0,s) then
// [s,end) reassembles the identical frame sequence, and the rebuffering
// odometer equals exactly the partial bytes held at the split.
TEST(FrameCodecTest, EverySplitPointReassemblesIdentically) {
  Rng rng(0x5EED);
  io::BufferPool pool(4096, 16);
  const auto frames = make_frames(rng, 5);
  const auto wire = wire_image(frames);
  ASSERT_GT(wire.size(), 2u);

  for (std::size_t split = 1; split < wire.size(); ++split) {
    // Reference for the expected rebuffering: how many bytes of a frame
    // (prefix included) were in flight at `split`.
    FrameDecoder probe(pool);
    std::size_t partial_at_split = 0;
    {
      const FrameError err =
          probe.feed(std::span(wire).first(split),
                     [](std::span<const std::uint8_t>,
                        const io::SegmentRef&) {});
      ASSERT_EQ(err, FrameError::none) << "split " << split;
      partial_at_split = probe.partial_bytes();
    }

    const DecodeRun run =
        run_chunked(pool, wire, {split, wire.size() - split});
    ASSERT_EQ(run.error, FrameError::none) << "split " << split;
    ASSERT_EQ(run.frames, frames) << "split " << split;
    EXPECT_EQ(run.bytes_rebuffered, partial_at_split) << "split " << split;
  }
}

TEST(FrameCodecTest, OneByteFeedsReassembleIdentically) {
  Rng rng(0x1B17);
  io::BufferPool pool(4096, 16);
  const auto frames = make_frames(rng, 4);
  const auto wire = wire_image(frames);

  const std::vector<std::size_t> chunks(wire.size(), 1);
  const DecodeRun run = run_chunked(pool, wire, chunks);
  EXPECT_EQ(run.error, FrameError::none);
  EXPECT_EQ(run.frames, frames);
  // Every 1-byte feed that does not complete a frame leaves a partial —
  // the worst-case chunking pays the most rebuffering.
  EXPECT_GT(run.bytes_rebuffered, wire.size());
}

TEST(FrameCodecTest, RandomChunkingsReassembleIdentically) {
  Rng rng(0xC4A0);
  io::BufferPool pool(8192, 16);
  for (int round = 0; round < 200; ++round) {
    const auto frames = make_frames(rng, 1 + rng.next_below(7));
    const auto wire = wire_image(frames);
    std::vector<std::size_t> chunks;
    std::size_t remaining = wire.size();
    while (remaining > 0) {
      const std::size_t take = 1 + rng.next_below(remaining);
      chunks.push_back(take);
      remaining -= take;
    }
    const DecodeRun run = run_chunked(pool, wire, chunks);
    ASSERT_EQ(run.error, FrameError::none) << "round " << round;
    ASSERT_EQ(run.frames, frames) << "round " << round;
  }
}

TEST(FrameCodecTest, ZeroLengthFrameRejectedAndLatched) {
  io::BufferPool pool(4096, 4);
  FrameDecoder decoder(pool);
  const std::uint8_t zero_prefix[kFramePrefixBytes] = {0, 0, 0, 0};
  std::size_t delivered = 0;
  const auto sink = [&](std::span<const std::uint8_t>,
                        const io::SegmentRef&) { ++delivered; };
  EXPECT_EQ(decoder.feed(zero_prefix, sink), FrameError::zero_length);
  EXPECT_TRUE(decoder.dead());
  EXPECT_EQ(decoder.error(), FrameError::zero_length);
  EXPECT_EQ(delivered, 0u);
  // Dead stays dead: later feeds re-report the latched error.
  const std::uint8_t more[] = {1, 2, 3};
  EXPECT_EQ(decoder.feed(more, sink), FrameError::zero_length);
  EXPECT_EQ(decoder.frames_decoded(), 0u);
}

TEST(FrameCodecTest, OversizeFrameRejectedEvenWithSplitPrefix) {
  io::BufferPool pool(4096, 4);
  // max 64 bytes; prefix declares 65.
  std::uint8_t prefix[kFramePrefixBytes];
  wire::put_u32_be(prefix, 65);
  const auto sink = [](std::span<const std::uint8_t>,
                       const io::SegmentRef&) {};

  FrameDecoder whole(pool, /*max_frame_bytes=*/64);
  EXPECT_EQ(whole.feed(prefix, sink), FrameError::oversize);
  EXPECT_TRUE(whole.dead());

  // The prefix itself split: the violation is only detectable once the
  // fourth byte lands.
  FrameDecoder split(pool, /*max_frame_bytes=*/64);
  EXPECT_EQ(split.feed(std::span(prefix).first(2), sink), FrameError::none);
  EXPECT_FALSE(split.dead());
  EXPECT_EQ(split.feed(std::span(prefix).subspan(2), sink),
            FrameError::oversize);
  EXPECT_TRUE(split.dead());
}

TEST(FrameCodecTest, MaxSizeFrameIsAccepted) {
  io::BufferPool pool(64, 4);  // frame bigger than a pool segment: the
                               // counted overflow path must carry it
  Rng rng(0xFEED);
  std::vector<std::uint8_t> payload(256);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  std::vector<std::uint8_t> wire;
  FrameEncoder::append_frame(wire, payload);

  const DecodeRun run =
      run_chunked(pool, wire, {wire.size()}, /*max_frame_bytes=*/256);
  EXPECT_EQ(run.error, FrameError::none);
  ASSERT_EQ(run.frames.size(), 1u);
  EXPECT_EQ(run.frames[0], payload);
}

TEST(FrameCodecTest, LinkHeaderRoundTripsThroughTheWire) {
  io::BufferPool pool(4096, 4);
  Rng rng(0x11AD);
  for (const auto type : {gd::PacketType::raw, gd::PacketType::uncompressed,
                          gd::PacketType::compressed}) {
    LinkHeader header;
    header.type = type;
    header.flow = static_cast<std::uint32_t>(rng.next_u64());
    header.syndrome = static_cast<std::uint32_t>(rng.next_u64());
    header.basis_id = static_cast<std::uint32_t>(rng.next_u64());
    std::vector<std::uint8_t> payload(1 + rng.next_below(64));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());

    std::vector<std::uint8_t> wire;
    FrameEncoder::append_frame(wire, header, payload);

    FrameDecoder decoder(pool);
    std::size_t delivered = 0;
    const FrameError err = decoder.feed(
        wire, [&](std::span<const std::uint8_t> frame,
                  const io::SegmentRef&) {
          ++delivered;
          LinkHeader parsed;
          ASSERT_TRUE(parse_link_header(frame, parsed));
          EXPECT_EQ(parsed.type, header.type);
          EXPECT_EQ(parsed.flow, header.flow);
          EXPECT_EQ(parsed.syndrome, header.syndrome);
          EXPECT_EQ(parsed.basis_id, header.basis_id);
          const auto body = frame.subspan(kLinkHeaderBytes);
          EXPECT_TRUE(std::equal(body.begin(), body.end(), payload.begin(),
                                 payload.end()));
        });
    EXPECT_EQ(err, FrameError::none);
    EXPECT_EQ(delivered, 1u);
  }
}

TEST(FrameCodecTest, LinkHeaderRejectsShortFramesAndBadTypes) {
  LinkHeader parsed;
  const std::vector<std::uint8_t> short_frame(kLinkHeaderBytes - 1, 0x01);
  EXPECT_FALSE(parse_link_header(short_frame, parsed));
  std::vector<std::uint8_t> bad_type(kLinkHeaderBytes, 0);
  bad_type[0] = 0;  // below the PacketType range
  EXPECT_FALSE(parse_link_header(bad_type, parsed));
  bad_type[0] = 4;  // above it
  EXPECT_FALSE(parse_link_header(bad_type, parsed));
  bad_type[0] = 2;
  EXPECT_TRUE(parse_link_header(bad_type, parsed));
  EXPECT_EQ(parsed.type, gd::PacketType::uncompressed);
}

// The sink's copied SegmentRef must keep the frame bytes alive after the
// decoder has moved on to later frames (the zero-copy handoff contract).
TEST(FrameCodecTest, SegmentRefsOutliveTheDecoder) {
  io::BufferPool pool(4096, 8);
  Rng rng(0x5E6);
  const auto frames = make_frames(rng, 6);
  const auto wire = wire_image(frames);

  std::vector<std::pair<io::SegmentRef, std::span<const std::uint8_t>>> held;
  {
    FrameDecoder decoder(pool);
    const FrameError err = decoder.feed(
        wire, [&](std::span<const std::uint8_t> frame,
                  const io::SegmentRef& segment) {
          held.emplace_back(segment, frame);
        });
    ASSERT_EQ(err, FrameError::none);
    ASSERT_EQ(decoder.frames_decoded(), frames.size());
    // decoder dies here; the refs must keep every frame's bytes valid.
  }
  ASSERT_EQ(held.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto& [segment, view] = held[i];
    EXPECT_EQ(std::vector<std::uint8_t>(view.begin(), view.end()), frames[i])
        << "frame " << i;
  }
}

}  // namespace
}  // namespace zipline::netio
