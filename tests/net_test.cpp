#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "net/ethernet.hpp"
#include "net/mac.hpp"
#include "net/pcap.hpp"

namespace zipline::net {
namespace {

TEST(MacAddress, ParseAndFormat) {
  const auto mac = MacAddress::parse("de:ad:BE:ef:00:01");
  EXPECT_EQ(mac.to_string(), "de:ad:be:ef:00:01");
  EXPECT_EQ(mac.octets()[0], 0xDE);
  EXPECT_EQ(mac.octets()[5], 0x01);
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_THROW(MacAddress::parse("de:ad:be:ef:00"), ContractViolation);
  EXPECT_THROW(MacAddress::parse("de-ad-be-ef-00-01"), ContractViolation);
  EXPECT_THROW(MacAddress::parse("zz:ad:be:ef:00:01"), ContractViolation);
}

TEST(MacAddress, LocalAddressesAreUnicastAndDistinct) {
  const auto a = MacAddress::local(1);
  const auto b = MacAddress::local(2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_multicast());
  EXPECT_FALSE(a.is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
}

TEST(EthernetFrame, SerializeParsePreservesFields) {
  EthernetFrame frame;
  frame.dst = MacAddress::local(7);
  frame.src = MacAddress::local(9);
  frame.ether_type = 0x5A02;
  frame.payload = {1, 2, 3, 4, 5};
  const auto wire = frame.serialize();
  EXPECT_EQ(wire.size(), kMinFrameBytes);  // padded up
  const EthernetFrame back = EthernetFrame::parse(wire);
  EXPECT_EQ(back.dst, frame.dst);
  EXPECT_EQ(back.src, frame.src);
  EXPECT_EQ(back.ether_type, frame.ether_type);
  // Payload keeps the minimum-frame padding (46 bytes).
  ASSERT_GE(back.payload.size(), frame.payload.size());
  EXPECT_TRUE(std::equal(frame.payload.begin(), frame.payload.end(),
                         back.payload.begin()));
}

TEST(EthernetFrame, FcsDetectsCorruption) {
  EthernetFrame frame;
  frame.dst = MacAddress::local(1);
  frame.src = MacAddress::local(2);
  frame.ether_type = 0x0800;
  frame.payload.assign(100, 0xAB);
  auto wire = frame.serialize();
  wire[20] ^= 0x40;
  EXPECT_THROW(EthernetFrame::parse(wire), ContractViolation);
  EXPECT_NO_THROW(EthernetFrame::parse(wire, /*verify_fcs=*/false));
}

TEST(EthernetFrame, FrameBytesAccountsForPaddingAndFcs) {
  EthernetFrame small;
  small.payload.assign(1, 0);
  EXPECT_EQ(small.frame_bytes(), kMinFrameBytes);
  EthernetFrame full;
  full.payload.assign(1500, 0);  // classic MTU payload
  EXPECT_EQ(full.frame_bytes(), 1518u);
  EXPECT_EQ(full.serialize().size(), 1518u);
}

TEST(WireTime, MatchesLineRateArithmetic) {
  // 64 B frame + 20 B overhead at 100 Gbit/s = 6.72 ns.
  EXPECT_NEAR(wire_time_ns(64, 100.0), 6.72, 1e-9);
  // Max packet rate at 64 B: ~148.8 Mpps on 100G.
  EXPECT_NEAR(line_rate_pps(64, 100.0) / 1e6, 148.8, 0.1);
  // 1518 B frames: ~8.13 Mpps.
  EXPECT_NEAR(line_rate_pps(1518, 100.0) / 1e6, 8.13, 0.01);
}

class PcapRoundTrip : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ =
      (std::filesystem::temp_directory_path() / "zipline_pcap_test.pcap")
          .string();
};

TEST_F(PcapRoundTrip, WriteReadRecords) {
  Rng rng(3);
  std::vector<PcapRecord> originals;
  {
    PcapWriter writer(path_);
    for (int i = 0; i < 25; ++i) {
      PcapRecord r;
      r.timestamp_us = 1'600'000'000'000'000ull +
                       static_cast<std::uint64_t>(i) * 137;
      r.data.resize(64 + rng.next_below(200));
      for (auto& b : r.data) b = static_cast<std::uint8_t>(rng.next_u64());
      writer.write_record(r);
      originals.push_back(std::move(r));
    }
    EXPECT_EQ(writer.records_written(), 25u);
  }
  PcapReader reader(path_);
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), originals.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].timestamp_us, originals[i].timestamp_us);
    EXPECT_EQ(records[i].data, originals[i].data);
  }
}

TEST_F(PcapRoundTrip, FramesSurviveThePcapLayer) {
  {
    PcapWriter writer(path_);
    EthernetFrame frame;
    frame.dst = MacAddress::local(10);
    frame.src = MacAddress::local(20);
    frame.ether_type = 0x5A01;
    frame.payload.assign(32, 0x55);
    writer.write_frame(frame, 42);
  }
  PcapReader reader(path_);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  const EthernetFrame frame = EthernetFrame::parse(record->data);
  EXPECT_EQ(frame.ether_type, 0x5A01);
  EXPECT_EQ(frame.dst, MacAddress::local(10));
  const auto next = reader.next();
  EXPECT_FALSE(next.has_value());
}

TEST_F(PcapRoundTrip, RejectsGarbageFiles) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a pcap file at all";
  }
  EXPECT_THROW(PcapReader reader(path_), std::runtime_error);
}

TEST(Pcap, MissingFileThrows) {
  EXPECT_THROW(PcapReader reader("/nonexistent/zipline.pcap"),
               std::runtime_error);
  EXPECT_THROW(PcapWriter writer("/nonexistent/dir/zipline.pcap"),
               std::runtime_error);
}

}  // namespace
}  // namespace zipline::net
