#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "net/ethernet.hpp"
#include "net/mac.hpp"
#include "net/pcap.hpp"

namespace zipline::net {
namespace {

TEST(MacAddress, ParseAndFormat) {
  const auto mac = MacAddress::parse("de:ad:BE:ef:00:01");
  EXPECT_EQ(mac.to_string(), "de:ad:be:ef:00:01");
  EXPECT_EQ(mac.octets()[0], 0xDE);
  EXPECT_EQ(mac.octets()[5], 0x01);
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_THROW(MacAddress::parse("de:ad:be:ef:00"), ContractViolation);
  EXPECT_THROW(MacAddress::parse("de-ad-be-ef-00-01"), ContractViolation);
  EXPECT_THROW(MacAddress::parse("zz:ad:be:ef:00:01"), ContractViolation);
}

TEST(MacAddress, LocalAddressesAreUnicastAndDistinct) {
  const auto a = MacAddress::local(1);
  const auto b = MacAddress::local(2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_multicast());
  EXPECT_FALSE(a.is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
}

TEST(EthernetFrame, SerializeParsePreservesFields) {
  EthernetFrame frame;
  frame.dst = MacAddress::local(7);
  frame.src = MacAddress::local(9);
  frame.ether_type = 0x5A02;
  frame.payload = {1, 2, 3, 4, 5};
  const auto wire = frame.serialize();
  EXPECT_EQ(wire.size(), kMinFrameBytes);  // padded up
  const EthernetFrame back = EthernetFrame::parse(wire);
  EXPECT_EQ(back.dst, frame.dst);
  EXPECT_EQ(back.src, frame.src);
  EXPECT_EQ(back.ether_type, frame.ether_type);
  // Payload keeps the minimum-frame padding (46 bytes).
  ASSERT_GE(back.payload.size(), frame.payload.size());
  EXPECT_TRUE(std::equal(frame.payload.begin(), frame.payload.end(),
                         back.payload.begin()));
}

TEST(EthernetFrame, FcsDetectsCorruption) {
  EthernetFrame frame;
  frame.dst = MacAddress::local(1);
  frame.src = MacAddress::local(2);
  frame.ether_type = 0x0800;
  frame.payload.assign(100, 0xAB);
  auto wire = frame.serialize();
  wire[20] ^= 0x40;
  EXPECT_THROW(EthernetFrame::parse(wire), ContractViolation);
  EXPECT_NO_THROW(EthernetFrame::parse(wire, /*verify_fcs=*/false));
}

TEST(EthernetFrame, FrameBytesAccountsForPaddingAndFcs) {
  EthernetFrame small;
  small.payload.assign(1, 0);
  EXPECT_EQ(small.frame_bytes(), kMinFrameBytes);
  EthernetFrame full;
  full.payload.assign(1500, 0);  // classic MTU payload
  EXPECT_EQ(full.frame_bytes(), 1518u);
  EXPECT_EQ(full.serialize().size(), 1518u);
}

TEST(WireTime, MatchesLineRateArithmetic) {
  // 64 B frame + 20 B overhead at 100 Gbit/s = 6.72 ns.
  EXPECT_NEAR(wire_time_ns(64, 100.0), 6.72, 1e-9);
  // Max packet rate at 64 B: ~148.8 Mpps on 100G.
  EXPECT_NEAR(line_rate_pps(64, 100.0) / 1e6, 148.8, 0.1);
  // 1518 B frames: ~8.13 Mpps.
  EXPECT_NEAR(line_rate_pps(1518, 100.0) / 1e6, 8.13, 0.01);
}

class PcapRoundTrip : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ =
      (std::filesystem::temp_directory_path() / "zipline_pcap_test.pcap")
          .string();
};

TEST_F(PcapRoundTrip, WriteReadRecords) {
  Rng rng(3);
  std::vector<PcapRecord> originals;
  {
    PcapWriter writer(path_);
    for (int i = 0; i < 25; ++i) {
      PcapRecord r;
      r.timestamp_us = 1'600'000'000'000'000ull +
                       static_cast<std::uint64_t>(i) * 137;
      r.data.resize(64 + rng.next_below(200));
      for (auto& b : r.data) b = static_cast<std::uint8_t>(rng.next_u64());
      writer.write_record(r);
      originals.push_back(std::move(r));
    }
    EXPECT_EQ(writer.records_written(), 25u);
  }
  PcapReader reader(path_);
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), originals.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].timestamp_us, originals[i].timestamp_us);
    EXPECT_EQ(records[i].data, originals[i].data);
  }
}

TEST_F(PcapRoundTrip, FramesSurviveThePcapLayer) {
  {
    PcapWriter writer(path_);
    EthernetFrame frame;
    frame.dst = MacAddress::local(10);
    frame.src = MacAddress::local(20);
    frame.ether_type = 0x5A01;
    frame.payload.assign(32, 0x55);
    writer.write_frame(frame, 42);
  }
  PcapReader reader(path_);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  const EthernetFrame frame = EthernetFrame::parse(record->data);
  EXPECT_EQ(frame.ether_type, 0x5A01);
  EXPECT_EQ(frame.dst, MacAddress::local(10));
  const auto next = reader.next();
  EXPECT_FALSE(next.has_value());
}

namespace {

/// Hand-writes a pcap global header + one record with an explicit magic
/// and raw (seconds, fraction) timestamp fields, optionally byte-swapped
/// — the shapes tcpdump/wireshark produce for ns-precision captures.
void write_raw_pcap(const std::string& path, std::uint32_t magic,
                    bool swapped, std::uint32_t seconds,
                    std::uint32_t fraction,
                    const std::vector<std::uint8_t>& data) {
  const auto swap32 = [](std::uint32_t v) {
    return ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
           (v >> 24);
  };
  const auto put32 = [&](std::ofstream& out, std::uint32_t v) {
    if (swapped) v = swap32(v);
    out.write(reinterpret_cast<const char*>(&v), 4);
  };
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  // The magic itself is written in the file's own byte order.
  std::uint32_t stored_magic = swapped ? swap32(magic) : magic;
  out.write(reinterpret_cast<const char*>(&stored_magic), 4);
  std::uint16_t major = 2;
  std::uint16_t minor = 4;
  if (swapped) {
    major = static_cast<std::uint16_t>((major << 8) | (major >> 8));
    minor = static_cast<std::uint16_t>((minor << 8) | (minor >> 8));
  }
  out.write(reinterpret_cast<const char*>(&major), 2);
  out.write(reinterpret_cast<const char*>(&minor), 2);
  put32(out, 0);      // thiszone
  put32(out, 0);      // sigfigs
  put32(out, 65535);  // snaplen
  put32(out, 1);      // LINKTYPE_ETHERNET
  put32(out, seconds);
  put32(out, fraction);
  put32(out, static_cast<std::uint32_t>(data.size()));
  put32(out, static_cast<std::uint32_t>(data.size()));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

}  // namespace

TEST_F(PcapRoundTrip, NanosecondMagicIsAcceptedAndScaled) {
  const std::vector<std::uint8_t> data(64, 0xAB);
  // 1,600,000,000 s + 123,456,789 ns -> ..._123456 us.
  write_raw_pcap(path_, 0xA1B23C4D, /*swapped=*/false, 1'600'000'000,
                 123'456'789, data);
  PcapReader reader(path_);
  EXPECT_TRUE(reader.nanosecond_precision());
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->timestamp_us, 1'600'000'000'000'000ull + 123'456ull);
  EXPECT_EQ(record->data, data);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapRoundTrip, ByteSwappedNanosecondMagicIsAccepted) {
  const std::vector<std::uint8_t> data(48, 0x5C);
  write_raw_pcap(path_, 0xA1B23C4D, /*swapped=*/true, 7, 999'999'999, data);
  PcapReader reader(path_);
  EXPECT_TRUE(reader.nanosecond_precision());
  EXPECT_EQ(reader.snaplen(), 65535u);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->timestamp_us, 7'999'999ull);
  EXPECT_EQ(record->data, data);
}

TEST_F(PcapRoundTrip, ClassicMagicReportsMicrosecondPrecision) {
  {
    PcapWriter writer(path_);
    PcapRecord r;
    r.timestamp_us = 42;
    r.data.assign(64, 0);
    writer.write_record(r);
  }
  PcapReader reader(path_);
  EXPECT_FALSE(reader.nanosecond_precision());
}

TEST_F(PcapRoundTrip, RejectsGarbageFiles) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a pcap file at all";
  }
  EXPECT_THROW(PcapReader reader(path_), std::runtime_error);
}

TEST(Pcap, MissingFileThrows) {
  EXPECT_THROW(PcapReader reader("/nonexistent/zipline.pcap"),
               std::runtime_error);
  EXPECT_THROW(PcapWriter writer("/nonexistent/dir/zipline.pcap"),
               std::runtime_error);
}

}  // namespace
}  // namespace zipline::net
