#include "gd/codec.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::gd {
namespace {

using bits::BitVector;

BitVector random_chunk(Rng& rng, std::size_t bits = 256) {
  BitVector v(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

// A chunk whose Hamming word is a codeword (syndrome zero). Single-bit
// noise applied to such a chunk stays within the same basis — the property
// the paper's synthetic sensor workload leans on.
BitVector random_canonical_chunk(Rng& rng, const GdTransform& transform) {
  const auto& p = transform.params();
  BitVector chunk = random_chunk(rng, p.chunk_bits);
  const TransformedChunk tc = transform.forward(chunk);
  return transform.inverse(tc.excess, tc.basis, /*syndrome=*/0);
}

TEST(GdEncoder, FirstSightEmitsType2ThenType3) {
  GdEncoder enc{GdParams{}};
  Rng rng(1);
  const BitVector chunk = random_chunk(rng);
  const GdPacket first = enc.encode_chunk(chunk);
  EXPECT_EQ(first.type, PacketType::uncompressed);
  const GdPacket second = enc.encode_chunk(chunk);
  EXPECT_EQ(second.type, PacketType::compressed);
  EXPECT_EQ(enc.stats().uncompressed_packets, 1u);
  EXPECT_EQ(enc.stats().compressed_packets, 1u);
}

TEST(GdEncoder, NoisyRepeatsCompressAgainstSameBasis) {
  GdEncoder enc{GdParams{}};
  Rng rng(2);
  const BitVector chunk = random_canonical_chunk(rng, enc.transform());
  (void)enc.encode_chunk(chunk);
  // Single-bit noise on a canonical chunk shares the basis -> type 3.
  for (int i = 0; i < 20; ++i) {
    BitVector noisy = chunk;
    noisy.flip(rng.next_below(255));
    const GdPacket pkt = enc.encode_chunk(noisy);
    EXPECT_EQ(pkt.type, PacketType::compressed) << "iteration " << i;
  }
}

TEST(GdEncoder, PreloadMakesFirstPacketCompressed) {
  const GdParams params;
  const GdTransform transform(params);
  GdEncoder enc{params};
  Rng rng(3);
  const BitVector chunk = random_chunk(rng);
  enc.preload(transform.forward(chunk).basis);
  EXPECT_EQ(enc.encode_chunk(chunk).type, PacketType::compressed);
}

TEST(GdEncoder, StaticModeNeverLearns) {
  GdEncoder enc{GdParams{}, EvictionPolicy::lru, /*learn_on_miss=*/false};
  Rng rng(4);
  const BitVector chunk = random_chunk(rng);
  EXPECT_EQ(enc.encode_chunk(chunk).type, PacketType::uncompressed);
  EXPECT_EQ(enc.encode_chunk(chunk).type, PacketType::uncompressed);
  EXPECT_EQ(enc.dictionary().size(), 0u);
}

TEST(GdEncoder, StatsTrackBytesLikeFigure3) {
  GdEncoder enc{GdParams{}};
  Rng rng(5);
  const BitVector chunk = random_chunk(rng);
  (void)enc.encode_chunk(chunk);  // 33 B (type 2)
  (void)enc.encode_chunk(chunk);  // 3 B (type 3)
  (void)enc.encode_chunk(chunk);  // 3 B
  EXPECT_EQ(enc.stats().bytes_in, 96u);
  EXPECT_EQ(enc.stats().bytes_out, 39u);
  EXPECT_NEAR(enc.stats().compression_ratio(), 39.0 / 96.0, 1e-12);
}

TEST(GdCodecPair, MirroredLearningKeepsDictionariesInSync) {
  GdEncoder enc{GdParams{}};
  GdDecoder dec{GdParams{}};
  Rng rng(6);
  // Stream with repeats and noise; decoder must reconstruct all chunks.
  std::vector<BitVector> pool;
  for (int i = 0; i < 16; ++i) {
    pool.push_back(random_canonical_chunk(rng, enc.transform()));
  }
  for (int step = 0; step < 2000; ++step) {
    BitVector chunk = pool[rng.next_below(pool.size())];
    if (rng.next_bool(0.5)) chunk.flip(rng.next_below(255));
    const GdPacket pkt = enc.encode_chunk(chunk);
    EXPECT_EQ(dec.decode_chunk(pkt), chunk) << "step " << step;
  }
  EXPECT_GT(enc.stats().compressed_packets, 1900u);  // 16 misses only
}

TEST(GdCodecPair, SurvivesDictionaryChurnAndEviction) {
  // Tiny dictionary forces constant eviction; the mirrored decoder must
  // still track identifier recycling exactly.
  GdParams params;
  params.id_bits = 3;  // capacity 8
  GdEncoder enc{params};
  GdDecoder dec{params};
  Rng rng(7);
  std::vector<BitVector> pool;
  for (int i = 0; i < 64; ++i) pool.push_back(random_chunk(rng));
  std::uint64_t type3 = 0;
  for (int step = 0; step < 5000; ++step) {
    const BitVector& chunk = pool[rng.next_below(pool.size())];
    const GdPacket pkt = enc.encode_chunk(chunk);
    type3 += pkt.type == PacketType::compressed;
    EXPECT_EQ(dec.decode_chunk(pkt), chunk) << "step " << step;
  }
  EXPECT_GT(enc.dictionary().stats().evictions, 100u);
  EXPECT_GT(type3, 0u);
}

TEST(GdCodecPair, AllEvictionPoliciesStaySynchronized) {
  for (const auto policy :
       {EvictionPolicy::lru, EvictionPolicy::fifo, EvictionPolicy::random}) {
    GdParams params;
    params.id_bits = 4;
    GdEncoder enc{params, policy};
    GdDecoder dec{params, policy};
    Rng rng(8);
    std::vector<BitVector> pool;
    for (int i = 0; i < 40; ++i) pool.push_back(random_chunk(rng));
    for (int step = 0; step < 3000; ++step) {
      const BitVector& chunk = pool[rng.next_below(pool.size())];
      EXPECT_EQ(dec.decode_chunk(enc.encode_chunk(chunk)), chunk)
          << "policy " << static_cast<int>(policy) << " step " << step;
    }
  }
}

TEST(GdDecoder, UnknownCompressedIdThrows) {
  GdDecoder dec{GdParams{}};
  const auto pkt = GdPacket::make_compressed(1, BitVector(1), 5);
  EXPECT_THROW((void)dec.decode_chunk(pkt), zipline::ContractViolation);
}

TEST(GdDecoder, RawPacketPassesThrough) {
  GdDecoder dec{GdParams{}};
  const auto pkt = GdPacket::make_raw({0xDE, 0xAD});
  const BitVector out = dec.decode_chunk(pkt);
  EXPECT_EQ(out.to_bytes(), (std::vector<std::uint8_t>{0xDE, 0xAD}));
}

TEST(Chunker, SplitAndJoinRoundTrip) {
  const GdParams params;  // 32 B chunks
  const Chunker chunker(params);
  Rng rng(9);
  for (const std::size_t size : {0u, 1u, 31u, 32u, 33u, 64u, 100u, 1024u}) {
    std::vector<std::uint8_t> payload(size);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto [chunks, tail] = chunker.split(payload);
    EXPECT_EQ(chunks.size(), size / 32);
    EXPECT_EQ(tail.size(), size % 32);
    EXPECT_EQ(chunker.join(chunks, tail), payload);
  }
}

TEST(Chunker, RequiresByteAlignedChunks) {
  GdParams params;
  params.chunk_bits = 255;  // == n, not byte aligned
  EXPECT_THROW(Chunker{params}, zipline::ContractViolation);
}

TEST(GdPayloadApi, EncodeDecodePayloadEndToEnd) {
  GdEncoder enc{GdParams{}};
  GdDecoder dec{GdParams{}};
  Rng rng(10);
  // A "file" with strong chunk-level redundancy plus a ragged tail.
  const std::vector<std::uint8_t> base =
      random_canonical_chunk(rng, enc.transform()).to_bytes();
  std::vector<std::uint8_t> payload;
  for (int rep = 0; rep < 100; ++rep) {
    auto chunk = base;
    chunk[rng.next_below(32)] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    payload.insert(payload.end(), chunk.begin(), chunk.end());
  }
  payload.push_back(0x42);  // tail byte
  const auto packets = enc.encode_payload(payload);
  EXPECT_EQ(packets.size(), 101u);
  EXPECT_EQ(packets.back().type, PacketType::raw);
  EXPECT_EQ(dec.decode_payload(packets), payload);
  // Every single-bit flip of a canonical chunk keeps its basis (codeword
  // flips land in the syndrome; an MSB flip lands in the excess bit), so
  // only the very first chunk goes uncompressed.
  EXPECT_EQ(enc.stats().uncompressed_packets, 1u);
  EXPECT_EQ(enc.stats().compressed_packets, 99u);
}

}  // namespace
}  // namespace zipline::gd
