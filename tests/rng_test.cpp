#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>

namespace zipline {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) ++counts[rng.next_below(5)];
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // ~1000 expected
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0;
  double sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal(5.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(ZipfSampler, RanksAreMonotonicallyLessFrequent) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  std::array<int, 100> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 must dominate rank 9 which must dominate rank 99.
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[99]);
  // Zipf(1): p(0)/p(9) = 10; allow generous tolerance.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[9], 10.0, 3.0);
}

TEST(ZipfSampler, SingleElementAlwaysRankZero) {
  Rng rng(31);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

}  // namespace
}  // namespace zipline
