// Batch engine correctness: the batch path must be byte-identical to the
// per-chunk GdEncoder/GdDecoder adapter path (they are the same state
// machine), round-trip losslessly under every eviction policy and batch
// size, and stream into sinks without changing a byte.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "engine/sink.hpp"
#include "gd/codec.hpp"
#include "net/pcap.hpp"

namespace zipline::engine {
namespace {

using gd::EvictionPolicy;
using gd::GdParams;
using gd::PacketType;

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t count) {
  std::vector<std::uint8_t> out(count);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

/// Payload with redundancy: chunks drawn from a small pool with single-bit
/// noise, so hits, misses and (with a small dictionary) evictions all occur.
std::vector<std::uint8_t> redundant_payload(Rng& rng, std::size_t chunks,
                                            std::size_t chunk_bytes,
                                            std::size_t pool_size) {
  std::vector<std::vector<std::uint8_t>> pool;
  pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(random_bytes(rng, chunk_bytes));
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(chunks * chunk_bytes);
  for (std::size_t i = 0; i < chunks; ++i) {
    auto chunk = pool[rng.next_below(pool.size())];
    if (rng.next_bool(0.5)) {
      chunk[rng.next_below(chunk.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    payload.insert(payload.end(), chunk.begin(), chunk.end());
  }
  return payload;
}

class BatchProperty
    : public ::testing::TestWithParam<std::tuple<EvictionPolicy, std::size_t>> {
};

// The acceptance property: random payloads, all three eviction policies,
// batch sizes 1/7/64 — batch results byte-identical to the per-chunk
// adapter, and decode restores the exact input.
TEST_P(BatchProperty, ByteIdenticalToAdapterAndLossless) {
  const auto [policy, batch_chunks] = GetParam();
  GdParams params;
  params.id_bits = 4;  // 16 entries: small enough to force evictions
  Rng rng(0xE11 + static_cast<std::uint64_t>(batch_chunks) * 31 +
          static_cast<std::uint64_t>(policy));

  Engine batch_encoder{params, policy};
  Engine batch_decoder{params, policy};
  gd::GdEncoder adapter_encoder{params, policy};
  gd::GdDecoder adapter_decoder{params, policy};

  EncodeBatch encoded;
  DecodeBatch decoded;
  for (int round = 0; round < 8; ++round) {
    // Odd tail on some rounds exercises the raw record path.
    const std::size_t tail = (round % 2 == 0) ? 0 : 5 + rng.next_below(20);
    const auto payload = [&] {
      auto p = redundant_payload(rng, batch_chunks,
                                 params.raw_payload_bytes(), 24);
      const auto extra = random_bytes(rng, tail);
      p.insert(p.end(), extra.begin(), extra.end());
      return p;
    }();

    encoded.clear();
    batch_encoder.encode_payload(payload, encoded);
    const auto adapter_packets = adapter_encoder.encode_payload(payload);

    // Packet-for-packet byte identity with the per-chunk adapter.
    ASSERT_EQ(encoded.size(), adapter_packets.size());
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      EXPECT_EQ(encoded.packet(i).type, adapter_packets[i].type);
      const auto serialized = adapter_packets[i].serialize(params);
      const auto view = encoded.payload(i);
      ASSERT_EQ(view.size(), serialized.size());
      EXPECT_TRUE(std::equal(view.begin(), view.end(), serialized.begin()));
    }

    // Identical statistics: same transitions, same accounting.
    EXPECT_EQ(batch_encoder.stats().chunks, adapter_encoder.stats().chunks);
    EXPECT_EQ(batch_encoder.stats().compressed_packets,
              adapter_encoder.stats().compressed_packets);
    EXPECT_EQ(batch_encoder.stats().uncompressed_packets,
              adapter_encoder.stats().uncompressed_packets);
    EXPECT_EQ(batch_encoder.stats().bytes_in,
              adapter_encoder.stats().bytes_in);
    EXPECT_EQ(batch_encoder.stats().bytes_out,
              adapter_encoder.stats().bytes_out);

    // Batch decode restores the exact payload.
    decoded.clear();
    batch_decoder.decode_batch(encoded, decoded);
    ASSERT_EQ(decoded.bytes().size(), payload.size());
    EXPECT_TRUE(std::equal(decoded.bytes().begin(), decoded.bytes().end(),
                           payload.begin()));

    // And so does the adapter decoder fed the adapter packets (mirrored
    // dictionaries stay in sync across both representations).
    EXPECT_EQ(adapter_decoder.decode_payload(adapter_packets), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndBatchSizes, BatchProperty,
    ::testing::Combine(::testing::Values(EvictionPolicy::lru,
                                         EvictionPolicy::fifo,
                                         EvictionPolicy::random),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{64})));

// The split-phase path (transform -> resolve -> emit, the shared-
// dictionary pipeline's shape) must compose to the exact bytes and stats
// of the single-pass encode_payload / decode_batch, for both directions.
TEST(EngineSplitPhase, ComposesToSinglePassBytesAndStats) {
  GdParams params;
  params.id_bits = 5;  // evictions under load
  Rng rng(0x591);
  const auto payload =
      redundant_payload(rng, 64, params.raw_payload_bytes(), 12);
  std::vector<std::uint8_t> ragged = payload;
  ragged.resize(ragged.size() + 7, 0xAB);  // raw tail

  Engine single{params};
  Engine split{params};
  EncodeBatch single_batch;
  single.encode_payload(ragged, single_batch);

  EncodeUnit unit;
  EncodeBatch split_batch;
  split.encode_transform(ragged, unit);
  split.encode_resolve(unit);
  split.encode_emit(unit, split_batch);

  ASSERT_EQ(split_batch.size(), single_batch.size());
  for (std::size_t i = 0; i < single_batch.size(); ++i) {
    EXPECT_EQ(split_batch.packet(i).type, single_batch.packet(i).type);
    const auto a = single_batch.payload(i);
    const auto b = split_batch.payload(i);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "packet " << i;
  }
  EXPECT_EQ(split.stats().chunks, single.stats().chunks);
  EXPECT_EQ(split.stats().compressed_packets,
            single.stats().compressed_packets);
  EXPECT_EQ(split.stats().bytes_out, single.stats().bytes_out);
  EXPECT_EQ(split.stats().batches, single.stats().batches);

  // Decode side: parse -> resolve -> emit equals decode_batch.
  Engine dec_single{params};
  Engine dec_split{params};
  DecodeBatch out_single;
  dec_single.decode_batch(single_batch, out_single);

  DecodeUnit dunit;
  DecodeBatch out_split;
  dec_split.decode_parse(split_batch, dunit);
  dec_split.decode_resolve(dunit);
  dec_split.decode_emit(dunit, out_split);

  const auto x = out_single.bytes();
  const auto y = out_split.bytes();
  ASSERT_TRUE(std::equal(x.begin(), x.end(), y.begin(), y.end()));
  EXPECT_EQ(std::vector<std::uint8_t>(y.begin(), y.end()), ragged);
  EXPECT_EQ(dec_split.stats().uncompressed_packets,
            dec_single.stats().uncompressed_packets);
  EXPECT_EQ(dec_split.stats().bytes_in, dec_single.stats().bytes_in);
}

TEST(EncodeBatch, ClearKeepsCapacity) {
  Engine engine{GdParams{}};
  Rng rng(2);
  const auto payload = random_bytes(rng, 64 * 32);
  EncodeBatch batch;
  engine.encode_payload(payload, batch);
  EXPECT_EQ(batch.size(), 64u);
  const auto bytes_before = batch.storage_bytes();
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.storage_bytes(), 0u);
  engine.encode_payload(payload, batch);  // second pass: all hits -> type 3
  EXPECT_EQ(batch.size(), 64u);
  EXPECT_LT(batch.storage_bytes(), bytes_before);
  for (const PacketDesc& desc : batch.packets()) {
    EXPECT_EQ(desc.type, PacketType::compressed);
  }
}

TEST(EngineSinks, CountingSinkMatchesDescriptors) {
  GdParams params;
  Engine engine{params};
  Rng rng(3);
  auto payload = random_bytes(rng, 10 * params.raw_payload_bytes());
  payload.resize(payload.size() + 3);  // raw tail
  EncodeBatch batch;
  engine.encode_payload(payload, batch);

  CountingSink counter;
  drain(batch, counter);
  EXPECT_EQ(counter.packets, batch.size());
  EXPECT_EQ(counter.payload_bytes, batch.storage_bytes());
  EXPECT_EQ(counter.raw, 1u);
  EXPECT_EQ(counter.uncompressed + counter.compressed, 10u);
  EXPECT_EQ(counter.uncompressed, engine.stats().uncompressed_packets);
  EXPECT_EQ(counter.compressed, engine.stats().compressed_packets);
}

TEST(EngineSinks, FrameSinkRoundTripsThroughEthernet) {
  GdParams params;
  Engine encoder{params};
  Engine decoder{params};
  Rng rng(4);
  const auto payload = random_bytes(rng, 16 * params.raw_payload_bytes());
  EncodeBatch batch;
  encoder.encode_payload(payload, batch);

  DecodeBatch decoded;
  FrameSink frames(net::MacAddress::local(1), net::MacAddress::local(2),
                   [&](const net::EthernetFrame& frame) {
                     decoder.decode_wire(
                         gd::packet_type_for_ether(frame.ether_type),
                         frame.payload, decoded);
                   });
  drain(batch, frames);
  ASSERT_EQ(decoded.bytes().size(), payload.size());
  EXPECT_TRUE(std::equal(decoded.bytes().begin(), decoded.bytes().end(),
                         payload.begin()));
}

TEST(EngineSinks, PcapSinkWritesReadableCapture) {
  const std::string path = "/tmp/zipline_engine_sink_test.pcap";
  GdParams params;
  Engine encoder{params};
  Rng rng(5);
  const auto payload = random_bytes(rng, 8 * params.raw_payload_bytes());
  EncodeBatch batch;
  encoder.encode_payload(payload, batch);
  {
    net::PcapWriter writer(path);
    PcapSink sink(writer, net::MacAddress::local(1),
                  net::MacAddress::local(2));
    drain(batch, sink);
  }

  Engine decoder{params};
  DecodeBatch decoded;
  net::PcapReader reader(path);
  std::size_t frames = 0;
  while (auto record = reader.next()) {
    const auto frame = net::EthernetFrame::parse(record->data,
                                                 /*verify_fcs=*/false);
    decoder.decode_wire(gd::packet_type_for_ether(frame.ether_type),
                        frame.payload, decoded);
    ++frames;
  }
  EXPECT_EQ(frames, batch.size());
  ASSERT_EQ(decoded.bytes().size(), payload.size());
  EXPECT_TRUE(std::equal(decoded.bytes().begin(), decoded.bytes().end(),
                         payload.begin()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zipline::engine
