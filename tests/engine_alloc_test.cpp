// Allocation-counting hook for the engine's line-rate claim: in steady
// state (dictionary warm, arena capacities grown) the batch encode and
// decode paths must perform ZERO heap allocations per chunk.
//
// The hook replaces the global operator new/delete for this test binary
// and counts every allocation; the tests warm an engine up, then assert
// the counter does not move across many full batches.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "hamming/hamming.hpp"
#include "engine/parallel.hpp"
#include "io/buffer_pool.hpp"
#include "io/memory_ring.hpp"
#include "io/node.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded ? padded : align)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace zipline::engine {
namespace {

std::vector<std::uint8_t> random_payload(Rng& rng, std::size_t bytes) {
  std::vector<std::uint8_t> out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(EngineAllocation, HookCountsAllocations) {
  const std::uint64_t before = allocation_count();
  auto* sink = new std::vector<int>(128);
  delete sink;
  EXPECT_GT(allocation_count(), before);
}

// The acceptance criterion: batch-64 encode, steady state, zero heap
// allocations per chunk.
TEST(EngineAllocation, Batch64EncodeSteadyStateIsAllocationFree) {
  const gd::GdParams params;
  Engine engine{params};
  Rng rng(0xA110C);
  const auto payload = random_payload(rng, 64 * params.raw_payload_bytes());

  EncodeBatch batch;
  // Warmup: learn every basis, grow the arena and all scratch buffers.
  for (int i = 0; i < 4; ++i) {
    batch.clear();
    engine.encode_payload(payload, batch);
  }

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 50; ++i) {
    batch.clear();
    engine.encode_payload(payload, batch);
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state batch encode must not touch the heap";
  EXPECT_EQ(batch.size(), 64u);
}

TEST(EngineAllocation, Batch64DecodeSteadyStateIsAllocationFree) {
  const gd::GdParams params;
  Engine encoder{params};
  Engine decoder{params};
  Rng rng(0xDEC0DE);
  const auto payload = random_payload(rng, 64 * params.raw_payload_bytes());

  EncodeBatch encoded;
  encoder.encode_payload(payload, encoded);
  DecodeBatch decoded;
  for (int i = 0; i < 4; ++i) {
    decoded.clear();
    decoder.decode_batch(encoded, decoded);
  }

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 50; ++i) {
    decoded.clear();
    decoder.decode_batch(encoded, decoded);
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state batch decode must not touch the heap";
  EXPECT_EQ(decoded.bytes().size(), payload.size());
}

// The worker pool inherits the engine's discipline: job slots, rings and
// per-flow engines are fixed after warmup, so a steady-state submit/flush
// cycle performs zero heap allocations on ANY thread (the counter below is
// process-global, so worker-thread allocations would trip it too).
TEST(EngineAllocation, WorkerPoolSteadyStateIsAllocationFree) {
  const gd::GdParams params;
  ParallelOptions options;
  options.workers = 2;
  options.queue_depth = 4;
  options.dictionary_shards = 2;

  Rng rng(0x9001);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int flow = 0; flow < 4; ++flow) {
    payloads.push_back(random_payload(rng, 32 * params.raw_payload_bytes()));
  }

  std::uint64_t sink_bytes = 0;
  ParallelEncoder pool(params, options,
                       [&](const ParallelEncoder::Unit& unit) {
                         sink_bytes += unit.output->storage_bytes();
                       });
  // Warmup: create every flow engine, learn every basis, grow all arenas.
  for (int round = 0; round < 4; ++round) {
    for (std::uint32_t flow = 0; flow < 4; ++flow) {
      pool.submit(flow, payloads[flow]);
    }
    pool.flush();
  }

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 25; ++round) {
    for (std::uint32_t flow = 0; flow < 4; ++flow) {
      pool.submit(flow, payloads[flow]);
    }
    pool.flush();
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state worker-pool encode must not touch the heap";
  EXPECT_EQ(pool.delivered(), pool.submitted());
  EXPECT_GT(sink_bytes, 0u);
}

// The shared-dictionary pipeline keeps the discipline: the one dictionary
// service, the per-worker engines, the split-phase unit scratch and the
// steering map are all warm after a few rounds, so steady-state
// submit/flush cycles allocate nothing on any thread even though every
// dictionary op takes a shard lock and every resolve phase crosses the
// turnstile.
TEST(EngineAllocation, SharedDictionaryPoolSteadyStateIsAllocationFree) {
  const gd::GdParams params;
  ParallelOptions options;
  options.workers = 2;
  options.queue_depth = 4;
  options.dictionary_shards = 2;
  options.ownership = DictionaryOwnership::shared;
  options.steering = FlowSteering::load_aware;

  Rng rng(0x5A4ED);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int flow = 0; flow < 4; ++flow) {
    payloads.push_back(random_payload(rng, 32 * params.raw_payload_bytes()));
  }

  std::uint64_t sink_bytes = 0;
  ParallelEncoder pool(params, options,
                       [&](const ParallelEncoder::Unit& unit) {
                         sink_bytes += unit.output->storage_bytes();
                       });
  for (int round = 0; round < 4; ++round) {
    for (std::uint32_t flow = 0; flow < 4; ++flow) {
      pool.submit(flow, payloads[flow]);
    }
    pool.flush();
  }

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 25; ++round) {
    for (std::uint32_t flow = 0; flow < 4; ++flow) {
      pool.submit(flow, payloads[flow]);
    }
    pool.flush();
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state shared-dictionary encode must not touch the heap";
  EXPECT_EQ(pool.delivered(), pool.submitted());
  EXPECT_GT(sink_bytes, 0u);
}

// The io burst rings inherit the arena discipline: slots copy bursts in
// and out through grow-only vectors, so a ring cycling same-shaped
// bursts — the DPDK-style steady state — never touches the heap once
// slots and the pop-side burst have grown to the working set.
TEST(EngineAllocation, MemoryRingSteadyStateIsAllocationFree) {
  const gd::GdParams params;
  Rng rng(0x12116);
  io::Burst burst;
  for (int p = 0; p < 16; ++p) {
    io::PacketMeta meta;
    meta.flow = static_cast<std::uint32_t>(p % 4);
    burst.append(gd::PacketType::raw, 0, 0,
                 random_payload(rng, 8 * params.raw_payload_bytes()), meta);
  }

  io::MemoryRing ring(4);
  io::Burst popped;
  // Warmup: grow every slot arena and the pop-side burst.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(burst));
    ASSERT_TRUE(ring.try_pop(popped));
  }

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.try_push(burst));
    ASSERT_TRUE(ring.try_pop(popped));
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state ring push/pop must not touch the heap";
  EXPECT_EQ(popped.size(), burst.size());
}

// The full source -> Node -> sink loop on rings: after warmup (flows
// learned, arenas grown, rings cycled) a whole burst pass through a
// serial node allocates nothing.
TEST(EngineAllocation, RingNodeRingSteadyStateIsAllocationFree) {
  const gd::GdParams params;
  Rng rng(0x10D3);
  io::Burst in;
  for (int p = 0; p < 8; ++p) {
    io::PacketMeta meta;
    meta.flow = static_cast<std::uint32_t>(p % 2);
    in.append(gd::PacketType::raw, 0, 0,
              random_payload(rng, 16 * params.raw_payload_bytes()), meta);
  }

  io::Node node(io::NodeOptions{}.with_params(params));
  io::MemoryRing ring(2);
  io::Burst staged;
  io::Burst out;
  for (int i = 0; i < 8; ++i) {  // warmup: learn + grow
    ASSERT_TRUE(ring.try_push(in));
    ASSERT_TRUE(ring.try_pop(staged));
    out.clear();
    node.process(staged, out);
  }

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ring.try_push(in));
    ASSERT_TRUE(ring.try_pop(staged));
    out.clear();
    node.process(staged, out);
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state ring -> node -> burst pass must not touch the heap";
  EXPECT_GT(out.size(), 0u);
}

// The buffer pool is the ring discipline one level down: every pooled
// segment is carved from one slab in the constructor, so steady-state
// acquire / copy-ref / out-of-order release traffic recycles through the
// lock-free free list without touching the heap. (Overflow fallbacks DO
// allocate — that is their documented job — hence the stats check.)
TEST(EngineAllocation, BufferPoolSteadyStateIsAllocationFree) {
  io::BufferPool pool(4096, 8);
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 100; ++i) {
    io::SegmentRef a = pool.acquire(4096);
    io::SegmentRef b = pool.acquire(64);
    io::SegmentRef shared = a;  // refcount traffic is heap-free too
    a.reset();                  // released out of order vs b
  }
  EXPECT_EQ(allocation_count(), before)
      << "steady-state pool acquire/release must not touch the heap";
  EXPECT_EQ(pool.stats().overflow_allocations, 0u);
  EXPECT_EQ(pool.free_segments(), 8u);
}

// Segment-backed bursts through a ring — the pooled-source steady state:
// pushes share segment refs, pops swap slots out, so the cycle is both
// allocation-free AND payload-copy-free.
TEST(EngineAllocation, SegmentBurstRingSteadyStateIsCopyAndAllocationFree) {
  Rng rng(0x5E6);
  io::BufferPool pool(16384, 8);
  io::SegmentWriter writer(pool);
  io::Burst burst;
  const auto payload = random_payload(rng, 1024);
  for (int p = 0; p < 16; ++p) {
    io::PacketMeta meta;
    meta.flow = static_cast<std::uint32_t>(p % 4);
    burst.append_segment(gd::PacketType::raw, 0, 0, writer.write(payload),
                         writer.segment(), meta);
  }

  io::MemoryRing ring(4);
  io::Burst popped;
  for (int i = 0; i < 8; ++i) {  // warmup: grow slot vectors
    ASSERT_TRUE(ring.try_push(burst));
    ASSERT_TRUE(ring.try_pop(popped));
  }

  const std::uint64_t before_alloc = allocation_count();
  const std::uint64_t before_copied = ring.stats().bytes_copied;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.try_push(burst));
    ASSERT_TRUE(ring.try_pop(popped));
  }
  EXPECT_EQ(allocation_count(), before_alloc)
      << "steady-state segment-burst ring cycle must not touch the heap";
  EXPECT_EQ(ring.stats().bytes_copied, before_copied)
      << "segment-backed pushes must move refs, not payload bytes";
  EXPECT_EQ(popped.payload(0).data(), burst.payload(0).data());
}

// encode() routes through expand_into; with a warmed output vector the
// scratch-flavoured expansion must never touch the heap — the allocation
// half of the encode-reroute regression (hamming_test pins identity).
TEST(EngineAllocation, HammingExpandIntoSteadyStateIsAllocationFree) {
  const hamming::HammingCode code(8);
  Rng rng(0x4A11);
  bits::BitVector message(code.k());
  for (std::size_t i = 0; i < code.k(); ++i) {
    if (rng.next_bool(0.5)) message.set(i);
  }
  bits::BitVector out;
  code.expand_into(message, 0, out);  // warm the output capacity
  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 100; ++i) {
    code.expand_into(message, 0, out);
  }
  EXPECT_EQ(allocation_count(), before)
      << "warmed expand_into must not allocate";
  EXPECT_TRUE(code.is_codeword(out));
}

// The contrast case documenting what the adapters cost: the per-chunk
// GdPacket path allocates (it returns owning packets), which is exactly
// why batch consumers should hold an Engine instead.
TEST(EngineAllocation, PerChunkAdapterPathAllocates) {
  const gd::GdParams params;
  Engine engine{params};
  Rng rng(0xADA);
  bits::BitVector chunk(params.chunk_bits);
  for (std::size_t i = 0; i < params.chunk_bits; ++i) {
    if (rng.next_bool(0.5)) chunk.set(i);
  }
  (void)engine.encode_chunk_packet(chunk);  // learn
  const std::uint64_t before = allocation_count();
  (void)engine.encode_chunk_packet(chunk);
  EXPECT_GT(allocation_count(), before);
}

}  // namespace
}  // namespace zipline::engine
