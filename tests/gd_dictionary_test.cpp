#include "gd/dictionary.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::gd {
namespace {

using bits::BitVector;

BitVector basis_of(std::uint64_t value) { return BitVector(64, value); }

TEST(BasisDictionary, AllocatesIdsInIncreasingOrder) {
  BasisDictionary dict(8, EvictionPolicy::lru);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const InsertResult r = dict.insert(basis_of(i));
    EXPECT_EQ(r.id, i);
    EXPECT_FALSE(r.evicted.has_value());
  }
  EXPECT_EQ(dict.size(), 8u);
}

TEST(BasisDictionary, LookupHitReturnsIdAndCounts) {
  BasisDictionary dict(4, EvictionPolicy::lru);
  dict.insert(basis_of(10));
  dict.insert(basis_of(20));
  EXPECT_EQ(dict.lookup(basis_of(10)), std::optional<std::uint32_t>(0));
  EXPECT_EQ(dict.lookup(basis_of(20)), std::optional<std::uint32_t>(1));
  EXPECT_EQ(dict.lookup(basis_of(30)), std::nullopt);
  EXPECT_EQ(dict.stats().hits, 2u);
  EXPECT_EQ(dict.stats().misses, 1u);
}

TEST(BasisDictionary, PeekDoesNotAffectStatsOrRecency) {
  BasisDictionary dict(2, EvictionPolicy::lru);
  dict.insert(basis_of(1));
  dict.insert(basis_of(2));
  EXPECT_TRUE(dict.peek(basis_of(1)).has_value());
  EXPECT_EQ(dict.stats().hits, 0u);
  // Peek must not refresh: inserting a third basis evicts basis 1 (oldest).
  const InsertResult r = dict.insert(basis_of(3));
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, basis_of(1));
}

TEST(BasisDictionary, LruEvictsLeastRecentlyUsed) {
  BasisDictionary dict(3, EvictionPolicy::lru);
  dict.insert(basis_of(1));  // id 0
  dict.insert(basis_of(2));  // id 1
  dict.insert(basis_of(3));  // id 2
  // Touch 1 and 3; basis 2 becomes the LRU.
  EXPECT_TRUE(dict.lookup(basis_of(1)).has_value());
  EXPECT_TRUE(dict.lookup(basis_of(3)).has_value());
  const InsertResult r = dict.insert(basis_of(4));
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, basis_of(2));
  EXPECT_EQ(r.id, 1u);  // recycled identifier
  EXPECT_EQ(dict.stats().evictions, 1u);
  EXPECT_EQ(dict.lookup(basis_of(2)), std::nullopt);
}

TEST(BasisDictionary, FifoIgnoresHitsForEviction) {
  BasisDictionary dict(3, EvictionPolicy::fifo);
  dict.insert(basis_of(1));
  dict.insert(basis_of(2));
  dict.insert(basis_of(3));
  // Heavy hits on basis 1 must not save it under FIFO.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(dict.lookup(basis_of(1)).has_value());
  const InsertResult r = dict.insert(basis_of(4));
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, basis_of(1));
}

TEST(BasisDictionary, RandomEvictionIsDeterministicPerSeed) {
  BasisDictionary a(16, EvictionPolicy::random, 42);
  BasisDictionary b(16, EvictionPolicy::random, 42);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const InsertResult ra = a.insert(basis_of(i));
    const InsertResult rb = b.insert(basis_of(i));
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.evicted.has_value(), rb.evicted.has_value());
    if (ra.evicted) {
      EXPECT_EQ(*ra.evicted, *rb.evicted);
    }
  }
}

TEST(BasisDictionary, LookupBasisReturnsInstalledMapping) {
  BasisDictionary dict(4, EvictionPolicy::lru);
  dict.insert(basis_of(77));
  EXPECT_EQ(dict.lookup_basis(0), std::optional<BitVector>(basis_of(77)));
  EXPECT_EQ(dict.lookup_basis(1), std::nullopt);
  EXPECT_THROW((void)dict.lookup_basis(4), zipline::ContractViolation);
}

TEST(BasisDictionary, InstallOverwritesPreviousOccupant) {
  BasisDictionary dict(4, EvictionPolicy::lru);
  dict.insert(basis_of(1));  // id 0
  dict.install(0, basis_of(9));
  EXPECT_EQ(dict.lookup_basis(0), std::optional<BitVector>(basis_of(9)));
  EXPECT_EQ(dict.lookup(basis_of(1)), std::nullopt);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(BasisDictionary, InstallDisplacingLiveEntryCountsEviction) {
  // Regression: install() used to replace a live mapping without counting
  // the displaced basis as evicted, so control-plane-driven churn was
  // invisible in the stats.
  BasisDictionary dict(4, EvictionPolicy::lru);
  dict.insert(basis_of(1));  // id 0
  EXPECT_EQ(dict.stats().evictions, 0u);
  dict.install(0, basis_of(9));  // displaces the live basis 1
  EXPECT_EQ(dict.stats().evictions, 1u);
  dict.install(0, basis_of(9));  // identical re-install: a refresh
  EXPECT_EQ(dict.stats().evictions, 1u);
  dict.install(1, basis_of(5));  // free identifier: nothing displaced
  EXPECT_EQ(dict.stats().evictions, 1u);
  // Moving a basis between identifiers frees the old slot rather than
  // displacing another basis: not an eviction either.
  dict.install(2, basis_of(5));
  EXPECT_EQ(dict.stats().evictions, 1u);
}

TEST(BasisDictionary, InstallIntoFreeIdRemovesItFromPool) {
  BasisDictionary dict(4, EvictionPolicy::lru);
  dict.install(2, basis_of(5));
  EXPECT_EQ(dict.lookup_basis(2), std::optional<BitVector>(basis_of(5)));
  // Fresh inserts must not collide with the installed id.
  for (std::uint64_t i = 0; i < 3; ++i) {
    const InsertResult r = dict.insert(basis_of(100 + i));
    EXPECT_NE(r.id, 2u);
    EXPECT_FALSE(r.evicted.has_value());
  }
  EXPECT_EQ(dict.size(), 4u);
}

TEST(BasisDictionary, InstallSameBasisTwiceMovesIt) {
  BasisDictionary dict(4, EvictionPolicy::lru);
  dict.install(0, basis_of(5));
  dict.install(3, basis_of(5));  // same basis moved to id 3
  EXPECT_EQ(dict.lookup_basis(3), std::optional<BitVector>(basis_of(5)));
  EXPECT_EQ(dict.lookup_basis(0), std::nullopt);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(BasisDictionary, EraseFreesIdentifier) {
  BasisDictionary dict(2, EvictionPolicy::lru);
  dict.insert(basis_of(1));
  dict.insert(basis_of(2));
  dict.erase(0);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.lookup(basis_of(1)), std::nullopt);
  // The freed id is reused before any eviction.
  const InsertResult r = dict.insert(basis_of(3));
  EXPECT_EQ(r.id, 0u);
  EXPECT_FALSE(r.evicted.has_value());
  // Erasing an unused id is a no-op.
  EXPECT_NO_THROW(dict.erase(0));
}

TEST(BasisDictionary, DuplicateInsertForbidden) {
  BasisDictionary dict(4, EvictionPolicy::lru);
  dict.insert(basis_of(1));
  EXPECT_THROW(dict.insert(basis_of(1)), zipline::ContractViolation);
}

TEST(BasisDictionary, TouchRefreshesRecency) {
  BasisDictionary dict(2, EvictionPolicy::lru);
  dict.insert(basis_of(1));  // id 0
  dict.insert(basis_of(2));  // id 1
  dict.touch(0);             // basis 1 becomes most recent
  const InsertResult r = dict.insert(basis_of(3));
  ASSERT_TRUE(r.evicted.has_value());
  EXPECT_EQ(*r.evicted, basis_of(2));
}

// Model-based property test: a reference map + recency vector must agree
// with the dictionary across thousands of random operations.
class DictionaryModelTest : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(DictionaryModelTest, AgreesWithReferenceModel) {
  const EvictionPolicy policy = GetParam();
  constexpr std::size_t kCapacity = 32;
  BasisDictionary dict(kCapacity, policy, /*random_seed=*/7);
  Rng rng(1234);

  std::vector<std::uint64_t> contents;  // model: basis values present
  std::uint64_t next_basis = 0;

  for (int step = 0; step < 5000; ++step) {
    if (rng.next_bool(0.6) && !contents.empty()) {
      // Lookup of a random present basis must hit.
      const std::uint64_t value =
          contents[rng.next_below(contents.size())];
      EXPECT_TRUE(dict.lookup(basis_of(value)).has_value());
    } else {
      const std::uint64_t value = next_basis++;
      const InsertResult r = dict.insert(basis_of(value));
      if (contents.size() == kCapacity) {
        ASSERT_TRUE(r.evicted.has_value());
        const std::uint64_t evicted_value = r.evicted->to_uint64();
        const auto it =
            std::find(contents.begin(), contents.end(), evicted_value);
        ASSERT_NE(it, contents.end());
        contents.erase(it);
      } else {
        EXPECT_FALSE(r.evicted.has_value());
      }
      contents.push_back(value);
    }
    EXPECT_EQ(dict.size(), contents.size());
  }
  // Every modeled basis must still be resolvable, and evicted ones gone.
  for (const std::uint64_t value : contents) {
    EXPECT_TRUE(dict.peek(basis_of(value)).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, DictionaryModelTest,
                         ::testing::Values(EvictionPolicy::lru,
                                           EvictionPolicy::fifo,
                                           EvictionPolicy::random));

// Regression guard for the fingerprint prefilter: hit/miss accounting must
// be exactly what it was without the prefilter, skips must only ever be a
// subset of misses, and a prefilter skip must never mask a resident basis.
TEST(BasisDictionary, PrefilterPreservesHitMissAccounting) {
  BasisDictionary dict(64, EvictionPolicy::lru);
  Rng rng(0xF1173);
  std::vector<BitVector> present;
  for (std::uint64_t i = 0; i < 64; ++i) {
    present.push_back(basis_of(rng.next_u64()));
    dict.insert(present.back());
  }
  std::uint64_t expected_hits = 0;
  std::uint64_t expected_misses = 0;
  for (int round = 0; round < 2000; ++round) {
    if (rng.next_bool(0.5)) {
      // Every resident basis must still be found (no false negatives).
      const auto& basis = present[rng.next_below(present.size())];
      EXPECT_TRUE(dict.lookup(basis).has_value());
      ++expected_hits;
    } else {
      EXPECT_FALSE(dict.lookup(basis_of(rng.next_u64())).has_value());
      ++expected_misses;
    }
  }
  const auto& stats = dict.stats();
  EXPECT_EQ(stats.hits, expected_hits);
  EXPECT_EQ(stats.misses, expected_misses);
  EXPECT_LE(stats.prefilter_skips, stats.misses);
  // 64 resident fingerprints out of 4096: the vast majority of random
  // misses must short-circuit before the full-basis hash.
  EXPECT_GT(stats.prefilter_skips, expected_misses / 2);
}

TEST(BasisDictionary, PrefilterStillSkipsAtFullOccupancy) {
  // The table scales with capacity (~8 buckets per identifier), so even a
  // completely full dictionary — the steady state on real traffic — must
  // keep short-circuiting most random misses.
  BasisDictionary dict(4096, EvictionPolicy::lru);
  Rng rng(0xF0CC);
  while (dict.size() < 4096) {
    const BitVector basis = basis_of(rng.next_u64());
    if (!dict.peek(basis)) dict.insert(basis);
  }
  std::uint64_t misses = 0;
  for (int i = 0; i < 4000; ++i) {
    if (!dict.lookup(basis_of(rng.next_u64()))) ++misses;
  }
  EXPECT_GT(misses, 3900u);
  // 4096 resident fingerprints in 2^15 buckets: ~88% expected skip rate.
  EXPECT_GT(dict.stats().prefilter_skips, misses * 3 / 4);
}

TEST(BasisDictionary, PrefilterTracksEvictionsAndErases) {
  // Capacity 2 with heavy churn: every eviction/erase must release its
  // fingerprint, or stale counts would suppress future skips (and a
  // missing release would trip the ZL_EXPECTS underflow guard).
  BasisDictionary dict(2, EvictionPolicy::fifo);
  Rng rng(0xE1A5E);
  for (int i = 0; i < 500; ++i) {
    const BitVector basis = basis_of(rng.next_u64());
    if (!dict.lookup(basis)) dict.insert(basis);
    if (i % 7 == 0) dict.erase(static_cast<std::uint32_t>(i % 2));
  }
  // After churn, misses on fresh bases still mostly skip: the counted
  // table has at most 2 live fingerprints.
  const std::uint64_t skips_before = dict.stats().prefilter_skips;
  std::uint64_t misses = 0;
  for (int i = 0; i < 200; ++i) {
    if (!dict.lookup(basis_of(rng.next_u64()))) ++misses;
  }
  EXPECT_GT(misses, 190u);
  EXPECT_GT(dict.stats().prefilter_skips, skips_before + misses / 2);
}

}  // namespace
}  // namespace zipline::gd
