// The shared dictionary service: thread-safety of the striped-lock
// ConcurrentShardedDictionary, the DictionaryHandle ownership seam, the
// hash-once lookup path, and the acceptance property that dictionary
// memory does NOT scale with the worker count (one service per direction).
#include "gd/concurrent_dictionary.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "engine/parallel.hpp"
#include "gd/dictionary_handle.hpp"

namespace zipline::gd {
namespace {

bits::BitVector random_basis(Rng& rng, std::size_t bits = 247) {
  bits::BitVector v(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

// Single-threaded, the concurrent wrapper must make exactly the decisions
// of the plain deterministic dictionary — the locks change nothing.
TEST(ConcurrentDictionary, SingleThreadedMatchesShardedDictionary) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    ShardedDictionary plain(64, EvictionPolicy::lru, shards);
    ConcurrentShardedDictionary locked(64, EvictionPolicy::lru, shards);
    Rng rng(0xC0C0 + shards);
    std::vector<bits::BitVector> bases;
    for (int i = 0; i < 200; ++i) bases.push_back(random_basis(rng));

    for (const auto& basis : bases) {
      const auto a = plain.lookup(basis);
      const auto b = locked.lookup(basis);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_EQ(*a, *b);
      } else {
        ASSERT_EQ(plain.insert(basis).id, locked.insert(basis).id);
      }
    }
    EXPECT_EQ(plain.size(), locked.size());
    EXPECT_EQ(plain.stats().insertions, locked.stats().insertions);
    EXPECT_EQ(plain.stats().evictions, locked.stats().evictions);
  }
}

// The hash-once overloads are equivalent to the hashing ones (the sharded
// router threads basis.hash() through lookup/insert/install so the basis
// is hashed exactly once per operation).
TEST(ConcurrentDictionary, PrecomputedHashOverloadsMatch) {
  BasisDictionary dict(32, EvictionPolicy::lru);
  Rng rng(0x4A54);
  std::vector<bits::BitVector> bases;
  for (int i = 0; i < 64; ++i) bases.push_back(random_basis(rng));

  for (const auto& basis : bases) {
    const std::uint64_t hash = basis.hash();
    EXPECT_EQ(dict.lookup(basis, hash), dict.lookup(basis));
    EXPECT_EQ(dict.peek(basis, hash), dict.peek(basis));
    if (!dict.peek(basis, hash)) {
      (void)dict.insert(basis, hash);
      EXPECT_EQ(dict.peek(basis), dict.peek(basis, hash));
    }
  }

  // install with a precomputed hash round-trips through lookup, and the
  // displaced mapping is fully forgotten.
  BasisDictionary target(8, EvictionPolicy::fifo);
  const auto a = random_basis(rng);
  const auto b = random_basis(rng);
  target.install(3, a, a.hash());
  EXPECT_EQ(target.lookup(a), std::optional<std::uint32_t>{3});
  target.install(3, b, b.hash());
  EXPECT_EQ(target.lookup(b), std::optional<std::uint32_t>{3});
  EXPECT_FALSE(target.lookup(a).has_value());
}

// Hammer the service from several threads (disjoint and overlapping key
// sets). Correctness here is the absence of data races (the TSan CI job
// runs this) plus conserved accounting under the shard locks.
TEST(ConcurrentDictionary, ParallelHammerConservesAccounting) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 400;
  ConcurrentShardedDictionary dict(256, EvictionPolicy::lru, 8);

  // A shared pool every thread probes (contended hits / touches); inserts
  // use thread-unique random bases so no two threads ever race the
  // insert-absent contract (each individual call is atomic under its shard
  // lock, but check-then-insert across calls is not).
  Rng pool_rng(0x9A99);
  std::vector<bits::BitVector> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(random_basis(pool_rng));
    (void)dict.insert(pool.back());
  }

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &dict, &pool] {
      Rng rng(0x7000 + t);
      bits::BitVector scratch;
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        if (rng.next_bool(0.5)) {
          (void)dict.lookup(pool[rng.next_below(pool.size())]);
        } else if (rng.next_bool(0.5)) {
          (void)dict.insert(random_basis(rng));
        } else {
          const auto id =
              static_cast<std::uint32_t>(rng.next_below(dict.capacity()));
          (void)dict.lookup_basis_into(id, scratch);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const DictionaryStats stats = dict.stats();
  EXPECT_EQ(stats.insertions - stats.evictions, dict.size());
  EXPECT_LE(dict.size(), dict.capacity());
}

// Two engines bound to one service see each other's learning: what engine
// A teaches, engine B compresses against — the cross-flow deduplication
// the per-flow private dictionaries could never express.
TEST(DictionaryHandle, EnginesShareOneDictionaryService) {
  gd::GdParams params;
  params.id_bits = 6;
  ConcurrentShardedDictionary service(params.dictionary_capacity(),
                                      EvictionPolicy::lru, 2);
  engine::Engine a(params, service);
  engine::Engine b(params, service);
  ASSERT_TRUE(a.dictionary_handle().is_shared());
  EXPECT_EQ(a.dictionary_handle().service(), &service);
  EXPECT_EQ(b.dictionary_handle().service(), &service);

  Rng rng(0x5AA5);
  std::vector<std::uint8_t> payload(8 * params.raw_payload_bytes());
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next_u64());

  engine::EncodeBatch first;
  a.encode_payload(payload, first);
  EXPECT_EQ(a.stats().uncompressed_packets, 8u);  // all fresh bases

  engine::EncodeBatch second;
  b.encode_payload(payload, second);
  EXPECT_EQ(b.stats().compressed_packets, 8u)
      << "engine B must hit every basis engine A taught the shared service";

  // One dictionary: 8 bases total, not 8 per engine.
  EXPECT_EQ(service.size(), 8u);
}

// The acceptance criterion: dictionary memory no longer scales with the
// worker count. However many workers the pipeline runs, there is exactly
// one service whose insertions match the one-dictionary serial reference —
// per-flow mode, by contrast, inserts the same basis once per flow.
TEST(DictionaryHandle, SharedPipelineMemoryDoesNotScaleWithWorkers) {
  gd::GdParams params;
  params.id_bits = 10;
  Rng rng(0x0DD5);
  std::vector<std::uint8_t> payload(16 * params.raw_payload_bytes());
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next_u64());
  constexpr std::uint32_t kFlows = 6;

  std::vector<std::uint64_t> insertions;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    engine::ParallelOptions options;
    options.workers = workers;
    options.ownership = engine::DictionaryOwnership::shared;
    options.steering = engine::FlowSteering::load_aware;
    options.work_stealing = workers > 1;
    engine::ParallelEncoder pool(params, options, nullptr);
    for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
      pool.submit(flow, payload);  // every flow sends the SAME payload
    }
    pool.flush();
    ASSERT_NE(pool.shared_dictionary(), nullptr);
    EXPECT_EQ(pool.shared_dictionary()->size(), 16u)
        << "one copy of each basis across the whole pool";
    insertions.push_back(pool.shared_dictionary()->stats().insertions);

    const engine::EngineStats total = pool.aggregate_stats();
    EXPECT_EQ(total.chunks, 16u * kFlows);
    // First flow learns, the other five all compress.
    EXPECT_EQ(total.compressed_packets, 16u * (kFlows - 1));
  }
  EXPECT_EQ(insertions[0], 16u);
  EXPECT_EQ(insertions[1], 16u) << "worker count must not change memory";

  // Contrast: per-flow ownership re-learns the payload once per flow.
  engine::ParallelOptions private_options;
  private_options.workers = 4;
  engine::ParallelEncoder private_pool(params, private_options, nullptr);
  for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
    private_pool.submit(flow, payload);
  }
  private_pool.flush();
  EXPECT_EQ(private_pool.shared_dictionary(), nullptr);
  EXPECT_EQ(private_pool.aggregate_stats().uncompressed_packets,
            16u * kFlows)
      << "private dictionaries cannot deduplicate across flows";
}

}  // namespace
}  // namespace zipline::gd
