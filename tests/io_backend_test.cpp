// Backend round-trip properties for the zipline::io burst layer.
//
// The acceptance property of the API redesign: traffic pushed through
// source -> Node(encode) -> sink -> Node(decode) -> source recovers the
// original payloads bit-exactly, across dictionary ownership modes ×
// eviction policies × worker counts — and every arrangement's encoded
// output is byte-identical to the serial reference (workers = 1), which
// is itself the pre-redesign engine path. The pcap backends must
// reproduce the pre-redesign zipline_pcap window loop file-for-file.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <tuple>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "io/memory_ring.hpp"
#include "io/node.hpp"
#include "io/pcap_io.hpp"
#include "io/runner.hpp"
#include "io/sim_port.hpp"
#include "io/trace_source.hpp"
#include "net/pcap.hpp"
#include "trace/synthetic.hpp"
#include "zipline/program.hpp"

namespace zipline::io {
namespace {

using engine::DictionaryOwnership;
using engine::FlowSteering;
using gd::EvictionPolicy;
using gd::GdParams;

/// Redundant multi-flow workload: bursts of chunk-pool payloads with bit
/// noise and ragged tails, so hits, misses, evictions and raw packets all
/// occur.
std::vector<Burst> make_workload(Rng& rng, const GdParams& params,
                                 std::size_t bursts, std::size_t packets,
                                 std::size_t flows) {
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  std::vector<std::vector<std::uint8_t>> pool;
  for (int i = 0; i < 24; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  std::vector<Burst> workload(bursts);
  for (Burst& burst : workload) {
    for (std::size_t p = 0; p < packets; ++p) {
      std::vector<std::uint8_t> payload;
      const std::size_t chunks = 1 + rng.next_below(5);
      for (std::size_t c = 0; c < chunks; ++c) {
        auto chunk = pool[rng.next_below(pool.size())];
        if (rng.next_bool(0.35)) {
          chunk[rng.next_below(chunk.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        payload.insert(payload.end(), chunk.begin(), chunk.end());
      }
      if (rng.next_bool(0.25)) {
        for (std::size_t t = 0; t < 1 + rng.next_below(9); ++t) {
          payload.push_back(static_cast<std::uint8_t>(rng.next_u64()));
        }
      }
      PacketMeta meta;
      meta.flow = static_cast<std::uint32_t>(rng.next_below(flows));
      meta.timestamp_us = p;
      meta.process = true;
      burst.append(gd::PacketType::raw, 0, 0, payload, meta);
    }
  }
  return workload;
}

bool same_packets(const Burst& a, const Burst& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const engine::PacketDesc& x = a.desc(i);
    const engine::PacketDesc& y = b.desc(i);
    if (x.type != y.type || x.syndrome != y.syndrome ||
        x.basis_id != y.basis_id) {
      return false;
    }
    const auto pa = a.payload(i);
    const auto pb = b.payload(i);
    if (!std::equal(pa.begin(), pa.end(), pb.begin(), pb.end())) return false;
    if (a.meta(i).flow != b.meta(i).flow ||
        a.meta(i).ether_type != b.meta(i).ether_type) {
      return false;
    }
  }
  return true;
}

NodeOptions base_options(DictionaryOwnership ownership, EvictionPolicy policy,
                         std::size_t workers, const GdParams& params) {
  NodeOptions options = NodeOptions{}
                            .with_params(params)
                            .with_ownership(ownership)
                            .with_policy(policy)
                            .with_workers(workers)
                            .with_shards(2)
                            .with_queue_depth(4);
  if (ownership == DictionaryOwnership::shared && workers > 1) {
    options.with_steering(FlowSteering::load_aware).with_work_stealing(true);
  }
  return options;
}

class BackendRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<DictionaryOwnership, EvictionPolicy, std::size_t>> {};

// source -> Node(encode) -> ring -> Node(decode) -> ring recovers every
// payload, and the encoded stream is byte-identical to the serial
// (workers = 1) reference — the pre-redesign engine path.
TEST_P(BackendRoundTrip, RingNodeRingNodeRecoversPayloads) {
  const auto [ownership, policy, workers] = GetParam();
  GdParams params;
  params.id_bits = 6;  // small table -> evictions under load
  Rng rng(0x10B5 + static_cast<std::uint64_t>(policy) * 31 + workers * 7 +
          (ownership == DictionaryOwnership::shared ? 1000 : 0));
  const std::vector<Burst> workload =
      make_workload(rng, params, /*bursts=*/6, /*packets=*/24, /*flows=*/6);

  // Stage the workload into a ring, as a NIC RX queue would.
  MemoryRing rx_ring(workload.size());
  for (const Burst& burst : workload) {
    ASSERT_TRUE(rx_ring.try_push(burst));
  }

  // Encode through the configured arrangement.
  MemoryRing encoded_ring(workload.size());
  Node encoder(base_options(ownership, policy, workers, params)
                   .with_direction(Direction::encode));
  {
    MemoryRingSource source(rx_ring);
    MemoryRingSink sink(encoded_ring);
    Runner runner;
    const RunnerStats stats = runner.run(source, encoder, sink);
    EXPECT_EQ(stats.bursts, workload.size());
    EXPECT_EQ(sink.dropped_bursts(), 0u);
  }

  // Serial reference: the same traffic through workers = 1 (per_flow:
  // one private engine per flow; shared: ONE engine in submission order
  // — the two pre-redesign serial arrangements).
  std::vector<Burst> reference(workload.size());
  {
    Node serial(base_options(ownership, policy, /*workers=*/1, params)
                    .with_direction(Direction::encode));
    for (std::size_t b = 0; b < workload.size(); ++b) {
      serial.process(workload[b], reference[b]);
    }
  }

  // Decode back through the mirrored arrangement and compare.
  MemoryRing decoded_ring(workload.size());
  Node decoder(base_options(ownership, policy, workers, params)
                   .with_direction(Direction::decode));
  {
    MemoryRingSource source(encoded_ring);
    MemoryRingSink sink(decoded_ring);
    Runner runner;
    runner.run(source, decoder, sink);
    EXPECT_EQ(sink.dropped_bursts(), 0u);
  }

  // A multi-chunk payload fans out into several wire packets (chunks +
  // raw tail), each of which decodes to its own packet — packet counts
  // differ, but the byte STREAM must survive the full loop, globally and
  // per flow (which also proves flow keys ride the metadata correctly).
  const auto flatten = [](const Burst& burst, std::map<std::uint32_t,
                          std::vector<std::uint8_t>>& per_flow,
                          std::vector<std::uint8_t>& all) {
    for (std::size_t i = 0; i < burst.size(); ++i) {
      const auto payload = burst.payload(i);
      all.insert(all.end(), payload.begin(), payload.end());
      auto& f = per_flow[burst.meta(i).flow];
      f.insert(f.end(), payload.begin(), payload.end());
    }
  };
  Burst decoded;
  for (std::size_t b = 0; b < workload.size(); ++b) {
    ASSERT_TRUE(decoded_ring.try_pop(decoded)) << "burst " << b;
    std::map<std::uint32_t, std::vector<std::uint8_t>> got_flows;
    std::vector<std::uint8_t> got_all;
    flatten(decoded, got_flows, got_all);
    std::map<std::uint32_t, std::vector<std::uint8_t>> want_flows;
    std::vector<std::uint8_t> want_all;
    flatten(workload[b], want_flows, want_all);
    ASSERT_EQ(got_all, want_all) << "burst " << b;
    ASSERT_EQ(got_flows, want_flows) << "burst " << b;
  }

  // Re-encode to verify byte-identity (the ring was consumed): every
  // arrangement must equal its serial reference packet-for-packet.
  Node encoder2(base_options(ownership, policy, workers, params)
                    .with_direction(Direction::encode));
  Burst out;
  for (std::size_t b = 0; b < workload.size(); ++b) {
    out.clear();
    encoder2.process(workload[b], out);
    ASSERT_TRUE(same_packets(out, reference[b]))
        << "burst " << b << " diverged from the serial reference";
  }
}

INSTANTIATE_TEST_SUITE_P(
    OwnershipPolicyWorkers, BackendRoundTrip,
    ::testing::Combine(::testing::Values(DictionaryOwnership::per_flow,
                                         DictionaryOwnership::shared),
                       ::testing::Values(EvictionPolicy::lru,
                                         EvictionPolicy::fifo,
                                         EvictionPolicy::random),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

// Passthrough packets traverse the node untouched and keep their
// positions between processed packets — in both the serial and the
// parallel arrangement.
TEST(NodePassthrough, PositionsAndBytesSurvive) {
  GdParams params;
  Rng rng(0xAA55);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    Burst in;
    std::vector<std::size_t> passthrough_positions;
    for (std::size_t i = 0; i < 40; ++i) {
      PacketMeta meta;
      meta.flow = static_cast<std::uint32_t>(i % 5);
      meta.ether_type = 0x0800;
      std::vector<std::uint8_t> payload;
      if (rng.next_bool(0.4)) {
        meta.process = false;
        payload.resize(10 + rng.next_below(60));
        passthrough_positions.push_back(i);
      } else {
        meta.process = true;
        payload.resize(params.raw_payload_bytes());
      }
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      in.append(gd::PacketType::raw, 0, 0, payload, meta);
    }

    Node node(NodeOptions{}
                  .with_params(params)
                  .with_workers(workers)
                  .with_shared_dictionary()
                  .with_queue_depth(4));
    Burst out;
    node.process(in, out);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (!in.meta(i).process) {
        const auto got = out.payload(i);
        const auto want = in.payload(i);
        EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                               want.end()))
            << "passthrough packet " << i << " (workers " << workers << ")";
        EXPECT_EQ(out.meta(i).ether_type, in.meta(i).ether_type);
        EXPECT_FALSE(out.meta(i).process);
      } else {
        EXPECT_NE(out.desc(i).type, gd::PacketType::raw);
        EXPECT_NE(out.meta(i).ether_type, 0x0800);
      }
    }
    EXPECT_EQ(node.stats().passthrough, passthrough_positions.size());
  }
}

// A stage failure inside a parallel burst (here: a full-size type-3
// packet referencing an identifier nobody installed) must surface at
// process() as the ferried engine error — not as a drain-cursor
// violation — drop only the failed unit's output, keep every other
// packet, and leave the node usable for the next burst.
TEST(NodeErrors, ParallelStageFailureSurfacesAndNodeStaysUsable) {
  GdParams params;
  Node node(NodeOptions{}
                .with_direction(Direction::decode)
                .with_params(params)
                .with_workers(2)
                .with_shared_dictionary()
                .with_steering(FlowSteering::load_aware)
                .with_work_stealing(true)
                .with_queue_depth(4));

  // A healthy type-2 wire packet to ride along with the poisoned one.
  engine::Engine encoder(params);
  Rng rng(0xBAD10);
  std::vector<std::uint8_t> payload(params.raw_payload_bytes());
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  engine::EncodeBatch healthy;
  encoder.encode_payload(payload, healthy);
  ASSERT_EQ(healthy.packet(0).type, gd::PacketType::uncompressed);

  Burst in;
  PacketMeta meta;
  meta.flow = 1;
  const std::vector<std::uint8_t> poison(params.type3_payload_bytes(), 0);
  in.append(gd::PacketType::compressed, 0, 0, poison, meta);  // unknown ID
  meta.flow = 2;
  meta.process = false;
  in.append(gd::PacketType::raw, 0, 0, payload, meta);  // passthrough
  meta.flow = 3;
  meta.process = true;
  in.append(healthy.packet(0).type, 0, 0, healthy.payload(0), meta);

  Burst out;
  EXPECT_THROW(node.process(in, out), ContractViolation);

  // Next burst flows normally: the pipeline drained before rethrowing.
  Burst in2;
  meta.flow = 3;
  in2.append(healthy.packet(0).type, 0, 0, healthy.payload(0), meta);
  Burst out2;
  node.process(in2, out2);
  ASSERT_EQ(out2.size(), 1u);
  const auto got = out2.payload(0);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin(),
                         payload.end()));
}

// The flush window (NodeOptions::burst_size) must not change output
// bytes — it only bounds the in-flight set within one process() call.
TEST(NodeOptionsTest, FlushWindowDoesNotChangeOutput) {
  GdParams params;
  Rng rng(0xF1A5);
  std::vector<Burst> workload =
      make_workload(rng, params, /*bursts=*/2, /*packets=*/30, /*flows=*/5);

  const auto run = [&](std::size_t burst_size) {
    Node node(NodeOptions{}
                  .with_params(params)
                  .with_workers(3)
                  .with_shared_dictionary()
                  .with_queue_depth(4)
                  .with_burst_size(burst_size));
    std::vector<Burst> outs(workload.size());
    for (std::size_t b = 0; b < workload.size(); ++b) {
      node.process(workload[b], outs[b]);
    }
    return outs;
  };
  const auto windowed = run(/*burst_size=*/7);
  const auto unwindowed = run(/*burst_size=*/1024);
  for (std::size_t b = 0; b < workload.size(); ++b) {
    EXPECT_TRUE(same_packets(windowed[b], unwindowed[b])) << "burst " << b;
  }
}

// An empty burst in a ring must not read as end-of-stream.
TEST(MemoryRingTest, EmptyBurstDoesNotStrandLaterBursts) {
  GdParams params;
  MemoryRing ring(4);
  Burst empty;
  Burst full;
  PacketMeta meta;
  const std::vector<std::uint8_t> payload(params.raw_payload_bytes(), 0x5A);
  full.append(gd::PacketType::raw, 0, 0, payload, meta);
  ASSERT_TRUE(ring.try_push(full));
  ASSERT_TRUE(ring.try_push(empty));
  ASSERT_TRUE(ring.try_push(full));

  MemoryRingSource source(ring);
  Burst out;
  EXPECT_EQ(source.rx_burst(out), 1u);
  EXPECT_EQ(source.rx_burst(out), 1u);  // skipped the empty burst
  EXPECT_EQ(source.rx_burst(out), 0u);  // genuinely drained
}

class PcapBackendTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : {raw_, encoded_, reference_, decoded_}) {
      std::remove(p.c_str());
    }
  }
  std::string temp(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
  std::string raw_ = temp("zipline_io_raw.pcap");
  std::string encoded_ = temp("zipline_io_encoded.pcap");
  std::string reference_ = temp("zipline_io_reference.pcap");
  std::string decoded_ = temp("zipline_io_decoded.pcap");
};

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// PcapSource -> Node(shared, parallel, p2c + steal) -> PcapSink must
// reproduce the pre-redesign zipline_pcap window loop file-for-file: the
// reference below is that loop's semantics run on a serial shared-style
// engine (byte-identical to the old shared parallel path by the ordered
// turnstile property), and the decode pass must restore the original
// capture exactly.
TEST_F(PcapBackendTest, EncodeDecodeMatchesPreRedesignLoop) {
  const GdParams params;
  trace::SyntheticSensorConfig config;
  config.chunk_count = 3000;
  const auto payloads = trace::generate_synthetic_sensor(config);
  trace::write_payloads_pcap(raw_, payloads, 10000.0);

  // Node path.
  {
    PcapSourceOptions source_options;
    source_options.direction = Direction::encode;
    source_options.params = params;
    source_options.burst_size = 512;
    PcapSource source(raw_, source_options);
    PcapSink sink(encoded_);
    Node node(NodeOptions{}
                  .with_params(params)
                  .with_workers(3)
                  .with_shared_dictionary()
                  .with_steering(FlowSteering::load_aware)
                  .with_work_stealing(true)
                  .with_queue_depth(4));
    Runner runner;
    const RunnerStats stats = runner.run(source, node, sink);
    EXPECT_EQ(stats.packets_in, payloads.size());
  }

  // Pre-redesign reference: serial shared-style engine over the same
  // windowed classification rules.
  {
    net::PcapReader reader(raw_);
    net::PcapWriter writer(reference_);
    engine::Engine eng(params);
    engine::EncodeBatch batch;
    net::EthernetFrame out_frame;
    while (auto record = reader.next()) {
      net::EthernetFrame frame =
          net::EthernetFrame::parse(record->data, /*verify_fcs=*/false);
      if (frame.ether_type == gd::ether_type_for(gd::PacketType::raw) &&
          frame.payload.size() >= params.raw_payload_bytes()) {
        batch.clear();
        eng.encode_payload(
            std::span(frame.payload).first(params.raw_payload_bytes()),
            batch);
        ASSERT_EQ(batch.size(), 1u);
        const engine::PacketDesc& desc = batch.packet(0);
        out_frame.dst = frame.dst;
        out_frame.src = frame.src;
        out_frame.ether_type = gd::ether_type_for(desc.type);
        const auto payload = batch.payload(desc);
        out_frame.payload.assign(payload.begin(), payload.end());
        writer.write_frame(out_frame, record->timestamp_us);
      } else {
        writer.write_frame(frame, record->timestamp_us);
      }
    }
  }

  EXPECT_EQ(read_file_bytes(encoded_), read_file_bytes(reference_))
      << "Node pcap replay diverged from the pre-redesign loop";

  // Decode pass restores the original capture byte-for-byte.
  {
    PcapSourceOptions source_options;
    source_options.direction = Direction::decode;
    source_options.params = params;
    source_options.burst_size = 512;
    PcapSource source(encoded_, source_options);
    PcapSink sink(decoded_);
    Node node(NodeOptions{}
                  .with_direction(Direction::decode)
                  .with_params(params)
                  .with_workers(3)
                  .with_shared_dictionary()
                  .with_steering(FlowSteering::load_aware)
                  .with_work_stealing(true)
                  .with_queue_depth(4));
    Runner runner;
    runner.run(source, node, sink);
  }
  EXPECT_EQ(read_file_bytes(decoded_), read_file_bytes(raw_))
      << "decode did not restore the original capture";
}

TEST(TraceSourceTest, DrainsEveryPayloadInBursts) {
  trace::SyntheticSensorConfig config;
  config.chunk_count = 1000;
  TraceSourceOptions options;
  options.burst_size = 128;
  options.flow_of = [](std::size_t i) {
    return static_cast<std::uint32_t>(i % 7);
  };
  TraceSource source = TraceSource::synthetic_sensor(config, options);
  ASSERT_EQ(source.payload_count(), 1000u);

  Burst burst;
  std::size_t total = 0;
  std::size_t bursts = 0;
  while (source.rx_burst(burst) > 0) {
    ++bursts;
    total += burst.size();
    ASSERT_LE(burst.size(), 128u);
    for (std::size_t i = 0; i < burst.size(); ++i) {
      EXPECT_TRUE(burst.meta(i).process);
      EXPECT_EQ(burst.desc(i).type, gd::PacketType::raw);
    }
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(bursts, (1000 + 127) / 128);
  EXPECT_EQ(source.rx_burst(burst), 0u);
  source.reset();
  EXPECT_GT(source.rx_burst(burst), 0u);
}

// SimPort must be a faithful adapter: bursts pushed through it produce
// exactly what prog::run_batch produces for the same frames.
TEST(SimPortTest, MatchesDirectRunBatch) {
  prog::ZipLineConfig config;
  config.op = prog::SwitchOp::encode;
  config.learning = prog::LearningMode::data_plane;
  Rng rng(0x51A);
  const GdParams& params = config.params;

  engine::EncodeBatch traffic;
  std::vector<std::uint8_t> chunk(params.raw_payload_bytes());
  for (int i = 0; i < 50; ++i) {
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    traffic.append(gd::PacketType::raw, 0, 0, chunk);
  }

  // Direct path.
  auto program_a = std::make_shared<prog::ZipLineProgram>(config);
  tofino::SwitchModel direct("direct", program_a);
  engine::EncodeBatch direct_out;
  prog::run_batch(direct, traffic, &direct_out, /*ingress_port=*/1);

  // SimPort path, fed the same frames as a burst.
  auto program_b = std::make_shared<prog::ZipLineProgram>(config);
  tofino::SwitchModel adapted("adapted", program_b);
  SimPort port(adapted, /*ingress_port=*/1);
  Burst in;
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    PacketMeta meta;
    meta.ether_type = gd::ether_type_for(gd::PacketType::raw);
    in.append(gd::PacketType::raw, 0, 0, traffic.payload(i), meta);
  }
  SimPortSink ingress(port);
  ingress.tx_burst(in);

  SimPortSource egress(port);
  Burst out;
  std::size_t cursor = 0;
  while (egress.rx_burst(out) > 0) {
    for (std::size_t i = 0; i < out.size(); ++i, ++cursor) {
      ASSERT_LT(cursor, direct_out.size());
      EXPECT_EQ(out.desc(i).type, direct_out.packet(cursor).type);
      const auto got = out.payload(i);
      const auto want = direct_out.payload(cursor);
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                             want.end()))
          << "egress packet " << cursor;
    }
  }
  EXPECT_EQ(cursor, direct_out.size());
  EXPECT_EQ(port.totals().forwarded + port.totals().dropped, traffic.size());
}

// The two passthrough-splice overloads must be byte-identical: the
// copying append_from (the frozen baseline / external-caller path) and
// the view-based append_view_from (the zero-copy path) — across all
// three payload backings.
TEST(BurstViews, AppendFromOverloadsAreByteIdentical) {
  Rng rng(0xB17);
  BufferPool pool(4096, 4);
  SegmentWriter writer(pool);
  std::vector<std::uint8_t> stable(300);  // external backing, outlives all
  for (auto& b : stable) b = static_cast<std::uint8_t>(rng.next_u64());

  Burst from;
  for (std::size_t i = 0; i < 12; ++i) {
    PacketMeta meta;
    meta.flow = static_cast<std::uint32_t>(i);
    meta.ether_type = 0x0800;
    std::vector<std::uint8_t> payload(20 + rng.next_below(80));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    switch (i % 3) {
      case 0:  // owned arena
        from.append(gd::PacketType::raw, static_cast<std::uint32_t>(i), 0,
                    payload, meta);
        break;
      case 1:  // raw external view
        from.append_view(gd::PacketType::raw, static_cast<std::uint32_t>(i),
                         0, std::span(stable).subspan(i * 20, 40), meta);
        break;
      case 2:  // pool segment
        from.append_segment(gd::PacketType::raw,
                            static_cast<std::uint32_t>(i), 0,
                            writer.write(payload), writer.segment(), meta);
        break;
    }
  }

  Burst copied;
  Burst viewed;
  for (std::size_t i = 0; i < from.size(); ++i) {
    copied.append_from(from, i);
    viewed.append_view_from(from, i);
  }
  EXPECT_TRUE(same_packets(copied, viewed));
  EXPECT_TRUE(same_packets(copied, from));
  // The copying overload paid in bytes; the view overload paid nothing.
  EXPECT_GT(copied.bytes_copied(), 0u);
  EXPECT_EQ(viewed.bytes_copied(), 0u);
  // Segment-backed splices share the segment: same memory, not a copy.
  EXPECT_EQ(viewed.payload(2).data(), from.payload(2).data());
}

// MemoryRing::try_pop moves the slot out (swap) instead of copying:
// pointer identity for segment-backed payloads proves the payload bytes
// never moved across the push+pop, and the ring's copy counter stays 0.
TEST(MemoryRingTest, PopMovesSlotOutWithoutCopying) {
  BufferPool pool(4096, 4);
  SegmentWriter writer(pool);
  Rng rng(0x90B);
  Burst in;
  std::vector<std::uint8_t> payload(256);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  PacketMeta meta;
  meta.flow = 7;
  in.append_segment(gd::PacketType::raw, 0, 0, writer.write(payload),
                    writer.segment(), meta);

  MemoryRing ring(2);
  ASSERT_TRUE(ring.try_push(in));
  EXPECT_EQ(ring.stats().bytes_copied, 0u)
      << "segment-backed push must share the ref, not copy payload";

  Burst popped;
  ASSERT_TRUE(ring.try_pop(popped));
  ASSERT_EQ(popped.size(), 1u);
  EXPECT_EQ(popped.payload(0).data(), in.payload(0).data())
      << "pop must hand out the pushed segment memory itself";
  EXPECT_TRUE(same_packets(popped, in));
  EXPECT_EQ(ring.stats().bytes_copied, 0u);

  // Owned payloads still ride the ring correctly (copied at push, moved
  // at pop), and the push price is visible in the ring stats.
  Burst owned;
  owned.append(gd::PacketType::raw, 0, 0, payload, meta);
  ASSERT_TRUE(ring.try_push(owned));
  EXPECT_EQ(ring.stats().bytes_copied, payload.size());
  ASSERT_TRUE(ring.try_pop(popped));
  EXPECT_TRUE(same_packets(popped, owned));
}

// A Burst copy must be self-contained: raw external views are
// materialized (the backing store may die), segment views share refs
// (the segment cannot die under a live ref).
TEST(BurstViews, CopyMaterializesExternalViewsAndSharesSegments) {
  BufferPool pool(4096, 4);
  SegmentWriter writer(pool);
  Rng rng(0xC0);
  std::vector<std::uint8_t> seg_payload(128);
  for (auto& b : seg_payload) b = static_cast<std::uint8_t>(rng.next_u64());

  Burst copy;
  std::vector<std::uint8_t> want_external;
  {
    std::vector<std::uint8_t> transient(64);
    for (auto& b : transient) b = static_cast<std::uint8_t>(rng.next_u64());
    want_external = transient;
    Burst original;
    PacketMeta meta;
    original.append_view(gd::PacketType::raw, 0, 0, transient, meta);
    original.append_segment(gd::PacketType::raw, 0, 0,
                            writer.write(seg_payload), writer.segment(),
                            meta);
    copy = original;
    // Segment view: shared, not copied.
    EXPECT_EQ(copy.payload(1).data(), original.payload(1).data());
    // External view: materialized into the copy's own arena.
    EXPECT_NE(copy.payload(0).data(), original.payload(0).data());
    // `transient` and `original` die here; `copy` must not care.
  }
  EXPECT_EQ(std::vector<std::uint8_t>(copy.payload(0).begin(),
                                      copy.payload(0).end()),
            want_external);
  EXPECT_EQ(std::vector<std::uint8_t>(copy.payload(1).begin(),
                                      copy.payload(1).end()),
            seg_payload);
}

// zero_copy on/off is purely a memory-traffic knob: the full
// ring -> node -> ring pass must produce byte-identical output across
// the flag, for serial and parallel, per-flow and shared arrangements —
// while the node's copy accounting shows the zero-copy path actually
// copying less on passthrough-heavy traffic.
TEST(NodeZeroCopy, OutputIdenticalAndCheaperThanCopyingBaseline) {
  GdParams params;
  for (const auto ownership :
       {DictionaryOwnership::per_flow, DictionaryOwnership::shared}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      Rng rng(0x2E0 + workers +
              (ownership == DictionaryOwnership::shared ? 100 : 0));
      // Segment-backed traffic, half passthrough — the shape a pooled
      // source (pcap, sim port) serves.
      BufferPool pool(16384, 16);
      SegmentWriter writer(pool);
      Burst in;
      for (std::size_t i = 0; i < 48; ++i) {
        PacketMeta meta;
        meta.flow = static_cast<std::uint32_t>(i % 5);
        meta.ether_type = 0x0800;
        meta.process = i % 2 == 0;
        std::vector<std::uint8_t> payload(
            meta.process ? params.raw_payload_bytes()
                         : 10 + rng.next_below(90));
        for (auto& b : payload) {
          b = static_cast<std::uint8_t>(rng.next_u64());
        }
        in.append_segment(gd::PacketType::raw, 0, 0, writer.write(payload),
                          writer.segment(), meta);
      }

      const auto run = [&](bool zero_copy, std::uint64_t& bytes_copied) {
        Node node(base_options(ownership, EvictionPolicy::lru, workers,
                               params)
                      .with_direction(Direction::encode)
                      .with_zero_copy(zero_copy));
        MemoryRing ring(4);
        Burst out;
        for (int round = 0; round < 3; ++round) {
          out.clear();
          node.process(in, out);
          EXPECT_TRUE(ring.try_push(out));
        }
        bytes_copied =
            node.stats().bytes_copied + ring.stats().bytes_copied;
        // Pop the last round back out for comparison.
        Burst result;
        Burst scratch;
        while (ring.try_pop(scratch)) std::swap(result, scratch);
        return result;
      };

      std::uint64_t zero_copy_bytes = 0;
      std::uint64_t baseline_bytes = 0;
      const Burst fast = run(true, zero_copy_bytes);
      const Burst slow = run(false, baseline_bytes);
      ASSERT_TRUE(same_packets(fast, slow))
          << "zero_copy changed output bytes (ownership="
          << (ownership == DictionaryOwnership::shared ? "shared"
                                                       : "per_flow")
          << ", workers=" << workers << ")";
      EXPECT_LT(zero_copy_bytes, baseline_bytes)
          << "zero_copy path must copy strictly fewer payload bytes";
    }
  }
}

}  // namespace
}  // namespace zipline::io
