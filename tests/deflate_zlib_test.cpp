// Cross-validation of the from-scratch DEFLATE implementation against the
// system zlib: our compressor's output must inflate correctly under zlib,
// and zlib's output must decode under our inflater. This pins the bit
// stream to RFC 1951, not merely to self-consistency.
#include <gtest/gtest.h>
#include <zlib.h>

#include <vector>

#include "baseline/deflate.hpp"
#include "common/rng.hpp"
#include "trace/synthetic.hpp"

namespace zipline::baseline {
namespace {

std::vector<std::uint8_t> zlib_inflate_raw(
    std::span<const std::uint8_t> compressed, std::size_t expected_size) {
  std::vector<std::uint8_t> out(expected_size + 64);
  z_stream zs{};
  // windowBits = -15: raw DEFLATE stream, no zlib/gzip wrapper.
  EXPECT_EQ(inflateInit2(&zs, -15), Z_OK);
  zs.next_in = const_cast<Bytef*>(compressed.data());
  zs.avail_in = static_cast<uInt>(compressed.size());
  zs.next_out = out.data();
  zs.avail_out = static_cast<uInt>(out.size());
  const int rc = inflate(&zs, Z_FINISH);
  EXPECT_EQ(rc, Z_STREAM_END) << "zlib rejected our DEFLATE stream: " << rc;
  out.resize(zs.total_out);
  inflateEnd(&zs);
  return out;
}

std::vector<std::uint8_t> zlib_deflate_raw(std::span<const std::uint8_t> data,
                                           int level) {
  std::vector<std::uint8_t> out(compressBound(static_cast<uLong>(data.size())) +
                                64);
  z_stream zs{};
  EXPECT_EQ(deflateInit2(&zs, level, Z_DEFLATED, -15, 8, Z_DEFAULT_STRATEGY),
            Z_OK);
  zs.next_in = const_cast<Bytef*>(data.data());
  zs.avail_in = static_cast<uInt>(data.size());
  zs.next_out = out.data();
  zs.avail_out = static_cast<uInt>(out.size());
  EXPECT_EQ(deflate(&zs, Z_FINISH), Z_STREAM_END);
  out.resize(zs.total_out);
  deflateEnd(&zs);
  return out;
}

std::vector<std::uint8_t> sensor_bytes(std::uint64_t chunks) {
  trace::SyntheticSensorConfig config;
  config.chunk_count = chunks;
  return trace::concatenate(generate_synthetic_sensor(config));
}

TEST(DeflateZlib, ZlibInflatesOurStreams) {
  Rng rng(1);
  for (const std::size_t size : {0u, 1u, 100u, 4096u, 100000u}) {
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.next_below(200));
    }
    const auto ours = deflate_compress(data);
    EXPECT_EQ(zlib_inflate_raw(ours, data.size()), data) << "size " << size;
  }
}

TEST(DeflateZlib, ZlibInflatesOurSensorTraceStream) {
  const auto data = sensor_bytes(20000);
  EXPECT_EQ(zlib_inflate_raw(deflate_compress(data), data.size()), data);
}

TEST(DeflateZlib, WeInflateZlibStreamsAllLevels) {
  const auto data = sensor_bytes(5000);
  for (const int level : {1, 6, 9}) {
    const auto zlibbed = zlib_deflate_raw(data, level);
    EXPECT_EQ(deflate_decompress(zlibbed), data) << "level " << level;
  }
}

TEST(DeflateZlib, WeInflateZlibOnIncompressibleData) {
  Rng rng(2);
  std::vector<std::uint8_t> data(50000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  // Stored/fixed block mix from zlib at level 1.
  EXPECT_EQ(deflate_decompress(zlib_deflate_raw(data, 1)), data);
}

TEST(DeflateZlib, ZlibAcceptsOurGzipContainer) {
  const auto data = sensor_bytes(2000);
  const auto container = gzip_compress(data);
  std::vector<std::uint8_t> out(data.size() + 64);
  z_stream zs{};
  // windowBits = 15 + 32: auto-detect zlib/gzip wrapper.
  ASSERT_EQ(inflateInit2(&zs, 15 + 32), Z_OK);
  zs.next_in = const_cast<Bytef*>(container.data());
  zs.avail_in = static_cast<uInt>(container.size());
  zs.next_out = out.data();
  zs.avail_out = static_cast<uInt>(out.size());
  EXPECT_EQ(inflate(&zs, Z_FINISH), Z_STREAM_END);
  out.resize(zs.total_out);
  inflateEnd(&zs);
  EXPECT_EQ(out, data);
}

TEST(DeflateZlib, CompressionRatioWithinRangeOfZlib) {
  // Our ratio should be in the same league as zlib level 6 on the sensor
  // workload (within 25% relative).
  const auto data = sensor_bytes(50000);
  const auto ours = deflate_compress(data);
  const auto theirs = zlib_deflate_raw(data, 6);
  const double ratio = static_cast<double>(ours.size()) /
                       static_cast<double>(theirs.size());
  EXPECT_LT(ratio, 1.25) << "ours " << ours.size() << " vs zlib "
                         << theirs.size();
}

}  // namespace
}  // namespace zipline::baseline
