#include "baseline/dedup.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gd/codec.hpp"
#include "gd/transform.hpp"

namespace zipline::baseline {
namespace {

using bits::BitVector;

BitVector random_chunk(Rng& rng) {
  BitVector v(256);
  for (std::size_t i = 0; i < 256; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

TEST(ExactDedup, IdenticalChunksDeduplicate) {
  ExactDedup dedup{gd::GdParams{}};
  Rng rng(1);
  const BitVector chunk = random_chunk(rng);
  EXPECT_EQ(dedup.process_chunk(chunk), 32u);  // first: full cost
  EXPECT_EQ(dedup.process_chunk(chunk), 2u);   // repeat: 15-bit id -> 2 B
  EXPECT_EQ(dedup.stats().unique_chunks, 1u);
  EXPECT_EQ(dedup.stats().duplicate_chunks, 1u);
}

TEST(ExactDedup, SingleBitNoiseDefeatsExactDedupButNotGd) {
  // The paper's core argument (§2): a dictionary of bases represents more
  // chunks than a dictionary of chunks.
  const gd::GdParams params;
  ExactDedup dedup{params};
  gd::GdEncoder gd_encoder{params};
  const gd::GdTransform transform(params);
  Rng rng(2);
  // Canonical chunk, then 200 single-bit-noise variants.
  BitVector chunk = random_chunk(rng);
  const auto tc = transform.forward(chunk);
  chunk = transform.inverse(tc.excess, tc.basis, 0);

  std::uint64_t dedup_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    BitVector noisy = chunk;
    noisy.flip(rng.next_below(255));
    dedup_bytes += dedup.process_chunk(noisy);
    (void)gd_encoder.encode_chunk(noisy);
  }
  // Exact dedup only collapses exact repeats (255 possible variants, so
  // some repeats occur, but most chunks are "unique" to it).
  EXPECT_GT(dedup.stats().unique_chunks, 100u);
  // GD sees one basis: every packet after the first compresses.
  EXPECT_EQ(gd_encoder.stats().uncompressed_packets, 1u);
  EXPECT_EQ(gd_encoder.stats().compressed_packets, 199u);
  EXPECT_GT(dedup_bytes, gd_encoder.stats().bytes_out);
}

TEST(ExactDedup, StatsRatioConsistent) {
  ExactDedup dedup{gd::GdParams{}};
  Rng rng(3);
  const BitVector a = random_chunk(rng);
  const BitVector b = random_chunk(rng);
  for (int i = 0; i < 10; ++i) {
    (void)dedup.process_chunk(a);
    (void)dedup.process_chunk(b);
  }
  const auto& s = dedup.stats();
  EXPECT_EQ(s.chunks, 20u);
  EXPECT_EQ(s.bytes_in, 20u * 32);
  EXPECT_EQ(s.bytes_out, 2u * 32 + 18u * 2);
  EXPECT_NEAR(s.compression_ratio(), (64.0 + 36.0) / 640.0, 1e-12);
}

TEST(ExactDedup, EvictionUnderTinyCapacity) {
  gd::GdParams params;
  params.id_bits = 2;  // 4 entries
  ExactDedup dedup{params};
  Rng rng(4);
  std::vector<BitVector> chunks;
  for (int i = 0; i < 8; ++i) chunks.push_back(random_chunk(rng));
  for (int round = 0; round < 3; ++round) {
    for (const auto& c : chunks) (void)dedup.process_chunk(c);
  }
  // Working set (8) exceeds capacity (4): LRU thrashing, no dedup wins.
  EXPECT_EQ(dedup.stats().duplicate_chunks, 0u);
  EXPECT_GT(dedup.dictionary().stats().evictions, 10u);
}

}  // namespace
}  // namespace zipline::baseline
