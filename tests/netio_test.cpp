// zipline::netio — event loop, session, and transport properties over
// real loopback sockets.
//
// Three layers under test here:
//   * EventLoop (both backends): readiness dispatch, interest toggling,
//     cross-thread wake, callback-driven removal safety.
//   * SocketTransport: framed session round trips, flow-id modes,
//     graceful teardown accounting (peer EOF, protocol violation, dead
//     peer writes), tx overflow drop-and-count, rx backpressure
//     pause/resume without loss.
//   * The full proxy pair: N concurrent client sessions feeding an
//     encode Node through SocketSource, burst outputs multiplexed over a
//     second TCP link into a decode Node, decoded frames collected over
//     a third link — the byte stream of every session must survive the
//     whole loop exactly, across dictionary ownership × worker counts.
//
// Everything is nonblocking and pumped from one thread (poll(0)), so the
// tests cannot deadlock; a round cap turns a stall into a failure.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "io/node.hpp"
#include "io/runner.hpp"
#include "netio/event_loop.hpp"
#include "netio/frame_codec.hpp"
#include "netio/socket_ops.hpp"
#include "netio/transport.hpp"

namespace zipline::netio {
namespace {

using engine::DictionaryOwnership;
using gd::GdParams;

std::pair<Fd, Fd> make_socketpair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Fd a(fds[0]);
  Fd b(fds[1]);
  EXPECT_TRUE(set_nonblocking(a.get()));
  EXPECT_TRUE(set_nonblocking(b.get()));
  return {std::move(a), std::move(b)};
}

class EventLoopBackends : public ::testing::TestWithParam<LoopBackend> {};

TEST_P(EventLoopBackends, DispatchesReadableAndWritable) {
  EventLoop loop(GetParam());
  auto [a, b] = make_socketpair();

  std::uint32_t seen = 0;
  int calls = 0;
  loop.add(a.get(), EventLoop::kReadable, [&](std::uint32_t events) {
    seen = events;
    ++calls;
    std::uint8_t buf[16];
    while (read_some(a.get(), buf).status == IoStatus::ok) {}
  });
  EXPECT_EQ(loop.watched(), 1u);

  // Nothing pending: a zero-timeout poll dispatches nothing.
  EXPECT_EQ(loop.poll(0), 0);

  const std::uint8_t byte = 0x5A;
  ASSERT_EQ(write_some(b.get(), {&byte, 1}).status, IoStatus::ok);
  EXPECT_EQ(loop.poll(1000), 1);
  EXPECT_EQ(calls, 1);
  EXPECT_NE(seen & EventLoop::kReadable, 0u);

  // Writable interest on an idle socket fires immediately.
  loop.set_interest(a.get(), EventLoop::kWritable);
  EXPECT_EQ(loop.interest(a.get()), EventLoop::kWritable);
  EXPECT_EQ(loop.poll(1000), 1);
  EXPECT_NE(seen & EventLoop::kWritable, 0u);

  // Interest 0 masks pending data without unregistering.
  ASSERT_EQ(write_some(b.get(), {&byte, 1}).status, IoStatus::ok);
  loop.set_interest(a.get(), 0);
  EXPECT_EQ(loop.poll(0), 0);
  loop.set_interest(a.get(), EventLoop::kReadable);
  EXPECT_EQ(loop.poll(1000), 1);

  loop.remove(a.get());
  EXPECT_EQ(loop.watched(), 0u);
}

TEST_P(EventLoopBackends, WakeUnblocksAConcurrentPoll) {
  EventLoop loop(GetParam());
  const auto start = std::chrono::steady_clock::now();
  std::thread waker([&loop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.wake();
  });
  // Without the wake this would sleep the full 5 seconds.
  loop.poll(5000);
  waker.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(4000));
}

TEST_P(EventLoopBackends, CallbackMayRemoveOtherFdsMidDispatch) {
  EventLoop loop(GetParam());
  auto [a1, b1] = make_socketpair();
  auto [a2, b2] = make_socketpair();

  int calls = 0;
  const auto removing_callback = [&](int self, int other) {
    return [&loop, &calls, self, other](std::uint32_t) {
      ++calls;
      loop.remove(self);
      loop.remove(other);
    };
  };
  loop.add(a1.get(), EventLoop::kReadable,
           removing_callback(a1.get(), a2.get()));
  loop.add(a2.get(), EventLoop::kReadable,
           removing_callback(a2.get(), a1.get()));

  const std::uint8_t byte = 1;
  ASSERT_EQ(write_some(b1.get(), {&byte, 1}).status, IoStatus::ok);
  ASSERT_EQ(write_some(b2.get(), {&byte, 1}).status, IoStatus::ok);
  // Both fds are ready, but whichever callback runs first removes the
  // other — the snapshot revalidation must skip it, not crash into it.
  EXPECT_EQ(loop.poll(1000), 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(loop.watched(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackends,
                         ::testing::Values(LoopBackend::epoll,
                                           LoopBackend::poll));

/// Pumps both transports until `done()` or the round cap trips.
template <typename Done>
bool pump_until(SocketTransport& x, SocketTransport& y, Done&& done,
                int rounds = 20000) {
  for (int i = 0; i < rounds; ++i) {
    if (done()) return true;
    x.poll(0);
    y.poll(0);
  }
  return done();
}

TEST(SocketTransportTest, FrameRoundTripAcrossRealSockets) {
  SocketTransport server;
  SocketTransport client;
  const std::uint16_t port = server.listen(0);
  ASSERT_NE(port, 0);
  const std::uint32_t flow = client.connect(port);
  ASSERT_NE(flow, 0u);
  ASSERT_TRUE(pump_until(server, client,
                         [&] { return server.session_count() == 1; }));

  Rng rng(0x7EA);
  std::vector<std::uint8_t> payload(300);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  LinkHeader header;
  header.type = gd::PacketType::compressed;
  header.flow = 42;
  header.syndrome = 0xABCD;
  header.basis_id = 7;
  ASSERT_TRUE(client.send_frame(flow, header, payload));

  ASSERT_TRUE(pump_until(server, client,
                         [&] { return server.ready_frames() == 1; }));
  io::Burst burst;
  ASSERT_EQ(server.rx_burst(burst), 1u);
  EXPECT_EQ(burst.desc(0).type, gd::PacketType::compressed);
  EXPECT_EQ(burst.desc(0).syndrome, 0xABCDu);
  EXPECT_EQ(burst.desc(0).basis_id, 7u);
  // per_session mode: the session's own flow id (1, the first assigned
  // on a fresh transport) wins over the header's claimed 42.
  EXPECT_EQ(burst.meta(0).flow, 1u);
  EXPECT_EQ(burst.meta(0).ether_type,
            gd::ether_type_for(gd::PacketType::compressed));
  EXPECT_TRUE(burst.meta(0).process);
  const auto got = burst.payload(0);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin(),
                         payload.end()));

  EXPECT_EQ(client.stats().frames_tx, 1u);
  EXPECT_EQ(server.stats().frames_rx, 1u);
  EXPECT_EQ(server.stats().sessions_accepted, 1u);
  EXPECT_EQ(client.stats().sessions_connected, 1u);
}

TEST(SocketTransportTest, FromHeaderModeKeepsMultiplexedFlowIds) {
  TransportOptions options;
  options.flow_mode = FlowIdMode::from_header;
  SocketTransport server(options);
  SocketTransport client;
  const std::uint16_t port = server.listen(0);
  const std::uint32_t flow = client.connect(port);
  ASSERT_NE(flow, 0u);

  // Many flows over ONE session, as the WAN trunk of a proxy pair.
  for (std::uint32_t f : {100u, 200u, 100u, 300u}) {
    LinkHeader header;
    header.type = gd::PacketType::raw;
    header.flow = f;
    const std::uint8_t byte = static_cast<std::uint8_t>(f);
    ASSERT_TRUE(client.send_frame(flow, header, {&byte, 1}));
  }
  ASSERT_TRUE(pump_until(server, client,
                         [&] { return server.ready_frames() == 4; }));
  io::Burst burst;
  ASSERT_EQ(server.rx_burst(burst), 4u);
  EXPECT_EQ(burst.meta(0).flow, 100u);
  EXPECT_EQ(burst.meta(1).flow, 200u);
  EXPECT_EQ(burst.meta(2).flow, 100u);
  EXPECT_EQ(burst.meta(3).flow, 300u);
}

TEST(SocketTransportTest, PeerCloseCountsAsPeerEof) {
  SocketTransport server;
  SocketTransport client;
  const std::uint16_t port = server.listen(0);
  const std::uint32_t flow = client.connect(port);
  ASSERT_NE(flow, 0u);
  ASSERT_TRUE(pump_until(server, client,
                         [&] { return server.session_count() == 1; }));

  client.close_session(flow);
  EXPECT_EQ(client.stats().closed_local, 1u);
  EXPECT_EQ(client.session_count(), 0u);

  ASSERT_TRUE(pump_until(server, client,
                         [&] { return server.session_count() == 0; }));
  EXPECT_EQ(server.stats().closed_peer_eof, 1u);
  EXPECT_EQ(server.stats().sessions_closed, 1u);
}

TEST(SocketTransportTest, ProtocolViolationTearsSessionDown) {
  SocketTransport server;
  const std::uint16_t port = server.listen(0);

  // A raw socket speaking garbage: an oversize length prefix.
  Fd raw = connect_tcp(port);
  ASSERT_TRUE(static_cast<bool>(raw));
  std::uint8_t prefix[kFramePrefixBytes];
  wire::put_u32_be(prefix, 0xFFFFFFFF);
  ASSERT_EQ(write_some(raw.get(), prefix).status, IoStatus::ok);

  for (int i = 0; i < 20000 && server.stats().closed_protocol == 0; ++i) {
    server.poll(0);
  }
  EXPECT_EQ(server.stats().closed_protocol, 1u);
  EXPECT_EQ(server.session_count(), 0u);

  // A zero-length prefix kills a fresh session the same way.
  Fd raw2 = connect_tcp(port);
  ASSERT_TRUE(static_cast<bool>(raw2));
  wire::put_u32_be(prefix, 0);
  ASSERT_EQ(write_some(raw2.get(), prefix).status, IoStatus::ok);
  for (int i = 0; i < 20000 && server.stats().closed_protocol < 2; ++i) {
    server.poll(0);
  }
  EXPECT_EQ(server.stats().closed_protocol, 2u);
}

// Writing into a dead peer must neither raise SIGPIPE nor wedge the
// transport: the session tears down as peer_eof/peer_reset and later
// sends are counted drops.
TEST(SocketTransportTest, WritesToDeadPeerTearDownGracefully) {
  SocketTransport server;
  const std::uint16_t port = server.listen(0);
  Fd raw = connect_tcp(port);
  ASSERT_TRUE(static_cast<bool>(raw));
  for (int i = 0; i < 20000 && server.session_count() == 0; ++i) {
    server.poll(0);
  }
  ASSERT_EQ(server.session_count(), 1u);
  const std::uint32_t flow = 1;  // first session on a fresh transport

  raw.reset();  // the peer vanishes

  // Keep writing until the transport notices. The first sends may land
  // in kernel buffers; the close surfaces as EOF on read or
  // EPIPE/ECONNRESET on write — either way the session tears down
  // gracefully and the process takes no SIGPIPE (a SIGPIPE would kill
  // this test outright).
  LinkHeader header;
  header.type = gd::PacketType::raw;
  const std::vector<std::uint8_t> payload(1024, 0x77);
  for (int i = 0; i < 20000 && server.session_count() > 0; ++i) {
    (void)server.send_frame(flow, header, payload);
    server.poll(0);
  }
  EXPECT_EQ(server.session_count(), 0u);
  const TransportStats stats = server.stats();
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.closed_peer_eof + stats.closed_peer_reset, 1u);
  // Sends to the reaped flow are counted drops, not errors.
  EXPECT_FALSE(server.send_frame(flow, header, payload));
  EXPECT_GT(server.stats().frames_dropped, 0u);
}

TEST(SocketTransportTest, TxOverflowDropsAndCounts) {
  SocketTransport server;
  TransportOptions client_options;
  client_options.max_outbound_bytes = 32u << 10;  // small bounded queue
  SocketTransport client(client_options);
  const std::uint16_t port = server.listen(0);
  const std::uint32_t flow = client.connect(port);
  ASSERT_NE(flow, 0u);

  Rng rng(0xD209);
  std::vector<std::uint8_t> payload(4096);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  LinkHeader header;
  header.type = gd::PacketType::raw;

  // Do NOT pump the peer: the kernel buffers fill, writes go partial,
  // the bounded queue fills, and further sends drop-and-count.
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  for (int i = 0; i < 4000; ++i) {
    payload[0] = static_cast<std::uint8_t>(i);
    if (client.send_frame(flow, header, payload)) {
      ++accepted;
    } else {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(client.stats().frames_dropped, dropped);
  EXPECT_EQ(client.stats().frames_tx, accepted);

  // Now drain: every ACCEPTED frame must arrive intact, in order.
  std::uint64_t received = 0;
  io::Burst burst;
  ASSERT_TRUE(pump_until(server, client, [&] {
    while (server.rx_burst(burst) > 0) {
      for (std::size_t i = 0; i < burst.size(); ++i) {
        EXPECT_EQ(burst.payload(i).size(), payload.size());
        ++received;
      }
    }
    return received == accepted &&
           client.session(flow)->outbound_pending() == 0;
  }));
  EXPECT_EQ(received, accepted);
  EXPECT_GT(client.stats().partial_writes, 0u)
      << "an unpumped peer must have forced at least one partial write";
}

// The rx side: a full ready queue pauses reads (bounded memory) without
// losing a single frame once the consumer drains.
TEST(SocketTransportTest, RxBackpressurePausesWithoutLoss) {
  TransportOptions server_options;
  server_options.max_ready_frames = 8;
  server_options.burst_frames = 4;
  SocketTransport server(server_options);
  SocketTransport client;
  const std::uint16_t port = server.listen(0);
  const std::uint32_t flow = client.connect(port);
  ASSERT_NE(flow, 0u);

  constexpr int kFrames = 200;
  Rng rng(0xBACC);
  std::vector<std::uint8_t> payload(2048);
  LinkHeader header;
  header.type = gd::PacketType::raw;
  int sent = 0;

  std::size_t peak_ready = 0;
  int received = 0;
  io::Burst burst;
  ASSERT_TRUE(pump_until(server, client, [&] {
    while (sent < kFrames) {
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      payload[0] = static_cast<std::uint8_t>(sent);
      if (!client.send_frame(flow, header, payload)) break;
      ++sent;
    }
    peak_ready = std::max(peak_ready, server.ready_frames());
    // Drain slowly: one burst per round, so the queue genuinely fills.
    if (server.rx_burst(burst) > 0) {
      for (std::size_t i = 0; i < burst.size(); ++i) {
        EXPECT_EQ(burst.payload(i)[0],
                  static_cast<std::uint8_t>(received + i));
      }
      received += static_cast<int>(burst.size());
    }
    return received == kFrames;
  }));
  EXPECT_EQ(received, kFrames);
  EXPECT_EQ(server.stats().frames_rx, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(server.stats().frames_dropped, 0u);
  // The pause must have engaged: the queue never ballooned to the full
  // sender backlog.
  EXPECT_LT(peak_ready, static_cast<std::size_t>(kFrames));
}

// io::Runner's idle-hook overloads: an empty source consults the hook
// instead of returning, and a false hook ends the run.
TEST(RunnerIdleHookTest, EmptySourceInvokesHookUntilItSaysStop) {
  struct ScriptedSource {
    std::vector<std::size_t> script;  // packets per call, 0 = idle
    std::size_t i = 0;
    GdParams params;
    std::size_t rx_burst(io::Burst& out) {
      out.clear();
      if (i >= script.size()) return 0;
      const std::size_t n = script[i++];
      const std::vector<std::uint8_t> payload(params.raw_payload_bytes(),
                                              0x3C);
      for (std::size_t p = 0; p < n; ++p) {
        io::PacketMeta meta;
        meta.process = false;  // passthrough: no dictionary state needed
        out.append(gd::PacketType::raw, 0, 0, payload, meta);
      }
      return n;
    }
  };
  struct CountingSink {
    std::size_t packets = 0;
    void tx_burst(const io::Burst& burst) { packets += burst.size(); }
  };

  ScriptedSource source;
  source.script = {2, 0, 3, 0, 0};
  CountingSink sink;
  io::Runner runner;
  int idles = 0;
  const io::RunnerStats stats = runner.run(source, sink, [&] {
    ++idles;
    return source.i < source.script.size();
  });
  EXPECT_EQ(stats.packets_in, 5u);
  EXPECT_EQ(stats.bursts, 2u);
  // Hook ran at each of the three scripted empty rounds; the third
  // (script exhausted) said stop.
  EXPECT_EQ(idles, 3);

  // Node overload: same contract, through a passthrough node.
  source.i = 0;
  CountingSink node_sink;
  io::Node node(io::NodeOptions{});
  idles = 0;
  const io::RunnerStats node_stats =
      runner.run(source, node, node_sink, [&] {
        ++idles;
        return source.i < source.script.size();
      });
  EXPECT_EQ(node_stats.packets_out, 5u);
  EXPECT_EQ(node_sink.packets, 5u);
  EXPECT_EQ(idles, 3);
}

// A transport-driven Runner loop BLOCKS in the idle hook (epoll_wait)
// rather than spinning, and request_stop() from another thread ends it.
TEST(RunnerIdleHookTest, TransportLoopBlocksAndStopsOnRequest) {
  SocketTransport server;
  const std::uint16_t port = server.listen(0);
  (void)port;
  SocketSource source(server);
  struct NullSink {
    void tx_burst(const io::Burst&) {}
  } sink;

  std::thread stopper([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.request_stop();
  });
  io::Runner runner;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t idle_rounds = 0;
  runner.run(source, sink, [&] {
    ++idle_rounds;
    server.poll(5000);
    return !server.stop_requested();
  });
  stopper.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(4000))
      << "request_stop must unblock the poll promptly";
  // Blocked, not spun: a spinning loop would rack up thousands of rounds
  // in 50ms; the blocking loop wakes a handful of times.
  EXPECT_LT(idle_rounds, 100u);
}

// The full proxy pair over real sockets: client sessions -> encode Node
// -> WAN trunk -> decode Node -> collector. The per-session byte stream
// must survive bit-exactly for every ownership × worker arrangement.
class ProxyPairSoak
    : public ::testing::TestWithParam<
          std::tuple<DictionaryOwnership, std::size_t>> {};

TEST_P(ProxyPairSoak, ConcurrentSessionsRoundTripByteExact) {
  const auto [ownership, workers] = GetParam();
  GdParams params;
  constexpr std::size_t kSessions = 16;
  constexpr std::size_t kFramesPerSession = 12;

  // Encode proxy: accepts client sessions (each its own flow), sends
  // encoded frames up one multiplexed trunk.
  TransportOptions encode_options;
  encode_options.flow_mode = FlowIdMode::per_session;
  SocketTransport encode_transport(encode_options);
  const std::uint16_t encode_port = encode_transport.listen(0);

  // Decode proxy: receives the trunk (flows from the link headers),
  // forwards decoded frames to the collector over a third link.
  TransportOptions trunk_options;
  trunk_options.flow_mode = FlowIdMode::from_header;
  SocketTransport decode_transport(trunk_options);
  const std::uint16_t decode_port = decode_transport.listen(0);

  // Client/collector transport: N outbound sessions + the collector
  // listener the decode proxy feeds.
  SocketTransport client_transport(trunk_options);
  const std::uint16_t collector_port = client_transport.listen(0);

  const std::uint32_t trunk_flow = encode_transport.connect(decode_port);
  ASSERT_NE(trunk_flow, 0u);
  const std::uint32_t downlink_flow =
      decode_transport.connect(collector_port);
  ASSERT_NE(downlink_flow, 0u);

  std::vector<std::uint32_t> client_flows;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const std::uint32_t flow = client_transport.connect(encode_port);
    ASSERT_NE(flow, 0u);
    client_flows.push_back(flow);
  }

  // Per-session workloads: redundant chunk-pool payloads (so the
  // dictionary actually compresses) with the session index stamped into
  // the stream head for self-identification at the collector.
  Rng rng(0x50AC + static_cast<std::uint64_t>(workers) * 13 +
          (ownership == DictionaryOwnership::shared ? 7 : 0));
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  std::vector<std::vector<std::uint8_t>> pool;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> workloads(kSessions);
  std::vector<std::vector<std::uint8_t>> expected(kSessions);
  std::size_t total_expected_bytes = 0;
  for (std::size_t s = 0; s < kSessions; ++s) {
    for (std::size_t f = 0; f < kFramesPerSession; ++f) {
      std::vector<std::uint8_t> payload;
      const std::size_t chunks = 1 + rng.next_below(3);
      for (std::size_t c = 0; c < chunks; ++c) {
        auto chunk = pool[rng.next_below(pool.size())];
        if (rng.next_bool(0.3)) {
          chunk[rng.next_below(chunk.size())] ^= 1;
        }
        payload.insert(payload.end(), chunk.begin(), chunk.end());
      }
      if (f == 0) {
        // Stream head identifies the session at the collector.
        wire::put_u32_be(payload.data(), static_cast<std::uint32_t>(s));
      }
      expected[s].insert(expected[s].end(), payload.begin(), payload.end());
      total_expected_bytes += payload.size();
      workloads[s].push_back(std::move(payload));
    }
  }

  const auto node_options = [&](io::Direction direction) {
    io::NodeOptions options = io::NodeOptions{}
                                  .with_direction(direction)
                                  .with_params(params)
                                  .with_ownership(ownership)
                                  .with_workers(workers)
                                  .with_queue_depth(4);
    if (ownership == DictionaryOwnership::shared && workers > 1) {
      options.with_steering(engine::FlowSteering::load_aware)
          .with_work_stealing(true);
    }
    return options;
  };
  io::Node encode_node(node_options(io::Direction::encode));
  io::Node decode_node(node_options(io::Direction::decode));

  SocketSource encode_source(encode_transport);
  SocketSink encode_sink(encode_transport, trunk_flow);
  SocketSource decode_source(decode_transport);
  SocketSink decode_sink(decode_transport, downlink_flow);

  std::vector<std::size_t> next_frame(kSessions, 0);
  std::map<std::uint32_t, std::vector<std::uint8_t>> collected;
  std::size_t collected_bytes = 0;
  io::Burst scratch_in;
  io::Burst scratch_out;
  io::Burst collected_burst;

  const auto pump_proxy = [&](SocketTransport& transport,
                              SocketSource& source, io::Node& node,
                              SocketSink& sink) {
    transport.poll(0);
    while (source.rx_burst(scratch_in) > 0) {
      scratch_out.clear();
      node.process(scratch_in, scratch_out);
      sink.tx_burst(scratch_out);
    }
    transport.poll(0);
  };

  bool done = false;
  for (int round = 0; round < 50000 && !done; ++round) {
    // Clients feed pending frames (retrying when a queue pushes back).
    for (std::size_t s = 0; s < kSessions; ++s) {
      while (next_frame[s] < kFramesPerSession) {
        LinkHeader header;
        header.type = gd::PacketType::raw;
        if (!client_transport.send_frame(client_flows[s], header,
                                         workloads[s][next_frame[s]])) {
          break;
        }
        ++next_frame[s];
      }
    }
    client_transport.poll(0);
    pump_proxy(encode_transport, encode_source, encode_node, encode_sink);
    pump_proxy(decode_transport, decode_source, decode_node, decode_sink);
    client_transport.poll(0);
    while (client_transport.rx_burst(collected_burst) > 0) {
      for (std::size_t i = 0; i < collected_burst.size(); ++i) {
        const auto payload = collected_burst.payload(i);
        auto& stream = collected[collected_burst.meta(i).flow];
        stream.insert(stream.end(), payload.begin(), payload.end());
        collected_bytes += payload.size();
      }
    }
    done = collected_bytes == total_expected_bytes;
  }
  ASSERT_TRUE(done) << "proxy pair stalled: " << collected_bytes << "/"
                    << total_expected_bytes << " bytes";

  // Nothing was dropped anywhere along the chain.
  EXPECT_EQ(encode_sink.dropped_frames(), 0u);
  EXPECT_EQ(decode_sink.dropped_frames(), 0u);
  EXPECT_EQ(encode_transport.stats().frames_dropped, 0u);
  EXPECT_EQ(decode_transport.stats().frames_dropped, 0u);
  EXPECT_EQ(client_transport.stats().frames_dropped, 0u);

  // Every session's byte stream survived exactly, and each maps back to
  // the session that sent it via the stamped stream head.
  ASSERT_EQ(collected.size(), kSessions);
  std::vector<bool> matched(kSessions, false);
  for (const auto& [flow, stream] : collected) {
    ASSERT_GE(stream.size(), 4u);
    const std::uint32_t s = wire::get_u32_be(stream.data());
    ASSERT_LT(s, kSessions) << "flow " << flow;
    EXPECT_FALSE(matched[s]) << "two flows claimed session " << s;
    matched[s] = true;
    EXPECT_EQ(stream, expected[s])
        << "session " << s << " (flow " << flow << ") diverged";
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(matched[s]) << "session " << s << " never arrived";
  }

  // The link actually compressed: trunk bytes < raw bytes in.
  const TransportStats trunk = encode_transport.stats();
  EXPECT_LT(trunk.bytes_tx, trunk.bytes_rx)
      << "encode proxy did not shrink the stream";
}

INSTANTIATE_TEST_SUITE_P(
    OwnershipWorkers, ProxyPairSoak,
    ::testing::Combine(::testing::Values(DictionaryOwnership::per_flow,
                                         DictionaryOwnership::shared),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

}  // namespace
}  // namespace zipline::netio
