// Cross-cutting property tests for the GD stack: bijectivity of the
// transform, wire-format round trips under randomized parameters, encoder/
// decoder mirroring under fuzzed operation sequences, and stream-container
// fuzzing. These complement the per-module unit tests with randomized,
// parameter-swept coverage of the invariants the system stands on.
#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "common/rng.hpp"
#include "gd/codec.hpp"
#include "gd/stream.hpp"

namespace zipline::gd {
namespace {

using bits::BitVector;

BitVector random_bits(Rng& rng, std::size_t n, double density = 0.5) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_bool(density)) v.set(i);
  }
  return v;
}

// Property 1: for every order m, the map word -> (basis, syndrome) is
// injective (sampled) and inverted exactly by the inverse transform.
class TransformBijectivity : public ::testing::TestWithParam<int> {};

TEST_P(TransformBijectivity, SampledInjectivityAndInversion) {
  const int m = GetParam();
  GdParams params;
  params.m = m;
  params.chunk_bits = (params.n() + 7) / 8 * 8;
  params.id_bits = std::min<std::size_t>(15, params.k() - 1);
  params.validate();
  const GdTransform transform(params);
  Rng rng(static_cast<std::uint64_t>(m) * 1000081);
  std::map<std::pair<std::uint64_t, std::uint32_t>, BitVector> seen;
  for (int trial = 0; trial < 300; ++trial) {
    const BitVector chunk = random_bits(rng, params.chunk_bits);
    const TransformedChunk tc = transform.forward(chunk);
    EXPECT_EQ(transform.inverse(tc), chunk);
    const auto key = std::make_pair(
        tc.basis.hash() ^ (tc.excess.hash() << 1), tc.syndrome);
    const auto [it, inserted] = seen.emplace(key, chunk);
    if (!inserted) {
      // Hash collision is possible in principle; a true violation is two
      // different chunks with identical decomposition.
      EXPECT_EQ(it->second, chunk);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, TransformBijectivity,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11));

// Property 2: serialize/parse is the identity on packets for randomized
// parameter combinations.
TEST(WireFormatProperty, RandomParamsRandomPackets) {
  Rng rng(777);
  for (int config_trial = 0; config_trial < 20; ++config_trial) {
    GdParams params;
    params.m = static_cast<int>(rng.next_in(3, 11));
    const std::size_t chunk_bytes = (params.n() + 7) / 8 +
                                    rng.next_below(4);
    params.chunk_bits = chunk_bytes * 8;
    params.id_bits = 1 + rng.next_below(
                             std::min<std::size_t>(params.k() - 2, 20));
    params.model_tofino_padding = rng.next_bool(0.5);
    params.validate();
    for (int packet_trial = 0; packet_trial < 20; ++packet_trial) {
      const auto syndrome = static_cast<std::uint32_t>(
          rng.next_below(std::uint64_t{1} << params.m));
      BitVector excess = random_bits(rng, params.excess_bits());
      if (rng.next_bool(0.5)) {
        const auto pkt = GdPacket::make_uncompressed(
            syndrome, excess, random_bits(rng, params.k()));
        const auto back = GdPacket::parse(params, PacketType::uncompressed,
                                          pkt.serialize(params));
        EXPECT_EQ(back.syndrome, pkt.syndrome);
        EXPECT_EQ(back.excess, pkt.excess);
        EXPECT_EQ(back.basis, pkt.basis);
      } else {
        const auto id = static_cast<std::uint32_t>(
            rng.next_below(params.dictionary_capacity()));
        const auto pkt = GdPacket::make_compressed(syndrome, excess, id);
        const auto back = GdPacket::parse(params, PacketType::compressed,
                                          pkt.serialize(params));
        EXPECT_EQ(back.syndrome, pkt.syndrome);
        EXPECT_EQ(back.excess, pkt.excess);
        EXPECT_EQ(back.basis_id, pkt.basis_id);
      }
    }
  }
}

// Property 3: the mirrored encoder/decoder pair stays lossless across
// fuzzed workloads with adversarial repetition structure, for every
// eviction policy and dictionary size.
struct MirrorCase {
  EvictionPolicy policy;
  std::size_t id_bits;
  std::uint64_t seed;
};

class MirrorFuzz : public ::testing::TestWithParam<MirrorCase> {};

TEST_P(MirrorFuzz, LosslessUnderChurn) {
  const auto [policy, id_bits, seed] = GetParam();
  GdParams params;
  params.id_bits = id_bits;
  params.validate();
  GdEncoder encoder{params, policy};
  GdDecoder decoder{params, policy};
  Rng rng(seed);
  const GdTransform transform(params);
  // Pool of canonical chunks; weights shift over time to stress recency.
  std::vector<BitVector> pool;
  for (int i = 0; i < 100; ++i) {
    const BitVector chunk = random_bits(rng, 256);
    const auto tc = transform.forward(chunk);
    pool.push_back(transform.inverse(tc.excess, tc.basis, 0));
  }
  for (int step = 0; step < 8000; ++step) {
    const std::size_t window_start = (step / 1000) * 10 % pool.size();
    const std::size_t pick =
        (window_start + rng.next_below(20)) % pool.size();
    BitVector chunk = pool[pick];
    if (rng.next_bool(0.7)) chunk.flip(rng.next_below(255));
    if (rng.next_bool(0.1)) chunk.flip(255);  // excess-bit noise
    const GdPacket packet = encoder.encode_chunk(chunk);
    // Wire round trip included: decoder sees parsed bytes, not objects.
    const GdPacket parsed =
        GdPacket::parse(params, packet.type, packet.serialize(params));
    ASSERT_EQ(decoder.decode_chunk(parsed), chunk)
        << "step " << step << " policy " << static_cast<int>(policy);
  }
  // Both dictionaries must be in identical states at the end.
  EXPECT_EQ(encoder.dictionary().size(), decoder.dictionary().size());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAndSize, MirrorFuzz,
    ::testing::Values(MirrorCase{EvictionPolicy::lru, 3, 1},
                      MirrorCase{EvictionPolicy::lru, 6, 2},
                      MirrorCase{EvictionPolicy::lru, 15, 3},
                      MirrorCase{EvictionPolicy::fifo, 3, 4},
                      MirrorCase{EvictionPolicy::fifo, 6, 5},
                      MirrorCase{EvictionPolicy::random, 3, 6},
                      MirrorCase{EvictionPolicy::random, 6, 7}));

// Property 4: the stream container is lossless over random structured and
// unstructured inputs of random sizes.
TEST(StreamProperty, FuzzedInputsRoundTrip) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t size = rng.next_below(20000);
    std::vector<std::uint8_t> data(size);
    switch (rng.next_below(3)) {
      case 0:  // uniform random
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
        break;
      case 1: {  // repeated block with noise
        std::vector<std::uint8_t> block(32);
        for (auto& b : block) b = static_cast<std::uint8_t>(rng.next_u64());
        for (std::size_t i = 0; i < size; ++i) {
          data[i] = block[i % 32];
          if (rng.next_bool(0.01)) data[i] ^= 1;
        }
        break;
      }
      default:  // low-entropy runs
        for (std::size_t i = 0; i < size; ++i) {
          data[i] = static_cast<std::uint8_t>(rng.next_below(3));
        }
    }
    const auto container = gd_stream_compress(data);
    EXPECT_EQ(gd_stream_decompress(container), data)
        << "trial " << trial << " size " << size;
  }
}

// Property 5: compression-ratio accounting is exact — stats must equal
// recomputation from emitted packets.
TEST(StatsProperty, ByteAccountingConsistent) {
  GdParams params;
  params.id_bits = 5;
  GdEncoder encoder{params};
  Rng rng(99);
  std::uint64_t recomputed_out = 0;
  std::uint64_t packets = 0;
  for (int step = 0; step < 3000; ++step) {
    const BitVector chunk = random_bits(rng, 256);
    const GdPacket packet = encoder.encode_chunk(chunk);
    recomputed_out += packet.serialize(params).size();
    ++packets;
  }
  EXPECT_EQ(encoder.stats().bytes_out, recomputed_out);
  EXPECT_EQ(encoder.stats().bytes_in, packets * 32);
  EXPECT_EQ(encoder.stats().chunks, packets);
  EXPECT_EQ(encoder.stats().uncompressed_packets +
                encoder.stats().compressed_packets,
            packets);
}

}  // namespace
}  // namespace zipline::gd
