// Property tests of the encode/decode switch pair as a system: for
// arbitrary traffic mixes, everything that can be restored is restored
// bit-exactly, nothing is silently corrupted, and the classification
// counters always account for every packet.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gd/transform.hpp"
#include "tofino/pipeline.hpp"
#include "zipline/program.hpp"

namespace zipline::prog {
namespace {

using bits::BitVector;

struct PipelinePair {
  explicit PipelinePair(LearningMode learning, std::size_t id_bits = 15) {
    ZipLineConfig enc_config;
    enc_config.op = SwitchOp::encode;
    enc_config.learning = learning;
    enc_config.params.id_bits = id_bits;
    ZipLineConfig dec_config = enc_config;
    dec_config.op = SwitchOp::decode;
    encoder = std::make_shared<ZipLineProgram>(enc_config);
    decoder = std::make_shared<ZipLineProgram>(dec_config);
    enc_sw = std::make_unique<tofino::SwitchModel>("enc", encoder);
    dec_sw = std::make_unique<tofino::SwitchModel>("dec", decoder);
  }

  std::shared_ptr<ZipLineProgram> encoder;
  std::shared_ptr<ZipLineProgram> decoder;
  std::unique_ptr<tofino::SwitchModel> enc_sw;
  std::unique_ptr<tofino::SwitchModel> dec_sw;
};

net::EthernetFrame frame_of(std::vector<std::uint8_t> payload,
                            std::uint16_t ether_type) {
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::local(2);
  frame.src = net::MacAddress::local(1);
  frame.ether_type = ether_type;
  frame.payload = std::move(payload);
  return frame;
}

// Mixed traffic: chunk frames, oversized frames, undersized frames,
// foreign EtherTypes — every packet either passes through identically or
// round-trips through GD bit-exactly.
class TrafficMixFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrafficMixFuzz, EverythingAccountedNothingCorrupted) {
  PipelinePair pair(LearningMode::data_plane);
  Rng rng(GetParam());
  std::uint64_t chunk_frames = 0;
  std::uint64_t passthrough_frames = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto t = static_cast<SimTime>(step);
    std::vector<std::uint8_t> payload;
    std::uint16_t ether = 0x5A01;
    switch (rng.next_below(4)) {
      case 0:  // proper chunk
        payload.resize(32);
        break;
      case 1:  // chunk + L2 padding
        payload.resize(32 + rng.next_below(15));
        break;
      case 2:  // undersized: must pass through
        payload.resize(rng.next_below(32));
        break;
      default:  // foreign protocol: must pass through
        payload.resize(rng.next_below(200));
        ether = 0x0800;
    }
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const bool is_chunk = ether == 0x5A01 && payload.size() >= 32;
    chunk_frames += is_chunk;
    passthrough_frames += !is_chunk;

    const auto encoded = pair.enc_sw->process(frame_of(payload, ether), 1, t);
    ASSERT_FALSE(encoded.dropped);
    if (!is_chunk) {
      // Passthrough must be byte-identical including EtherType.
      EXPECT_EQ(encoded.frame.ether_type, ether);
      EXPECT_EQ(encoded.frame.payload, payload);
      continue;
    }
    const auto decoded = pair.dec_sw->process(encoded.frame, 1, t);
    ASSERT_FALSE(decoded.dropped);
    ASSERT_EQ(decoded.frame.payload.size(), 32u);
    EXPECT_TRUE(std::equal(decoded.frame.payload.begin(),
                           decoded.frame.payload.end(), payload.begin()))
        << "step " << step;
  }
  // Counter completeness: every encoder ingress packet is classified.
  const std::uint64_t classified =
      pair.encoder->class_packets(PacketClass::passthrough) +
      pair.encoder->class_packets(PacketClass::raw_to_type2) +
      pair.encoder->class_packets(PacketClass::raw_to_type3);
  EXPECT_EQ(classified, chunk_frames + passthrough_frames);
  EXPECT_EQ(pair.encoder->class_packets(PacketClass::passthrough),
            passthrough_frames);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficMixFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// Register-learning collision safety: when two live bases collide on a
// hash slot, the design must never deliver wrong bytes — the slot simply
// thrashes (each collision re-learns), which costs compression, not
// correctness.
TEST(RegisterCollisions, ThrashingNeverCorrupts) {
  // Tiny register file to force collisions.
  PipelinePair pair(LearningMode::data_plane, /*id_bits=*/3);
  Rng rng(77);
  const gd::GdTransform transform(pair.encoder->config().params);
  std::vector<BitVector> chunks;
  for (int i = 0; i < 40; ++i) {
    BitVector chunk(256);
    for (std::size_t b = 0; b < 256; ++b) {
      if (rng.next_bool(0.5)) chunk.set(b);
    }
    const auto tc = transform.forward(chunk);
    chunks.push_back(transform.inverse(tc.excess, tc.basis, 0));
  }
  std::uint64_t compressed = 0;
  for (int step = 0; step < 4000; ++step) {
    const BitVector& chunk = chunks[rng.next_below(chunks.size())];
    const auto encoded = pair.enc_sw->process(
        frame_of(chunk.to_bytes(), 0x5A01), 1, static_cast<SimTime>(step));
    compressed += encoded.frame.ether_type ==
                  gd::ether_type_for(gd::PacketType::compressed);
    const auto decoded =
        pair.dec_sw->process(encoded.frame, 1, static_cast<SimTime>(step));
    ASSERT_FALSE(decoded.dropped);
    ASSERT_EQ(BitVector::from_bytes(decoded.frame.payload, 256), chunk)
        << "step " << step;
  }
  // 40 bases over 8 slots: collisions guaranteed, compression degraded but
  // present.
  EXPECT_GT(compressed, 100u);
  EXPECT_LT(compressed, 3900u);
}

// Decode switch presented with garbage ZipLine frames: drops or throws,
// never emits a frame that claims to be a restored chunk.
TEST(DecodeRobustness, GarbagePayloadsNeverFabricateChunks) {
  ZipLineConfig config;
  config.op = SwitchOp::decode;
  auto program = std::make_shared<ZipLineProgram>(config);
  tofino::SwitchModel sw("dec", program);
  Rng rng(5);
  std::uint64_t emitted = 0;
  for (int step = 0; step < 500; ++step) {
    // Random bytes with a type-3 EtherType but arbitrary length >= 3.
    std::vector<std::uint8_t> payload(3 + rng.next_below(30));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto result = sw.process(
        frame_of(payload, gd::ether_type_for(gd::PacketType::compressed)), 1,
        static_cast<SimTime>(step));
    if (!result.dropped) {
      // Only possible if the random ID happened to be installed — it never
      // is in this test.
      ++emitted;
    }
  }
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(program->class_packets(PacketClass::decode_unknown_id), 500u);
}

// The egress placement property (§6): in a decode switch the ingress
// stage only forwards; all GD work happens in egress. A frame dropped at
// ingress (unknown port) must never touch the decode tables.
TEST(EgressPlacement, IngressDropSkipsDecode) {
  ZipLineConfig config;
  config.op = SwitchOp::decode;
  auto program = std::make_shared<ZipLineProgram>(config);
  tofino::SwitchModel sw("dec", program);
  const auto pkt = gd::GdPacket::make_compressed(1, BitVector(1), 3);
  auto frame = frame_of(pkt.serialize(config.params),
                        gd::ether_type_for(gd::PacketType::compressed));
  const auto result = sw.process(frame, /*ingress_port=*/42, 0);
  EXPECT_TRUE(result.dropped);
  // No decode classification happened — the packet died in ingress.
  EXPECT_EQ(program->class_packets(PacketClass::decode_unknown_id), 0u);
  EXPECT_EQ(program->class_packets(PacketClass::type3_to_raw), 0u);
}

}  // namespace
}  // namespace zipline::prog
