// The lock-free (seqlock) read path of the shared dictionary service and
// the batched per-stripe resolve plan:
//
//   * single-threaded, the seqlock wrapper must make exactly the plain
//     deterministic dictionary's decisions AND report the same
//     hit/miss/insert/evict statistics (read-side accounting included);
//   * apply_batch grouped-by-shard execution must equal the serial
//     in-order reference (ShardedDictionary::apply_batch) op for op;
//   * resolve plans must take at most ONE stripe acquisition per
//     (plan, shard) pair — regression-tested against
//     DictionaryStats::stripe_acquisitions, standalone and through the
//     ordered parallel pipeline;
//   * concurrent readers racing a writer's insert/evict/erase churn must
//     NEVER observe a torn basis (every fetched basis satisfies a
//     per-basis integrity invariant), across policies x shards x read
//     paths. The TSan and ASan+UBSan CI jobs run this file.
#include "gd/concurrent_dictionary.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "engine/parallel.hpp"
#include "gd/dictionary_handle.hpp"

namespace zipline::gd {
namespace {

constexpr std::size_t kBasisBits = 247;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// A 247-bit basis whose upper words are all derived from word 0, so any
/// torn mix of two distinct bases fails the recomputation check.
bits::BitVector tagged_basis(std::uint64_t seed) {
  bits::BitVector v(kBasisBits);
  v.or_uint(0, seed, 64);
  v.or_uint(64, splitmix64(seed ^ 1), 64);
  v.or_uint(128, splitmix64(seed ^ 2), 64);
  v.or_uint(192, splitmix64(seed ^ 3) & ((std::uint64_t{1} << 55) - 1), 55);
  return v;
}

/// True iff `v` is internally consistent with its word-0 tag — what a
/// torn (mixed-version) read can never be.
bool is_tagged(const bits::BitVector& v) {
  if (v.size() != kBasisBits) return false;
  const auto words = v.words();
  if (words.size() != 4) return false;
  const std::uint64_t seed = words[0];
  return words[1] == splitmix64(seed ^ 1) && words[2] == splitmix64(seed ^ 2) &&
         words[3] == (splitmix64(seed ^ 3) & ((std::uint64_t{1} << 55) - 1));
}

bits::BitVector random_basis(Rng& rng, std::size_t bits = kBasisBits) {
  bits::BitVector v(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

// Single-threaded, the seqlock read path must make exactly the decisions
// of the plain deterministic dictionary — lock-free hits and misses are
// state-equivalent to their locked counterparts, and the wrapper's
// read-side counters keep the aggregate statistics identical too.
TEST(SeqlockReadPath, SingleThreadedMatchesPlainDictionary) {
  for (const auto policy :
       {EvictionPolicy::lru, EvictionPolicy::fifo, EvictionPolicy::random}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      ShardedDictionary plain(64, policy, shards);
      ConcurrentShardedDictionary fast(64, policy, shards, ReadPath::seqlock);
      Rng rng(0x5EC1 + shards + static_cast<std::size_t>(policy));
      std::vector<bits::BitVector> pool;
      for (int i = 0; i < 96; ++i) pool.push_back(random_basis(rng));

      bits::BitVector fetched;
      for (int op = 0; op < 600; ++op) {
        const auto& basis = pool[rng.next_below(pool.size())];
        switch (rng.next_below(4)) {
          case 0: {
            const auto a = plain.lookup(basis);
            const auto b = fast.lookup(basis);
            ASSERT_EQ(a, b);
            if (!a) {
              ASSERT_EQ(plain.insert(basis).id, fast.insert(basis).id);
            }
            break;
          }
          case 1:
            ASSERT_EQ(plain.peek(basis), fast.peek(basis));
            ASSERT_EQ(plain.peek(basis).has_value(), fast.contains(basis));
            break;
          case 2: {
            const auto id =
                static_cast<std::uint32_t>(rng.next_below(plain.capacity()));
            const bits::BitVector* ref = plain.lookup_basis_ref(id);
            const bool found = fast.lookup_basis_into(id, fetched);
            ASSERT_EQ(ref != nullptr, found);
            if (ref != nullptr) {
              ASSERT_TRUE(*ref == fetched);
            }
            break;
          }
          default: {
            const auto id =
                static_cast<std::uint32_t>(rng.next_below(plain.capacity()));
            if (plain.peek_basis(id) != nullptr) {
              plain.erase(id);
              fast.erase(id);
            }
            break;
          }
        }
      }
      EXPECT_EQ(plain.size(), fast.size());
      const DictionaryStats a = plain.stats();
      const DictionaryStats b = fast.stats();
      EXPECT_EQ(a.hits, b.hits) << "read-side hits must fold into stats()";
      EXPECT_EQ(a.misses, b.misses);
      EXPECT_EQ(a.insertions, b.insertions);
      EXPECT_EQ(a.evictions, b.evictions);
      if (policy != EvictionPolicy::lru) {
        EXPECT_GT(b.lockfree_reads, 0u)
            << "fifo/random reads must actually use the seqlock path";
      }
    }
  }
}

// The grouped-by-shard concurrent apply_batch must produce exactly the
// results (and end state) of the serial in-order reference execution —
// per-shard state independence is what licenses the grouping.
TEST(ApplyBatch, GroupedExecutionMatchesSerialReference) {
  for (const auto policy :
       {EvictionPolicy::lru, EvictionPolicy::fifo, EvictionPolicy::random}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      for (const auto path : {ReadPath::locked, ReadPath::seqlock}) {
        ShardedDictionary ref(64, policy, shards);
        ConcurrentShardedDictionary svc(64, policy, shards, path);
        Rng rng(0xBA7C + shards + static_cast<std::size_t>(policy));
        std::vector<bits::BitVector> pool;
        for (int i = 0; i < 48; ++i) pool.push_back(random_basis(rng));
        BatchScratch scratch;

        for (int round = 0; round < 12; ++round) {
          std::vector<BatchOp> plan;
          std::vector<bits::BitVector> ref_out(32);
          std::vector<bits::BitVector> svc_out(32);
          for (int i = 0; i < 32; ++i) {
            BatchOp op;
            const auto roll = rng.next_below(8);
            if (roll < 5) {
              op.kind = roll < 4 ? BatchOp::Kind::lookup_or_insert
                                 : BatchOp::Kind::lookup;
              op.basis = &pool[rng.next_below(pool.size())];
              op.hash = op.basis->hash();
            } else if (roll < 6) {
              op.kind = BatchOp::Kind::insert_if_absent;
              op.basis = &pool[rng.next_below(pool.size())];
              op.hash = op.basis->hash();
            } else {
              op.kind = BatchOp::Kind::fetch_basis;
              op.id = static_cast<std::uint32_t>(rng.next_below(64));
            }
            plan.push_back(op);
          }
          std::vector<BatchOp> ref_plan = plan;
          std::vector<BatchOp> svc_plan = plan;
          for (std::size_t i = 0; i < plan.size(); ++i) {
            if (plan[i].kind == BatchOp::Kind::fetch_basis) {
              ref_plan[i].out = &ref_out[i];
              svc_plan[i].out = &svc_out[i];
            }
          }
          ref.apply_batch(ref_plan);
          svc.apply_batch(svc_plan, scratch);
          for (std::size_t i = 0; i < plan.size(); ++i) {
            ASSERT_EQ(ref_plan[i].result, svc_plan[i].result)
                << "op " << i << " round " << round;
            if (plan[i].kind == BatchOp::Kind::fetch_basis &&
                ref_plan[i].result != BatchOp::kNoId) {
              ASSERT_TRUE(ref_out[i] == svc_out[i]);
            }
          }
        }
        EXPECT_EQ(ref.size(), svc.size());
        EXPECT_EQ(ref.stats().hits, svc.stats().hits);
        EXPECT_EQ(ref.stats().misses, svc.stats().misses);
        EXPECT_EQ(ref.stats().insertions, svc.stats().insertions);
        EXPECT_EQ(ref.stats().evictions, svc.stats().evictions);
      }
    }
  }
}

// The batched-resolve contract, standalone: one plan takes exactly one
// stripe acquisition per shard it touches, however many ops it carries.
TEST(ApplyBatch, OneStripeAcquisitionPerShard) {
  ConcurrentShardedDictionary svc(64, EvictionPolicy::lru, 4,
                                  ReadPath::seqlock);
  Rng rng(0xACC);
  std::vector<bits::BitVector> bases;
  for (int i = 0; i < 16; ++i) bases.push_back(random_basis(rng));

  std::vector<BatchOp> plan;
  std::size_t touched_shards = 0;
  {
    std::vector<bool> seen(4, false);
    for (const auto& basis : bases) {
      BatchOp op;
      op.kind = BatchOp::Kind::lookup_or_insert;
      op.basis = &basis;
      op.hash = basis.hash();
      plan.push_back(op);
      const std::size_t shard = svc.unsynchronized().shard_of_hash(op.hash);
      if (!seen[shard]) {
        seen[shard] = true;
        ++touched_shards;
      }
    }
  }
  BatchScratch scratch;
  EXPECT_EQ(svc.stats().stripe_acquisitions, 0u);
  svc.apply_batch(plan, scratch);
  EXPECT_EQ(svc.stats().stripe_acquisitions, touched_shards)
      << "16 ops must coalesce into one acquisition per touched shard";
  // A second pass (all hits now) costs the same number of acquisitions.
  for (auto& op : plan) op.result = BatchOp::kNoId;
  svc.apply_batch(plan, scratch);
  EXPECT_EQ(svc.stats().stripe_acquisitions, 2 * touched_shards);
}

// The same contract through the ordered shared pipeline: N submitted
// units resolve with at most one acquisition per (unit, shard) pair —
// exactly N acquisitions on a single-stripe service, and nothing else in
// the pipeline (steering, stealing, stats readout) takes a dictionary
// lock.
TEST(ApplyBatch, PipelineResolveTakesOneAcquisitionPerUnitAndShard) {
  gd::GdParams params;
  params.id_bits = 10;
  Rng rng(0x10CB);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int u = 0; u < 32; ++u) {
    std::vector<std::uint8_t> payload(4 * params.raw_payload_bytes());
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    payloads.push_back(std::move(payload));
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    engine::ParallelOptions options;
    options.workers = 4;
    options.ownership = engine::DictionaryOwnership::shared;
    options.steering = engine::FlowSteering::load_aware;
    options.work_stealing = true;
    options.dictionary_shards = shards;
    engine::ParallelEncoder pool(params, options, nullptr);
    for (std::uint32_t u = 0; u < payloads.size(); ++u) {
      pool.submit(u % 6, payloads[u]);
    }
    pool.flush();
    ASSERT_NE(pool.shared_dictionary(), nullptr);
    const std::uint64_t acquisitions =
        pool.shared_dictionary()->stats().stripe_acquisitions;
    if (shards == 1) {
      EXPECT_EQ(acquisitions, payloads.size())
          << "every unit's resolve must coalesce into ONE acquisition";
    } else {
      // At most one per (unit, shard) pair, and no more pairs than ops.
      EXPECT_LE(acquisitions, payloads.size() * 4);
      EXPECT_GE(acquisitions, payloads.size());
    }
  }
}

// The satellite stress test: concurrent readers racing a writer's
// insert/evict/erase churn must never observe a torn basis. Bases carry a
// self-certifying tag (upper words derived from word 0), so any mixed-
// version read fails is_tagged. Runs the full policy x shards matrix on
// the seqlock path (plus a locked-path control) — the TSan and ASan+UBSan
// CI jobs execute this under their sanitizers.
TEST(SeqlockReadPath, ConcurrentReadersNeverSeeTornBases) {
  struct Combo {
    EvictionPolicy policy;
    std::size_t shards;
    ReadPath path;
  };
  const Combo combos[] = {
      {EvictionPolicy::lru, 1, ReadPath::seqlock},
      {EvictionPolicy::lru, 4, ReadPath::seqlock},
      {EvictionPolicy::fifo, 1, ReadPath::seqlock},
      {EvictionPolicy::fifo, 4, ReadPath::seqlock},
      {EvictionPolicy::random, 4, ReadPath::seqlock},
      {EvictionPolicy::fifo, 4, ReadPath::locked},
  };
  constexpr std::size_t kCapacity = 256;    // small: constant evictions
  constexpr std::uint64_t kSeedRange = 4096;  // writer seeds wrap over this
  constexpr std::size_t kReaders = 3;
  constexpr std::uint64_t kReaderOps = 3000;

  for (const Combo& combo : combos) {
    ConcurrentShardedDictionary dict(kCapacity, combo.policy, combo.shards,
                                     combo.path);
    // Readers do a FIXED amount of work; the writer churns until the last
    // reader finishes, so reads always race live publishes even on a
    // single-core host that runs the threads mostly back to back.
    std::atomic<std::size_t> readers_done{0};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> verified{0};

    std::thread writer([&] {
      Rng rng(0x317E);
      for (std::uint64_t op = 0;
           readers_done.load(std::memory_order_acquire) < kReaders; ++op) {
        if (op % 16 == 15) {
          dict.erase(static_cast<std::uint32_t>(rng.next_below(kCapacity)));
        } else {
          // Tagged bases over a wrapping seed range: at capacity every
          // fresh insert also evicts, so entries are republished
          // constantly (and re-learns hit the present-check fast path).
          dict.insert_if_absent(
              tagged_basis((op % kSeedRange) * 0x9E3779B97F4A7C15ULL + 1));
        }
      }
    });

    std::vector<std::thread> readers;
    for (std::size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Rng rng(0xEAD0 + r);
        bits::BitVector fetched;
        for (std::uint64_t op = 0; op < kReaderOps; ++op) {
          if (rng.next_bool(0.5)) {
            const auto id =
                static_cast<std::uint32_t>(rng.next_below(kCapacity));
            if (dict.lookup_basis_into(id, fetched)) {
              if (!is_tagged(fetched)) torn.fetch_add(1);
              verified.fetch_add(1);
            }
          } else {
            // Probe for a basis the writer may be publishing right now;
            // outcome (hit or miss) is timing-dependent, but a hit's
            // identifier must be in range and the probe must not crash
            // or tear.
            const auto seed = rng.next_below(kSeedRange);
            const auto probe =
                tagged_basis(seed * 0x9E3779B97F4A7C15ULL + 1);
            if (const auto id = dict.peek(probe)) {
              if (*id >= kCapacity) torn.fetch_add(1);
            }
            (void)dict.contains(probe);
          }
        }
        readers_done.fetch_add(1, std::memory_order_release);
      });
    }
    for (auto& t : readers) t.join();
    writer.join();

    EXPECT_EQ(torn.load(), 0u)
        << "policy " << static_cast<int>(combo.policy) << " shards "
        << combo.shards << " path " << static_cast<int>(combo.path);
    EXPECT_GT(verified.load(), 0u) << "readers must have fetched something";
    const DictionaryStats stats = dict.stats();
    EXPECT_LE(dict.size(), kCapacity);
    // Conservation: every resident basis was inserted and neither evicted
    // nor erased (erase frees an identifier without counting an eviction,
    // so insertions - evictions only bounds the population from above).
    EXPECT_GE(stats.insertions - stats.evictions, dict.size());
    if (combo.path == ReadPath::seqlock &&
        combo.policy != EvictionPolicy::lru) {
      EXPECT_GT(stats.lockfree_reads, 0u);
    }
  }
}

// The handle seam: apply_batch through a private handle is the serial
// reference; through a shared handle it is the grouped concurrent plan —
// and both agree with per-op execution.
TEST(DictionaryHandle, ApplyBatchDispatchesThroughBothModes) {
  ConcurrentShardedDictionary service(32, EvictionPolicy::fifo, 2,
                                      ReadPath::seqlock);
  DictionaryHandle shared(service);
  DictionaryHandle owned(32, EvictionPolicy::fifo, 2);
  Rng rng(0xD15);
  std::vector<bits::BitVector> pool;
  for (int i = 0; i < 24; ++i) pool.push_back(random_basis(rng));

  BatchScratch scratch;
  for (int round = 0; round < 4; ++round) {
    std::vector<BatchOp> a;
    for (int i = 0; i < 12; ++i) {
      BatchOp op;
      op.kind = BatchOp::Kind::lookup_or_insert;
      op.basis = &pool[rng.next_below(pool.size())];
      op.hash = op.basis->hash();
      a.push_back(op);
    }
    std::vector<BatchOp> b = a;
    shared.apply_batch(a, scratch);
    owned.apply_batch(b, scratch);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].result, b[i].result) << "round " << round << " op " << i;
    }
  }
  EXPECT_EQ(shared.size(), owned.size());
  EXPECT_EQ(shared.stats().insertions, owned.stats().insertions);
}

}  // namespace
}  // namespace zipline::gd
