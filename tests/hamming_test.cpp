#include "hamming/hamming.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::hamming {
namespace {

using bits::BitVector;

TEST(HammingCode, DimensionsFollowM) {
  for (int m = 3; m <= 12; ++m) {
    const HammingCode code(m);
    EXPECT_EQ(code.n(), (std::size_t{1} << m) - 1);
    EXPECT_EQ(code.k(), code.n() - static_cast<std::size_t>(m));
  }
}

TEST(HammingCode, RejectsNonPrimitiveGenerator) {
  // x^4+x^3+x^2+x+1 is irreducible but not primitive.
  EXPECT_THROW(HammingCode(4, crc::Gf2Poly(0b11111)),
               zipline::ContractViolation);
  // Degree mismatch.
  EXPECT_THROW(HammingCode(4, crc::Gf2Poly(0b1011)),
               zipline::ContractViolation);
}

TEST(HammingCode, EncodeProducesCodewords) {
  const HammingCode code(4);  // (15, 11)
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    BitVector msg(code.k());
    for (std::size_t i = 0; i < code.k(); ++i) {
      if (rng.next_bool(0.5)) msg.set(i);
    }
    const BitVector cw = code.encode(msg);
    EXPECT_EQ(cw.size(), code.n());
    EXPECT_TRUE(code.is_codeword(cw));
    // Systematic: message recoverable by truncating parity.
    EXPECT_EQ(cw.slice(static_cast<std::size_t>(code.m()), code.k()), msg);
  }
}

TEST(HammingCode, EncodeMatchesFrozenShiftConcatFormula) {
  // encode() now routes through the expand_into path (a codeword is the
  // expansion of its message with a zero syndrome). This pins it to the
  // original formula — parity of the up-shifted message concatenated
  // below the message — so the reroute can never drift.
  for (const int m : {3, 4, 6, 8, 10}) {
    const HammingCode code(m);
    Rng rng(0xE0C0DEu ^ static_cast<unsigned>(m));
    for (int trial = 0; trial < 32; ++trial) {
      BitVector msg(code.k());
      for (std::size_t i = 0; i < code.k(); ++i) {
        if (rng.next_bool(0.5)) msg.set(i);
      }
      const BitVector shifted = msg.shifted_up(static_cast<std::size_t>(m));
      const BitVector frozen = BitVector::concat(
          msg, BitVector(static_cast<std::size_t>(m), code.syndrome(shifted)));
      EXPECT_EQ(code.encode(msg), frozen) << "m=" << m << " trial=" << trial;
    }
  }
}

TEST(HammingCode, PaperSection2WorkedExampleBasisZero) {
  // Chunks {0000000, 0000001, 0000010, ..., 1000000} -> basis 0000.
  const HammingCode code(3);
  for (int flip = -1; flip < 7; ++flip) {
    BitVector word(7);
    if (flip >= 0) word.set(static_cast<std::size_t>(flip));
    const Canonical c = code.canonicalize(word);
    EXPECT_TRUE(c.basis.none()) << "flip=" << flip;
    if (flip < 0) {
      EXPECT_EQ(c.syndrome, 0u);
    } else {
      EXPECT_NE(c.syndrome, 0u);
    }
    EXPECT_EQ(code.expand(c.basis, c.syndrome), word);
  }
}

TEST(HammingCode, PaperSection2WorkedExampleBasisOnes) {
  // Chunks {1111111, 1111110, ...} -> basis 1111.
  const HammingCode code(3);
  const BitVector all_ones = BitVector::from_string("1111111");
  for (int flip = -1; flip < 7; ++flip) {
    BitVector word = all_ones;
    if (flip >= 0) word.flip(static_cast<std::size_t>(flip));
    const Canonical c = code.canonicalize(word);
    EXPECT_EQ(c.basis.to_string(), "1111") << "flip=" << flip;
    EXPECT_EQ(code.expand(c.basis, c.syndrome), word);
  }
}

TEST(HammingCode, SyndromeTableMatchesPaperTable2) {
  const HammingCode code(3);
  const std::uint32_t expected[7] = {0b001, 0b010, 0b100, 0b011,
                                     0b110, 0b111, 0b101};
  for (std::size_t pos = 0; pos < 7; ++pos) {
    EXPECT_EQ(code.syndrome_of_position(pos), expected[pos]);
    EXPECT_EQ(code.error_position(expected[pos]), pos);
  }
}

TEST(HammingCode, ErrorPositionRejectsZeroSyndrome) {
  const HammingCode code(3);
  EXPECT_THROW((void)code.error_position(0), zipline::ContractViolation);
  EXPECT_THROW((void)code.error_position(8), zipline::ContractViolation);
}

TEST(HammingCode, PerfectCodeExhaustiveM3) {
  // Every 7-bit word maps to exactly one (basis, syndrome) and back.
  const HammingCode code(3);
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t w = 0; w < 128; ++w) {
    const BitVector word(7, w);
    const Canonical c = code.canonicalize(word);
    EXPECT_LT(c.syndrome, 8u);
    EXPECT_EQ(c.basis.size(), 4u);
    const std::uint64_t key = (c.basis.to_uint64() << 3) | c.syndrome;
    EXPECT_TRUE(seen.insert(key).second) << "collision at w=" << w;
    EXPECT_EQ(code.expand(c.basis, c.syndrome), word);
  }
  EXPECT_EQ(seen.size(), 128u);  // bijection: 16 bases x 8 syndromes
}

TEST(HammingCode, PerfectCodeExhaustiveM4) {
  const HammingCode code(4);
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t w = 0; w < (1u << 15); ++w) {
    const BitVector word(15, w);
    const Canonical c = code.canonicalize(word);
    const std::uint64_t key = (c.basis.to_uint64() << 4) | c.syndrome;
    EXPECT_TRUE(seen.insert(key).second);
    EXPECT_EQ(code.expand(c.basis, c.syndrome), word);
  }
  EXPECT_EQ(seen.size(), std::size_t{1} << 15);
}

TEST(HammingCode, CanonicalizeAgreesWithNearestCodeword) {
  // basis of word == message of the codeword at Hamming distance <= 1.
  const HammingCode code(3);
  for (std::uint64_t u = 0; u < 16; ++u) {
    const BitVector cw = code.encode(BitVector(4, u));
    for (std::size_t pos = 0; pos < 7; ++pos) {
      BitVector word = cw;
      word.flip(pos);
      const Canonical c = code.canonicalize(word);
      EXPECT_EQ(c.basis.to_uint64(), u);
      EXPECT_EQ(code.error_position(c.syndrome), pos);
    }
  }
}

// Parameterized property sweep over all supported orders.
class HammingRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HammingRoundTrip, RandomWordsRoundTrip) {
  const int m = GetParam();
  const HammingCode code(m);
  Rng rng(static_cast<std::uint64_t>(m) * 7919);
  for (int trial = 0; trial < 200; ++trial) {
    BitVector word(code.n());
    for (std::size_t i = 0; i < code.n(); ++i) {
      if (rng.next_bool(0.5)) word.set(i);
    }
    const Canonical c = code.canonicalize(word);
    EXPECT_EQ(code.expand(c.basis, c.syndrome), word);
  }
}

TEST_P(HammingRoundTrip, SingleBitNeighborsShareBasis) {
  const int m = GetParam();
  const HammingCode code(m);
  Rng rng(static_cast<std::uint64_t>(m) * 104729);
  BitVector msg(code.k());
  for (std::size_t i = 0; i < code.k(); ++i) {
    if (rng.next_bool(0.5)) msg.set(i);
  }
  const BitVector cw = code.encode(msg);
  for (int trial = 0; trial < 64; ++trial) {
    BitVector word = cw;
    word.flip(rng.next_below(code.n()));
    EXPECT_EQ(code.canonicalize(word).basis, msg);
  }
}

TEST_P(HammingRoundTrip, SyndromePositionBijection) {
  const int m = GetParam();
  const HammingCode code(m);
  for (std::size_t pos = 0; pos < code.n(); ++pos) {
    const std::uint32_t s = code.syndrome_of_position(pos);
    EXPECT_EQ(code.error_position(s), pos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, HammingRoundTrip,
                         ::testing::Range(3, 16));

// The paper's alternative generators (Table 1) must give valid codes too.
TEST(HammingCode, AlternativeGeneratorsFromTable1) {
  const HammingCode c5(5, crc::Gf2Poly::from_crc_param(5, 0x17));
  EXPECT_EQ(c5.n(), 31u);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector word(31, rng.next_u64() & 0x7FFFFFFF);
    const Canonical c = c5.canonicalize(word);
    EXPECT_EQ(c5.expand(c.basis, c.syndrome), word);
  }
}

}  // namespace
}  // namespace zipline::hamming
