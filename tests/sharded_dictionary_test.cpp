// ShardedDictionary: global identifier striping, content-hash routing,
// deterministic mirrored replay, and bit-identity with the unsharded
// dictionary at shard_count == 1.
#include "gd/sharded_dictionary.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace zipline::gd {
namespace {

bits::BitVector random_basis(Rng& rng, std::size_t bits = 247) {
  bits::BitVector v(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

std::vector<bits::BitVector> random_bases(std::size_t count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bits::BitVector> bases;
  bases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) bases.push_back(random_basis(rng));
  return bases;
}

TEST(ShardedDictionary, ShardCountOneIsBitIdenticalToPlainDictionary) {
  for (const auto policy : {EvictionPolicy::lru, EvictionPolicy::fifo,
                            EvictionPolicy::random}) {
    BasisDictionary plain(16, policy);
    ShardedDictionary sharded(16, policy, 1);
    const auto bases = random_bases(200, 0x5AD + static_cast<int>(policy));
    Rng coin(0xC01);
    for (const auto& basis : bases) {
      // Interleave lookups and inserts the way the encoder does.
      const auto a = plain.lookup(basis);
      const auto b = sharded.lookup(basis);
      ASSERT_EQ(a, b);
      if (!a) {
        ASSERT_EQ(plain.insert(basis).id, sharded.insert(basis).id);
      }
      if (coin.next_bool(0.3)) {
        const auto id = static_cast<std::uint32_t>(coin.next_below(16));
        ASSERT_EQ(plain.lookup_basis(id), sharded.lookup_basis(id));
      }
    }
    EXPECT_EQ(plain.stats().hits, sharded.stats().hits);
    EXPECT_EQ(plain.stats().misses, sharded.stats().misses);
    EXPECT_EQ(plain.stats().evictions, sharded.stats().evictions);
    EXPECT_EQ(plain.size(), sharded.size());
  }
}

TEST(ShardedDictionary, GlobalIdentifiersStripeByShard) {
  ShardedDictionary dict(64, EvictionPolicy::lru, 4);
  EXPECT_EQ(dict.shard_capacity(), 16u);
  EXPECT_EQ(dict.shard_count(), 4u);
  const auto bases = random_bases(48, 0x57121BE);
  for (const auto& basis : bases) {
    const auto result = dict.insert(basis);
    const std::size_t shard = dict.shard_of(basis);
    // The identifier encodes its shard, so decode-side routing needs no
    // side channel.
    EXPECT_EQ(dict.shard_of_id(result.id), shard);
    EXPECT_GE(result.id, shard * dict.shard_capacity());
    EXPECT_LT(result.id, (shard + 1) * dict.shard_capacity());
    // Round trips through both directions.
    EXPECT_EQ(dict.lookup(basis), result.id);
    const auto back = dict.lookup_basis(result.id);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, basis);
  }
  // All four shards should have received traffic from 48 random bases.
  for (std::size_t s = 0; s < dict.shard_count(); ++s) {
    EXPECT_GT(dict.shard(s).size(), 0u) << "shard " << s << " never routed to";
  }
  EXPECT_EQ(dict.size(), 48u);
}

TEST(ShardedDictionary, MirroredInstancesReplayIdentically) {
  for (const auto policy : {EvictionPolicy::lru, EvictionPolicy::fifo,
                            EvictionPolicy::random}) {
    for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
      ShardedDictionary encoder(32, policy, shards);
      ShardedDictionary decoder(32, policy, shards);
      const auto bases = random_bases(300, 0xD0D0 + shards);
      Rng pick(41);
      for (int i = 0; i < 600; ++i) {
        const auto& basis = bases[pick.next_below(bases.size())];
        const auto enc_hit = encoder.lookup(basis);
        const auto dec_hit = decoder.lookup(basis);
        ASSERT_EQ(enc_hit, dec_hit);
        if (!enc_hit) {
          // Both sides learn, replaying the identical allocation decision.
          ASSERT_EQ(encoder.insert(basis).id, decoder.insert(basis).id);
        }
      }
      EXPECT_EQ(encoder.stats().evictions, decoder.stats().evictions);
    }
  }
}

TEST(ShardedDictionary, EvictionsStayWithinTheLoadedShard) {
  // Capacity 2 per shard: flooding one shard must never evict from another.
  ShardedDictionary dict(8, EvictionPolicy::lru, 4);
  const auto bases = random_bases(64, 0xF10);
  std::vector<std::size_t> inserted_per_shard(4, 0);
  for (const auto& basis : bases) {
    const std::size_t shard = dict.shard_of(basis);
    dict.insert(basis);
    ++inserted_per_shard[shard];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    const auto& stats = dict.shard(s).stats();
    EXPECT_EQ(stats.insertions, inserted_per_shard[s]);
    const std::size_t expected_evictions =
        inserted_per_shard[s] > 2 ? inserted_per_shard[s] - 2 : 0;
    EXPECT_EQ(stats.evictions, expected_evictions);
    EXPECT_LE(dict.shard(s).size(), 2u);
  }
}

TEST(ShardedDictionary, EraseAndInstallRouteByIdentifier) {
  ShardedDictionary dict(16, EvictionPolicy::lru, 2);
  const auto bases = random_bases(4, 0x1A5);
  const auto result = dict.insert(bases[0]);
  dict.erase(result.id);
  EXPECT_FALSE(dict.peek(bases[0]).has_value());
  // Re-install at an explicit identifier inside the route shard.
  const auto shard = dict.shard_of(bases[1]);
  const auto id = static_cast<std::uint32_t>(shard * dict.shard_capacity() + 3);
  dict.install(id, bases[1]);
  EXPECT_EQ(dict.peek(bases[1]), id);
}

}  // namespace
}  // namespace zipline::gd
