// Control-plane tests: digest-driven learning, the two-phase install
// order, duplicate-digest suppression, LRU identifier recycling, and the
// end-to-end learning latency pipeline.
#include "zipline/controller.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gd/transform.hpp"
#include "sim/event_queue.hpp"
#include "tofino/pipeline.hpp"

namespace zipline::prog {
namespace {

using bits::BitVector;

struct ControllerFixture {
  ControllerFixture(ControlPlaneTiming timing = {}, std::size_t id_bits = 15) {
    ZipLineConfig config;
    config.op = SwitchOp::encode;
    config.learning = LearningMode::control_plane;
    config.params.id_bits = id_bits;
    encoder = std::make_shared<ZipLineProgram>(config);
    ZipLineConfig dec_config = config;
    dec_config.op = SwitchOp::decode;
    decoder = std::make_shared<ZipLineProgram>(dec_config);
    timing.jitter_sigma = 0;  // deterministic unless a test overrides
    controller = std::make_unique<Controller>(events, *encoder, *decoder,
                                              timing);
  }

  BitVector random_basis(std::uint64_t seed) {
    Rng rng(seed);
    BitVector basis(encoder->config().params.k());
    for (std::size_t i = 0; i < basis.size(); ++i) {
      if (rng.next_bool(0.5)) basis.set(i);
    }
    return basis;
  }

  /// Emits a digest as the data plane would and lets the CP process it.
  void learn(const BitVector& basis, SimTime at) {
    events.schedule(at, [this, basis, at] {
      encoder->digests().emit(basis, at);
      controller->poll_digests();
    });
  }

  sim::EventQueue events;
  std::shared_ptr<ZipLineProgram> encoder;
  std::shared_ptr<ZipLineProgram> decoder;
  std::unique_ptr<Controller> controller;
};

TEST(Controller, LearnsBasisAfterTotalPipelineDelay) {
  ControllerFixture fx;
  const BitVector basis = fx.random_basis(1);
  fx.learn(basis, 0);
  const SimTime total = fx.controller->timing().total();

  // Just before the pipeline completes: encoder table still empty.
  fx.events.run_until(total - 1000);
  EXPECT_EQ(fx.encoder->basis_table().size(), 0u);
  // After: both tables populated.
  fx.events.run_until(total + 1000);
  EXPECT_EQ(fx.encoder->basis_table().size(), 1u);
  EXPECT_EQ(fx.decoder->id_table().size(), 1u);
  EXPECT_EQ(fx.controller->stats().mappings_installed, 1u);
}

TEST(Controller, DecoderInstalledBeforeEncoder) {
  // The §5 two-phase order: between the installs there is a window where
  // the decoder knows the mapping and the encoder does not.
  ControllerFixture fx;
  const BitVector basis = fx.random_basis(2);
  fx.learn(basis, 0);
  const auto& t = fx.controller->timing();
  const SimTime after_phase1 =
      t.digest_export + t.processing + t.install_decoder + 1000;
  fx.events.run_until(after_phase1);
  EXPECT_EQ(fx.decoder->id_table().size(), 1u);
  EXPECT_EQ(fx.encoder->basis_table().size(), 0u);
  fx.events.run_until(after_phase1 + t.install_encoder);
  EXPECT_EQ(fx.encoder->basis_table().size(), 1u);
}

TEST(Controller, DuplicateDigestsSuppressed) {
  ControllerFixture fx;
  const BitVector basis = fx.random_basis(3);
  for (int i = 0; i < 50; ++i) {
    fx.learn(basis, i * 1000);
  }
  fx.events.run_all();
  EXPECT_EQ(fx.controller->stats().mappings_installed, 1u);
  EXPECT_EQ(fx.controller->stats().duplicate_digests, 49u);
  EXPECT_EQ(fx.encoder->basis_table().size(), 1u);
}

TEST(Controller, DigestsForAlreadyLearnedBasisIgnored) {
  ControllerFixture fx;
  const BitVector basis = fx.random_basis(4);
  fx.learn(basis, 0);
  fx.events.run_all();
  fx.learn(basis, fx.events.now() + 1000000);
  fx.events.run_all();
  EXPECT_EQ(fx.controller->stats().mappings_installed, 1u);
}

TEST(Controller, RecyclesLruIdentifierWhenPoolExhausted) {
  // Tiny pool (4 ids). Learn 4 bases, keep hitting 3 of them in the data
  // plane, then learn a fifth: the unhit one must be evicted.
  ControllerFixture fx({}, /*id_bits=*/2);
  std::vector<BitVector> bases;
  for (int i = 0; i < 5; ++i) bases.push_back(fx.random_basis(10 + i));
  for (int i = 0; i < 4; ++i) {
    fx.learn(bases[static_cast<std::size_t>(i)], i * 100);
  }
  fx.events.run_all();
  EXPECT_EQ(fx.encoder->basis_table().size(), 4u);
  // Data-plane hits refresh recency for bases 0, 2, 3 (not 1).
  const SimTime hit_time = fx.events.now() + 1000;
  for (const int idx : {0, 2, 3}) {
    (void)fx.encoder->basis_table().lookup(bases[static_cast<std::size_t>(idx)],
                                           hit_time);
  }
  fx.learn(bases[4], hit_time + 1000);
  fx.events.run_all();
  EXPECT_EQ(fx.controller->stats().evictions, 1u);
  EXPECT_EQ(fx.encoder->basis_table().size(), 4u);
  // Basis 1 is gone; the others and the new one remain.
  EXPECT_FALSE(
      fx.encoder->basis_table().lookup(bases[1], fx.events.now()).has_value());
  EXPECT_TRUE(
      fx.encoder->basis_table().lookup(bases[4], fx.events.now()).has_value());
  // The decoder's table mirrors the eviction (no stale mapping).
  EXPECT_EQ(fx.decoder->id_table().size(), 4u);
}

TEST(Controller, PreloadInstallsImmediately) {
  ControllerFixture fx;
  const BitVector basis = fx.random_basis(20);
  fx.controller->preload(basis);
  EXPECT_EQ(fx.encoder->basis_table().size(), 1u);
  EXPECT_EQ(fx.decoder->id_table().size(), 1u);
  // Preloading the same basis twice is a no-op.
  fx.controller->preload(basis);
  EXPECT_EQ(fx.encoder->basis_table().size(), 1u);
}

TEST(Controller, PreloadBeyondCapacityThrows) {
  ControllerFixture fx({}, /*id_bits=*/1);  // 2 identifiers
  fx.controller->preload(fx.random_basis(30));
  fx.controller->preload(fx.random_basis(31));
  EXPECT_THROW(fx.controller->preload(fx.random_basis(32)),
               ContractViolation);
}

TEST(Controller, JitterProducesSpreadAroundNominal) {
  ControlPlaneTiming timing;
  timing.jitter_sigma = 40000;  // 0.04 ms
  std::vector<double> totals;
  for (int rep = 0; rep < 30; ++rep) {
    ControllerFixture fx;  // jitter zeroed inside; build our own below
    ZipLineConfig config;
    config.op = SwitchOp::encode;
    auto encoder = std::make_shared<ZipLineProgram>(config);
    ZipLineConfig dec = config;
    dec.op = SwitchOp::decode;
    auto decoder = std::make_shared<ZipLineProgram>(dec);
    sim::EventQueue events;
    Controller controller(events, *encoder, *decoder, timing,
                          static_cast<std::uint64_t>(rep) * 97 + 1);
    Rng rng(static_cast<std::uint64_t>(rep));
    BitVector basis(config.params.k());
    for (std::size_t i = 0; i < basis.size(); ++i) {
      if (rng.next_bool(0.5)) basis.set(i);
    }
    encoder->digests().emit(basis, 0);
    controller.poll_digests();
    events.run_all();
    totals.push_back(to_ms(events.now()));
  }
  double mean = 0;
  for (const double v : totals) mean += v;
  mean /= static_cast<double>(totals.size());
  EXPECT_NEAR(mean, to_ms(timing.total()), 0.1);
  // Samples are not all identical (jitter is real).
  const auto [min_it, max_it] = std::minmax_element(totals.begin(),
                                                    totals.end());
  EXPECT_GT(*max_it - *min_it, 0.005);
}

}  // namespace
}  // namespace zipline::prog
