// io::BufferPool unit + lifetime-stress coverage.
//
// The pool's claims are (1) refcounted segments recycle through a
// lock-free free list, (2) refs may be copied to and released from any
// thread, in any order, without a segment ever being reused while a ref
// is live, and (3) exhaustion or oversize requests fall back to owned
// overflow blocks instead of failing. The stress tests here are the ones
// CI runs under ThreadSanitizer and ASan+UBSan (.github/workflows/ci.yml)
// — the refcount release ordering and the Treiber-stack ABA tag are
// exactly the kind of bug only a sanitizer race catches.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "io/buffer_pool.hpp"
#include "io/burst.hpp"

namespace zipline::io {
namespace {

TEST(BufferPool, AcquireRecyclesThroughTheFreeList) {
  BufferPool pool(1024, 4);
  EXPECT_EQ(pool.free_segments(), 4u);

  SegmentRef a = pool.acquire(100);
  ASSERT_TRUE(a);
  EXPECT_FALSE(a.overflow());
  EXPECT_EQ(a.capacity(), 1024u);  // full segment, whatever was asked
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.free_segments(), 3u);

  SegmentRef b = a;  // copy bumps, same segment
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_TRUE(a.same_segment(b));

  a.reset();
  EXPECT_EQ(pool.free_segments(), 3u) << "live ref must pin the segment";
  b.reset();
  EXPECT_EQ(pool.free_segments(), 4u) << "last release must recycle";

  EXPECT_EQ(pool.stats().acquired, 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.stats().overflow_allocations, 0u);
}

TEST(BufferPool, OversizeAndExhaustionFallBackToOverflow) {
  BufferPool pool(128, 2);

  // Oversize: served as an exactly-sized owned block, pool untouched.
  SegmentRef big = pool.acquire(1000);
  ASSERT_TRUE(big);
  EXPECT_TRUE(big.overflow());
  EXPECT_EQ(big.capacity(), 1000u);
  EXPECT_EQ(pool.free_segments(), 2u);

  // Exhaustion: the third in-flight segment overflows instead of failing.
  SegmentRef s1 = pool.acquire(64);
  SegmentRef s2 = pool.acquire(64);
  EXPECT_FALSE(s1.overflow());
  EXPECT_FALSE(s2.overflow());
  SegmentRef s3 = pool.acquire(64);
  ASSERT_TRUE(s3);
  EXPECT_TRUE(s3.overflow());
  EXPECT_EQ(pool.stats().overflow_allocations, 2u);

  // Overflow blocks are writable, shareable and die on the last release
  // like any other segment (ASan owns this assertion).
  std::memset(s3.data(), 0xAB, s3.capacity());
  SegmentRef s3b = s3;
  s3.reset();
  EXPECT_EQ(s3b.data()[63], 0xAB);
  s3b.reset();

  // Pooled segments released after exhaustion recycle normally.
  s1.reset();
  s2.reset();
  EXPECT_EQ(pool.free_segments(), 2u);
  SegmentRef again = pool.acquire(64);
  EXPECT_FALSE(again.overflow());
}

TEST(BufferPool, SegmentWriterPacksAndBurstDedupsRefs) {
  BufferPool pool(256, 4);
  SegmentWriter writer(pool);
  Burst burst;
  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < 3; ++i) {
    payload.assign(64, static_cast<std::uint8_t>(i + 1));
    PacketMeta meta;
    burst.append_segment(gd::PacketType::raw, 0, 0, writer.write(payload),
                         writer.segment(), meta);
  }
  // 3 × 64 bytes pack into one 256-byte segment; the burst deduped the
  // consecutive refs down to one.
  EXPECT_EQ(burst.segment_refs(), 1u);
  EXPECT_EQ(pool.free_segments(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(burst.payload(i).size(), 64u);
    EXPECT_EQ(burst.payload(i)[0], static_cast<std::uint8_t>(i + 1));
  }
  // The fourth write no longer fits and rolls to a fresh segment.
  payload.assign(80, 9);
  PacketMeta meta;
  burst.append_segment(gd::PacketType::raw, 0, 0, writer.write(payload),
                       writer.segment(), meta);
  EXPECT_EQ(burst.segment_refs(), 2u);

  burst.clear();
  // The writer still bump-allocates into its current segment; only its
  // ref remains live.
  EXPECT_EQ(pool.free_segments(), 3u);
}

// The lifetime stress the sanitizers exist for: one producer acquires
// segments (pooled and overflow), stamps them, and fans refs out to
// worker threads; workers verify the stamp and release in a shuffled
// order while holding stashes — so releases race acquires, the same
// segment's refs drop on different threads, and the free list sees
// rapid pop/push ABA pressure. Any reuse-under-a-live-ref corrupts a
// stamp; any ordering bug is a TSan report.
TEST(BufferPool, CrossThreadOutOfOrderReleaseStress) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kRounds = 4000;
  constexpr std::size_t kSegmentBytes = 192;
  BufferPool pool(kSegmentBytes, 16);

  struct Item {
    SegmentRef ref;
    std::uint8_t stamp = 0;
    std::uint32_t bytes = 0;
  };
  struct Queue {
    std::mutex mutex;
    std::deque<Item> items;
  };
  std::array<Queue, kWorkers> queues;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> verified{0};

  const auto worker = [&](std::size_t id) {
    Rng rng(0x57A + id);
    std::vector<Item> stash;
    const auto verify_and_drop = [&](std::size_t at) {
      const Item& item = stash[at];
      for (std::uint32_t i = 0; i < item.bytes; ++i) {
        ASSERT_EQ(item.ref.data()[i], item.stamp)
            << "segment reused while a ref was live";
      }
      verified.fetch_add(1, std::memory_order_relaxed);
      stash.erase(stash.begin() + static_cast<std::ptrdiff_t>(at));
    };
    for (;;) {
      Item item;
      bool got = false;
      {
        std::lock_guard<std::mutex> lock(queues[id].mutex);
        if (!queues[id].items.empty()) {
          item = std::move(queues[id].items.front());
          queues[id].items.pop_front();
          got = true;
        }
      }
      if (got) {
        stash.push_back(std::move(item));
        if (stash.size() >= 6) {
          verify_and_drop(rng.next_below(stash.size()));  // out of order
        }
        continue;
      }
      if (done.load(std::memory_order_acquire)) {
        while (!stash.empty()) verify_and_drop(stash.size() - 1);
        {
          std::lock_guard<std::mutex> lock(queues[id].mutex);
          if (!queues[id].items.empty()) continue;  // late arrival
        }
        return;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back(worker, w);
  }

  Rng rng(0xFEED);
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Mostly pooled, sometimes oversize (overflow release path), and
    // under enough fan-out that the pool periodically runs dry (overflow
    // exhaustion path) — every release flavor races here.
    const std::uint32_t bytes = static_cast<std::uint32_t>(
        16 + rng.next_below(kSegmentBytes + 64));
    Item item;
    item.ref = pool.acquire(bytes);
    item.stamp = static_cast<std::uint8_t>(round * 31 + 7);
    item.bytes = bytes;
    std::memset(item.ref.data(), item.stamp, bytes);
    // Fan the same segment to two workers: their releases race.
    const std::size_t first = rng.next_below(kWorkers);
    const std::size_t second = (first + 1 + rng.next_below(kWorkers - 1)) %
                               kWorkers;
    Item copy;
    copy.ref = item.ref;
    copy.stamp = item.stamp;
    copy.bytes = item.bytes;
    {
      std::lock_guard<std::mutex> lock(queues[first].mutex);
      queues[first].items.push_back(std::move(item));
    }
    {
      std::lock_guard<std::mutex> lock(queues[second].mutex);
      queues[second].items.push_back(std::move(copy));
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(verified.load(), kRounds * 2);
  EXPECT_EQ(pool.free_segments(), 16u)
      << "every pooled segment must come home after the last release";
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquired, stats.recycled)
      << "pooled acquires and recycles must balance at quiescence";
  EXPECT_GT(stats.overflow_allocations, 0u)
      << "the stress is meant to exercise the overflow path too";
}

// Segment refs moved across threads inside Bursts — the SPSC pipeline
// hand-off shape: a producer builds segment-backed bursts, a consumer
// thread receives them (copy = ref bump), reads payloads, and drops them
// while the producer keeps acquiring from the same pool.
TEST(BufferPool, BurstHandoffAcrossThreadsStress) {
  constexpr std::size_t kBursts = 1500;
  BufferPool pool(1024, 8);

  std::mutex mutex;
  std::deque<Burst> channel;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bytes_seen{0};

  std::thread consumer([&] {
    Burst burst;
    for (;;) {
      bool got = false;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!channel.empty()) {
          burst = std::move(channel.front());
          channel.pop_front();
          got = true;
        }
      }
      if (!got) {
        if (done.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> lock(mutex);
          if (channel.empty()) return;
          continue;
        }
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < burst.size(); ++i) {
        const auto payload = burst.payload(i);
        std::uint64_t sum = 0;
        for (const std::uint8_t b : payload) sum += b;
        ASSERT_EQ(sum, static_cast<std::uint64_t>(payload[0]) *
                           payload.size())
            << "payload mutated under a live burst ref";
        bytes_seen.fetch_add(payload.size(), std::memory_order_relaxed);
      }
    }
  });

  Rng rng(0xD06);
  SegmentWriter writer(pool);
  for (std::size_t n = 0; n < kBursts; ++n) {
    Burst burst;
    const std::size_t packets = 1 + rng.next_below(4);
    for (std::size_t p = 0; p < packets; ++p) {
      const std::size_t bytes = 32 + rng.next_below(200);
      const auto stamp = static_cast<std::uint8_t>(n + p);
      std::vector<std::uint8_t> payload(bytes, stamp);
      PacketMeta meta;
      meta.flow = static_cast<std::uint32_t>(p);
      burst.append_segment(gd::PacketType::raw, 0, 0, writer.write(payload),
                           writer.segment(), meta);
    }
    std::lock_guard<std::mutex> lock(mutex);
    channel.push_back(std::move(burst));
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_GT(bytes_seen.load(), 0u);
}

}  // namespace
}  // namespace zipline::io
