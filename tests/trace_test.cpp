// Workload generator tests: the synthetic sensor trace must have the
// structure GD exploits (few bases, single-bit deviations) and the DNS
// trace must match the paper's filter (34 B queries, random transaction
// IDs, small distinct-value pool after stripping).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "gd/transform.hpp"
#include "trace/dns.hpp"
#include "trace/synthetic.hpp"

namespace zipline::trace {
namespace {

SyntheticSensorConfig small_config() {
  SyntheticSensorConfig config;
  config.chunk_count = 20000;
  config.sensor_count = 10;
  config.drift_every = 500;
  config.seed = 99;
  return config;
}

TEST(SyntheticSensor, PayloadGeometry) {
  const auto payloads = generate_synthetic_sensor(small_config());
  ASSERT_EQ(payloads.size(), 20000u);
  for (const auto& p : payloads) {
    EXPECT_EQ(p.size(), 32u);
  }
}

TEST(SyntheticSensor, Deterministic) {
  const auto a = generate_synthetic_sensor(small_config());
  const auto b = generate_synthetic_sensor(small_config());
  EXPECT_EQ(a, b);
  auto other = small_config();
  other.seed = 100;
  EXPECT_NE(generate_synthetic_sensor(other), a);
}

TEST(SyntheticSensor, BasisCountTracksDriftBudget) {
  const auto config = small_config();
  const auto payloads = generate_synthetic_sensor(config);
  const gd::GdTransform transform(config.params);
  std::unordered_set<bits::BitVector, bits::BitVectorHash> bases;
  std::uint64_t zero_syndromes = 0;
  for (const auto& p : payloads) {
    const auto tc = transform.forward(
        bits::BitVector::from_bytes(p, config.params.chunk_bits));
    bases.insert(tc.basis);
    zero_syndromes += tc.syndrome == 0;
  }
  // Expected distinct bases ~ chunk_count / drift_every = 40 (plus the
  // initial 10); far below the dictionary capacity, far above 1.
  EXPECT_GT(bases.size(), 20u);
  EXPECT_LT(bases.size(), 100u);
  // 1 - noise_probability of the readings are canonical (default 0.9).
  EXPECT_NEAR(static_cast<double>(zero_syndromes) /
                  static_cast<double>(payloads.size()),
              0.1, 0.05);
}

TEST(SyntheticSensor, NoiseStaysWithinOneBasisPerSensorEpoch) {
  // Consecutive readings of one sensor (between drifts) share a basis: GD
  // compresses them against a single dictionary entry.
  auto config = small_config();
  config.sensor_count = 1;
  config.drift_every = 1000000;  // never drifts within this trace
  config.chunk_count = 1000;
  const auto payloads = generate_synthetic_sensor(config);
  const gd::GdTransform transform(config.params);
  std::unordered_set<bits::BitVector, bits::BitVectorHash> bases;
  for (const auto& p : payloads) {
    bases.insert(
        transform
            .forward(bits::BitVector::from_bytes(p, config.params.chunk_bits))
            .basis);
  }
  EXPECT_EQ(bases.size(), 1u);
}

TEST(SyntheticSensor, PcapRoundTripPreservesChunks) {
  auto config = small_config();
  config.chunk_count = 500;
  const auto payloads = generate_synthetic_sensor(config);
  const auto path =
      (std::filesystem::temp_directory_path() / "zipline_synth.pcap").string();
  EXPECT_EQ(write_payloads_pcap(path, payloads, 10000.0), 500u);
  const auto back = read_payloads_pcap(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), payloads.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    // Ethernet minimum-frame padding survives; the chunk is the prefix.
    ASSERT_GE(back[i].size(), payloads[i].size());
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           back[i].begin()));
  }
}

TEST(SyntheticSensor, ConcatenateFlattens) {
  auto config = small_config();
  config.chunk_count = 10;
  const auto payloads = generate_synthetic_sensor(config);
  const auto flat = concatenate(payloads);
  EXPECT_EQ(flat.size(), 320u);
  EXPECT_TRUE(std::equal(payloads[0].begin(), payloads[0].end(), flat.begin()));
}

DnsTraceConfig small_dns() {
  DnsTraceConfig config;
  config.query_count = 10000;
  config.name_count = 50;
  config.seed = 5;
  return config;
}

TEST(DnsTrace, QueriesAre34Bytes) {
  const auto queries = generate_dns_queries(small_dns());
  ASSERT_EQ(queries.size(), 10000u);
  for (const auto& q : queries) {
    EXPECT_EQ(q.size(), kDnsQueryBytes);
  }
}

TEST(DnsTrace, TransactionIdsVaryButBodiesRepeat) {
  const auto queries = generate_dns_queries(small_dns());
  std::unordered_set<std::string> with_txid;
  std::unordered_set<std::string> without_txid;
  for (const auto& q : queries) {
    with_txid.emplace(q.begin(), q.end());
    without_txid.emplace(q.begin() + 2, q.end());
  }
  // Random transaction IDs make nearly every full query distinct...
  EXPECT_GT(with_txid.size(), 9000u);
  // ...while the filtered bodies collapse to the name pool.
  EXPECT_EQ(without_txid.size(), 50u);
}

TEST(DnsTrace, StripTransactionIdsYields32ByteChunks) {
  const auto queries = generate_dns_queries(small_dns());
  const auto stripped = strip_transaction_ids(queries);
  ASSERT_EQ(stripped.size(), queries.size());
  for (const auto& p : stripped) {
    EXPECT_EQ(p.size(), 32u);
  }
}

TEST(DnsTrace, ZipfSkewMakesTopNameDominate) {
  const auto queries = generate_dns_queries(small_dns());
  const auto stripped = strip_transaction_ids(queries);
  std::unordered_map<std::string, int> counts;
  for (const auto& p : stripped) {
    ++counts[std::string(p.begin(), p.end())];
  }
  int max_count = 0;
  for (const auto& [body, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // Zipf(1.0) over 50 names: rank 1 carries ~22% of queries.
  EXPECT_GT(max_count, 1500);
}

TEST(DnsTrace, QueryBodiesAreWellFormedDns) {
  const auto queries = generate_dns_queries(small_dns());
  const auto& q = queries.front();
  // Flags: RD bit (0x0100); QDCOUNT = 1.
  EXPECT_EQ(q[2], 0x01);
  EXPECT_EQ(q[3], 0x00);
  EXPECT_EQ(q[5], 0x01);
  // First label length 6, then "hNNNNN".
  EXPECT_EQ(q[12], 5);
  EXPECT_EQ(q[13], 'h');
  // Trailing QTYPE=A QCLASS=IN.
  EXPECT_EQ(q[31], 0x01);
  EXPECT_EQ(q[33], 0x01);
}

TEST(DnsTrace, DistinctBasesBoundedByNamePool) {
  const auto config = small_dns();
  const auto stripped = strip_transaction_ids(generate_dns_queries(config));
  const gd::GdParams params;
  const gd::GdTransform transform(params);
  std::unordered_set<bits::BitVector, bits::BitVectorHash> bases;
  for (const auto& p : stripped) {
    bases.insert(
        transform.forward(bits::BitVector::from_bytes(p, 256)).basis);
  }
  EXPECT_LE(bases.size(), config.name_count);
  EXPECT_GT(bases.size(), config.name_count / 2);
}

}  // namespace
}  // namespace zipline::trace
