// EvictionPolicy::clock — deterministic second-chance recency.
//
// CLOCK approximates LRU with one referenced bit per entry: hits set the
// bit (idempotent, lock-free in the concurrent wrapper), the evicting
// writer sweeps a hand over the slots, clearing set bits and evicting the
// first clear one. The contracts under test:
//
//   * the sweep is exactly second-chance: victims fall out in the
//     documented order, fresh inserts get one full lap of protection;
//   * encoder and decoder evict IDENTICALLY (the mirrored-learning
//     protocol), end to end through the GDZ1 container format, whose v2
//     header records the clock policy byte;
//   * concurrent readers marking referenced bits while the writer sweeps
//     them never tear a basis and never derail determinism of the locked
//     mutation sequence. The TSan and ASan+UBSan CI jobs run this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "gd/concurrent_dictionary.hpp"
#include "gd/dictionary.hpp"
#include "gd/stream.hpp"

namespace zipline::gd {
namespace {

constexpr std::size_t kBasisBits = 247;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// A 247-bit basis whose upper words all derive from word 0, so any torn
/// mix of two distinct bases fails the recomputation check.
bits::BitVector tagged_basis(std::uint64_t seed) {
  bits::BitVector v(kBasisBits);
  v.or_uint(0, seed, 64);
  v.or_uint(64, splitmix64(seed ^ 1), 64);
  v.or_uint(128, splitmix64(seed ^ 2), 64);
  v.or_uint(192, splitmix64(seed ^ 3) & ((std::uint64_t{1} << 55) - 1), 55);
  return v;
}

bool is_tagged(const bits::BitVector& v) {
  if (v.size() != kBasisBits) return false;
  const auto words = v.words();
  if (words.size() != 4) return false;
  const std::uint64_t seed = words[0];
  return words[1] == splitmix64(seed ^ 1) && words[2] == splitmix64(seed ^ 2) &&
         words[3] == (splitmix64(seed ^ 3) & ((std::uint64_t{1} << 55) - 1));
}

// The sweep, step by step, on a capacity-4 dictionary. Fresh inserts set
// their referenced bit (one full lap of protection — CLOCK's analogue of
// LRU's push-front), hits re-arm it, and the hand clears bits until it
// finds a clear slot.
TEST(ClockSweep, SecondChanceVictimOrder) {
  BasisDictionary dict(4, EvictionPolicy::clock);
  std::vector<bits::BitVector> b;
  for (std::uint64_t i = 0; i < 8; ++i) b.push_back(tagged_basis(0xC10C + i));

  for (int i = 0; i < 4; ++i) {
    const InsertResult r = dict.insert(b[i]);
    EXPECT_EQ(r.id, static_cast<std::uint32_t>(i));
    EXPECT_FALSE(r.evicted.has_value());
  }

  // All four bits are set: the hand clears the whole lap and takes slot 0
  // on its second visit.
  const InsertResult first = dict.insert(b[4]);
  EXPECT_EQ(first.id, 0u);
  ASSERT_TRUE(first.evicted.has_value());
  EXPECT_TRUE(*first.evicted == b[0]);

  // A hit re-arms b[1]'s bit, so the next sweep (hand at slot 1) clears it
  // and evicts slot 2 instead.
  EXPECT_EQ(dict.lookup(b[1]), std::optional<std::uint32_t>{1u});
  const InsertResult second = dict.insert(b[5]);
  EXPECT_EQ(second.id, 2u);
  ASSERT_TRUE(second.evicted.has_value());
  EXPECT_TRUE(*second.evicted == b[2]);

  // Slot 3 was cleared on the first lap and never touched since.
  const InsertResult third = dict.insert(b[6]);
  EXPECT_EQ(third.id, 3u);
  ASSERT_TRUE(third.evicted.has_value());
  EXPECT_TRUE(*third.evicted == b[3]);

  // Hand is back at slot 0, where the fresh b[4] still holds its insert
  // bit: it survives one lap, and the swept (b[1], cleared at `second`)
  // slot loses instead.
  const InsertResult fourth = dict.insert(b[7]);
  EXPECT_EQ(fourth.id, 1u);
  ASSERT_TRUE(fourth.evicted.has_value());
  EXPECT_TRUE(*fourth.evicted == b[1]);

  EXPECT_EQ(dict.stats().evictions, 4u);
  EXPECT_GE(dict.stats().clock_touches, 1u);  // the lookup hit
}

// touch() and mark_referenced() are the counted and stats-free spellings
// of the same bit store; both protect the entry from the next sweep.
TEST(ClockSweep, TouchAndMarkReferencedAreEquivalentProtection) {
  for (const bool use_mark : {false, true}) {
    BasisDictionary dict(3, EvictionPolicy::clock);
    const auto b1 = tagged_basis(2);
    const auto b2 = tagged_basis(3);
    ASSERT_EQ(dict.insert(tagged_basis(1)).id, 0u);
    ASSERT_EQ(dict.insert(b1).id, 1u);
    ASSERT_EQ(dict.insert(b2).id, 2u);
    // First eviction clears every bit and takes slot 0 on the wrap; the
    // hand now points at slot 1, whose bit is clear — the next victim,
    // unless the hook below re-arms it and shifts the loss to slot 2.
    ASSERT_EQ(dict.insert(tagged_basis(4)).id, 0u);
    if (use_mark) {
      dict.mark_referenced(1);
    } else {
      dict.touch(1);
    }
    const InsertResult r = dict.insert(tagged_basis(5));
    EXPECT_EQ(r.id, 2u) << (use_mark ? "mark_referenced" : "touch");
    ASSERT_TRUE(r.evicted.has_value());
    EXPECT_TRUE(*r.evicted == b2);
    // Only touch() counts: mark_referenced is the concurrent wrapper's
    // stats-free hook (the wrapper does its own read-side accounting).
    EXPECT_EQ(dict.stats().clock_touches, use_mark ? 0u : 1u);
  }
}

// Mirrored learning end to end: a clock encoder and a clock decoder must
// evict identically, or decode diverges the moment an evicted identifier
// is reused. Forced with a tiny identifier space and a redundant, mutating
// input — through the full GDZ1 container, whose v2 header carries the
// clock policy byte.
TEST(ClockParity, EncoderDecoderEvictIdenticallyThroughGdStream) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    GdParams params = stream_default_params();
    params.id_bits = 4;  // 16 identifiers -> constant eviction pressure
    Rng rng(0xC10C2 + shards);
    const std::size_t chunk_bytes = params.raw_payload_bytes();
    std::vector<std::vector<std::uint8_t>> pool;
    for (int i = 0; i < 40; ++i) {
      std::vector<std::uint8_t> chunk(chunk_bytes);
      for (auto& byte : chunk) byte = static_cast<std::uint8_t>(rng.next_u64());
      pool.push_back(chunk);
    }
    std::vector<std::uint8_t> input;
    for (int c = 0; c < 400; ++c) {
      auto chunk = pool[rng.next_below(pool.size())];
      if (rng.next_bool(0.3)) {
        chunk[rng.next_below(chunk.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      input.insert(input.end(), chunk.begin(), chunk.end());
    }

    StreamStats stats;
    const auto container = gd_stream_compress(input, params, &stats,
                                              EvictionPolicy::clock, shards);
    // v2 header layout: magic(4) version m id_bits chunk_bits(2) policy.
    ASSERT_GT(container.size(), 10u);
    EXPECT_EQ(container[9], static_cast<std::uint8_t>(EvictionPolicy::clock));
    EXPECT_GT(stats.compressed_packets, 0u) << "no hits -> no parity at risk";

    const auto restored = gd_stream_decompress(container);
    EXPECT_EQ(restored, input) << "shards=" << shards;
  }
}

// Torn-touch stress: reader threads hammer the lock-free hit path (which
// stores referenced bits) while the writer inserts fresh bases into a FULL
// dictionary — every insert sweeps the same bits under the stripe lock.
// No fetched basis may ever be torn, and the locked mutation sequence
// keeps its determinism bookkeeping (size stays at capacity, every insert
// past the fill evicts exactly once).
TEST(ClockTornTouch, ReadersMarkWhileWriterSweeps) {
  constexpr std::size_t kCapacity = 16;
  constexpr std::uint64_t kInserts = 2000;
  ConcurrentShardedDictionary dict(kCapacity, EvictionPolicy::clock,
                                   /*shard_count=*/2, ReadPath::seqlock);
  for (std::uint64_t i = 0; i < kCapacity; ++i) {
    (void)dict.insert(tagged_basis(i));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0x7EAD + t);
      bits::BitVector fetched;
      std::uint64_t newest = kCapacity;
      while (!stop.load(std::memory_order_relaxed)) {
        // Chase the writer: recent seeds are likely resident, so this
        // both hits (marking bits mid-sweep) and misses.
        const std::uint64_t seed =
            newest > 0 ? newest - 1 - rng.next_below(std::min<std::uint64_t>(
                                          newest, kCapacity * 2))
                       : 0;
        (void)dict.lookup(tagged_basis(seed));
        const auto id = static_cast<std::uint32_t>(rng.next_below(kCapacity));
        if (dict.lookup_basis_into(id, fetched) && !is_tagged(fetched)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        newest += 2;  // drift forward roughly with the writer
      }
    });
  }

  for (std::uint64_t i = kCapacity; i < kCapacity + kInserts; ++i) {
    (void)dict.insert(tagged_basis(i));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(dict.size(), kCapacity);
  const DictionaryStats stats = dict.stats();
  EXPECT_EQ(stats.insertions, kCapacity + kInserts);
  EXPECT_EQ(stats.evictions, kInserts);
}

}  // namespace
}  // namespace zipline::gd
