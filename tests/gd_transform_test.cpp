#include "gd/transform.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::gd {
namespace {

using bits::BitVector;

BitVector random_chunk(Rng& rng, std::size_t bits) {
  BitVector v(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.next_bool(0.5)) v.set(i);
  }
  return v;
}

TEST(GdParams, PaperDefaultsMatchFigure3Accounting) {
  const GdParams p;  // m=8, 256-bit chunks, 15-bit IDs
  p.validate();
  EXPECT_EQ(p.n(), 255u);
  EXPECT_EQ(p.k(), 247u);
  EXPECT_EQ(p.excess_bits(), 1u);  // the paper's raw MSB bit
  EXPECT_EQ(p.dictionary_capacity(), 32768u);
  EXPECT_EQ(p.raw_payload_bytes(), 32u);
  // Type 2 is 33 B: 32 B of data + 1 B of modeled Tofino padding => the
  // paper's measured 1.03 "no table" ratio.
  EXPECT_EQ(p.type2_payload_bytes(), 33u);
  // Type 3 is 3 B: 8 + 1 + 15 = 24 bits => the paper's 0.09 ratio.
  EXPECT_EQ(p.type3_payload_bytes(), 3u);
}

TEST(GdParams, PaddingModelCanBeDisabled) {
  GdParams p;
  p.model_tofino_padding = false;
  p.validate();
  EXPECT_EQ(p.type2_payload_bytes(), 32u);  // GD adds no bits by itself
}

TEST(GdParams, ValidationCatchesBadCombinations) {
  GdParams p;
  p.m = 2;
  EXPECT_THROW(p.validate(), zipline::ContractViolation);
  p = GdParams{};
  p.chunk_bits = 100;  // below n=255
  EXPECT_THROW(p.validate(), zipline::ContractViolation);
  p = GdParams{};
  p.id_bits = 0;
  EXPECT_THROW(p.validate(), zipline::ContractViolation);
  p = GdParams{};
  p.generator = crc::Gf2Poly(0b11111);  // not primitive, wrong degree
  EXPECT_THROW(p.validate(), zipline::ContractViolation);
}

TEST(GdTransform, ForwardSplitsExcessAndBasis) {
  const GdParams p;
  const GdTransform t(p);
  Rng rng(1);
  const BitVector chunk = random_chunk(rng, 256);
  const TransformedChunk tc = t.forward(chunk);
  EXPECT_EQ(tc.excess.size(), 1u);
  EXPECT_EQ(tc.basis.size(), 247u);
  EXPECT_LT(tc.syndrome, 256u);
  // Excess bit is the chunk's MSB (bit 255).
  EXPECT_EQ(tc.excess.get(0), chunk.get(255));
}

TEST(GdTransform, RoundTripRandomChunks) {
  const GdParams p;
  const GdTransform t(p);
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const BitVector chunk = random_chunk(rng, 256);
    EXPECT_EQ(t.inverse(t.forward(chunk)), chunk);
  }
}

TEST(GdTransform, SingleBitNoiseKeepsBasis) {
  // The GD property the whole paper builds on: chunks within one bit of a
  // codeword share a basis, so sensor noise folds into the deviation.
  const GdParams p;
  const GdTransform t(p);
  Rng rng(3);
  const BitVector chunk = random_chunk(rng, 256);
  const TransformedChunk base = t.forward(chunk);
  // Flipping any bit in the codeword region whose current syndrome is zero
  // keeps the basis. Build a canonical chunk first (syndrome zero).
  BitVector canonical = t.inverse(base.excess, base.basis, 0);
  const TransformedChunk c0 = t.forward(canonical);
  ASSERT_EQ(c0.syndrome, 0u);
  for (int trial = 0; trial < 100; ++trial) {
    BitVector noisy = canonical;
    noisy.flip(rng.next_below(255));  // anywhere in the Hamming word
    const TransformedChunk tc = t.forward(noisy);
    EXPECT_EQ(tc.basis, c0.basis);
    EXPECT_NE(tc.syndrome, 0u);
  }
}

TEST(GdTransform, ExcessBitsTravelVerbatim) {
  GdParams p;
  p.chunk_bits = 264;  // 9 excess bits over n=255
  p.validate();
  const GdTransform t(p);
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVector chunk = random_chunk(rng, 264);
    const TransformedChunk tc = t.forward(chunk);
    EXPECT_EQ(tc.excess.size(), 9u);
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_EQ(tc.excess.get(i), chunk.get(255 + i));
    }
    EXPECT_EQ(t.inverse(tc), chunk);
  }
}

TEST(GdTransform, WrongChunkSizeThrows) {
  const GdTransform t(GdParams{});
  EXPECT_THROW(t.forward(BitVector(255)), zipline::ContractViolation);
  EXPECT_THROW(t.inverse(BitVector(2), BitVector(247), 0),
               zipline::ContractViolation);
  EXPECT_THROW(t.inverse(BitVector(1), BitVector(246), 0),
               zipline::ContractViolation);
  EXPECT_THROW(t.inverse(BitVector(1), BitVector(247), 256),
               zipline::ContractViolation);
}

// Round-trip across a sweep of (m, chunk_bits) configurations, including
// chunk_bits == n (no excess) and large excess.
struct TransformConfig {
  int m;
  std::size_t chunk_bits;
};

class GdTransformSweep : public ::testing::TestWithParam<TransformConfig> {};

TEST_P(GdTransformSweep, RoundTrip) {
  GdParams p;
  p.m = GetParam().m;
  p.chunk_bits = GetParam().chunk_bits;
  p.id_bits = std::min<std::size_t>(15, p.k() - 1);
  p.validate();
  const GdTransform t(p);
  Rng rng(static_cast<std::uint64_t>(p.m) * 31 + p.chunk_bits);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVector chunk = random_chunk(rng, p.chunk_bits);
    EXPECT_EQ(t.inverse(t.forward(chunk)), chunk);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GdTransformSweep,
    ::testing::Values(TransformConfig{3, 7}, TransformConfig{3, 8},
                      TransformConfig{4, 15}, TransformConfig{4, 16},
                      TransformConfig{5, 32}, TransformConfig{6, 64},
                      TransformConfig{7, 128}, TransformConfig{8, 255},
                      TransformConfig{8, 256}, TransformConfig{8, 272},
                      TransformConfig{9, 512}, TransformConfig{10, 1024},
                      TransformConfig{11, 2048}));

}  // namespace
}  // namespace zipline::gd
