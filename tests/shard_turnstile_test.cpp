// Per-shard resolve turnstiles + topology-aware steering properties.
//
// PR 6 replaced the shared ordered pipeline's single global resolve
// turnstile with one turnstile per dictionary shard: a unit waits only on
// earlier units touching the SAME shards, so disjoint footprints resolve
// concurrently. The acceptance property is unchanged from the global
// turnstile it replaced: shared-mode parallel output is byte-identical to
// ONE single-threaded engine processing every unit in submission order —
// now also under EvictionPolicy::clock and FlowSteering::topology_aware —
// plus the new observability contracts:
//
//   * workers == 1 admits every unit instantly: turnstile_waits == 0;
//   * clock_touches counts recency marks only under the clock policy;
//   * both counters flow through DictionaryHandle and io::Node stats.
#include "engine/parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "io/node.hpp"

namespace zipline::engine {
namespace {

using gd::EvictionPolicy;
using gd::GdParams;

/// Value snapshot of an encoded batch (descriptors + arena bytes).
struct BatchImage {
  std::vector<PacketDesc> packets;
  std::vector<std::uint8_t> storage;

  static BatchImage of(const EncodeBatch& batch) {
    BatchImage image;
    image.packets.assign(batch.packets().begin(), batch.packets().end());
    image.storage.assign(batch.storage().begin(), batch.storage().end());
    return image;
  }

  friend bool operator==(const BatchImage& a, const BatchImage& b) {
    if (a.storage != b.storage || a.packets.size() != b.packets.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.packets.size(); ++i) {
      const PacketDesc& x = a.packets[i];
      const PacketDesc& y = b.packets[i];
      if (x.type != y.type || x.offset != y.offset || x.size != y.size ||
          x.syndrome != y.syndrome || x.basis_id != y.basis_id) {
        return false;
      }
    }
    return true;
  }
};

/// Zipf(s≈1.1) sampler over `n` flows.
class Zipf {
 public:
  Zipf(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0;
    for (std::size_t k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::uint32_t operator()(Rng& rng) const {
    const double u = rng.next_double();
    for (std::size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return static_cast<std::uint32_t>(i);
    }
    return static_cast<std::uint32_t>(cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

struct Schedule {
  std::vector<std::uint32_t> flows;
  std::vector<std::vector<std::uint8_t>> payloads;
};

/// Zipf-skewed schedule with chunk redundancy within and across flows
/// (hits, misses, evictions) and ragged raw tails.
Schedule make_zipf_schedule(Rng& rng, const GdParams& params,
                            std::size_t units, std::size_t flow_count) {
  const Zipf zipf(flow_count, 1.1);
  Schedule schedule;
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  std::vector<std::vector<std::uint8_t>> pool;
  for (std::size_t i = 0; i < 24; ++i) {
    std::vector<std::uint8_t> chunk(chunk_bytes);
    for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.next_u64());
    pool.push_back(chunk);
  }
  for (std::size_t u = 0; u < units; ++u) {
    schedule.flows.push_back(zipf(rng));
    const std::size_t chunks = 1 + rng.next_below(10);
    std::vector<std::uint8_t> payload;
    for (std::size_t c = 0; c < chunks; ++c) {
      auto chunk = pool[rng.next_below(pool.size())];
      if (rng.next_bool(0.35)) {
        chunk[rng.next_below(chunk.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      payload.insert(payload.end(), chunk.begin(), chunk.end());
    }
    if (rng.next_bool(0.25)) {
      for (std::size_t t = 0; t < 1 + rng.next_below(12); ++t) {
        payload.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
    }
    schedule.payloads.push_back(std::move(payload));
  }
  return schedule;
}

/// The serial reference: ONE engine encodes every unit in submission
/// order — the switch's single table.
std::vector<BatchImage> serial_shared_reference(const GdParams& params,
                                                const ParallelOptions& options,
                                                const Schedule& schedule) {
  Engine engine(params, options.policy, options.learn,
                options.dictionary_shards);
  std::vector<BatchImage> images;
  EncodeBatch batch;
  for (const auto& payload : schedule.payloads) {
    batch.clear();
    engine.encode_payload(payload, batch);
    images.push_back(BatchImage::of(batch));
  }
  return images;
}

ParallelOptions shared_options(EvictionPolicy policy, std::size_t shards,
                               std::size_t workers) {
  ParallelOptions options;
  options.workers = workers;
  options.queue_depth = 4;  // small rings -> full turnstiles
  options.dictionary_shards = shards;
  options.policy = policy;
  options.ownership = DictionaryOwnership::shared;
  options.steering = FlowSteering::load_aware;
  options.work_stealing = workers > 1;
  return options;
}

/// Runs the shared parallel encoder over `schedule` and asserts ordered,
/// byte-identical delivery against the serial reference. Returns the
/// shared service's aggregate stats after the run.
gd::DictionaryStats run_and_check_identity(const GdParams& params,
                                           const ParallelOptions& options,
                                           const Schedule& schedule) {
  const auto expected = serial_shared_reference(params, options, schedule);
  std::vector<BatchImage> actual(schedule.flows.size());
  std::uint64_t expected_seq = 0;
  ParallelEncoder encoder(params, options,
                          [&](const ParallelEncoder::Unit& unit) {
                            EXPECT_EQ(unit.seq, expected_seq++);
                            actual[unit.seq] = BatchImage::of(*unit.output);
                          });
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    encoder.submit(schedule.flows[u], schedule.payloads[u]);
  }
  encoder.flush();
  EXPECT_EQ(encoder.delivered(), schedule.flows.size());
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    EXPECT_TRUE(actual[u] == expected[u])
        << "unit " << u << " (flow " << schedule.flows[u]
        << ") diverged from the serial shared-dictionary engine";
  }
  EXPECT_NE(encoder.shared_dictionary(), nullptr);
  return encoder.shared_dictionary()->stats();
}

class TurnstileProperty
    : public ::testing::TestWithParam<
          std::tuple<EvictionPolicy, std::size_t, std::size_t>> {};

// Acceptance: per-shard turnstiles preserve the global-turnstile
// property — shared ordered parallel output byte-identical to the serial
// engine — for every policy (clock included), shard count and worker
// count; and the new counters honour their contracts.
TEST_P(TurnstileProperty, PerShardTurnstilesKeepSerialByteIdentity) {
  const auto [policy, shards, workers] = GetParam();
  GdParams params;
  params.id_bits = 5;  // 32 identifiers -> evictions under load
  const ParallelOptions options = shared_options(policy, shards, workers);

  Rng rng(0x7572 + static_cast<std::uint64_t>(policy) * 131 + shards * 17 +
          workers * 3);
  const Schedule schedule = make_zipf_schedule(rng, params, 150, 12);
  const gd::DictionaryStats stats =
      run_and_check_identity(params, options, schedule);

  if (workers == 1) {
    // One worker registers and resolves strictly in sequence: nobody is
    // ever ahead of it at a gate.
    EXPECT_EQ(stats.turnstile_waits, 0u);
  }
  if (policy == EvictionPolicy::clock) {
    // Redundant schedule -> hits -> recency marks.
    EXPECT_GT(stats.clock_touches, 0u);
  } else {
    EXPECT_EQ(stats.clock_touches, 0u);
  }
  // Batched resolve contract survives the turnstile split: at most one
  // stripe acquisition per (unit, shard) pair, plus the final stats()
  // sweep (one acquisition per shard).
  EXPECT_LE(stats.stripe_acquisitions,
            schedule.flows.size() * shards + shards);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesShardsWorkers, TurnstileProperty,
    ::testing::Combine(::testing::Values(EvictionPolicy::lru,
                                         EvictionPolicy::fifo,
                                         EvictionPolicy::random,
                                         EvictionPolicy::clock),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

// Topology-aware steering with an injected two-domain topology: placement
// may only affect balance, never bytes — and flows spread across both
// domains' workers rather than collapsing onto one.
TEST(TopologySteering, InjectedDomainsKeepSerialByteIdentity) {
  GdParams params;
  params.id_bits = 5;
  ParallelOptions options =
      shared_options(EvictionPolicy::lru, 2, /*workers=*/4);
  options.steering = FlowSteering::topology_aware;
  options.worker_domains = {0, 0, 1, 1};

  Rng rng(0x70B0);
  const Schedule schedule = make_zipf_schedule(rng, params, 150, 16);
  (void)run_and_check_identity(params, options, schedule);
}

// Same property with the machine probe (empty worker_domains): whatever
// topology the host reports — including the single-domain portable
// fallback, where topology_aware degrades to plain load_aware — output
// stays byte-identical to the serial engine.
TEST(TopologySteering, ProbeFallbackKeepsSerialByteIdentity) {
  GdParams params;
  params.id_bits = 5;
  ParallelOptions options =
      shared_options(EvictionPolicy::clock, 2, /*workers=*/3);
  options.steering = FlowSteering::topology_aware;

  Rng rng(0x70B1);
  const Schedule schedule = make_zipf_schedule(rng, params, 120, 10);
  (void)run_and_check_identity(params, options, schedule);
}

// The probe itself: detect() always yields at least one domain covering
// at least one CPU, and worker_domains() maps every worker to a valid
// dense domain index.
TEST(TopologySteering, ProbeYieldsDenseDomains) {
  const common::Topology topo = common::Topology::detect();
  ASSERT_GE(topo.domains, 1u);
  ASSERT_FALSE(topo.cpu_domain.empty());
  for (const std::uint32_t d : topo.cpu_domain) EXPECT_LT(d, topo.domains);
  const auto domains = common::worker_domains(topo, 7);
  ASSERT_EQ(domains.size(), 7u);
  for (const std::uint32_t d : domains) EXPECT_LT(d, topo.domains);
}

// An injected topology must name a domain for every worker.
TEST(TopologySteering, MismatchedWorkerDomainsAreRejected) {
  GdParams params;
  ParallelOptions options =
      shared_options(EvictionPolicy::lru, 1, /*workers=*/4);
  options.steering = FlowSteering::topology_aware;
  options.worker_domains = {0, 1};  // 2 entries, 4 workers
  EXPECT_THROW(ParallelEncoder(params, options, nullptr), ContractViolation);
}

// The counters surface through the Node facade: a parallel shared node
// aggregates its service's DictionaryStats (same insertions as the serial
// shared node fed the same burst), the serial node reports its private
// dictionaries' stats, and workers == 1 shows zero turnstile waits.
TEST(TurnstileStats, CountersFlowThroughNodeStats) {
  GdParams params;
  params.id_bits = 5;
  Rng rng(0x0DE5);
  const Schedule schedule = make_zipf_schedule(rng, params, 80, 6);

  io::Burst in;
  for (std::size_t u = 0; u < schedule.flows.size(); ++u) {
    io::PacketMeta meta;
    meta.flow = schedule.flows[u];
    in.append(gd::PacketType::raw, 0, 0, schedule.payloads[u], meta);
  }

  const auto base = NodeOptions{}
                        .with_direction(io::Direction::encode)
                        .with_params(params)
                        .with_shared_dictionary()
                        .with_policy(EvictionPolicy::clock)
                        .with_shards(2);

  io::Node serial(base);
  io::Node parallel(NodeOptions{base}
                        .with_workers(4)
                        .with_steering(FlowSteering::topology_aware)
                        .with_worker_domains({0, 0, 1, 1}));
  io::Burst out_serial;
  io::Burst out_parallel;
  serial.process(in, out_serial);
  parallel.process(in, out_parallel);

  const io::NodeStats s = serial.stats();
  const io::NodeStats p = parallel.stats();
  // Same bytes, same dictionary history.
  EXPECT_EQ(p.dictionary.insertions, s.dictionary.insertions);
  EXPECT_EQ(p.dictionary.hits, s.dictionary.hits);
  EXPECT_GT(p.dictionary.clock_touches, 0u);
  EXPECT_GT(s.dictionary.clock_touches, 0u);
  // The serial node has no turnstiles (and its private dictionary takes
  // no stripe locks at all).
  EXPECT_EQ(s.dictionary.turnstile_waits, 0u);
  EXPECT_EQ(s.dictionary.stripe_acquisitions, 0u);
  EXPECT_GT(p.dictionary.stripe_acquisitions, 0u);
}

}  // namespace
}  // namespace zipline::engine
