#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "tofino/externs.hpp"
#include "tofino/phv.hpp"
#include "tofino/pipeline.hpp"
#include "tofino/table.hpp"

namespace zipline::tofino {
namespace {

using bits::BitVector;

TEST(Phv, DeclareGetSet) {
  Phv phv;
  phv.declare("f.a", 16);
  phv.declare("f.b", 247);
  EXPECT_TRUE(phv.has("f.a"));
  EXPECT_FALSE(phv.has("f.c"));
  phv.set_uint("f.a", 0xBEEF);
  EXPECT_EQ(phv.get_uint("f.a"), 0xBEEFu);
  BitVector wide(247);
  wide.set(200);
  phv.set("f.b", wide);
  EXPECT_TRUE(phv.get("f.b").get(200));
}

TEST(Phv, UndeclaredAccessThrows) {
  Phv phv;
  EXPECT_THROW((void)phv.get("nope"), ContractViolation);
  EXPECT_THROW(phv.set_uint("nope", 1), ContractViolation);
}

TEST(Phv, WidthMismatchThrows) {
  Phv phv;
  phv.declare("f", 8);
  EXPECT_THROW(phv.set("f", BitVector(9)), ContractViolation);
  EXPECT_THROW(phv.declare("f", 9), ContractViolation);  // redeclare mismatch
  EXPECT_NO_THROW(phv.declare("f", 8));  // same width: resets value
}

TEST(Phv, ContainerBitsRoundUpToBytes) {
  Phv phv;
  phv.declare("syndrome", 8);   // 8 -> 8
  phv.declare("excess", 1);     // 1 -> 8
  phv.declare("basis", 247);    // 247 -> 248
  EXPECT_EQ(phv.field_bits(), 256u);
  EXPECT_EQ(phv.container_bits(), 264u);  // the paper's padding overhead
}

TEST(ExactMatchTable, InstallLookupRemove) {
  ExactMatchTable table("t", 8);
  const BitVector key(16, 0xABC);
  const BitVector value(8, 0x42);
  EXPECT_EQ(table.lookup(key, 0), std::nullopt);
  table.install(key, value, 10);
  EXPECT_EQ(table.lookup(key, 20), std::optional<BitVector>(value));
  EXPECT_TRUE(table.remove(key));
  EXPECT_FALSE(table.remove(key));
  EXPECT_EQ(table.lookup(key, 30), std::nullopt);
  EXPECT_EQ(table.stats().hits, 1u);
  EXPECT_EQ(table.stats().misses, 2u);
}

TEST(ExactMatchTable, CapacityEnforced) {
  ExactMatchTable table("t", 2);
  table.install(BitVector(8, 1), BitVector(8, 1), 0);
  table.install(BitVector(8, 2), BitVector(8, 2), 0);
  EXPECT_TRUE(table.full());
  EXPECT_THROW(table.install(BitVector(8, 3), BitVector(8, 3), 0),
               ContractViolation);
  // Overwriting an existing key is always allowed.
  EXPECT_NO_THROW(table.install(BitVector(8, 2), BitVector(8, 9), 1));
}

TEST(ExactMatchTable, IdleTimeoutTracksHits) {
  ExactMatchTable table("t", 4, /*default_ttl=*/100);
  table.install(BitVector(8, 1), BitVector(8, 1), 0);
  table.install(BitVector(8, 2), BitVector(8, 2), 0);
  // Key 1 is hit at t=90; key 2 never.
  (void)table.lookup(BitVector(8, 1), 90);
  const auto idle_at_110 = table.idle_keys(110);
  ASSERT_EQ(idle_at_110.size(), 1u);
  EXPECT_EQ(idle_at_110[0], BitVector(8, 2));
  // Expiry removes only the idle key.
  const auto expired = table.expire_idle(110);
  EXPECT_EQ(expired.size(), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().idle_expiries, 1u);
}

TEST(ExactMatchTable, LeastRecentlyUsedFollowsHits) {
  ExactMatchTable table("t", 4);
  table.install(BitVector(8, 1), BitVector(8, 1), 0);
  table.install(BitVector(8, 2), BitVector(8, 2), 1);
  table.install(BitVector(8, 3), BitVector(8, 3), 2);
  (void)table.lookup(BitVector(8, 1), 50);  // 1 becomes fresh
  EXPECT_EQ(table.least_recently_used(), std::optional<BitVector>(BitVector(8, 2)));
  (void)table.lookup(BitVector(8, 2), 60);
  EXPECT_EQ(table.least_recently_used(), std::optional<BitVector>(BitVector(8, 3)));
}

TEST(ExactMatchTable, ZeroTtlDisablesIdleTracking) {
  ExactMatchTable table("t", 4, /*default_ttl=*/0);
  table.install(BitVector(8, 1), BitVector(8, 1), 0);
  EXPECT_TRUE(table.idle_keys(1000000).empty());
}

TEST(RegisterArray, ReadModifyWrite) {
  RegisterArray regs("r", 16, 247);
  EXPECT_TRUE(regs.read(3).none());
  BitVector v(247);
  v.set(0);
  v.set(246);
  regs.write(3, v);
  EXPECT_EQ(regs.read(3), v);
  EXPECT_THROW(regs.write(16, v), ContractViolation);
  EXPECT_THROW(regs.write(0, BitVector(8)), ContractViolation);
}

TEST(CounterArray, CountsPacketsAndBytes) {
  CounterArray counters("c", 3);
  counters.count(0, 64);
  counters.count(0, 64);
  counters.count(2, 1500);
  EXPECT_EQ(counters.packets(0), 2u);
  EXPECT_EQ(counters.bytes(0), 128u);
  EXPECT_EQ(counters.packets(1), 0u);
  EXPECT_EQ(counters.bytes(2), 1500u);
  EXPECT_THROW(counters.count(3, 1), ContractViolation);
}

TEST(CrcExtern, MatchesSyndromeCrc) {
  const CrcExtern ext(crc::Gf2Poly(0x11D), 255);
  BitVector word(255);
  word.set(7);
  word.set(100);
  const crc::SyndromeCrc reference(crc::Gf2Poly(0x11D), 255);
  EXPECT_EQ(ext.compute(word), reference.compute(word));
  EXPECT_EQ(ext.invocations(), 1u);
}

TEST(DigestStream, EmitDrainOrder) {
  DigestStream digests("d");
  digests.emit(BitVector(8, 1), 100);
  digests.emit(BitVector(8, 2), 200);
  digests.emit(BitVector(8, 3), 300);
  const auto early = digests.drain(250);
  ASSERT_EQ(early.size(), 2u);
  EXPECT_EQ(early[0].payload, BitVector(8, 1));
  EXPECT_EQ(early[1].emitted_at, 200);
  const auto rest = digests.drain(1000);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_TRUE(digests.empty());
}

TEST(DigestStream, DropsWhenFull) {
  DigestStream digests("d", /*queue_limit=*/2);
  EXPECT_TRUE(digests.emit(BitVector(8, 1), 0));
  EXPECT_TRUE(digests.emit(BitVector(8, 2), 0));
  EXPECT_FALSE(digests.emit(BitVector(8, 3), 0));
  EXPECT_EQ(digests.dropped(), 1u);
  EXPECT_EQ(digests.emitted(), 2u);
}

// A trivial pipeline program for SwitchModel mechanics.
class EchoProgram final : public PipelineProgram {
 public:
  void parse(const net::EthernetFrame& frame, Phv& phv) override {
    phv.declare("eth.type", 16);
    phv.set_uint("eth.type", frame.ether_type);
    phv.payload = frame.payload;
    dst_ = frame.dst;
    src_ = frame.src;
  }
  void ingress(Phv& phv) override {
    if (drop_all) {
      phv.meta.drop = true;
      return;
    }
    phv.meta.egress_port = static_cast<PortId>(phv.meta.ingress_port + 1);
  }
  void egress(Phv&) override {}
  net::EthernetFrame deparse(const Phv& phv) override {
    net::EthernetFrame frame;
    frame.dst = dst_;
    frame.src = src_;
    frame.ether_type = static_cast<std::uint16_t>(phv.get_uint("eth.type"));
    frame.payload = phv.payload;
    return frame;
  }
  bool drop_all = false;

 private:
  net::MacAddress dst_;
  net::MacAddress src_;
};

TEST(SwitchModel, ForwardsWithConstantPipelineLatency) {
  auto program = std::make_shared<EchoProgram>();
  PipelineTiming timing;
  timing.pipeline_latency = 600;
  SwitchModel sw("sw", program, timing);
  net::EthernetFrame frame;
  frame.ether_type = 0x0800;
  frame.payload.assign(100, 0xAA);
  const ForwardResult r = sw.process(frame, 3, 1000);
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(r.egress_port, 4);
  EXPECT_EQ(r.ready_at, 1600);
  EXPECT_EQ(r.frame.payload, frame.payload);
  EXPECT_EQ(sw.stats().packets_in, 1u);
  EXPECT_EQ(sw.stats().packets_out, 1u);
}

TEST(SwitchModel, DropsCountedSeparately) {
  auto program = std::make_shared<EchoProgram>();
  program->drop_all = true;
  SwitchModel sw("sw", program);
  net::EthernetFrame frame;
  const ForwardResult r = sw.process(frame, 1, 0);
  EXPECT_TRUE(r.dropped);
  EXPECT_EQ(sw.stats().packets_dropped, 1u);
  EXPECT_EQ(sw.stats().packets_out, 0u);
}

TEST(SwitchModel, PacketRateCeilingSpacesPackets) {
  auto program = std::make_shared<EchoProgram>();
  PipelineTiming timing;
  timing.pipeline_latency = 0;
  timing.max_packets_per_second = 1e9;  // 1 ns per packet
  SwitchModel sw("sw", program, timing);
  net::EthernetFrame frame;
  const auto r1 = sw.process(frame, 1, 0);
  const auto r2 = sw.process(frame, 1, 0);  // same instant
  EXPECT_EQ(r1.ready_at, 0);
  EXPECT_EQ(r2.ready_at, 1);  // pushed behind the first
}

}  // namespace
}  // namespace zipline::tofino
