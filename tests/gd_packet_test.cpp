#include "gd/packet.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "gd/transform.hpp"

namespace zipline::gd {
namespace {

using bits::BitVector;

TEST(EtherTypes, RoundTripAndRecognition) {
  for (const PacketType t : {PacketType::raw, PacketType::uncompressed,
                             PacketType::compressed}) {
    const std::uint16_t e = ether_type_for(t);
    EXPECT_TRUE(is_zipline_ether_type(e));
    EXPECT_EQ(packet_type_for_ether(e), t);
  }
  EXPECT_FALSE(is_zipline_ether_type(0x0800));  // IPv4
  EXPECT_THROW(packet_type_for_ether(0x0800), zipline::ContractViolation);
}

TEST(GdPacket, RawSerializesVerbatim) {
  const GdParams p;
  const auto pkt = GdPacket::make_raw({1, 2, 3, 4});
  EXPECT_EQ(pkt.serialize(p), (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(pkt.wire_payload_bytes(p), 4u);
}

TEST(GdPacket, Type2SizeMatchesPaper) {
  const GdParams p;
  BitVector excess(1);
  excess.set(0);
  const auto pkt =
      GdPacket::make_uncompressed(0xAB, excess, BitVector(247));
  const auto bytes = pkt.serialize(p);
  EXPECT_EQ(bytes.size(), 33u);  // paper's 1.03 overhead: 32 B + 1 pad byte
  EXPECT_EQ(pkt.wire_payload_bytes(p), 33u);
}

TEST(GdPacket, Type2WithoutPaddingModelIs32Bytes) {
  GdParams p;
  p.model_tofino_padding = false;
  const auto pkt = GdPacket::make_uncompressed(0, BitVector(1), BitVector(247));
  EXPECT_EQ(pkt.serialize(p).size(), 32u);
}

TEST(GdPacket, Type3SizeMatchesPaper) {
  const GdParams p;
  const auto pkt = GdPacket::make_compressed(0xFF, BitVector(1), 32767);
  const auto bytes = pkt.serialize(p);
  EXPECT_EQ(bytes.size(), 3u);  // 8 + 1 + 15 bits
  EXPECT_EQ(pkt.wire_payload_bytes(p), 3u);
}

TEST(GdPacket, Type2RoundTrip) {
  const GdParams p;
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector basis(247);
    for (std::size_t i = 0; i < 247; ++i) {
      if (rng.next_bool(0.5)) basis.set(i);
    }
    BitVector excess(1);
    if (rng.next_bool(0.5)) excess.set(0);
    const auto syndrome = static_cast<std::uint32_t>(rng.next_below(256));
    const auto pkt = GdPacket::make_uncompressed(syndrome, excess, basis);
    const auto bytes = pkt.serialize(p);
    const GdPacket back = GdPacket::parse(p, PacketType::uncompressed, bytes);
    EXPECT_EQ(back.syndrome, syndrome);
    EXPECT_EQ(back.excess, excess);
    EXPECT_EQ(back.basis, basis);
  }
}

TEST(GdPacket, Type3RoundTrip) {
  const GdParams p;
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto syndrome = static_cast<std::uint32_t>(rng.next_below(256));
    const auto id = static_cast<std::uint32_t>(rng.next_below(32768));
    BitVector excess(1);
    if (rng.next_bool(0.5)) excess.set(0);
    const auto pkt = GdPacket::make_compressed(syndrome, excess, id);
    const auto bytes = pkt.serialize(p);
    const GdPacket back = GdPacket::parse(p, PacketType::compressed, bytes);
    EXPECT_EQ(back.syndrome, syndrome);
    EXPECT_EQ(back.excess, excess);
    EXPECT_EQ(back.basis_id, id);
  }
}

TEST(GdPacket, ParseRejectsShortBuffers) {
  const GdParams p;
  const std::vector<std::uint8_t> two_bytes = {0xAA, 0xBB};
  EXPECT_THROW(GdPacket::parse(p, PacketType::compressed, two_bytes),
               zipline::ContractViolation);
  const std::vector<std::uint8_t> ten_bytes(10, 0);
  EXPECT_THROW(GdPacket::parse(p, PacketType::uncompressed, ten_bytes),
               zipline::ContractViolation);
}

TEST(GdPacket, SerializeValidatesFieldWidths) {
  const GdParams p;
  // Basis of the wrong width.
  const auto bad_basis = GdPacket::make_uncompressed(0, BitVector(1),
                                                     BitVector(200));
  EXPECT_THROW(bad_basis.serialize(p), zipline::ContractViolation);
  // ID beyond dictionary capacity.
  const auto bad_id = GdPacket::make_compressed(0, BitVector(1), 40000);
  EXPECT_THROW(bad_id.serialize(p), zipline::ContractViolation);
}

TEST(GdPacket, EndToEndThroughTransform) {
  // chunk -> transform -> packet -> bytes -> packet -> inverse == chunk
  const GdParams p;
  const GdTransform t(p);
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    BitVector chunk(256);
    for (std::size_t i = 0; i < 256; ++i) {
      if (rng.next_bool(0.5)) chunk.set(i);
    }
    TransformedChunk tc = t.forward(chunk);
    const auto pkt =
        GdPacket::make_uncompressed(tc.syndrome, tc.excess, tc.basis);
    const auto wire = pkt.serialize(p);
    const GdPacket back = GdPacket::parse(p, PacketType::uncompressed, wire);
    EXPECT_EQ(t.inverse(back.excess, back.basis, back.syndrome), chunk);
  }
}

TEST(GdPacket, NonDefaultGeometrySizes) {
  GdParams p;
  p.m = 10;          // (1023, 1013)
  p.chunk_bits = 1024;
  p.id_bits = 15;
  p.model_tofino_padding = false;
  p.validate();
  // Type 2: 10 + 1 + 1013 = 1024 bits = 128 B.
  EXPECT_EQ(p.type2_payload_bytes(), 128u);
  // Type 3: 10 + 1 + 15 = 26 bits -> 4 B.
  EXPECT_EQ(p.type3_payload_bytes(), 4u);
  const auto pkt = GdPacket::make_compressed(0x3FF, BitVector(1), 1);
  EXPECT_EQ(pkt.serialize(p).size(), 4u);
}

}  // namespace
}  // namespace zipline::gd
