// Hamming(2^m - 1, 2^m - m - 1) codes realized through syndrome-mode CRCs.
//
// Systematic convention (verified against the paper's §2 worked example and
// Table 2): the k message bits occupy the high polynomial powers
// x^m .. x^(n-1); the m parity bits p = u(x)·x^m mod g(x) occupy the low
// powers. A word is a codeword iff its syndrome (plain remainder) is zero.
// Hamming codes are perfect: every n-bit word lies within distance one of
// exactly one codeword, so `canonicalize` is total — any chunk maps to a
// (basis, syndrome) pair and back, losslessly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"
#include "crc/polynomial.hpp"
#include "crc/syndrome_crc.hpp"

namespace zipline::hamming {

/// Result of the GD forward transform on one n-bit word.
struct Canonical {
  bits::BitVector basis;   ///< k message bits of the nearest codeword
  std::uint32_t syndrome;  ///< m-bit syndrome (0 = word was a codeword)
};

class HammingCode {
 public:
  /// Builds the code of order m (3..15) with the default generator
  /// polynomial from paper Table 1.
  explicit HammingCode(int m);

  /// Builds the code from an explicit generator polynomial, which must be
  /// primitive of degree m (paper Table 1 lists alternatives for some m).
  HammingCode(int m, crc::Gf2Poly generator);

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] crc::Gf2Poly generator() const noexcept { return crc_.generator(); }

  /// Syndrome of an n-bit word.
  [[nodiscard]] std::uint32_t syndrome(const bits::BitVector& word) const {
    return crc_.compute(word);
  }

  /// Error position (polynomial power) for a non-zero syndrome.
  [[nodiscard]] std::size_t error_position(std::uint32_t syndrome) const;

  /// Syndrome announced by a single-bit error at `position`.
  [[nodiscard]] std::uint32_t syndrome_of_position(std::size_t position) const {
    return crc_.single_bit(position);
  }

  /// True if the n-bit word is a codeword.
  [[nodiscard]] bool is_codeword(const bits::BitVector& word) const {
    return syndrome(word) == 0;
  }

  /// Systematic encoding of a k-bit message: [message | parity].
  [[nodiscard]] bits::BitVector encode(const bits::BitVector& message) const;

  /// GD forward transform (paper Fig. 1 steps 2-5): compute the syndrome,
  /// flip the indicated bit, truncate parity, return basis + syndrome.
  [[nodiscard]] Canonical canonicalize(const bits::BitVector& word) const;

  /// GD inverse transform (paper Fig. 2 steps 3-7): zero-pad the basis,
  /// regenerate parity via the same CRC, re-apply the syndrome's flip.
  [[nodiscard]] bits::BitVector expand(const bits::BitVector& basis,
                                       std::uint32_t syndrome) const;

  /// In-place canonicalize: writes the basis into `basis_out` (reusing its
  /// storage) and the syndrome into `syndrome_out`.
  void canonicalize_into(const bits::BitVector& word,
                         bits::BitVector& basis_out,
                         std::uint32_t& syndrome_out) const;

  /// In-place expand: writes the n-bit word into `out`.
  void expand_into(const bits::BitVector& basis, std::uint32_t syndrome,
                   bits::BitVector& out) const;

  /// Block canonicalize over a word-plane: row c (words + c*word_stride,
  /// word_stride >= ceil(n/64)) holds one n-bit word trimmed to n bits
  /// (bits at and above n zero in the top word). Writes the k-bit basis of
  /// row c into bases + c*basis_stride (basis_stride >= ceil(k/64), top
  /// word trimmed to k bits) and its syndrome into syndromes[c].
  /// Byte-identical to canonicalize_into per row; the syndrome fold and
  /// the slice run as one multi-row kernel call each. Vector kernels may
  /// over-READ a row up to 8 words past its logical end, so both planes
  /// need >= 8 words of tail padding (gd::TransformBlockScratch provides
  /// it).
  void canonicalize_block(const std::uint64_t* words, std::size_t word_stride,
                          std::size_t count, std::uint64_t* bases,
                          std::size_t basis_stride,
                          std::uint32_t* syndromes) const;

  /// Block expand, the inverse plane walk: basis row c (trimmed to k bits)
  /// + syndromes[c] -> the n-bit word in words + c*word_stride (top word
  /// trimmed to n bits; words of the row beyond ceil(n/64) are left
  /// untouched). parity_scratch must hold `count` entries (overwritten).
  /// Same padding requirement as canonicalize_block.
  void expand_block(const std::uint64_t* bases, std::size_t basis_stride,
                    const std::uint32_t* syndromes, std::size_t count,
                    std::uint64_t* words, std::size_t word_stride,
                    std::uint32_t* parity_scratch) const;

 private:
  int m_;
  std::size_t n_;
  std::size_t k_;
  crc::SyndromeCrc crc_;
  std::vector<std::uint32_t> position_of_syndrome_;  // 2^m entries
};

}  // namespace zipline::hamming
