// Hamming(2^m - 1, 2^m - m - 1) codes realized through syndrome-mode CRCs.
//
// Systematic convention (verified against the paper's §2 worked example and
// Table 2): the k message bits occupy the high polynomial powers
// x^m .. x^(n-1); the m parity bits p = u(x)·x^m mod g(x) occupy the low
// powers. A word is a codeword iff its syndrome (plain remainder) is zero.
// Hamming codes are perfect: every n-bit word lies within distance one of
// exactly one codeword, so `canonicalize` is total — any chunk maps to a
// (basis, syndrome) pair and back, losslessly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"
#include "crc/polynomial.hpp"
#include "crc/syndrome_crc.hpp"

namespace zipline::hamming {

/// Result of the GD forward transform on one n-bit word.
struct Canonical {
  bits::BitVector basis;   ///< k message bits of the nearest codeword
  std::uint32_t syndrome;  ///< m-bit deviation (0 = word was a codeword)
};

class HammingCode {
 public:
  /// Builds the code of order m (3..15) with the default generator
  /// polynomial from paper Table 1.
  explicit HammingCode(int m);

  /// Builds the code from an explicit generator polynomial, which must be
  /// primitive of degree m (paper Table 1 lists alternatives for some m).
  HammingCode(int m, crc::Gf2Poly generator);

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] crc::Gf2Poly generator() const noexcept { return crc_.generator(); }

  /// Syndrome of an n-bit word.
  [[nodiscard]] std::uint32_t syndrome(const bits::BitVector& word) const {
    return crc_.compute(word);
  }

  /// Error position (polynomial power) for a non-zero syndrome.
  [[nodiscard]] std::size_t error_position(std::uint32_t syndrome) const;

  /// Syndrome announced by a single-bit error at `position`.
  [[nodiscard]] std::uint32_t syndrome_of_position(std::size_t position) const {
    return crc_.single_bit(position);
  }

  /// True if the n-bit word is a codeword.
  [[nodiscard]] bool is_codeword(const bits::BitVector& word) const {
    return syndrome(word) == 0;
  }

  /// Systematic encoding of a k-bit message: [message | parity].
  [[nodiscard]] bits::BitVector encode(const bits::BitVector& message) const;

  /// GD forward transform (paper Fig. 1 steps 2-5): compute the syndrome,
  /// flip the indicated bit, truncate parity, return basis + deviation.
  [[nodiscard]] Canonical canonicalize(const bits::BitVector& word) const;

  /// GD inverse transform (paper Fig. 2 steps 3-7): zero-pad the basis,
  /// regenerate parity via the same CRC, re-apply the deviation mask.
  [[nodiscard]] bits::BitVector expand(const bits::BitVector& basis,
                                       std::uint32_t syndrome) const;

  /// In-place canonicalize: writes the basis into `basis_out` (reusing its
  /// storage) and the deviation into `syndrome_out`.
  void canonicalize_into(const bits::BitVector& word,
                         bits::BitVector& basis_out,
                         std::uint32_t& syndrome_out) const;

  /// In-place expand: writes the n-bit word into `out`.
  void expand_into(const bits::BitVector& basis, std::uint32_t syndrome,
                   bits::BitVector& out) const;

 private:
  int m_;
  std::size_t n_;
  std::size_t k_;
  crc::SyndromeCrc crc_;
  std::vector<std::uint32_t> position_of_syndrome_;  // 2^m entries
};

}  // namespace zipline::hamming
