// GF(2^8) arithmetic over the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D) — the same polynomial ZipLine's m = 8 deployment feeds the CRC
// extern, which makes the BCH extension (paper §8) a drop-in: the first
// 8 syndrome bits of the BCH code are computed by the very same hardware
// configuration.
#pragma once

#include <array>
#include <cstdint>

namespace zipline::hamming {

class Gf256 {
 public:
  /// Field tables are global constants; the class is a namespace with
  /// state-free static operations.
  static constexpr std::uint16_t field_order = 255;  // multiplicative order

  [[nodiscard]] static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;
  }

  [[nodiscard]] static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  [[nodiscard]] static std::uint8_t inverse(std::uint8_t a);
  [[nodiscard]] static std::uint8_t div(std::uint8_t a, std::uint8_t b);

  /// alpha^e for any integer exponent (reduced mod 255).
  [[nodiscard]] static std::uint8_t alpha_pow(int e);

  /// Discrete log base alpha; a must be non-zero.
  [[nodiscard]] static int log(std::uint8_t a);

  /// a^e with a in the field.
  [[nodiscard]] static std::uint8_t pow(std::uint8_t a, int e);

  /// Evaluates a GF(2)[x] polynomial (bit i = coefficient of x^i, degree
  /// < 64) at the field element `x`.
  [[nodiscard]] static std::uint8_t eval_poly_bits(std::uint64_t poly_bits,
                                                   std::uint8_t x);
};

}  // namespace zipline::hamming
