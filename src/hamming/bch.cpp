#include "hamming/bch.hpp"

#include "common/contracts.hpp"
#include "hamming/gf256.hpp"

namespace zipline::hamming {

namespace {

/// Minimal polynomial of alpha^start over GF(2): product of (x + alpha^j)
/// over the cyclotomic coset {start * 2^i mod 255}. Coefficients land in
/// GF(2) by construction; returned as packed bits.
crc::Gf2Poly minimal_polynomial(int start) {
  // Collect the coset.
  std::vector<int> coset;
  int e = start % 255;
  do {
    coset.push_back(e);
    e = (e * 2) % 255;
  } while (e != start % 255);

  // Multiply out (x + alpha^j) with GF(256) coefficients.
  std::vector<std::uint8_t> coeffs = {1};  // constant polynomial 1
  for (const int j : coset) {
    const std::uint8_t root = Gf256::alpha_pow(j);
    std::vector<std::uint8_t> next(coeffs.size() + 1, 0);
    for (std::size_t d = 0; d < coeffs.size(); ++d) {
      next[d + 1] ^= coeffs[d];                    // x * coeffs
      next[d] ^= Gf256::mul(coeffs[d], root);      // root * coeffs
    }
    coeffs = std::move(next);
  }
  std::uint64_t bits = 0;
  for (std::size_t d = 0; d < coeffs.size(); ++d) {
    ZL_ASSERT(coeffs[d] == 0 || coeffs[d] == 1);
    if (coeffs[d] == 1) bits |= std::uint64_t{1} << d;
  }
  return crc::Gf2Poly(bits);
}

crc::Gf2Poly bch_generator() {
  const crc::Gf2Poly m1 = minimal_polynomial(1);
  const crc::Gf2Poly m3 = minimal_polynomial(3);
  ZL_ASSERT(m1.degree() == 8 && m3.degree() == 8);
  ZL_ASSERT(m1 == crc::Gf2Poly(0x11D));
  return m1 * m3;
}

}  // namespace

Bch255::Bch255() : generator_(bch_generator()), crc_(generator_, n) {
  ZL_ASSERT(generator_.degree() == static_cast<int>(parity_bits));
}

bits::BitVector Bch255::encode(const bits::BitVector& message) const {
  ZL_EXPECTS(message.size() == k);
  const std::uint32_t parity = crc_.compute(message.shifted_up(parity_bits));
  return bits::BitVector::concat(message,
                                 bits::BitVector(parity_bits, parity));
}

BchErrorPattern Bch255::decode_syndrome(std::uint32_t syndrome) const {
  BchErrorPattern pattern;
  if (syndrome == 0) {
    pattern.count = 0;
    return pattern;
  }
  // Evaluate the 16-bit remainder polynomial at alpha and alpha^3; since
  // g(alpha) = g(alpha^3) = 0, these equal the power-sum syndromes of the
  // received word itself.
  const std::uint8_t alpha = Gf256::alpha_pow(1);
  const std::uint8_t alpha3 = Gf256::alpha_pow(3);
  const std::uint8_t s1 = Gf256::eval_poly_bits(syndrome, alpha);
  const std::uint8_t s3 = Gf256::eval_poly_bits(syndrome, alpha3);

  if (s1 == 0) {
    // Any 1- or 2-bit pattern has s1 = alpha^i (+ alpha^j, i != j) != 0.
    pattern.count = -1;
    return pattern;
  }
  const std::uint8_t s1_cubed = Gf256::pow(s1, 3);
  if (s3 == s1_cubed) {
    pattern.count = 1;
    pattern.positions[0] = static_cast<std::uint16_t>(Gf256::log(s1));
    return pattern;
  }
  // Two errors: locator x^2 + s1*x + sigma2, sigma2 = (s3 + s1^3)/s1.
  const std::uint8_t sigma2 = Gf256::div(Gf256::add(s3, s1_cubed), s1);
  int found = 0;
  std::array<std::uint16_t, 2> roots{};
  for (int i = 0; i < 255 && found < 2; ++i) {
    const std::uint8_t x = Gf256::alpha_pow(i);
    const std::uint8_t value =
        Gf256::add(Gf256::add(Gf256::mul(x, x), Gf256::mul(s1, x)), sigma2);
    if (value == 0) {
      roots[static_cast<std::size_t>(found++)] =
          static_cast<std::uint16_t>(i);
    }
  }
  if (found == 2) {
    pattern.count = 2;
    pattern.positions = roots;
  } else {
    pattern.count = -1;  // > 2 errors; outside every decoding sphere
  }
  return pattern;
}

bits::BitVector Bch255::canonical_mask(std::uint32_t syndrome) const {
  bits::BitVector mask(n);
  if (syndrome == 0) return mask;
  const BchErrorPattern pattern = decode_syndrome(syndrome);
  if (pattern.count > 0) {
    for (int i = 0; i < pattern.count; ++i) {
      mask.set(pattern.positions[static_cast<std::size_t>(i)]);
    }
  } else {
    // Undecodable syndrome: the canonical mask is the syndrome itself in
    // the parity positions — its remainder mod g is the syndrome, which is
    // the only property inversion requires.
    for (std::size_t b = 0; b < parity_bits; ++b) {
      if ((syndrome >> b) & 1) mask.set(b);
    }
  }
  return mask;
}

BchCanonical Bch255::canonicalize(const bits::BitVector& word) const {
  ZL_EXPECTS(word.size() == n);
  const std::uint32_t s = syndrome(word);
  if (s == 0) {
    return BchCanonical{word.slice(parity_bits, k), 0};
  }
  bits::BitVector codeword = word;
  codeword ^= canonical_mask(s);
  ZL_ASSERT(is_codeword(codeword));
  return BchCanonical{codeword.slice(parity_bits, k), s};
}

bits::BitVector Bch255::expand(const bits::BitVector& basis,
                               std::uint32_t syndrome) const {
  ZL_EXPECTS(basis.size() == k);
  ZL_EXPECTS(syndrome < (std::uint32_t{1} << parity_bits));
  bits::BitVector word = encode(basis);
  if (syndrome != 0) {
    word ^= canonical_mask(syndrome);
  }
  return word;
}

}  // namespace zipline::hamming
