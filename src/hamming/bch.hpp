// BCH(255, 239) double-error-correcting code — the paper's §8 extension
// ("the CRC module in Tofino switches opens the door to computation of
// more complex transformations, e.g., BCH codes, by using different
// generator polynomial parameters. These allow for more chunks to be
// mapped to each basis, albeit at the cost of a larger deviation").
//
// The generator is g(x) = m1(x)·m3(x), the product of the minimal
// polynomials of α and α³ over GF(2^8): degree 16, so the syndrome grows
// from 8 to 16 bits while every chunk within Hamming distance 2 of a
// codeword now folds into the same basis.
//
// GD totality without perfection: BCH is not a perfect code, so some
// 16-bit syndromes do not correspond to any ≤2-bit error. The transform
// stays total and lossless by assigning every syndrome a *canonical error
// pattern*: the decoded 1–2 bit pattern when one exists (giving the
// clustering GD wants), else the syndrome value itself placed in the 16
// parity positions (whose remainder is, by construction, the syndrome).
// Either way syndrome(pattern(s)) == s, which is all inversion needs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"
#include "crc/polynomial.hpp"
#include "crc/syndrome_crc.hpp"

namespace zipline::hamming {

/// Up to two error positions (polynomial powers).
struct BchErrorPattern {
  int count = 0;  ///< 0, 1 or 2 decoded positions; -1 = not decodable
  std::array<std::uint16_t, 2> positions{};
};

struct BchCanonical {
  bits::BitVector basis;   ///< k = 239 message bits
  std::uint32_t syndrome;  ///< 16-bit syndrome
};

class Bch255 {
 public:
  Bch255();

  static constexpr std::size_t n = 255;
  static constexpr std::size_t k = 239;
  static constexpr std::size_t parity_bits = 16;

  /// Degree-16 generator polynomial m1(x)·m3(x).
  [[nodiscard]] crc::Gf2Poly generator() const noexcept { return generator_; }

  /// 16-bit syndrome (plain polynomial remainder), computable on Tofino as
  /// two chained CRC-8 passes or one CRC-16 with this generator.
  [[nodiscard]] std::uint32_t syndrome(const bits::BitVector& word) const {
    return crc_.compute(word);
  }

  /// Systematic encoding: [message | parity], message in the high powers.
  [[nodiscard]] bits::BitVector encode(const bits::BitVector& message) const;

  [[nodiscard]] bool is_codeword(const bits::BitVector& word) const {
    return syndrome(word) == 0;
  }

  /// Decodes a 16-bit syndrome to its ≤2-bit error pattern when one
  /// exists (count 0/1/2), or count = -1 when the syndrome lies outside
  /// every decoding sphere.
  [[nodiscard]] BchErrorPattern decode_syndrome(std::uint32_t syndrome) const;

  /// Canonical n-bit error mask for *any* syndrome (see file comment).
  [[nodiscard]] bits::BitVector canonical_mask(std::uint32_t syndrome) const;

  /// GD forward transform: total and lossless for every 255-bit word.
  [[nodiscard]] BchCanonical canonicalize(const bits::BitVector& word) const;

  /// GD inverse transform.
  [[nodiscard]] bits::BitVector expand(const bits::BitVector& basis,
                                       std::uint32_t syndrome) const;

 private:
  crc::Gf2Poly generator_;
  crc::SyndromeCrc crc_;
};

}  // namespace zipline::hamming
