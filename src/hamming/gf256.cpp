#include "hamming/gf256.hpp"

#include "common/contracts.hpp"

namespace zipline::hamming {

namespace {

struct Tables {
  std::array<std::uint8_t, 256> exp{};  // exp[i] = alpha^i (i mod 255)
  std::array<int, 256> log{};           // log[alpha^i] = i; log[0] invalid
};

Tables make_tables() {
  Tables t;
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[static_cast<std::size_t>(x)] = i;
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  t.exp[255] = t.exp[0];
  t.log[0] = -1;
  return t;
}

const Tables& tables() {
  static const Tables t = make_tables();
  return t;
}

}  // namespace

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(
      (t.log[a] + t.log[b]) % field_order)];
}

std::uint8_t Gf256::inverse(std::uint8_t a) {
  ZL_EXPECTS(a != 0);
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>((field_order - t.log[a]) %
                                        field_order)];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  ZL_EXPECTS(b != 0);
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(
      (t.log[a] - t.log[b] + field_order) % field_order)];
}

std::uint8_t Gf256::alpha_pow(int e) {
  const int reduced = ((e % field_order) + field_order) % field_order;
  return tables().exp[static_cast<std::size_t>(reduced)];
}

int Gf256::log(std::uint8_t a) {
  ZL_EXPECTS(a != 0);
  return tables().log[a];
}

std::uint8_t Gf256::pow(std::uint8_t a, int e) {
  if (a == 0) {
    ZL_EXPECTS(e > 0);
    return 0;
  }
  return alpha_pow(log(a) * e);
}

std::uint8_t Gf256::eval_poly_bits(std::uint64_t poly_bits, std::uint8_t x) {
  // Horner from the top coefficient down.
  std::uint8_t acc = 0;
  for (int i = 63; i >= 0; --i) {
    acc = mul(acc, x);
    if ((poly_bits >> i) & 1) acc ^= 1;
  }
  return acc;
}

}  // namespace zipline::hamming
