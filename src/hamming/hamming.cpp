#include "hamming/hamming.hpp"

#include <limits>

#include "common/contracts.hpp"
#include "common/simd.hpp"

namespace zipline::hamming {

namespace {
constexpr std::uint32_t kInvalidPosition =
    std::numeric_limits<std::uint32_t>::max();
}

HammingCode::HammingCode(int m)
    : HammingCode(m, crc::default_hamming_generator(m)) {}

HammingCode::HammingCode(int m, crc::Gf2Poly generator)
    : m_(m),
      n_((std::size_t{1} << m) - 1),
      k_(n_ - static_cast<std::size_t>(m)),
      crc_(generator, n_) {
  ZL_EXPECTS(m >= 3 && m <= 15);
  ZL_EXPECTS(generator.degree() == m);
  ZL_EXPECTS(generator.is_primitive());
  // Invert the single-bit syndrome map. Primitivity guarantees the map
  // position -> syndrome is a bijection onto the non-zero syndromes.
  position_of_syndrome_.assign(std::size_t{1} << m, kInvalidPosition);
  for (std::size_t pos = 0; pos < n_; ++pos) {
    const std::uint32_t s = crc_.single_bit(pos);
    ZL_ASSERT(s != 0);
    ZL_ASSERT(position_of_syndrome_[s] == kInvalidPosition);
    position_of_syndrome_[s] = static_cast<std::uint32_t>(pos);
  }
}

std::size_t HammingCode::error_position(std::uint32_t syndrome) const {
  ZL_EXPECTS(syndrome != 0 && syndrome < position_of_syndrome_.size());
  const std::uint32_t pos = position_of_syndrome_[syndrome];
  ZL_ENSURES(pos != kInvalidPosition);
  return pos;
}

bits::BitVector HammingCode::encode(const bits::BitVector& message) const {
  ZL_EXPECTS(message.size() == k_);
  // A codeword is exactly the expansion of its message with a zero
  // syndrome — one allocation for the result, no shifted/concat copies.
  bits::BitVector out;
  expand_into(message, 0, out);
  return out;
}

Canonical HammingCode::canonicalize(const bits::BitVector& word) const {
  Canonical c;
  canonicalize_into(word, c.basis, c.syndrome);
  return c;
}

void HammingCode::canonicalize_into(const bits::BitVector& word,
                                    bits::BitVector& basis_out,
                                    std::uint32_t& syndrome_out) const {
  ZL_EXPECTS(word.size() == n_);
  const std::uint32_t s = crc_.compute(word);
  word.slice_into(static_cast<std::size_t>(m_), k_, basis_out);
  syndrome_out = s;
  if (s == 0) return;
  const std::size_t pos = error_position(s);
  // A syndrome pointing at a parity bit leaves the message bits
  // untouched; otherwise correcting the word flips exactly one basis bit,
  // which is equivalent to flipping it after truncation.
  if (pos >= static_cast<std::size_t>(m_)) {
    basis_out.flip(pos - static_cast<std::size_t>(m_));
  }
}

bits::BitVector HammingCode::expand(const bits::BitVector& basis,
                                    std::uint32_t syndrome) const {
  bits::BitVector word;
  expand_into(basis, syndrome, word);
  return word;
}

void HammingCode::expand_into(const bits::BitVector& basis,
                              std::uint32_t syndrome,
                              bits::BitVector& out) const {
  ZL_EXPECTS(basis.size() == k_);
  // Systematic encode without the intermediate shifted/concat copies:
  // place the message at x^m, compute its parity, OR the parity into the
  // zeroed low bits.
  out.assign_zero(n_);
  out.accumulate_shifted(basis, static_cast<std::size_t>(m_));
  const std::uint32_t parity = crc_.compute(out);
  out.or_uint(0, parity, static_cast<std::size_t>(m_));
  if (syndrome != 0) {
    out.flip(error_position(syndrome));
  }
}

namespace {

constexpr std::uint64_t top_word_mask(std::size_t bits) noexcept {
  return bits % 64 == 0 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << (bits % 64)) - 1;
}

}  // namespace

void HammingCode::canonicalize_block(const std::uint64_t* words,
                                     std::size_t word_stride,
                                     std::size_t count, std::uint64_t* bases,
                                     std::size_t basis_stride,
                                     std::uint32_t* syndromes) const {
  const std::size_t word_words = (n_ + 63) / 64;
  const std::size_t basis_words = (k_ + 63) / 64;
  ZL_EXPECTS(word_stride >= word_words && basis_stride >= basis_words);
  // Syndromes BEFORE the slice: the fold reads the untruncated words.
  crc_.compute_block(words, word_stride, count, syndromes);
  // basis = word >> m for every row, one kernel call.
  simd::active().block_shr(bases, basis_stride, words, word_stride, count,
                           static_cast<unsigned>(m_), word_words, basis_words,
                           top_word_mask(k_));
  // The per-row tail canonicalize_into does with BitVector::flip: correct
  // the one deviant message bit the syndrome names (parity-bit positions
  // truncate away).
  for (std::size_t c = 0; c < count; ++c) {
    const std::uint32_t s = syndromes[c];
    if (s == 0) continue;
    const std::size_t pos = error_position(s);
    if (pos >= static_cast<std::size_t>(m_)) {
      const std::size_t bit = pos - static_cast<std::size_t>(m_);
      bases[c * basis_stride + bit / 64] ^= std::uint64_t{1} << (bit % 64);
    }
  }
}

void HammingCode::expand_block(const std::uint64_t* bases,
                               std::size_t basis_stride,
                               const std::uint32_t* syndromes,
                               std::size_t count, std::uint64_t* words,
                               std::size_t word_stride,
                               std::uint32_t* parity_scratch) const {
  const std::size_t word_words = (n_ + 63) / 64;
  const std::size_t basis_words = (k_ + 63) / 64;
  ZL_EXPECTS(word_stride >= word_words && basis_stride >= basis_words);
  // word = basis << m for every row (low m bits land zero), then one
  // multi-stream fold regenerates every row's parity.
  simd::active().block_shl(words, word_stride, bases, basis_stride, count,
                           static_cast<unsigned>(m_), basis_words, word_words,
                           top_word_mask(n_));
  crc_.compute_block(words, word_stride, count, parity_scratch);
  for (std::size_t c = 0; c < count; ++c) {
    std::uint64_t* row = words + c * word_stride;
    row[0] |= parity_scratch[c];  // m <= 15 parity bits, all in word 0
    const std::uint32_t s = syndromes[c];
    if (s != 0) {
      const std::size_t pos = error_position(s);
      row[pos / 64] ^= std::uint64_t{1} << (pos % 64);
    }
  }
}

}  // namespace zipline::hamming
