#include "hamming/hamming.hpp"

#include <limits>

#include "common/contracts.hpp"

namespace zipline::hamming {

namespace {
constexpr std::uint32_t kInvalidPosition =
    std::numeric_limits<std::uint32_t>::max();
}

HammingCode::HammingCode(int m)
    : HammingCode(m, crc::default_hamming_generator(m)) {}

HammingCode::HammingCode(int m, crc::Gf2Poly generator)
    : m_(m),
      n_((std::size_t{1} << m) - 1),
      k_(n_ - static_cast<std::size_t>(m)),
      crc_(generator, n_) {
  ZL_EXPECTS(m >= 3 && m <= 15);
  ZL_EXPECTS(generator.degree() == m);
  ZL_EXPECTS(generator.is_primitive());
  // Invert the single-bit syndrome map. Primitivity guarantees the map
  // position -> syndrome is a bijection onto the non-zero syndromes.
  position_of_syndrome_.assign(std::size_t{1} << m, kInvalidPosition);
  for (std::size_t pos = 0; pos < n_; ++pos) {
    const std::uint32_t s = crc_.single_bit(pos);
    ZL_ASSERT(s != 0);
    ZL_ASSERT(position_of_syndrome_[s] == kInvalidPosition);
    position_of_syndrome_[s] = static_cast<std::uint32_t>(pos);
  }
}

std::size_t HammingCode::error_position(std::uint32_t syndrome) const {
  ZL_EXPECTS(syndrome != 0 && syndrome < position_of_syndrome_.size());
  const std::uint32_t pos = position_of_syndrome_[syndrome];
  ZL_ENSURES(pos != kInvalidPosition);
  return pos;
}

bits::BitVector HammingCode::encode(const bits::BitVector& message) const {
  ZL_EXPECTS(message.size() == k_);
  const bits::BitVector shifted = message.shifted_up(static_cast<std::size_t>(m_));
  const std::uint32_t parity = crc_.compute(shifted);
  return bits::BitVector::concat(message,
                                 bits::BitVector(static_cast<std::size_t>(m_),
                                                 parity));
}

Canonical HammingCode::canonicalize(const bits::BitVector& word) const {
  Canonical c;
  canonicalize_into(word, c.basis, c.syndrome);
  return c;
}

void HammingCode::canonicalize_into(const bits::BitVector& word,
                                    bits::BitVector& basis_out,
                                    std::uint32_t& syndrome_out) const {
  ZL_EXPECTS(word.size() == n_);
  const std::uint32_t s = crc_.compute(word);
  word.slice_into(static_cast<std::size_t>(m_), k_, basis_out);
  syndrome_out = s;
  if (s == 0) return;
  const std::size_t pos = error_position(s);
  // A deviation in a parity bit leaves the message bits untouched;
  // otherwise correcting the word flips exactly one basis bit, which is
  // equivalent to flipping it after truncation.
  if (pos >= static_cast<std::size_t>(m_)) {
    basis_out.flip(pos - static_cast<std::size_t>(m_));
  }
}

bits::BitVector HammingCode::expand(const bits::BitVector& basis,
                                    std::uint32_t syndrome) const {
  bits::BitVector word;
  expand_into(basis, syndrome, word);
  return word;
}

void HammingCode::expand_into(const bits::BitVector& basis,
                              std::uint32_t syndrome,
                              bits::BitVector& out) const {
  ZL_EXPECTS(basis.size() == k_);
  // Systematic encode without the intermediate shifted/concat copies:
  // place the message at x^m, compute its parity, OR the parity into the
  // zeroed low bits.
  out.assign_zero(n_);
  out.accumulate_shifted(basis, static_cast<std::size_t>(m_));
  const std::uint32_t parity = crc_.compute(out);
  out.or_uint(0, parity, static_cast<std::size_t>(m_));
  if (syndrome != 0) {
    out.flip(error_position(syndrome));
  }
}

}  // namespace zipline::hamming
