#include "net/mac.hpp"

#include <cstdio>

#include "common/contracts.hpp"

namespace zipline::net {

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

MacAddress MacAddress::parse(std::string_view text) {
  ZL_EXPECTS(text.size() == 17);
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * 3;
    const int hi = hex_value(text[off]);
    const int lo = hex_value(text[off + 1]);
    ZL_EXPECTS(hi >= 0 && lo >= 0);
    if (i < 5) ZL_EXPECTS(text[off + 2] == ':');
    octets[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(hi * 16 + lo);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace zipline::net
