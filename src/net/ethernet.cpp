#include "net/ethernet.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "crc/crc32.hpp"

namespace zipline::net {

std::size_t EthernetFrame::frame_bytes() const {
  const std::size_t unpadded =
      kEthernetHeaderBytes + payload.size() + kEthernetFcsBytes;
  return std::max(unpadded, kMinFrameBytes);
}

std::vector<std::uint8_t> EthernetFrame::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(frame_bytes());
  out.insert(out.end(), dst.octets().begin(), dst.octets().end());
  out.insert(out.end(), src.octets().begin(), src.octets().end());
  out.push_back(static_cast<std::uint8_t>(ether_type >> 8));
  out.push_back(static_cast<std::uint8_t>(ether_type & 0xFF));
  out.insert(out.end(), payload.begin(), payload.end());
  // Pad to the 60-byte minimum before FCS.
  while (out.size() < kMinFrameBytes - kEthernetFcsBytes) out.push_back(0);
  const std::uint32_t fcs = crc::Crc32::of(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(fcs >> (8 * i)));  // little-endian
  }
  return out;
}

EthernetFrame EthernetFrame::parse(std::span<const std::uint8_t> bytes,
                                   bool verify_fcs) {
  ZL_EXPECTS(bytes.size() >= kMinFrameBytes);
  EthernetFrame frame;
  std::array<std::uint8_t, 6> mac{};
  std::copy_n(bytes.begin(), 6, mac.begin());
  frame.dst = MacAddress(mac);
  std::copy_n(bytes.begin() + 6, 6, mac.begin());
  frame.src = MacAddress(mac);
  frame.ether_type =
      static_cast<std::uint16_t>((bytes[12] << 8) | bytes[13]);
  const std::size_t payload_end = bytes.size() - kEthernetFcsBytes;
  frame.payload.assign(bytes.begin() + kEthernetHeaderBytes,
                       bytes.begin() + static_cast<std::ptrdiff_t>(payload_end));
  if (verify_fcs) {
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<std::uint32_t>(bytes[payload_end +
                                                 static_cast<std::size_t>(i)])
                << (8 * i);
    }
    const std::uint32_t computed = crc::Crc32::of(bytes.first(payload_end));
    ZL_EXPECTS(stored == computed && "Ethernet FCS mismatch");
  }
  return frame;
}

double wire_time_ns(std::size_t frame_bytes, double gbps) {
  ZL_EXPECTS(gbps > 0);
  return static_cast<double>((frame_bytes + kWireOverheadBytes) * 8) / gbps;
}

double line_rate_pps(std::size_t frame_bytes, double gbps) {
  return 1e9 / wire_time_ns(frame_bytes, gbps);
}

}  // namespace zipline::net
