#include "net/pcap.hpp"

#include <bit>
#include <fstream>
#include <stdexcept>

#include "common/contracts.hpp"

namespace zipline::net {

namespace {
constexpr std::uint32_t kMagic = 0xA1B2C3D4;
constexpr std::uint32_t kMagicSwapped = 0xD4C3B2A1;
// Nanosecond-precision variant (same layout, fraction field is ns).
constexpr std::uint32_t kMagicNanos = 0xA1B23C4D;
constexpr std::uint32_t kMagicNanosSwapped = 0x4D3CB2A1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
         (v >> 24);
}

void put32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), 4);
}
void put16(std::ofstream& out, std::uint16_t v) {
  out.write(reinterpret_cast<const char*>(&v), 2);
}
}  // namespace

struct PcapWriter::Impl {
  std::ofstream out;
};

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    throw std::runtime_error("pcap: cannot open for writing: " + path);
  }
  put32(impl_->out, kMagic);
  put16(impl_->out, 2);  // version major
  put16(impl_->out, 4);  // version minor
  put32(impl_->out, 0);  // thiszone
  put32(impl_->out, 0);  // sigfigs
  put32(impl_->out, snaplen);
  put32(impl_->out, kLinkTypeEthernet);
}

PcapWriter::~PcapWriter() { close(); }

void PcapWriter::write_record(const PcapRecord& record) {
  ZL_EXPECTS(impl_ && impl_->out.is_open());
  put32(impl_->out, static_cast<std::uint32_t>(record.timestamp_us / 1000000));
  put32(impl_->out, static_cast<std::uint32_t>(record.timestamp_us % 1000000));
  put32(impl_->out, static_cast<std::uint32_t>(record.data.size()));
  put32(impl_->out, static_cast<std::uint32_t>(record.data.size()));
  impl_->out.write(reinterpret_cast<const char*>(record.data.data()),
                   static_cast<std::streamsize>(record.data.size()));
  ++records_;
}

void PcapWriter::write_frame(const EthernetFrame& frame,
                             std::uint64_t timestamp_us) {
  write_record(PcapRecord{timestamp_us, frame.serialize()});
}

void PcapWriter::close() {
  if (impl_ && impl_->out.is_open()) {
    impl_->out.close();
  }
}

struct PcapReader::Impl {
  std::ifstream in;
};

PcapReader::PcapReader(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->in.open(path, std::ios::binary);
  if (!impl_->in) {
    throw std::runtime_error("pcap: cannot open for reading: " + path);
  }
  std::uint32_t magic = 0;
  impl_->in.read(reinterpret_cast<char*>(&magic), 4);
  if (magic == kMagic) {
    swapped_ = false;
  } else if (magic == kMagicSwapped) {
    swapped_ = true;
  } else if (magic == kMagicNanos) {
    swapped_ = false;
    nanosecond_ = true;
  } else if (magic == kMagicNanosSwapped) {
    swapped_ = true;
    nanosecond_ = true;
  } else {
    throw std::runtime_error("pcap: unknown magic in " + path);
  }
  char skip[16];
  impl_->in.read(skip, 12);  // version, thiszone, sigfigs
  impl_->in.read(reinterpret_cast<char*>(&snaplen_), 4);
  if (swapped_) snaplen_ = swap32(snaplen_);
  std::uint32_t linktype = 0;
  impl_->in.read(reinterpret_cast<char*>(&linktype), 4);
  if (swapped_) linktype = swap32(linktype);
  if (linktype != kLinkTypeEthernet) {
    throw std::runtime_error("pcap: unsupported link type");
  }
}

PcapReader::~PcapReader() = default;

std::optional<PcapRecord> PcapReader::next() {
  std::uint32_t header[4];
  impl_->in.read(reinterpret_cast<char*>(header), 16);
  if (impl_->in.gcount() == 0) return std::nullopt;
  if (impl_->in.gcount() != 16) {
    throw std::runtime_error("pcap: truncated record header");
  }
  if (swapped_) {
    for (auto& h : header) h = swap32(h);
  }
  PcapRecord record;
  // The fraction field carries microseconds (classic magic) or
  // nanoseconds (0xA1B23C4D); timestamps normalize to microseconds.
  const std::uint64_t fraction_us =
      nanosecond_ ? header[1] / 1000 : header[1];
  record.timestamp_us =
      static_cast<std::uint64_t>(header[0]) * 1000000 + fraction_us;
  const std::uint32_t incl_len = header[2];
  record.data.resize(incl_len);
  impl_->in.read(reinterpret_cast<char*>(record.data.data()), incl_len);
  if (impl_->in.gcount() != static_cast<std::streamsize>(incl_len)) {
    throw std::runtime_error("pcap: truncated record body");
  }
  return record;
}

std::vector<PcapRecord> PcapReader::read_all() {
  std::vector<PcapRecord> records;
  while (auto r = next()) {
    records.push_back(std::move(*r));
  }
  return records;
}

}  // namespace zipline::net
