// Ethernet II framing — the layer-2 substrate ZipLine operates at (§5:
// "We settled on Ethernet-based framing to provide compatibility with
// regular Ethernet network cards").
//
// Frame sizes in this library follow the paper's convention: they include
// the 14-byte header and the 4-byte FCS but not the preamble/SFD/IFG,
// which only matter for wire-time arithmetic (see wire_time_ns helpers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/mac.hpp"

namespace zipline::net {

constexpr std::size_t kEthernetHeaderBytes = 14;  // dst + src + ethertype
constexpr std::size_t kEthernetFcsBytes = 4;
constexpr std::size_t kMinFrameBytes = 64;    // including FCS
constexpr std::size_t kMaxStandardFrameBytes = 1518;
constexpr std::size_t kMaxJumboFrameBytes = 9018;
/// Preamble (7) + SFD (1) + inter-frame gap (12): per-frame wire overhead.
constexpr std::size_t kWireOverheadBytes = 20;

struct EthernetFrame {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;
  std::vector<std::uint8_t> payload;

  /// Frame size on the wire including header and FCS, accounting for
  /// minimum-frame padding.
  [[nodiscard]] std::size_t frame_bytes() const;

  /// Serializes header + payload (+ zero padding to the 64 B minimum)
  /// + FCS over the padded frame.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses a serialized frame. When `verify_fcs` is set, throws
  /// ContractViolation on checksum mismatch. The payload retains any
  /// minimum-frame padding (its original length is not recoverable at
  /// this layer, exactly as on real hardware).
  [[nodiscard]] static EthernetFrame parse(std::span<const std::uint8_t> bytes,
                                           bool verify_fcs = true);
};

/// Serialization time of a frame at `gbps` including preamble/SFD/IFG.
[[nodiscard]] double wire_time_ns(std::size_t frame_bytes, double gbps);

/// Frames per second a link sustains at line rate for a given frame size.
[[nodiscard]] double line_rate_pps(std::size_t frame_bytes, double gbps);

}  // namespace zipline::net
