// MAC addresses for the Ethernet framing substrate.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace zipline::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive).
  static MacAddress parse(std::string_view text);

  /// Locally-administered unicast address derived from an integer, handy
  /// for simulations: 02:00:00:xx:xx:xx.
  static constexpr MacAddress local(std::uint32_t id) {
    return MacAddress({0x02, 0x00, 0x00, static_cast<std::uint8_t>(id >> 16),
                       static_cast<std::uint8_t>(id >> 8),
                       static_cast<std::uint8_t>(id)});
  }

  static constexpr MacAddress broadcast() {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  [[nodiscard]] bool is_broadcast() const {
    return *this == broadcast();
  }
  [[nodiscard]] bool is_multicast() const { return octets_[0] & 0x01; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const MacAddress&,
                                   const MacAddress&) = default;
  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace zipline::net
