// Classic pcap file format, implemented from scratch.
//
// The paper's compression experiments convert datasets "to a pcap trace of
// Ethernet packets" and replay them at the switch (§7). This module writes
// and reads the classic (non-ng) format: 24-byte global header with magic
// 0xA1B2C3D4, microsecond timestamps, LINKTYPE_ETHERNET.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ethernet.hpp"

namespace zipline::net {

struct PcapRecord {
  std::uint64_t timestamp_us = 0;  ///< microseconds since the epoch
  std::vector<std::uint8_t> data;  ///< captured frame bytes
};

class PcapWriter {
 public:
  /// Opens `path` for writing and emits the global header.
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 65535);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  void write_record(const PcapRecord& record);
  void write_frame(const EthernetFrame& frame, std::uint64_t timestamp_us);

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }

  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t records_ = 0;
};

class PcapReader {
 public:
  /// Opens `path`; throws std::runtime_error if the magic is unknown.
  /// Accepts the classic magic 0xA1B2C3D4 and the nanosecond-precision
  /// magic 0xA1B23C4D (each in either byte order); ns-precision
  /// timestamps are scaled down to the microseconds PcapRecord carries.
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  /// Reads the next record; nullopt at end of file.
  [[nodiscard]] std::optional<PcapRecord> next();

  /// Convenience: reads the whole file.
  [[nodiscard]] std::vector<PcapRecord> read_all();

  [[nodiscard]] std::uint32_t snaplen() const noexcept { return snaplen_; }

  /// True when the capture uses the nanosecond-precision magic.
  [[nodiscard]] bool nanosecond_precision() const noexcept {
    return nanosecond_;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool swapped_ = false;     ///< file written with opposite endianness
  bool nanosecond_ = false;  ///< fraction field is ns, not us
  std::uint32_t snaplen_ = 0;
};

}  // namespace zipline::net
