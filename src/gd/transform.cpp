#include "gd/transform.hpp"

#include "common/contracts.hpp"

namespace zipline::gd {

GdTransform::GdTransform(const GdParams& params)
    : params_(params), code_(params.m, params.resolved_generator()) {
  params_.validate();
}

TransformedChunk GdTransform::forward(const bits::BitVector& chunk) const {
  TransformedChunk out;
  bits::BitVector word;
  forward_into(chunk, out, word);
  return out;
}

void GdTransform::forward_into(const bits::BitVector& chunk,
                               TransformedChunk& out,
                               bits::BitVector& word_scratch) const {
  ZL_EXPECTS(chunk.size() == params_.chunk_bits);
  const std::size_t n = params_.n();
  chunk.slice_into(0, n, word_scratch);
  chunk.slice_into(n, params_.excess_bits(), out.excess);
  code_.canonicalize_into(word_scratch, out.basis, out.syndrome);
}

bits::BitVector GdTransform::inverse(const TransformedChunk& t) const {
  return inverse(t.excess, t.basis, t.syndrome);
}

bits::BitVector GdTransform::inverse(const bits::BitVector& excess,
                                     const bits::BitVector& basis,
                                     std::uint32_t syndrome) const {
  bits::BitVector out;
  bits::BitVector word;
  inverse_into(excess, basis, syndrome, out, word);
  return out;
}

void GdTransform::inverse_into(const bits::BitVector& excess,
                               const bits::BitVector& basis,
                               std::uint32_t syndrome, bits::BitVector& out,
                               bits::BitVector& word_scratch) const {
  ZL_EXPECTS(excess.size() == params_.excess_bits());
  ZL_EXPECTS(basis.size() == params_.k());
  ZL_EXPECTS(syndrome < (std::uint32_t{1} << params_.m));
  code_.expand_into(basis, syndrome, word_scratch);
  out.assign_zero(params_.chunk_bits);
  out.accumulate_shifted(word_scratch, 0);
  out.accumulate_shifted(excess, params_.n());
}

}  // namespace zipline::gd
