#include "gd/transform.hpp"

#include "common/contracts.hpp"

namespace zipline::gd {

GdTransform::GdTransform(const GdParams& params)
    : params_(params), code_(params.m, params.resolved_generator()) {
  params_.validate();
}

TransformedChunk GdTransform::forward(const bits::BitVector& chunk) const {
  ZL_EXPECTS(chunk.size() == params_.chunk_bits);
  const std::size_t n = params_.n();
  bits::BitVector word = chunk.slice(0, n);
  bits::BitVector excess = chunk.slice(n, params_.excess_bits());
  hamming::Canonical c = code_.canonicalize(word);
  return TransformedChunk{std::move(excess), std::move(c.basis), c.syndrome};
}

bits::BitVector GdTransform::inverse(const TransformedChunk& t) const {
  return inverse(t.excess, t.basis, t.syndrome);
}

bits::BitVector GdTransform::inverse(const bits::BitVector& excess,
                                     const bits::BitVector& basis,
                                     std::uint32_t syndrome) const {
  ZL_EXPECTS(excess.size() == params_.excess_bits());
  ZL_EXPECTS(basis.size() == params_.k());
  ZL_EXPECTS(syndrome < (std::uint32_t{1} << params_.m));
  const bits::BitVector word = code_.expand(basis, syndrome);
  return bits::BitVector::concat(excess, word);
}

}  // namespace zipline::gd
