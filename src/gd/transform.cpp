#include "gd/transform.hpp"

#include <algorithm>
#include <cstring>

#include "common/contracts.hpp"
#include "common/simd.hpp"

namespace zipline::gd {

namespace {

/// Tail padding past the last plane row: the AVX-512 block kernels load a
/// full masked vector per row, so up to 8 words past a row's logical end
/// must stay inside the allocation.
constexpr std::size_t kPlanePad = 8;

constexpr std::uint64_t low_mask(std::size_t bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// Stages one chunk's bytes into `row` as BitVector word layout (word 0 =
/// low powers; the LAST byte is bits 0-7) — the in-plane twin of
/// BitVector::assign_from_bytes. bytes.size() * 8 must equal `size`.
void stage_chunk_row(std::uint64_t* row, std::size_t row_words,
                     std::span<const std::uint8_t> bytes, std::size_t size) {
  if (size % 64 == 0) {
    // Whole words: the wire-order unpack kernel is exactly this mapping.
    simd::active().unpack_words_be_rev(row, bytes.data(), size / 64);
    return;
  }
  std::fill(row, row + row_words, 0);
  std::size_t bit = 0;
  for (std::size_t byte_idx = bytes.size(); byte_idx-- > 0 && bit < size;) {
    row[bit / 64] |= std::uint64_t{bytes[byte_idx]} << (bit % 64);
    bit += 8;
  }
}

}  // namespace

GdTransform::GdTransform(const GdParams& params)
    : params_(params), code_(params.m, params.resolved_generator()) {
  params_.validate();
}

TransformedChunk GdTransform::forward(const bits::BitVector& chunk) const {
  TransformedChunk out;
  bits::BitVector word;
  forward_into(chunk, out, word);
  return out;
}

void GdTransform::forward_into(const bits::BitVector& chunk,
                               TransformedChunk& out,
                               bits::BitVector& word_scratch) const {
  ZL_EXPECTS(chunk.size() == params_.chunk_bits);
  const std::size_t n = params_.n();
  chunk.slice_into(0, n, word_scratch);
  chunk.slice_into(n, params_.excess_bits(), out.excess);
  code_.canonicalize_into(word_scratch, out.basis, out.syndrome);
}

bits::BitVector GdTransform::inverse(const TransformedChunk& t) const {
  return inverse(t.excess, t.basis, t.syndrome);
}

bits::BitVector GdTransform::inverse(const bits::BitVector& excess,
                                     const bits::BitVector& basis,
                                     std::uint32_t syndrome) const {
  bits::BitVector out;
  bits::BitVector word;
  inverse_into(excess, basis, syndrome, out, word);
  return out;
}

void GdTransform::inverse_into(const bits::BitVector& excess,
                               const bits::BitVector& basis,
                               std::uint32_t syndrome, bits::BitVector& out,
                               bits::BitVector& word_scratch) const {
  ZL_EXPECTS(excess.size() == params_.excess_bits());
  ZL_EXPECTS(basis.size() == params_.k());
  ZL_EXPECTS(syndrome < (std::uint32_t{1} << params_.m));
  code_.expand_into(basis, syndrome, word_scratch);
  out.assign_zero(params_.chunk_bits);
  out.accumulate_shifted(word_scratch, 0);
  out.accumulate_shifted(excess, params_.n());
}

void GdTransform::forward_block(std::span<const std::uint8_t> payload,
                                std::size_t count,
                                std::span<TransformedChunk> out,
                                TransformBlockScratch& scratch) const {
  ZL_EXPECTS(params_.chunk_bits % 8 == 0);
  ZL_EXPECTS(out.size() >= count);
  const std::size_t chunk_bytes = params_.chunk_bits / 8;
  ZL_EXPECTS(payload.size() >= count * chunk_bytes);
  const std::size_t n = params_.n();
  const std::size_t cstride = chunk_plane_stride();
  const std::size_t bstride = basis_plane_stride();
  const std::size_t word_words = (n + 63) / 64;
  const std::size_t excess = params_.excess_bits();
  if (scratch.chunk_plane.size() < count * cstride + kPlanePad) {
    scratch.chunk_plane.resize(count * cstride + kPlanePad);
  }
  if (scratch.basis_plane.size() < count * bstride + kPlanePad) {
    scratch.basis_plane.resize(count * bstride + kPlanePad);
  }
  if (scratch.syndromes.size() < count) scratch.syndromes.resize(count);
  // Stage every chunk into the word-plane, peel its excess bits, and trim
  // the row to the n-bit Hamming word.
  for (std::size_t c = 0; c < count; ++c) {
    std::uint64_t* row = scratch.chunk_plane.data() + c * cstride;
    stage_chunk_row(row, cstride, payload.subspan(c * chunk_bytes, chunk_bytes),
                    params_.chunk_bits);
    bits::BitVector& ex = out[c].excess;
    ex.assign_zero(excess);
    for (std::size_t o = 0; o < excess; o += 64) {
      const std::size_t lo = n + o;
      std::uint64_t v = row[lo / 64] >> (lo % 64);
      if (lo % 64 != 0 && lo / 64 + 1 < cstride) {
        v |= row[lo / 64 + 1] << (64 - lo % 64);
      }
      const std::size_t width = std::min<std::size_t>(64, excess - o);
      ex.or_uint(o, v & low_mask(width), width);
    }
    row[word_words - 1] &= low_mask(n % 64 == 0 ? 64 : n % 64);
    std::fill(row + word_words, row + cstride, 0);
  }
  // One kernel batch: syndromes of every row, then every basis slice.
  code_.canonicalize_block(scratch.chunk_plane.data(), cstride, count,
                           scratch.basis_plane.data(), bstride,
                           scratch.syndromes.data());
  for (std::size_t c = 0; c < count; ++c) {
    out[c].basis.assign_from_words(
        {scratch.basis_plane.data() + c * bstride, bstride}, params_.k());
    out[c].syndrome = scratch.syndromes[c];
  }
}

void GdTransform::inverse_block_reserve(std::size_t count,
                                        TransformBlockScratch& scratch) const {
  const std::size_t cstride = chunk_plane_stride();
  const std::size_t bstride = basis_plane_stride();
  const std::size_t word_words = (params_.n() + 63) / 64;
  if (scratch.chunk_plane.size() < count * cstride + kPlanePad) {
    scratch.chunk_plane.resize(count * cstride + kPlanePad);
  }
  if (scratch.basis_plane.size() < count * bstride + kPlanePad) {
    scratch.basis_plane.resize(count * bstride + kPlanePad);
  }
  if (scratch.syndromes.size() < count) scratch.syndromes.resize(count);
  if (scratch.parities.size() < count) scratch.parities.resize(count);
  // chunk_row() promises zeros above the n-bit word; expand only writes
  // the word region, so scrub anything a prior forward_block staged there.
  if (cstride > word_words) {
    for (std::size_t c = 0; c < count; ++c) {
      std::uint64_t* row = scratch.chunk_plane.data() + c * cstride;
      std::fill(row + word_words, row + cstride, 0);
    }
  }
}

void GdTransform::inverse_block_stage(TransformBlockScratch& scratch,
                                      std::size_t row,
                                      const bits::BitVector& basis,
                                      std::uint32_t syndrome) const {
  ZL_EXPECTS(basis.size() == params_.k());
  const auto words = basis.words();
  std::memcpy(scratch.basis_plane.data() + row * basis_plane_stride(),
              words.data(), words.size() * sizeof(std::uint64_t));
  scratch.syndromes[row] = syndrome;
}

void GdTransform::inverse_block_expand(TransformBlockScratch& scratch,
                                       std::size_t count) const {
  code_.expand_block(scratch.basis_plane.data(), basis_plane_stride(),
                     scratch.syndromes.data(), count,
                     scratch.chunk_plane.data(), chunk_plane_stride(),
                     scratch.parities.data());
}

}  // namespace zipline::gd
