// Configuration of the GD transform as deployed by ZipLine.
//
// Defaults replicate the paper's deployment choices (§7 "Choice of
// parameters"): m = 8 (the largest byte-aligned syndrome the hardware
// fits), 256-bit chunks (so one excess bit rides along with the 255-bit
// codeword), and 15-bit identifiers (32,768 cached bases; together with
// the excess bit the compressed reference is exactly 2 bytes).
#pragma once

#include <cstddef>

#include "crc/polynomial.hpp"

namespace zipline::gd {

struct GdParams {
  /// Hamming order; n = 2^m - 1, k = n - m. Range [3, 15].
  int m = 8;

  /// Chunk size carried by one packet, in bits. Must be >= n; the
  /// (chunk_bits - n) highest-order bits travel verbatim (the paper's "one
  /// additional bit to store the MSB").
  std::size_t chunk_bits = 256;

  /// Width of the short identifiers replacing bases (dictionary holds
  /// 2^id_bits bases). The paper picks 15 so id + excess bit = 16 bits.
  std::size_t id_bits = 15;

  /// Generator polynomial; must be primitive of degree m. Zero means "use
  /// the paper Table 1 default for m".
  crc::Gf2Poly generator{0};

  /// Model the Tofino container-alignment padding the paper measured: its
  /// type-2 packets carry 8 extra padding bits (the 3 % overhead of
  /// Fig. 3's "no table" bars, which the authors note an expert could
  /// eliminate).
  bool model_tofino_padding = true;
  std::size_t type2_extra_pad_bits = 8;

  [[nodiscard]] std::size_t n() const noexcept {
    return (std::size_t{1} << m) - 1;
  }
  [[nodiscard]] std::size_t k() const noexcept {
    return n() - static_cast<std::size_t>(m);
  }
  [[nodiscard]] std::size_t excess_bits() const noexcept {
    return chunk_bits - n();
  }
  [[nodiscard]] std::size_t dictionary_capacity() const noexcept {
    return std::size_t{1} << id_bits;
  }

  /// Wire payload size of each packet type, in bytes (payload only; the
  /// packet type is carried by the EtherType). Matches the paper's Fig. 3
  /// accounting: 32 B raw -> 33 B type 2 -> 3 B type 3 at the defaults.
  [[nodiscard]] std::size_t raw_payload_bytes() const noexcept {
    return (chunk_bits + 7) / 8;
  }
  [[nodiscard]] std::size_t type2_payload_bytes() const noexcept {
    const std::size_t bits = static_cast<std::size_t>(m) + excess_bits() + k() +
                             (model_tofino_padding ? type2_extra_pad_bits : 0);
    return (bits + 7) / 8;
  }
  [[nodiscard]] std::size_t type3_payload_bytes() const noexcept {
    const std::size_t bits =
        static_cast<std::size_t>(m) + excess_bits() + id_bits;
    return (bits + 7) / 8;
  }

  /// Resolved generator polynomial.
  [[nodiscard]] crc::Gf2Poly resolved_generator() const {
    return generator.is_zero() ? crc::default_hamming_generator(m) : generator;
  }

  /// Throws ContractViolation when the combination is inconsistent.
  void validate() const;
};

}  // namespace zipline::gd
