#include "gd/concurrent_dictionary.hpp"

#include <algorithm>
#include <array>

#include "common/contracts.hpp"

namespace zipline::gd {

namespace {

/// Optimistic probe attempts before falling back to the stripe lock
/// (bounds reader latency under pathological writer churn).
constexpr int kReadAttempts = 16;

/// Largest basis (in 64-bit words) the lock-free copy-out stages on the
/// stack; wider bases (4096+ bits — no GD parameterization comes close)
/// take the locked path.
constexpr std::size_t kMaxCopyWords = 64;

/// Index home slot. A different multiplier than the shard router so the
/// entries landing in one shard do not cluster on one index chain.
std::size_t index_home(std::uint64_t hash, std::size_t mask) noexcept {
  return static_cast<std::size_t>((hash * 0xD6E8FEB86659FD93ULL) >> 32) & mask;
}

std::uint64_t tag_of(std::uint64_t hash) noexcept {
  return hash != 0 ? hash : 1;  // 0 is the empty-slot sentinel
}

}  // namespace

ConcurrentShardedDictionary::ConcurrentShardedDictionary(
    std::size_t capacity, EvictionPolicy policy, std::size_t shard_count,
    ReadPath read_path, std::uint64_t random_seed)
    : dict_(capacity, policy, shard_count, random_seed),
      read_path_(read_path),
      stripes_(std::make_unique<Stripe[]>(shard_count)),
      mirrors_(std::make_unique<Mirror[]>(shard_count)) {
  const std::size_t shard_cap = dict_.shard_capacity();
  // 2x the shard's identifier space, so the open-addressing index stays
  // under 50% live even when the dictionary is full (stale slots push it
  // toward the 3/4 rebuild trigger).
  std::size_t index_size = 16;
  while (index_size < shard_cap * 2) index_size <<= 1;
  for (std::size_t s = 0; s < shard_count; ++s) {
    Mirror& m = mirrors_[s];
    m.entry_hash = std::make_unique<std::atomic<std::uint64_t>[]>(shard_cap);
    m.entry_bits = std::make_unique<std::atomic<std::uint32_t>[]>(shard_cap);
    m.index_tag = std::make_unique<std::atomic<std::uint64_t>[]>(index_size);
    m.index_ref = std::make_unique<std::atomic<std::uint32_t>[]>(index_size);
    m.index_mask = index_size - 1;
  }
}

ConcurrentShardedDictionary::~ConcurrentShardedDictionary() {
  for (std::size_t s = 0; s < dict_.shard_count(); ++s) {
    delete[] mirrors_[s].words.load(std::memory_order_relaxed);
  }
}

// --- seqlock write window --------------------------------------------------

void ConcurrentShardedDictionary::seq_begin(std::size_t shard) noexcept {
  Stripe& st = stripes_[shard];
  st.seq.store(st.seq.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  // The release fence orders the odd sequence store before every mirror
  // store that follows: no reader can observe new mirror data under the
  // old (even) sequence.
  std::atomic_thread_fence(std::memory_order_release);
}

void ConcurrentShardedDictionary::seq_end(std::size_t shard) noexcept {
  Stripe& st = stripes_[shard];
  // The release store orders every preceding mirror store before the even
  // sequence becomes visible.
  st.seq.store(st.seq.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
}

// --- mirror maintenance (stripe mutex held) --------------------------------

void ConcurrentShardedDictionary::rebuild_index(Mirror& mirror) {
  const std::size_t size = mirror.index_mask + 1;
  for (std::size_t i = 0; i < size; ++i) {
    mirror.index_tag[i].store(0, std::memory_order_relaxed);
    mirror.index_ref[i].store(0, std::memory_order_relaxed);
  }
  mirror.index_used = 0;
  const std::size_t shard_cap = dict_.shard_capacity();
  for (std::uint32_t local = 0; local < shard_cap; ++local) {
    if (mirror.entry_bits[local].load(std::memory_order_relaxed) == 0) {
      continue;
    }
    const std::uint64_t hash =
        mirror.entry_hash[local].load(std::memory_order_relaxed);
    std::size_t i = index_home(hash, mirror.index_mask);
    while (mirror.index_tag[i].load(std::memory_order_relaxed) != 0) {
      i = (i + 1) & mirror.index_mask;
    }
    mirror.index_tag[i].store(tag_of(hash), std::memory_order_relaxed);
    mirror.index_ref[i].store(local + 1, std::memory_order_relaxed);
    ++mirror.index_used;
  }
}

void ConcurrentShardedDictionary::index_claim(Mirror& mirror,
                                              std::uint64_t hash,
                                              std::uint32_t local) {
  const std::uint64_t tag = tag_of(hash);
  const std::size_t shard_cap = dict_.shard_capacity();
  for (int round = 0; round < 2; ++round) {
    std::size_t i = index_home(hash, mirror.index_mask);
    for (std::size_t n = 0; n <= mirror.index_mask;
         ++n, i = (i + 1) & mirror.index_mask) {
      const std::uint64_t t =
          mirror.index_tag[i].load(std::memory_order_relaxed);
      if (t == 0) {
        mirror.index_tag[i].store(tag, std::memory_order_relaxed);
        mirror.index_ref[i].store(local + 1, std::memory_order_relaxed);
        ++mirror.index_used;
        if (mirror.index_used > (mirror.index_mask + 1) / 4 * 3) {
          rebuild_index(mirror);
        }
        return;
      }
      const std::uint32_t r =
          mirror.index_ref[i].load(std::memory_order_relaxed);
      if (t == tag && r == local + 1) return;  // refresh of our own slot
      // A slot whose entry no longer carries its tag is stale (the basis
      // was evicted or its identifier recycled): reuse it in place. This
      // never turns a nonzero slot into an empty one, so concurrent
      // reader probe chains cannot be cut short.
      bool live = false;
      if (r != 0 && r <= shard_cap) {
        const std::uint32_t other = r - 1;
        live = mirror.entry_bits[other].load(std::memory_order_relaxed) !=
                   0 &&
               tag_of(mirror.entry_hash[other].load(
                   std::memory_order_relaxed)) == t;
      }
      if (!live) {
        mirror.index_tag[i].store(tag, std::memory_order_relaxed);
        mirror.index_ref[i].store(local + 1, std::memory_order_relaxed);
        return;
      }
    }
    // Chain exhausted before the occupancy trigger fired (can only happen
    // with adversarial clustering): compact and retry once.
    rebuild_index(mirror);
  }
  ZL_ASSERT(false && "index sized 2x capacity always has room after rebuild");
}

void ConcurrentShardedDictionary::disable_mirror(std::size_t shard) {
  // Retire the shard's mirror inside a seq window: the bump invalidates
  // any reader already past the enabled check, so it retries, re-reads
  // enabled, and falls back to the stripe lock instead of returning a
  // validated miss for a basis the inner dictionary holds.
  Mirror& m = mirrors_[shard];
  seq_begin(shard);
  m.enabled.store(false, std::memory_order_release);
  seq_end(shard);
}

bool ConcurrentShardedDictionary::prepare_slab(std::size_t shard,
                                               const bits::BitVector& basis) {
  Mirror& m = mirrors_[shard];
  const auto words = basis.words();
  std::uint32_t width = m.width_words.load(std::memory_order_relaxed);
  if (width == 0) {
    if (basis.empty()) {
      // A zero-bit basis is indistinguishable from an unmapped slot;
      // nothing real produces one — retire the mirror rather than special-
      // case it on the read path.
      disable_mirror(shard);
      return false;
    }
    const std::size_t shard_cap = dict_.shard_capacity();
    const auto w = static_cast<std::uint32_t>(words.size());
    // Zero-initialized slab; published before width so a reader that
    // observes the width always has the pointer.
    m.words.store(new std::atomic<std::uint64_t>[shard_cap * w](),
                  std::memory_order_release);
    m.width_words.store(w, std::memory_order_release);
    width = w;
  }
  if (basis.empty() || words.size() > width) {
    // Mixed basis widths (no engine produces them): serve this shard's
    // reads from the stripe lock forever.
    disable_mirror(shard);
    return false;
  }
  return true;
}

void ConcurrentShardedDictionary::write_entry(std::size_t shard,
                                              std::uint32_t local,
                                              const bits::BitVector& basis,
                                              std::uint64_t hash) {
  Mirror& m = mirrors_[shard];
  const auto words = basis.words();
  const std::uint32_t width = m.width_words.load(std::memory_order_relaxed);
  m.entry_hash[local].store(hash, std::memory_order_relaxed);
  std::atomic<std::uint64_t>* row =
      m.words.load(std::memory_order_relaxed) +
      static_cast<std::size_t>(local) * width;
  for (std::uint32_t w = 0; w < width; ++w) {
    row[w].store(w < words.size() ? words[w] : 0, std::memory_order_relaxed);
  }
  m.entry_bits[local].store(static_cast<std::uint32_t>(basis.size()),
                            std::memory_order_relaxed);
  index_claim(m, hash, local);
}

void ConcurrentShardedDictionary::publish_entry(std::size_t shard,
                                                std::uint32_t local,
                                                const bits::BitVector& basis,
                                                std::uint64_t hash) {
  if (read_path_ != ReadPath::seqlock) return;
  if (!mirrors_[shard].enabled.load(std::memory_order_relaxed)) return;
  if (!prepare_slab(shard, basis)) return;
  seq_begin(shard);
  write_entry(shard, local, basis, hash);
  seq_end(shard);
}

void ConcurrentShardedDictionary::publish_erase(std::size_t shard,
                                                std::uint32_t local) {
  if (read_path_ != ReadPath::seqlock) return;
  Mirror& m = mirrors_[shard];
  if (!m.enabled.load(std::memory_order_relaxed)) return;
  seq_begin(shard);
  m.entry_bits[local].store(0, std::memory_order_relaxed);
  seq_end(shard);
}

// --- lock-free reads -------------------------------------------------------

ConcurrentShardedDictionary::Probe ConcurrentShardedDictionary::probe_mirror(
    std::size_t shard, const bits::BitVector& basis, std::uint64_t hash,
    std::uint32_t& local) const {
  const Mirror& m = mirrors_[shard];
  if (!m.enabled.load(std::memory_order_acquire)) return Probe::retry;
  const Stripe& st = stripes_[shard];
  const std::uint64_t s0 = st.seq.load(std::memory_order_acquire);
  if (s0 & 1) return Probe::retry;
  const std::atomic<std::uint64_t>* slab =
      m.words.load(std::memory_order_acquire);
  const std::uint32_t width = m.width_words.load(std::memory_order_acquire);
  const std::uint64_t tag = tag_of(hash);
  const auto query = basis.words();
  const std::size_t shard_cap = dict_.shard_capacity();
  Probe outcome = Probe::retry;  // exhausted chain -> take the lock
  std::size_t i = index_home(hash, m.index_mask);
  for (std::size_t n = 0; n <= m.index_mask;
       ++n, i = (i + 1) & m.index_mask) {
    const std::uint64_t t = m.index_tag[i].load(std::memory_order_relaxed);
    if (t == 0) {
      outcome = Probe::miss;
      break;
    }
    if (t != tag) continue;
    const std::uint32_t r = m.index_ref[i].load(std::memory_order_relaxed);
    if (r == 0 || r > shard_cap) continue;  // torn ref: keep probing
    const std::uint32_t cand = r - 1;
    if (m.entry_hash[cand].load(std::memory_order_relaxed) != hash) continue;
    if (m.entry_bits[cand].load(std::memory_order_relaxed) != basis.size()) {
      continue;
    }
    if (slab == nullptr || query.size() > width) return Probe::retry;
    const std::atomic<std::uint64_t>* row =
        slab + static_cast<std::size_t>(cand) * width;
    bool equal = true;
    for (std::size_t w = 0; w < query.size(); ++w) {
      if (row[w].load(std::memory_order_relaxed) != query[w]) {
        equal = false;
        break;
      }
    }
    // A word mismatch is either a genuine hash collision (keep probing)
    // or a torn entry — in which case the sequence recheck below fails
    // and the caller retries, so a torn basis is never *accepted*.
    if (!equal) continue;
    local = cand;
    outcome = Probe::hit;
    break;
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (st.seq.load(std::memory_order_relaxed) != s0) return Probe::retry;
  return outcome;
}

ConcurrentShardedDictionary::Probe ConcurrentShardedDictionary::fetch_mirror(
    std::size_t shard, std::uint32_t local, bits::BitVector& out) const {
  const Mirror& m = mirrors_[shard];
  if (!m.enabled.load(std::memory_order_acquire)) return Probe::retry;
  const Stripe& st = stripes_[shard];
  const std::uint64_t s0 = st.seq.load(std::memory_order_acquire);
  if (s0 & 1) return Probe::retry;
  const std::uint32_t bits = m.entry_bits[local].load(std::memory_order_relaxed);
  if (bits == 0) {
    std::atomic_thread_fence(std::memory_order_acquire);
    return st.seq.load(std::memory_order_relaxed) == s0 ? Probe::miss
                                                        : Probe::retry;
  }
  const std::size_t wc = (static_cast<std::size_t>(bits) + 63) / 64;
  const std::atomic<std::uint64_t>* slab =
      m.words.load(std::memory_order_acquire);
  const std::uint32_t width = m.width_words.load(std::memory_order_acquire);
  if (slab == nullptr || wc > width || wc > kMaxCopyWords) return Probe::retry;
  std::array<std::uint64_t, kMaxCopyWords> buffer;
  const std::atomic<std::uint64_t>* row =
      slab + static_cast<std::size_t>(local) * width;
  for (std::size_t w = 0; w < wc; ++w) {
    buffer[w] = row[w].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  // Validate BEFORE the snapshot is turned into a basis: a torn copy is
  // discarded here, never returned.
  if (st.seq.load(std::memory_order_relaxed) != s0) return Probe::retry;
  out.assign_from_words(std::span(buffer.data(), wc), bits);
  return Probe::hit;
}

// --- locked write helpers --------------------------------------------------

InsertResult ConcurrentShardedDictionary::locked_insert(
    std::size_t shard, const bits::BitVector& basis, std::uint64_t hash) {
  InsertResult result = dict_.insert(basis, hash);
  // Eviction recycles the victim's identifier, so the overwrite below
  // covers it; the victim's index slot goes stale and is reused later.
  publish_entry(shard, to_local(result.id), basis, hash);
  return result;
}

void ConcurrentShardedDictionary::sync_shadow(std::size_t shard) noexcept {
  const DictionaryStats& s = dict_.shard(shard).stats();
  Stripe& st = stripes_[shard];
  st.shadow_hits.store(s.hits, std::memory_order_relaxed);
  st.shadow_misses.store(s.misses, std::memory_order_relaxed);
  st.shadow_insertions.store(s.insertions, std::memory_order_relaxed);
  st.shadow_evictions.store(s.evictions, std::memory_order_relaxed);
  st.shadow_prefilter.store(s.prefilter_skips, std::memory_order_relaxed);
  st.shadow_clock.store(s.clock_touches, std::memory_order_relaxed);
  st.shadow_size.store(dict_.shard(shard).size(), std::memory_order_relaxed);
}

// --- aggregates ------------------------------------------------------------

std::size_t ConcurrentShardedDictionary::size() const noexcept {
  std::size_t total = 0;
  for (std::size_t s = 0; s < dict_.shard_count(); ++s) {
    total += stripes_[s].shadow_size.load(std::memory_order_relaxed);
  }
  return total;
}

DictionaryStats ConcurrentShardedDictionary::stats() const noexcept {
  DictionaryStats total;
  for (std::size_t s = 0; s < dict_.shard_count(); ++s) {
    const Stripe& st = stripes_[s];
    const std::uint64_t rh = st.read_hits.load(std::memory_order_relaxed);
    const std::uint64_t rm = st.read_misses.load(std::memory_order_relaxed);
    total.hits += st.shadow_hits.load(std::memory_order_relaxed) + rh;
    total.misses += st.shadow_misses.load(std::memory_order_relaxed) + rm;
    total.insertions += st.shadow_insertions.load(std::memory_order_relaxed);
    total.evictions += st.shadow_evictions.load(std::memory_order_relaxed);
    total.prefilter_skips +=
        st.shadow_prefilter.load(std::memory_order_relaxed);
    total.lockfree_reads +=
        rh + rm + st.read_other.load(std::memory_order_relaxed);
    // Locked ops count clock marks inside the shard; lock-free hits count
    // them here (the inner shard never sees those reads).
    total.clock_touches += st.shadow_clock.load(std::memory_order_relaxed) +
                           st.read_clock.load(std::memory_order_relaxed);
  }
  total.stripe_acquisitions =
      stripe_acquisitions_.load(std::memory_order_relaxed);
  total.turnstile_waits = turnstile_waits_.load(std::memory_order_relaxed);
  total.prefetched_probes =
      prefetched_probes_.load(std::memory_order_relaxed);
  return total;
}

void ConcurrentShardedDictionary::prefetch_ops(
    std::span<const BatchOp> ops) noexcept {
  for (const BatchOp& op : ops) {
    const std::size_t shard = shard_of_op(op);
    const Mirror& m = mirrors_[shard];
    if (op.kind == BatchOp::Kind::fetch_basis) {
      const std::uint32_t local = to_local(op.id);
      __builtin_prefetch(&m.entry_bits[local]);
      __builtin_prefetch(&m.entry_hash[local]);
    } else {
      __builtin_prefetch(&m.index_tag[index_home(op.hash, m.index_mask)]);
      __builtin_prefetch(&stripes_[shard].seq);
    }
  }
  if (!ops.empty()) {
    prefetched_probes_.fetch_add(ops.size(), std::memory_order_relaxed);
  }
}

// --- public operations -----------------------------------------------------

std::optional<std::uint32_t> ConcurrentShardedDictionary::lookup(
    const bits::BitVector& basis) {
  if (read_path_ == ReadPath::seqlock) {
    const std::uint64_t hash = basis.hash();
    const std::size_t shard = dict_.shard_of_hash(hash);
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      std::uint32_t local = 0;
      const Probe p = probe_mirror(shard, basis, hash, local);
      if (p == Probe::miss) {
        // A miss mutates nothing in any policy: answer without the lock.
        stripes_[shard].read_misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      if (p == Probe::hit) {
        if (dict_.policy() != EvictionPolicy::lru) {
          // fifo/random never refresh recency: a hit is a pure read.
          // clock refreshes it with one idempotent relaxed bit store into
          // the inner shard's stable referenced array — still lock-free.
          const std::uint32_t id = to_global(shard, local);
          if (dict_.policy() == EvictionPolicy::clock) {
            dict_.mark_referenced(id);
            stripes_[shard].read_clock.fetch_add(1,
                                                 std::memory_order_relaxed);
          }
          stripes_[shard].read_hits.fetch_add(1, std::memory_order_relaxed);
          return id;
        }
        break;  // LRU hit must splice the recency list -> locked transition
      }
    }
    auto guard = acquire_stripe(shard);
    const auto hit = dict_.lookup(basis, hash);
    sync_shadow(shard);
    return hit;
  }
  if (dict_.shard_count() == 1) {
    // One stripe: no routing hash needed; the shard's prefilter can
    // resolve most misses without hashing the basis at all.
    auto guard = acquire_stripe(0);
    const auto hit = dict_.lookup(basis);
    sync_shadow(0);
    return hit;
  }
  const std::uint64_t hash = basis.hash();
  const std::size_t shard = dict_.shard_of_hash(hash);
  auto guard = acquire_stripe(shard);
  const auto hit = dict_.lookup(basis, hash);
  sync_shadow(shard);
  return hit;
}

std::optional<std::uint32_t> ConcurrentShardedDictionary::peek(
    const bits::BitVector& basis) const {
  const std::uint64_t hash = basis.hash();
  const std::size_t shard = dict_.shard_of_hash(hash);
  if (read_path_ == ReadPath::seqlock) {
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      std::uint32_t local = 0;
      const Probe p = probe_mirror(shard, basis, hash, local);
      if (p == Probe::retry) continue;
      stripes_[shard].read_other.fetch_add(1, std::memory_order_relaxed);
      if (p == Probe::miss) return std::nullopt;
      return to_global(shard, local);
    }
  }
  auto guard = acquire_stripe(shard);
  return dict_.peek(basis, hash);
}

InsertResult ConcurrentShardedDictionary::insert(
    const bits::BitVector& basis) {
  const std::uint64_t hash = basis.hash();
  const std::size_t shard = dict_.shard_of_hash(hash);
  auto guard = acquire_stripe(shard);
  const InsertResult result = locked_insert(shard, basis, hash);
  sync_shadow(shard);
  return result;
}

std::optional<std::uint32_t> ConcurrentShardedDictionary::lookup_or_insert(
    const bits::BitVector& basis, bool learn) {
  if (read_path_ == ReadPath::seqlock &&
      dict_.policy() != EvictionPolicy::lru) {
    const std::uint64_t hash = basis.hash();
    const std::size_t shard = dict_.shard_of_hash(hash);
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      std::uint32_t local = 0;
      const Probe p = probe_mirror(shard, basis, hash, local);
      if (p == Probe::hit) {
        const std::uint32_t id = to_global(shard, local);
        if (dict_.policy() == EvictionPolicy::clock) {
          dict_.mark_referenced(id);
          stripes_[shard].read_clock.fetch_add(1, std::memory_order_relaxed);
        }
        stripes_[shard].read_hits.fetch_add(1, std::memory_order_relaxed);
        return id;
      }
      if (p == Probe::miss) {
        if (!learn) {
          stripes_[shard].read_misses.fetch_add(1, std::memory_order_relaxed);
          return std::nullopt;
        }
        break;  // miss + learn -> locked compound transition
      }
    }
    auto guard = acquire_stripe(shard);
    const auto hit = dict_.lookup(basis, hash);
    if (!hit && learn) (void)locked_insert(shard, basis, hash);
    sync_shadow(shard);
    return hit;
  }
  if (dict_.shard_count() == 1) {
    auto guard = acquire_stripe(0);
    const auto hit = dict_.lookup(basis);
    if (!hit && learn) {
      // The lazy lookup may have skipped hashing (prefilter miss); the
      // insert hashes internally, and the mirror reads the stored hash
      // back rather than recomputing it.
      const InsertResult result = dict_.insert(basis);
      const std::uint32_t local = to_local(result.id);
      publish_entry(0, local, basis, dict_.shard(0).entry_hash(local));
    }
    sync_shadow(0);
    return hit;
  }
  const std::uint64_t hash = basis.hash();
  const std::size_t shard = dict_.shard_of_hash(hash);
  auto guard = acquire_stripe(shard);
  const auto hit = dict_.lookup(basis, hash);
  if (!hit && learn) (void)locked_insert(shard, basis, hash);
  sync_shadow(shard);
  return hit;
}

void ConcurrentShardedDictionary::insert_if_absent(
    const bits::BitVector& basis) {
  const std::uint64_t hash = basis.hash();
  const std::size_t shard = dict_.shard_of_hash(hash);
  if (read_path_ == ReadPath::seqlock) {
    // Present-check is a peek (no statistics, no recency in ANY policy),
    // so a mirror hit answers the whole operation lock-free — the common
    // case for decode-side learning of already-known bases.
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      std::uint32_t local = 0;
      const Probe p = probe_mirror(shard, basis, hash, local);
      if (p == Probe::hit) {
        stripes_[shard].read_other.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (p == Probe::miss) break;  // absent -> locked insert
    }
  }
  auto guard = acquire_stripe(shard);
  if (!dict_.peek(basis, hash)) (void)locked_insert(shard, basis, hash);
  sync_shadow(shard);
}

bool ConcurrentShardedDictionary::lookup_basis_into(std::uint32_t id,
                                                    bits::BitVector& out) {
  ZL_EXPECTS(id < dict_.capacity());
  const std::size_t shard = dict_.shard_of_id(id);
  if (read_path_ == ReadPath::seqlock &&
      dict_.policy() != EvictionPolicy::lru) {
    // fifo/random fetches refresh nothing, and clock refreshes with a
    // lock-free bit store: copy out of the mirror either way.
    const std::uint32_t local = to_local(id);
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      const Probe p = fetch_mirror(shard, local, out);
      if (p == Probe::retry) continue;
      if (p == Probe::hit && dict_.policy() == EvictionPolicy::clock) {
        dict_.mark_referenced(id);
        stripes_[shard].read_clock.fetch_add(1, std::memory_order_relaxed);
      }
      stripes_[shard].read_other.fetch_add(1, std::memory_order_relaxed);
      return p == Probe::hit;
    }
  }
  auto guard = acquire_stripe(shard);
  const bits::BitVector* basis = dict_.lookup_basis_ref(id);
  if (basis == nullptr) return false;
  out = *basis;
  sync_shadow(shard);
  return true;
}

void ConcurrentShardedDictionary::install(std::uint32_t id,
                                          const bits::BitVector& basis) {
  const std::uint64_t hash = basis.hash();
  const std::size_t shard = dict_.shard_of_id(id);
  auto guard = acquire_stripe(shard);
  // install erases any prior mapping of this basis (a basis maps to at
  // most one identifier); mirror that unpublish. The prior identifier
  // lives in this same shard — install requires the identifier to belong
  // to the basis's route shard (ZL_EXPECTS-enforced below).
  std::optional<std::uint32_t> prior;
  if (dict_.shard_of_hash(hash) == shard) prior = dict_.peek(basis, hash);
  dict_.install(id, basis);
  if (read_path_ == ReadPath::seqlock &&
      mirrors_[shard].enabled.load(std::memory_order_relaxed) &&
      prepare_slab(shard, basis)) {
    // ONE seq window covers both the unpublish of the prior mapping and
    // the new entry, so no reader can validate an intermediate state
    // (stale prior id resolvable, or the basis briefly absent) that the
    // inner dictionary never exposed.
    seq_begin(shard);
    if (prior.has_value() && *prior != id) {
      mirrors_[shard].entry_bits[to_local(*prior)].store(
          0, std::memory_order_relaxed);
    }
    write_entry(shard, to_local(id), basis, hash);
    seq_end(shard);
  }
  sync_shadow(shard);
}

void ConcurrentShardedDictionary::erase(std::uint32_t id) {
  const std::size_t shard = dict_.shard_of_id(id);
  auto guard = acquire_stripe(shard);
  dict_.erase(id);
  publish_erase(shard, to_local(id));
  sync_shadow(shard);
}

void ConcurrentShardedDictionary::touch(std::uint32_t id) {
  if (dict_.policy() == EvictionPolicy::clock) {
    // A TTL refresh under clock is one idempotent relaxed bit store — no
    // stripe lock, no mirror traffic.
    dict_.mark_referenced(id);
    stripes_[dict_.shard_of_id(id)].read_clock.fetch_add(
        1, std::memory_order_relaxed);
    return;
  }
  const std::size_t shard = dict_.shard_of_id(id);
  auto guard = acquire_stripe(shard);
  dict_.touch(id);  // recency only: nothing to publish
  sync_shadow(shard);
}

void ConcurrentShardedDictionary::run_locked_op(std::size_t shard,
                                                BatchOp& op) {
  switch (op.kind) {
    case BatchOp::Kind::lookup:
      if (const auto hit = dict_.lookup(*op.basis, op.hash)) {
        op.result = *hit;
      } else {
        op.result = BatchOp::kNoId;
      }
      break;
    case BatchOp::Kind::lookup_or_insert:
      if (const auto hit = dict_.lookup(*op.basis, op.hash)) {
        op.result = *hit;
      } else {
        (void)locked_insert(shard, *op.basis, op.hash);
        op.result = BatchOp::kNoId;
      }
      break;
    case BatchOp::Kind::insert_if_absent:
      if (!dict_.peek(*op.basis, op.hash)) {
        (void)locked_insert(shard, *op.basis, op.hash);
      }
      op.result = BatchOp::kNoId;
      break;
    case BatchOp::Kind::fetch_basis: {
      const bits::BitVector* basis = dict_.lookup_basis_ref(op.id);
      if (basis != nullptr) {
        *op.out = *basis;
        op.result = 1;
      } else {
        op.result = BatchOp::kNoId;
      }
      break;
    }
  }
}

void ConcurrentShardedDictionary::group_batch(std::span<const BatchOp> ops,
                                              BatchScratch& scratch) const {
  const std::size_t shards = dict_.shard_count();
  scratch.counts.assign(shards, 0);
  if (shards == 1) {
    // No routing to do: apply_shard_group runs the plan in span order.
    scratch.counts[0] = static_cast<std::uint32_t>(ops.size());
    return;
  }
  // Stable counting sort by shard: in-shard order equals plan order, the
  // property the deterministic replay rests on. Grow-only scratch.
  for (const BatchOp& op : ops) ++scratch.counts[shard_of_op(op)];
  scratch.offsets.resize(shards);
  std::uint32_t running = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    scratch.offsets[s] = running;
    running += scratch.counts[s];
  }
  scratch.order.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    scratch.order[scratch.offsets[shard_of_op(ops[i])]++] =
        static_cast<std::uint32_t>(i);
  }
  // offsets[s] is now the END of shard s's group.
}

void ConcurrentShardedDictionary::apply_shard_group(
    std::span<BatchOp> ops, const BatchScratch& scratch, std::size_t shard) {
  const std::uint32_t count = scratch.counts[shard];
  if (count == 0) return;
  auto guard = acquire_stripe(shard);  // ONE acquisition for the whole group
  if (dict_.shard_count() == 1) {
    for (BatchOp& op : ops) run_locked_op(0, op);
  } else {
    const std::uint32_t end = scratch.offsets[shard];
    for (std::uint32_t k = end - count; k < end; ++k) {
      run_locked_op(shard, ops[scratch.order[k]]);
    }
  }
  sync_shadow(shard);
}

void ConcurrentShardedDictionary::apply_batch(std::span<BatchOp> ops,
                                              BatchScratch& scratch) {
  if (ops.empty()) return;
  group_batch(ops, scratch);
  for (std::size_t s = 0; s < dict_.shard_count(); ++s) {
    apply_shard_group(ops, scratch, s);
  }
}

}  // namespace zipline::gd
