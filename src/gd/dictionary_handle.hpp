// Dictionary ownership handle: the one seam through which an Engine talks
// to its basis dictionary.
//
// Two ownership modes, chosen at construction:
//
//   * private  — the handle owns a ShardedDictionary. This is the
//     historical (and default) arrangement: one dictionary per engine, no
//     locks, bit-identical behaviour to the pre-handle code. Serial users
//     and the per-flow parallel mode live here.
//   * shared   — the handle borrows a ConcurrentShardedDictionary owned by
//     someone else (typically engine::ParallelPipeline). Many engines of
//     one direction then consult and teach ONE dictionary — the switch's
//     one-table-many-flows reality — and every operation takes the striped
//     shard lock inside the service. The service must outlive the handle.
//
// The hot-path cost of the abstraction is one predictable branch per
// operation; no virtual dispatch.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "common/bitvector.hpp"
#include "common/contracts.hpp"
#include "gd/concurrent_dictionary.hpp"
#include "gd/sharded_dictionary.hpp"

namespace zipline::gd {

class DictionaryHandle {
 public:
  /// Private mode: the handle owns a fresh deterministic dictionary.
  DictionaryHandle(std::size_t capacity, EvictionPolicy policy,
                   std::size_t shard_count = 1,
                   std::uint64_t random_seed = 0x1dba5e5)
      : owned_(std::make_unique<ShardedDictionary>(capacity, policy,
                                                   shard_count, random_seed)) {
  }

  /// Shared mode: the handle borrows `service` (which must outlive it).
  explicit DictionaryHandle(ConcurrentShardedDictionary& service)
      : shared_(&service) {}

  [[nodiscard]] bool is_shared() const noexcept { return shared_ != nullptr; }
  [[nodiscard]] const ConcurrentShardedDictionary* service() const noexcept {
    return shared_;
  }

  /// The underlying deterministic dictionary, for introspection (capacity,
  /// policy, per-shard stats). In shared mode this view is unsynchronized:
  /// read it only while the owning pipeline is quiescent.
  [[nodiscard]] const ShardedDictionary& view() const noexcept {
    return shared_ != nullptr ? shared_->unsynchronized() : *owned_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return view().capacity();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return view().shard_count();
  }
  [[nodiscard]] EvictionPolicy policy() const noexcept {
    return view().policy();
  }
  [[nodiscard]] DictionaryStats stats() const {
    return shared_ != nullptr ? shared_->stats() : owned_->stats();
  }
  [[nodiscard]] std::size_t size() const {
    return shared_ != nullptr ? shared_->size() : owned_->size();
  }

  // --- dictionary operations (mode-dispatched) ---------------------------

  [[nodiscard]] std::optional<std::uint32_t> lookup(
      const bits::BitVector& basis) {
    return shared_ != nullptr ? shared_->lookup(basis) : owned_->lookup(basis);
  }

  [[nodiscard]] std::optional<std::uint32_t> peek(
      const bits::BitVector& basis) const {
    return shared_ != nullptr ? shared_->peek(basis) : owned_->peek(basis);
  }

  InsertResult insert(const bits::BitVector& basis) {
    return shared_ != nullptr ? shared_->insert(basis) : owned_->insert(basis);
  }

  /// Encoder-side transition: lookup, and on a miss insert when `learn`.
  /// In shared mode the whole transition holds one stripe lock, so
  /// concurrent learners of the same basis cannot double-insert; the
  /// private path is the plain serial sequence.
  [[nodiscard]] std::optional<std::uint32_t> lookup_or_insert(
      const bits::BitVector& basis, bool learn) {
    if (shared_ != nullptr) return shared_->lookup_or_insert(basis, learn);
    if (const auto hit = owned_->lookup(basis)) return hit;
    if (learn) (void)owned_->insert(basis);
    return std::nullopt;
  }

  /// Membership test without touching recency or statistics (lock-free in
  /// shared seqlock mode).
  [[nodiscard]] bool contains(const bits::BitVector& basis) const {
    return peek(basis).has_value();
  }

  /// Executes a whole resolve plan (one unit's dictionary operations).
  /// Private mode runs the ops in plan order — the deterministic
  /// reference; shared mode groups them by shard and takes each stripe
  /// lock ONCE per (plan, shard) pair, which is observationally identical
  /// because per-shard state is independent and in-shard order is
  /// preserved. This is the engine's split-phase resolve path.
  void apply_batch(std::span<BatchOp> ops, BatchScratch& scratch) {
    if (shared_ != nullptr) {
      shared_->apply_batch(ops, scratch);
    } else {
      owned_->apply_batch(ops);
    }
  }

  /// Split apply_batch for the parallel pipeline's per-shard turnstiles
  /// (shared mode only): group_batch computes the plan's shard footprint
  /// without executing anything; apply_shard_group then runs one shard's
  /// group under one stripe acquisition. group_batch + apply_shard_group
  /// over every shard == apply_batch.
  void group_batch(std::span<const BatchOp> ops, BatchScratch& scratch) const {
    ZL_EXPECTS(shared_ != nullptr &&
               "split resolve is a shared-dictionary arrangement");
    shared_->group_batch(ops, scratch);
  }
  void apply_shard_group(std::span<BatchOp> ops, const BatchScratch& scratch,
                         std::size_t shard) {
    ZL_EXPECTS(shared_ != nullptr &&
               "split resolve is a shared-dictionary arrangement");
    shared_->apply_shard_group(ops, scratch, shard);
  }

  /// Probe-stage software prefetch for one basis — private mode only as a
  /// useful hint (the owned dictionary's prefilter bucket); a no-op in
  /// shared mode, whose probe stage is the plan-wide prefetch_ops below.
  void prefetch(const bits::BitVector& basis) noexcept {
    if (shared_ == nullptr) owned_->prefetch(basis);
  }

  /// Probe-stage software prefetch for a whole resolve plan (shared mode
  /// only): warms the mirror index / entry slots every op will touch.
  void prefetch_ops(std::span<const BatchOp> ops) noexcept {
    ZL_EXPECTS(shared_ != nullptr &&
               "plan prefetch is a shared-dictionary arrangement");
    shared_->prefetch_ops(ops);
  }

  /// Decode-side learn: insert unless present (peek counts no stats);
  /// atomic per stripe in shared mode.
  void insert_if_absent(const bits::BitVector& basis) {
    if (shared_ != nullptr) {
      shared_->insert_if_absent(basis);
      return;
    }
    if (!owned_->peek(basis)) (void)owned_->insert(basis);
  }

  /// Reference into the entry table — private mode only (a shared
  /// dictionary can mutate the entry the moment the shard lock drops).
  [[nodiscard]] const bits::BitVector* lookup_basis_ref(std::uint32_t id) {
    ZL_EXPECTS(shared_ == nullptr &&
               "lookup_basis_ref is only safe on a private dictionary");
    return owned_->lookup_basis_ref(id);
  }

  /// Copying lookup that is safe in both modes (shared mode copies under
  /// the shard lock). Returns false when the identifier is unmapped.
  [[nodiscard]] bool lookup_basis_into(std::uint32_t id, bits::BitVector& out) {
    if (shared_ != nullptr) return shared_->lookup_basis_into(id, out);
    const bits::BitVector* basis = owned_->lookup_basis_ref(id);
    if (basis == nullptr) return false;
    out = *basis;
    return true;
  }

 private:
  std::unique_ptr<ShardedDictionary> owned_;        // private mode
  ConcurrentShardedDictionary* shared_ = nullptr;   // shared mode (borrowed)
};

}  // namespace zipline::gd
