#include "gd/params.hpp"

#include "common/contracts.hpp"

namespace zipline::gd {

void GdParams::validate() const {
  ZL_EXPECTS(m >= 3 && m <= 15);
  ZL_EXPECTS(chunk_bits >= n());
  ZL_EXPECTS(id_bits >= 1 && id_bits <= 24);
  ZL_EXPECTS(id_bits < k());  // otherwise "compression" expands
  const crc::Gf2Poly g = resolved_generator();
  ZL_EXPECTS(g.degree() == m);
  ZL_EXPECTS(g.is_primitive());
}

}  // namespace zipline::gd
