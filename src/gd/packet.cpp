#include "gd/packet.hpp"

#include "common/bitio.hpp"
#include "common/contracts.hpp"

namespace zipline::gd {

namespace {
constexpr std::uint16_t kEtherRaw = 0x5A01;
constexpr std::uint16_t kEtherUncompressed = 0x5A02;
constexpr std::uint16_t kEtherCompressed = 0x5A03;
}  // namespace

std::uint16_t ether_type_for(PacketType type) noexcept {
  switch (type) {
    case PacketType::raw:
      return kEtherRaw;
    case PacketType::uncompressed:
      return kEtherUncompressed;
    case PacketType::compressed:
      return kEtherCompressed;
  }
  return kEtherRaw;
}

PacketType packet_type_for_ether(std::uint16_t ether_type) {
  switch (ether_type) {
    case kEtherRaw:
      return PacketType::raw;
    case kEtherUncompressed:
      return PacketType::uncompressed;
    case kEtherCompressed:
      return PacketType::compressed;
    default:
      ZL_EXPECTS(false && "not a ZipLine EtherType");
      return PacketType::raw;
  }
}

bool is_zipline_ether_type(std::uint16_t ether_type) noexcept {
  return ether_type == kEtherRaw || ether_type == kEtherUncompressed ||
         ether_type == kEtherCompressed;
}

std::size_t GdPacket::wire_payload_bytes(const GdParams& params) const {
  switch (type) {
    case PacketType::raw:
      return raw.size();
    case PacketType::uncompressed:
      return params.type2_payload_bytes();
    case PacketType::compressed:
      return params.type3_payload_bytes();
  }
  return 0;
}

std::vector<std::uint8_t> GdPacket::serialize(const GdParams& params) const {
  switch (type) {
    case PacketType::raw:
      return raw;
    case PacketType::uncompressed: {
      ZL_EXPECTS(basis.size() == params.k());
      ZL_EXPECTS(excess.size() == params.excess_bits());
      bits::BitWriter w;
      w.write_uint(syndrome, static_cast<std::size_t>(params.m));
      w.write_bits(excess);
      w.write_bits(basis);
      w.align_to_byte();
      if (params.model_tofino_padding) {
        w.write_padding(params.type2_extra_pad_bits);
        w.align_to_byte();
      }
      return w.to_bytes();
    }
    case PacketType::compressed: {
      ZL_EXPECTS(excess.size() == params.excess_bits());
      ZL_EXPECTS(basis_id < params.dictionary_capacity());
      bits::BitWriter w;
      w.write_uint(syndrome, static_cast<std::size_t>(params.m));
      w.write_bits(excess);
      w.write_uint(basis_id, params.id_bits);
      w.align_to_byte();
      return w.to_bytes();
    }
  }
  ZL_ASSERT(false && "unreachable packet type");
  return {};
}

GdPacket GdPacket::parse(const GdParams& params, PacketType type,
                         std::span<const std::uint8_t> payload) {
  GdPacket p;
  p.type = type;
  switch (type) {
    case PacketType::raw:
      p.raw.assign(payload.begin(), payload.end());
      return p;
    case PacketType::uncompressed: {
      ZL_EXPECTS(payload.size() >= params.type2_payload_bytes());
      bits::BitReader r(payload);
      p.syndrome = static_cast<std::uint32_t>(
          r.read_uint(static_cast<std::size_t>(params.m)));
      p.excess = r.read_bits(params.excess_bits());
      p.basis = r.read_bits(params.k());
      return p;
    }
    case PacketType::compressed: {
      ZL_EXPECTS(payload.size() >= params.type3_payload_bytes());
      bits::BitReader r(payload);
      p.syndrome = static_cast<std::uint32_t>(
          r.read_uint(static_cast<std::size_t>(params.m)));
      p.excess = r.read_bits(params.excess_bits());
      p.basis_id = static_cast<std::uint32_t>(r.read_uint(params.id_bits));
      return p;
    }
  }
  ZL_ASSERT(false && "unreachable packet type");
  return p;
}

GdPacket GdPacket::make_raw(std::vector<std::uint8_t> payload) {
  GdPacket p;
  p.type = PacketType::raw;
  p.raw = std::move(payload);
  return p;
}

GdPacket GdPacket::make_uncompressed(std::uint32_t syndrome,
                                     bits::BitVector excess,
                                     bits::BitVector basis) {
  GdPacket p;
  p.type = PacketType::uncompressed;
  p.syndrome = syndrome;
  p.excess = std::move(excess);
  p.basis = std::move(basis);
  return p;
}

GdPacket GdPacket::make_compressed(std::uint32_t syndrome,
                                   bits::BitVector excess,
                                   std::uint32_t basis_id) {
  GdPacket p;
  p.type = PacketType::compressed;
  p.syndrome = syndrome;
  p.excess = std::move(excess);
  p.basis_id = basis_id;
  return p;
}

}  // namespace zipline::gd
