// Sharded basis dictionary: N independent BasisDictionary shards behind
// one identifier space.
//
// The paper's switch sustains line rate by partitioning per-packet state
// across pipeline stages; the software analogue is partitioning the basis
// dictionary so concurrent flow groups stop contending on one LRU list.
// A content-hash router sends each basis to one shard, and the global
// 2^id_bits identifier space is split into per-shard stripes
// (global = shard * shard_capacity + local), so the shard owning an
// identifier is recoverable from the identifier alone — the decode side
// needs no side channel.
//
// Determinism: the router depends only on the basis bits, and every shard
// is a deterministic BasisDictionary (seeded per shard), so mirrored
// encoder/decoder instances replay identical allocation decisions per
// shard, exactly as the unsharded codec does. With shard_count == 1 the
// behaviour — identifiers included — is bit-identical to a plain
// BasisDictionary.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"
#include "gd/dictionary.hpp"

namespace zipline::gd {

class ShardedDictionary {
 public:
  /// `capacity` is the total identifier space (2^id_bits); it must divide
  /// evenly into `shard_count` stripes. Shard i is seeded with
  /// `random_seed + i` so the ablation `random` policy stays deterministic
  /// and mirrors across encoder/decoder pairs.
  ShardedDictionary(std::size_t capacity, EvictionPolicy policy,
                    std::size_t shard_count = 1,
                    std::uint64_t random_seed = 0x1dba5e5);

  [[nodiscard]] std::size_t capacity() const noexcept {
    return shard_capacity_ * shards_.size();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return shard_capacity_;
  }
  [[nodiscard]] EvictionPolicy policy() const noexcept {
    return shards_.front().policy();
  }
  [[nodiscard]] std::size_t size() const noexcept;

  /// Aggregated statistics across all shards.
  [[nodiscard]] DictionaryStats stats() const noexcept;

  /// Direct shard access (diagnostics, per-shard load inspection).
  [[nodiscard]] const BasisDictionary& shard(std::size_t i) const {
    return shards_[i];
  }

  /// The router: which shard owns this basis / this identifier. The
  /// hash-flavoured form takes the basis's precomputed content hash so one
  /// `BitVector::hash()` serves router and in-shard map alike.
  [[nodiscard]] std::size_t shard_of(const bits::BitVector& basis) const noexcept;
  [[nodiscard]] std::size_t shard_of_hash(std::uint64_t hash) const noexcept {
    if (shards_.size() == 1) return 0;
    // Fibonacci remix of the content hash: the in-shard map is fed the
    // same hash, so reusing its low bits unmixed would correlate the
    // router with bucket placement.
    const std::uint64_t mixed = hash * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(mixed >> 32) % shards_.size();
  }
  [[nodiscard]] std::size_t shard_of_id(std::uint32_t id) const noexcept {
    return id / shard_capacity_;
  }

  // --- BasisDictionary interface, global-identifier flavoured ------------
  // Each operation hashes the basis exactly once: the hash routes to the
  // shard and then probes (or keys) the shard's map.

  /// Encoder-side lookup; returns the global identifier on a hit.
  [[nodiscard]] std::optional<std::uint32_t> lookup(const bits::BitVector& basis);
  [[nodiscard]] std::optional<std::uint32_t> lookup(const bits::BitVector& basis,
                                                    std::uint64_t hash);

  /// Peek without touching recency or statistics.
  [[nodiscard]] std::optional<std::uint32_t> peek(
      const bits::BitVector& basis) const;
  [[nodiscard]] std::optional<std::uint32_t> peek(const bits::BitVector& basis,
                                                  std::uint64_t hash) const;

  /// Decoder-side lookup by global identifier.
  [[nodiscard]] std::optional<bits::BitVector> lookup_basis(std::uint32_t id);

  /// Copy-free variant (pointer invalidated by the next mutation).
  [[nodiscard]] const bits::BitVector* lookup_basis_ref(std::uint32_t id);

  /// Inserts a new basis into its route shard; the returned identifier is
  /// global. The basis must not already be present.
  InsertResult insert(const bits::BitVector& basis);
  InsertResult insert(const bits::BitVector& basis, std::uint64_t hash);

  /// Installs an explicit (global id, basis) mapping. The identifier must
  /// live in the shard the basis routes to, so encoder-side lookups can
  /// find it again (ZL_EXPECTS-enforced).
  void install(std::uint32_t id, const bits::BitVector& basis);

  /// Removes a mapping by global identifier.
  void erase(std::uint32_t id);

  /// Refreshes the recency of a global identifier.
  void touch(std::uint32_t id);

 private:
  [[nodiscard]] std::uint32_t to_global(std::size_t shard,
                                        std::uint32_t local) const noexcept {
    return static_cast<std::uint32_t>(shard * shard_capacity_) + local;
  }
  [[nodiscard]] std::uint32_t to_local(std::uint32_t id) const noexcept {
    return id % static_cast<std::uint32_t>(shard_capacity_);
  }

  std::size_t shard_capacity_;
  std::vector<BasisDictionary> shards_;
};

}  // namespace zipline::gd
