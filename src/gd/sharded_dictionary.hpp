// Sharded basis dictionary: N independent BasisDictionary shards behind
// one identifier space.
//
// The paper's switch sustains line rate by partitioning per-packet state
// across pipeline stages; the software analogue is partitioning the basis
// dictionary so concurrent flow groups stop contending on one LRU list.
// A content-hash router sends each basis to one shard, and the global
// 2^id_bits identifier space is split into per-shard stripes
// (global = shard * shard_capacity + local), so the shard owning an
// identifier is recoverable from the identifier alone — the decode side
// needs no side channel.
//
// Determinism: the router depends only on the basis bits, and every shard
// is a deterministic BasisDictionary (seeded per shard), so mirrored
// encoder/decoder instances replay identical allocation decisions per
// shard, exactly as the unsharded codec does. With shard_count == 1 the
// behaviour — identifiers included — is bit-identical to a plain
// BasisDictionary.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "gd/dictionary.hpp"

namespace zipline::gd {

/// One queued dictionary operation of a batched resolve plan. The engine's
/// split-phase resolve gathers a whole unit's operations into a span of
/// these and executes them in one apply_batch call, so a shared dictionary
/// can take each stripe lock once per unit instead of once per operation.
///
/// Semantics mirror the corresponding single-op calls exactly:
///   * lookup           — encoder classify without learning; `result` is
///                        the identifier on a hit, kNoId on a miss.
///   * lookup_or_insert — encoder classify with learning: on a miss the
///                        basis is inserted (result stays kNoId, matching
///                        the serial engine, which emits type 2 and
///                        discards the fresh identifier).
///   * insert_if_absent — decoder learning a type-2 basis (peek counts no
///                        statistics; insert only when absent).
///   * fetch_basis      — decoder fetching a type-3 identifier: the basis
///                        is copied into `*out` (recency refreshed, like
///                        lookup_basis_ref); `result` is 1 when mapped,
///                        kNoId when not.
struct BatchOp {
  enum class Kind : std::uint8_t {
    lookup,
    lookup_or_insert,
    insert_if_absent,
    fetch_basis,
  };
  static constexpr std::uint32_t kNoId = 0xFFFFFFFFu;

  Kind kind = Kind::lookup;
  std::uint32_t id = 0;        ///< fetch_basis: the global identifier
  std::uint64_t hash = 0;      ///< basis ops: precomputed content hash
  const bits::BitVector* basis = nullptr;  ///< basis ops
  bits::BitVector* out = nullptr;          ///< fetch_basis: copy-out target
  std::uint32_t result = kNoId;
};

/// Reusable grouping scratch for the concurrent apply_batch (counting-sort
/// arrays; grow-only, so steady-state batches allocate nothing).
struct BatchScratch {
  std::vector<std::uint32_t> counts;   // ops per shard
  std::vector<std::uint32_t> offsets;  // prefix sums into `order`
  std::vector<std::uint32_t> order;    // op indices grouped by shard
};

class ShardedDictionary {
 public:
  /// `capacity` is the total identifier space (2^id_bits); it must divide
  /// evenly into `shard_count` stripes. Shard i is seeded with
  /// `random_seed + i` so the ablation `random` policy stays deterministic
  /// and mirrors across encoder/decoder pairs.
  ShardedDictionary(std::size_t capacity, EvictionPolicy policy,
                    std::size_t shard_count = 1,
                    std::uint64_t random_seed = 0x1dba5e5);

  [[nodiscard]] std::size_t capacity() const noexcept {
    return shard_capacity_ * shards_.size();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return shard_capacity_;
  }
  [[nodiscard]] EvictionPolicy policy() const noexcept {
    return shards_.front().policy();
  }
  [[nodiscard]] std::size_t size() const noexcept;

  /// Aggregated statistics across all shards.
  [[nodiscard]] DictionaryStats stats() const noexcept;

  /// Direct shard access (diagnostics, per-shard load inspection).
  [[nodiscard]] const BasisDictionary& shard(std::size_t i) const {
    return shards_[i];
  }

  /// The router: which shard owns this basis / this identifier. The
  /// hash-flavoured form takes the basis's precomputed content hash so one
  /// `BitVector::hash()` serves router and in-shard map alike.
  [[nodiscard]] std::size_t shard_of(const bits::BitVector& basis) const noexcept;
  [[nodiscard]] std::size_t shard_of_hash(std::uint64_t hash) const noexcept {
    if (shards_.size() == 1) return 0;
    // Fibonacci remix of the content hash: the in-shard map is fed the
    // same hash, so reusing its low bits unmixed would correlate the
    // router with bucket placement.
    const std::uint64_t mixed = hash * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(mixed >> 32) % shards_.size();
  }
  [[nodiscard]] std::size_t shard_of_id(std::uint32_t id) const noexcept {
    return id / shard_capacity_;
  }

  // --- BasisDictionary interface, global-identifier flavoured ------------
  // Each operation hashes the basis exactly once: the hash routes to the
  // shard and then probes (or keys) the shard's map.

  /// Encoder-side lookup; returns the global identifier on a hit.
  [[nodiscard]] std::optional<std::uint32_t> lookup(const bits::BitVector& basis);
  [[nodiscard]] std::optional<std::uint32_t> lookup(const bits::BitVector& basis,
                                                    std::uint64_t hash);

  /// Peek without touching recency or statistics.
  [[nodiscard]] std::optional<std::uint32_t> peek(
      const bits::BitVector& basis) const;
  [[nodiscard]] std::optional<std::uint32_t> peek(const bits::BitVector& basis,
                                                  std::uint64_t hash) const;

  /// Decoder-side lookup by global identifier.
  [[nodiscard]] std::optional<bits::BitVector> lookup_basis(std::uint32_t id);

  /// Copy-free variant (pointer invalidated by the next mutation).
  [[nodiscard]] const bits::BitVector* lookup_basis_ref(std::uint32_t id);

  /// Const entry inspection without touching recency or statistics (the
  /// mirror-resync path of the concurrent wrapper).
  [[nodiscard]] const bits::BitVector* peek_basis(std::uint32_t id) const;

  /// Executes a resolve plan in span order. This is the deterministic
  /// reference semantics of apply_batch: each op behaves exactly like its
  /// single-op counterpart, executed in sequence. The concurrent wrapper
  /// executes the same plan grouped by shard — observationally identical,
  /// because every shard's state (entries, recency, free identifiers,
  /// statistics, RNG) is independent and in-shard order is preserved.
  void apply_batch(std::span<BatchOp> ops);

  /// Inserts a new basis into its route shard; the returned identifier is
  /// global. The basis must not already be present.
  InsertResult insert(const bits::BitVector& basis);
  InsertResult insert(const bits::BitVector& basis, std::uint64_t hash);

  /// Installs an explicit (global id, basis) mapping. The identifier must
  /// live in the shard the basis routes to, so encoder-side lookups can
  /// find it again (ZL_EXPECTS-enforced).
  void install(std::uint32_t id, const bits::BitVector& basis);

  /// Removes a mapping by global identifier.
  void erase(std::uint32_t id);

  /// Refreshes the recency of a global identifier.
  void touch(std::uint32_t id);

  /// CLOCK recency mark by global identifier: one relaxed atomic bit store
  /// into the owning shard, safe against a concurrent sweep (see
  /// BasisDictionary::mark_referenced). No-op under other policies.
  void mark_referenced(std::uint32_t id) noexcept {
    shards_[shard_of_id(id)].mark_referenced(to_local(id));
  }

  /// Probe-stage software prefetch (see BasisDictionary::prefetch). Only
  /// the single-shard layout forwards: routing a multi-shard probe would
  /// need the content hash that the lazy lookup path computes exactly once
  /// later, and hashing here would defeat that economy.
  void prefetch(const bits::BitVector& basis) noexcept {
    if (shards_.size() == 1) shards_.front().prefetch(basis);
  }

 private:
  [[nodiscard]] std::uint32_t to_global(std::size_t shard,
                                        std::uint32_t local) const noexcept {
    return static_cast<std::uint32_t>(shard * shard_capacity_) + local;
  }
  [[nodiscard]] std::uint32_t to_local(std::uint32_t id) const noexcept {
    return id % static_cast<std::uint32_t>(shard_capacity_);
  }

  std::size_t shard_capacity_;
  std::vector<BasisDictionary> shards_;
};

}  // namespace zipline::gd
