#include "gd/dictionary.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace zipline::gd {

BasisDictionary::BasisDictionary(std::size_t capacity, EvictionPolicy policy,
                                 std::uint64_t random_seed)
    : capacity_(capacity), policy_(policy), rng_(random_seed) {
  ZL_EXPECTS(capacity >= 1 && capacity <= (std::size_t{1} << 24));
  entries_.resize(capacity);
  if (policy == EvictionPolicy::clock) {
    // Value-initialized -> every referenced bit starts clear.
    referenced_ = std::make_unique<std::atomic<std::uint8_t>[]>(capacity);
  }
  fingerprint_bits_ = fingerprint_bits_for(capacity);
  fingerprints_.resize(std::size_t{1} << fingerprint_bits_);
  free_ids_.reserve(capacity);
  // Allocate identifiers in increasing order: id 0 first.
  for (std::size_t id = capacity; id-- > 0;) {
    free_ids_.push_back(static_cast<std::uint32_t>(id));
  }
  by_basis_.reserve(capacity);
}

std::optional<std::uint32_t> BasisDictionary::lookup(
    const bits::BitVector& basis) {
  if (fingerprints_[fingerprint(basis)] == 0) {
    // Definite miss: no resident basis shares the fingerprint, so the full
    // 247-bit hash + probe is skipped entirely.
    ++stats_.misses;
    ++stats_.prefilter_skips;
    return std::nullopt;
  }
  return probe(basis, basis.hash());
}

std::optional<std::uint32_t> BasisDictionary::lookup(
    const bits::BitVector& basis, std::uint64_t hash) {
  if (fingerprints_[fingerprint(basis)] == 0) {
    ++stats_.misses;
    ++stats_.prefilter_skips;
    return std::nullopt;
  }
  return probe(basis, hash);
}

std::optional<std::uint32_t> BasisDictionary::probe(
    const bits::BitVector& basis, std::uint64_t hash) {
  const auto it = by_basis_.find(detail::BasisRef{hash, &basis});
  if (it == by_basis_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  maybe_touch(it->second);
  return it->second;
}

std::optional<std::uint32_t> BasisDictionary::peek(
    const bits::BitVector& basis) const {
  return peek(basis, basis.hash());
}

std::optional<std::uint32_t> BasisDictionary::peek(
    const bits::BitVector& basis, std::uint64_t hash) const {
  const auto it = by_basis_.find(detail::BasisRef{hash, &basis});
  if (it == by_basis_.end()) return std::nullopt;
  return it->second;
}

std::optional<bits::BitVector> BasisDictionary::lookup_basis(std::uint32_t id) {
  const bits::BitVector* basis = lookup_basis_ref(id);
  if (basis == nullptr) return std::nullopt;
  return *basis;
}

const bits::BitVector* BasisDictionary::lookup_basis_ref(std::uint32_t id) {
  ZL_EXPECTS(id < capacity_);
  if (!entries_[id].used) return nullptr;
  maybe_touch(id);
  return &entries_[id].basis;
}

const bits::BitVector* BasisDictionary::peek_basis(std::uint32_t id) const {
  ZL_EXPECTS(id < capacity_);
  if (!entries_[id].used) return nullptr;
  return &entries_[id].basis;
}

InsertResult BasisDictionary::insert(const bits::BitVector& basis) {
  return insert(basis, basis.hash());
}

InsertResult BasisDictionary::insert(const bits::BitVector& basis,
                                     std::uint64_t hash) {
  ZL_EXPECTS(by_basis_.find(detail::BasisRef{hash, &basis}) ==
             by_basis_.end());
  InsertResult result;
  std::uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = pick_victim();
    ++stats_.evictions;
    result.evicted = entries_[id].basis;
    fingerprint_remove(entries_[id].basis);
    erase_key(id);
    list_remove(id);
    entries_[id].used = false;
  }
  entries_[id].basis = basis;
  entries_[id].hash = hash;
  entries_[id].used = true;
  fingerprint_add(basis);
  by_basis_.emplace(detail::HashedBasis{hash, basis}, id);
  list_push_front(id);
  // A fresh entry starts referenced so the sweep gives it one full lap
  // before it is evictable — CLOCK's analogue of LRU's push-to-front.
  if (policy_ == EvictionPolicy::clock) {
    referenced_[id].store(1, std::memory_order_relaxed);
  }
  ++stats_.insertions;
  result.id = id;
  return result;
}

void BasisDictionary::install(std::uint32_t id, const bits::BitVector& basis) {
  install(id, basis, basis.hash());
}

void BasisDictionary::install(std::uint32_t id, const bits::BitVector& basis,
                              std::uint64_t hash) {
  ZL_EXPECTS(id < capacity_);
  if (entries_[id].used) {
    // Displacing a live mapping is an eviction: the previous occupant's
    // basis loses its identifier. (Re-installing the identical mapping is
    // a refresh, not an eviction.)
    if (entries_[id].basis != basis) ++stats_.evictions;
    fingerprint_remove(entries_[id].basis);
    erase_key(id);
    list_remove(id);
  } else {
    // The id may still be in the free pool; drop it from there.
    const auto it = std::find(free_ids_.begin(), free_ids_.end(), id);
    if (it != free_ids_.end()) free_ids_.erase(it);
  }
  // A basis must map to at most one id.
  if (const auto existing = by_basis_.find(detail::BasisRef{hash, &basis});
      existing != by_basis_.end()) {
    erase(existing->second);
  }
  entries_[id].basis = basis;
  entries_[id].hash = hash;
  entries_[id].used = true;
  fingerprint_add(basis);
  by_basis_[detail::HashedBasis{hash, basis}] = id;
  list_push_front(id);
  if (policy_ == EvictionPolicy::clock) {
    referenced_[id].store(1, std::memory_order_relaxed);
  }
  ++stats_.insertions;
}

void BasisDictionary::erase(std::uint32_t id) {
  ZL_EXPECTS(id < capacity_);
  if (!entries_[id].used) return;
  fingerprint_remove(entries_[id].basis);
  erase_key(id);
  list_remove(id);
  entries_[id].used = false;
  if (policy_ == EvictionPolicy::clock) {
    referenced_[id].store(0, std::memory_order_relaxed);
  }
  free_ids_.push_back(id);
}

void BasisDictionary::erase_key(std::uint32_t id) {
  const Entry& e = entries_[id];
  const auto it = by_basis_.find(detail::BasisRef{e.hash, &e.basis});
  ZL_ASSERT(it != by_basis_.end());
  by_basis_.erase(it);
}

void BasisDictionary::maybe_touch(std::uint32_t id) {
  if (policy_ == EvictionPolicy::lru || policy_ == EvictionPolicy::clock) {
    touch(id);
  }
}

void BasisDictionary::touch(std::uint32_t id) {
  ZL_EXPECTS(id < capacity_ && entries_[id].used);
  if (policy_ == EvictionPolicy::clock) {
    referenced_[id].store(1, std::memory_order_relaxed);
    ++stats_.clock_touches;
    return;
  }
  if (head_ == id) return;
  list_remove(id);
  list_push_front(id);
}

void BasisDictionary::list_remove(std::uint32_t id) {
  Entry& e = entries_[id];
  if (e.prev != kNil) {
    entries_[e.prev].next = e.next;
  } else if (head_ == id) {
    head_ = e.next;
  }
  if (e.next != kNil) {
    entries_[e.next].prev = e.prev;
  } else if (tail_ == id) {
    tail_ = e.prev;
  }
  e.prev = e.next = kNil;
}

void BasisDictionary::list_push_front(std::uint32_t id) {
  Entry& e = entries_[id];
  e.prev = kNil;
  e.next = head_;
  if (head_ != kNil) entries_[head_].prev = id;
  head_ = id;
  if (tail_ == kNil) tail_ = id;
}

std::uint32_t BasisDictionary::pick_victim() {
  ZL_ASSERT(by_basis_.size() == capacity_);
  switch (policy_) {
    case EvictionPolicy::lru:
    case EvictionPolicy::fifo:
      // Hits never refresh recency under FIFO (maybe_touch is a no-op), so
      // the tail is the oldest insertion; under LRU it is the coldest entry.
      ZL_ASSERT(tail_ != kNil);
      return tail_;
    case EvictionPolicy::random:
      return static_cast<std::uint32_t>(rng_.next_below(capacity_));
    case EvictionPolicy::clock: {
      // Second-chance sweep: entries under the hand lose their referenced
      // bit and survive; the first unreferenced entry is the victim. With
      // every bit set this clears a full lap and terminates within
      // 2 * capacity steps. The hand resumes AFTER the victim, so
      // survivors keep their cleared state for the next sweep.
      for (;;) {
        const std::uint32_t id = clock_hand_;
        clock_hand_ =
            static_cast<std::uint32_t>((clock_hand_ + 1) % capacity_);
        if (referenced_[id].load(std::memory_order_relaxed) != 0) {
          referenced_[id].store(0, std::memory_order_relaxed);
          continue;
        }
        return id;
      }
    }
  }
  ZL_ASSERT(false && "unreachable policy");
  return 0;
}

}  // namespace zipline::gd
