// Streaming GD encoder/decoder pair — the algorithmic heart of ZipLine,
// usable standalone (host-side compression, as in the GD line of work the
// paper builds on) and as the reference model the switch pipeline is
// validated against.
//
// Learning protocol: the encoder emits a type-2 (uncompressed) packet the
// first time a basis is seen and immediately learns a basis->ID mapping;
// the decoder mirrors the identical allocation decision when the type-2
// packet arrives, so both dictionaries stay synchronized without any
// side channel. (On the switch, learning instead goes through the control
// plane with measurable delay — that path lives in src/zipline.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gd/dictionary.hpp"
#include "gd/packet.hpp"
#include "gd/transform.hpp"

namespace zipline::gd {

struct CodecStats {
  std::uint64_t chunks = 0;
  std::uint64_t raw_packets = 0;
  std::uint64_t uncompressed_packets = 0;  // type 2
  std::uint64_t compressed_packets = 0;    // type 3
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  [[nodiscard]] double compression_ratio() const {
    return bytes_in == 0 ? 1.0
                         : static_cast<double>(bytes_out) /
                               static_cast<double>(bytes_in);
  }
};

class GdEncoder {
 public:
  explicit GdEncoder(const GdParams& params,
                     EvictionPolicy policy = EvictionPolicy::lru,
                     bool learn_on_miss = true);

  /// Encodes one chunk of exactly params().chunk_bits bits.
  [[nodiscard]] GdPacket encode_chunk(const bits::BitVector& chunk);

  /// Encodes a byte payload: full chunks become GD packets, a trailing
  /// partial chunk becomes a raw packet.
  [[nodiscard]] std::vector<GdPacket> encode_payload(
      std::span<const std::uint8_t> payload);

  /// Pre-loads the dictionary with a basis (the paper's "static table").
  void preload(const bits::BitVector& basis);

  [[nodiscard]] const GdParams& params() const noexcept {
    return transform_.params();
  }
  [[nodiscard]] const GdTransform& transform() const noexcept {
    return transform_;
  }
  [[nodiscard]] const BasisDictionary& dictionary() const noexcept {
    return dictionary_;
  }
  [[nodiscard]] const CodecStats& stats() const noexcept { return stats_; }

 private:
  GdTransform transform_;
  BasisDictionary dictionary_;
  bool learn_on_miss_;
  CodecStats stats_;
};

class GdDecoder {
 public:
  explicit GdDecoder(const GdParams& params,
                     EvictionPolicy policy = EvictionPolicy::lru,
                     bool learn_on_uncompressed = true);

  /// Decodes one packet back to the original chunk bits (raw packets are
  /// returned as their byte payload re-expanded to bits).
  [[nodiscard]] bits::BitVector decode_chunk(const GdPacket& packet);

  /// Decodes a packet stream back to the original byte payload.
  [[nodiscard]] std::vector<std::uint8_t> decode_payload(
      std::span<const GdPacket> packets);

  /// Pre-loads the dictionary (mirror of the encoder's static table; the
  /// identifiers allocated match the encoder's exactly).
  void preload(const bits::BitVector& basis);

  [[nodiscard]] const GdParams& params() const noexcept {
    return transform_.params();
  }
  [[nodiscard]] const BasisDictionary& dictionary() const noexcept {
    return dictionary_;
  }
  [[nodiscard]] const CodecStats& stats() const noexcept { return stats_; }

 private:
  GdTransform transform_;
  BasisDictionary dictionary_;
  bool learn_on_uncompressed_;
  CodecStats stats_;
};

/// Splits a byte payload into chunk-sized bit vectors plus a raw tail.
class Chunker {
 public:
  explicit Chunker(const GdParams& params);

  struct Result {
    std::vector<bits::BitVector> chunks;
    std::vector<std::uint8_t> tail;  ///< bytes that did not fill a chunk
  };

  [[nodiscard]] Result split(std::span<const std::uint8_t> payload) const;

  /// Rebuilds the byte payload from chunks + tail.
  [[nodiscard]] std::vector<std::uint8_t> join(
      std::span<const bits::BitVector> chunks,
      std::span<const std::uint8_t> tail) const;

 private:
  std::size_t chunk_bytes_;
  std::size_t chunk_bits_;
};

}  // namespace zipline::gd
