// Streaming GD encoder/decoder pair — the per-chunk adapter API over the
// batch engine (engine/engine.hpp), usable standalone (host-side
// compression, as in the GD line of work the paper builds on) and as the
// reference model the switch pipeline is validated against.
//
// Learning protocol: the encoder emits a type-2 (uncompressed) packet the
// first time a basis is seen and immediately learns a basis->ID mapping;
// the decoder mirrors the identical allocation decision when the type-2
// packet arrives, so both dictionaries stay synchronized without any
// side channel. (On the switch, learning instead goes through the control
// plane with measurable delay — that path lives in src/zipline.)
//
// Both classes are thin: every dictionary/stats transition happens inside
// the owned engine::Engine, so per-chunk and batch callers of the same
// engine state are guaranteed byte-identical wire payloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/engine.hpp"
#include "gd/concurrent_dictionary.hpp"
#include "gd/sharded_dictionary.hpp"
#include "gd/packet.hpp"
#include "gd/stats.hpp"
#include "gd/transform.hpp"

namespace zipline::gd {

class GdEncoder {
 public:
  explicit GdEncoder(const GdParams& params,
                     EvictionPolicy policy = EvictionPolicy::lru,
                     bool learn_on_miss = true,
                     std::size_t dictionary_shards = 1);

  /// Shared-dictionary encoder: consults/teaches `dictionary`, the
  /// one-table-per-direction service shared with sibling encoders (must
  /// outlive this adapter). See gd/concurrent_dictionary.hpp.
  GdEncoder(const GdParams& params, ConcurrentShardedDictionary& dictionary,
            bool learn_on_miss = true);

  /// Encodes one chunk of exactly params().chunk_bits bits.
  [[nodiscard]] GdPacket encode_chunk(const bits::BitVector& chunk);

  /// Encodes a byte payload: full chunks become GD packets, a trailing
  /// partial chunk becomes a raw packet.
  [[nodiscard]] std::vector<GdPacket> encode_payload(
      std::span<const std::uint8_t> payload);

  /// Pre-loads the dictionary with a basis (the paper's "static table").
  void preload(const bits::BitVector& basis);

  /// The batch core this adapter drives; hand it to batch-oriented callers
  /// that want to share this encoder's dictionary and statistics.
  [[nodiscard]] engine::Engine& engine() noexcept { return engine_; }

  [[nodiscard]] const GdParams& params() const noexcept {
    return engine_.params();
  }
  [[nodiscard]] const GdTransform& transform() const noexcept {
    return engine_.transform();
  }
  [[nodiscard]] const ShardedDictionary& dictionary() const noexcept {
    return engine_.dictionary();
  }
  [[nodiscard]] const CodecStats& stats() const noexcept {
    return engine_.stats();
  }

 private:
  engine::Engine engine_;
};

class GdDecoder {
 public:
  explicit GdDecoder(const GdParams& params,
                     EvictionPolicy policy = EvictionPolicy::lru,
                     bool learn_on_uncompressed = true,
                     std::size_t dictionary_shards = 1);

  /// Shared-dictionary decoder (mirror of the GdEncoder overload).
  GdDecoder(const GdParams& params, ConcurrentShardedDictionary& dictionary,
            bool learn_on_uncompressed = true);

  /// Decodes one packet back to the original chunk bits (raw packets are
  /// returned as their byte payload re-expanded to bits).
  [[nodiscard]] bits::BitVector decode_chunk(const GdPacket& packet);

  /// Decodes a packet stream back to the original byte payload.
  [[nodiscard]] std::vector<std::uint8_t> decode_payload(
      std::span<const GdPacket> packets);

  /// Pre-loads the dictionary (mirror of the encoder's static table; the
  /// identifiers allocated match the encoder's exactly).
  void preload(const bits::BitVector& basis);

  /// The batch core this adapter drives.
  [[nodiscard]] engine::Engine& engine() noexcept { return engine_; }

  [[nodiscard]] const GdParams& params() const noexcept {
    return engine_.params();
  }
  [[nodiscard]] const ShardedDictionary& dictionary() const noexcept {
    return engine_.dictionary();
  }
  [[nodiscard]] const CodecStats& stats() const noexcept {
    return engine_.stats();
  }

 private:
  engine::Engine engine_;
};

/// Splits a byte payload into chunk-sized bit vectors plus a raw tail.
class Chunker {
 public:
  explicit Chunker(const GdParams& params);

  struct Result {
    std::vector<bits::BitVector> chunks;
    std::vector<std::uint8_t> tail;  ///< bytes that did not fill a chunk
  };

  [[nodiscard]] Result split(std::span<const std::uint8_t> payload) const;

  /// Rebuilds the byte payload from chunks + tail.
  [[nodiscard]] std::vector<std::uint8_t> join(
      std::span<const bits::BitVector> chunks,
      std::span<const std::uint8_t> tail) const;

 private:
  std::size_t chunk_bytes_;
  std::size_t chunk_bits_;
};

}  // namespace zipline::gd
