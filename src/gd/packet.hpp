// ZipLine packet payloads.
//
// The paper (§5) defines three packet types:
//   type 1 — regular, unprocessed payload;
//   type 2 — processed but uncompressed: syndrome + excess + basis;
//   type 3 — processed and compressed: syndrome + excess + basis ID.
// The type discriminator rides in the Ethernet header (EtherType); the
// payload layout below is written MSB-first field by field, as a P4
// deparser emits header fields, with byte-alignment padding at the end
// (plus the modeled Tofino container padding on type 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "gd/params.hpp"

namespace zipline::gd {

enum class PacketType : std::uint8_t {
  raw = 1,           ///< unprocessed chunk
  uncompressed = 2,  ///< syndrome + excess + basis
  compressed = 3,    ///< syndrome + excess + basis ID
};

/// EtherType values used on the wire for each packet type (locally
/// administered experimental values; type 1 keeps 0x5A01 so the decoder can
/// recognize pass-through traffic in the test harness).
std::uint16_t ether_type_for(PacketType type) noexcept;
PacketType packet_type_for_ether(std::uint16_t ether_type);
bool is_zipline_ether_type(std::uint16_t ether_type) noexcept;

struct GdPacket {
  PacketType type = PacketType::raw;

  /// Type 1 payload (also used for sub-chunk tails).
  std::vector<std::uint8_t> raw;

  /// Types 2 and 3.
  std::uint32_t syndrome = 0;
  bits::BitVector excess;

  /// Type 2 only.
  bits::BitVector basis;

  /// Type 3 only.
  std::uint32_t basis_id = 0;

  /// Payload bytes this packet occupies on the wire under `params`.
  [[nodiscard]] std::size_t wire_payload_bytes(const GdParams& params) const;

  /// Serializes the payload under `params`.
  [[nodiscard]] std::vector<std::uint8_t> serialize(const GdParams& params) const;

  /// Parses a payload of the given type. Throws ContractViolation when the
  /// buffer is too short for the declared type.
  [[nodiscard]] static GdPacket parse(const GdParams& params, PacketType type,
                                      std::span<const std::uint8_t> payload);

  [[nodiscard]] static GdPacket make_raw(std::vector<std::uint8_t> payload);
  [[nodiscard]] static GdPacket make_uncompressed(std::uint32_t syndrome,
                                                  bits::BitVector excess,
                                                  bits::BitVector basis);
  [[nodiscard]] static GdPacket make_compressed(std::uint32_t syndrome,
                                                bits::BitVector excess,
                                                std::uint32_t basis_id);
};

}  // namespace zipline::gd
