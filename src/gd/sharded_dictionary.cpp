#include "gd/sharded_dictionary.hpp"

#include "common/contracts.hpp"

namespace zipline::gd {

ShardedDictionary::ShardedDictionary(std::size_t capacity,
                                     EvictionPolicy policy,
                                     std::size_t shard_count,
                                     std::uint64_t random_seed) {
  ZL_EXPECTS(shard_count >= 1);
  ZL_EXPECTS(capacity >= shard_count && capacity % shard_count == 0);
  shard_capacity_ = capacity / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.emplace_back(shard_capacity_, policy, random_seed + i);
  }
}

std::size_t ShardedDictionary::size() const noexcept {
  std::size_t total = 0;
  for (const BasisDictionary& shard : shards_) total += shard.size();
  return total;
}

DictionaryStats ShardedDictionary::stats() const noexcept {
  DictionaryStats total;
  for (const BasisDictionary& shard : shards_) total += shard.stats();
  return total;
}

std::size_t ShardedDictionary::shard_of(
    const bits::BitVector& basis) const noexcept {
  return shard_of_hash(basis.hash());
}

std::optional<std::uint32_t> ShardedDictionary::lookup(
    const bits::BitVector& basis) {
  if (shards_.size() == 1) {
    // Single shard: no routing hash needed, so let the shard's lazy path
    // run — its fingerprint prefilter resolves most misses without ever
    // hashing the full basis.
    if (const auto local = shards_.front().lookup(basis)) {
      return to_global(0, *local);
    }
    return std::nullopt;
  }
  return lookup(basis, basis.hash());
}

std::optional<std::uint32_t> ShardedDictionary::lookup(
    const bits::BitVector& basis, std::uint64_t hash) {
  const std::size_t shard = shard_of_hash(hash);
  if (const auto local = shards_[shard].lookup(basis, hash)) {
    return to_global(shard, *local);
  }
  return std::nullopt;
}

std::optional<std::uint32_t> ShardedDictionary::peek(
    const bits::BitVector& basis) const {
  return peek(basis, basis.hash());
}

std::optional<std::uint32_t> ShardedDictionary::peek(
    const bits::BitVector& basis, std::uint64_t hash) const {
  const std::size_t shard = shard_of_hash(hash);
  if (const auto local = shards_[shard].peek(basis, hash)) {
    return to_global(shard, *local);
  }
  return std::nullopt;
}

std::optional<bits::BitVector> ShardedDictionary::lookup_basis(
    std::uint32_t id) {
  ZL_EXPECTS(id < capacity());
  return shards_[shard_of_id(id)].lookup_basis(to_local(id));
}

const bits::BitVector* ShardedDictionary::lookup_basis_ref(std::uint32_t id) {
  ZL_EXPECTS(id < capacity());
  return shards_[shard_of_id(id)].lookup_basis_ref(to_local(id));
}

const bits::BitVector* ShardedDictionary::peek_basis(std::uint32_t id) const {
  ZL_EXPECTS(id < capacity());
  return shards_[shard_of_id(id)].peek_basis(to_local(id));
}

void ShardedDictionary::apply_batch(std::span<BatchOp> ops) {
  for (BatchOp& op : ops) {
    switch (op.kind) {
      case BatchOp::Kind::lookup:
        if (const auto hit = lookup(*op.basis, op.hash)) {
          op.result = *hit;
        } else {
          op.result = BatchOp::kNoId;
        }
        break;
      case BatchOp::Kind::lookup_or_insert:
        if (const auto hit = lookup(*op.basis, op.hash)) {
          op.result = *hit;
        } else {
          (void)insert(*op.basis, op.hash);
          op.result = BatchOp::kNoId;
        }
        break;
      case BatchOp::Kind::insert_if_absent:
        if (!peek(*op.basis, op.hash)) (void)insert(*op.basis, op.hash);
        op.result = BatchOp::kNoId;
        break;
      case BatchOp::Kind::fetch_basis: {
        const bits::BitVector* basis = lookup_basis_ref(op.id);
        if (basis != nullptr) {
          *op.out = *basis;
          op.result = 1;
        } else {
          op.result = BatchOp::kNoId;
        }
        break;
      }
    }
  }
}

InsertResult ShardedDictionary::insert(const bits::BitVector& basis) {
  return insert(basis, basis.hash());
}

InsertResult ShardedDictionary::insert(const bits::BitVector& basis,
                                       std::uint64_t hash) {
  const std::size_t shard = shard_of_hash(hash);
  InsertResult result = shards_[shard].insert(basis, hash);
  result.id = to_global(shard, result.id);
  return result;
}

void ShardedDictionary::install(std::uint32_t id,
                                const bits::BitVector& basis) {
  ZL_EXPECTS(id < capacity());
  const std::uint64_t hash = basis.hash();
  const std::size_t shard = shard_of_id(id);
  ZL_EXPECTS(shard == shard_of_hash(hash) &&
             "identifier must belong to the basis's route shard");
  shards_[shard].install(to_local(id), basis, hash);
}

void ShardedDictionary::erase(std::uint32_t id) {
  ZL_EXPECTS(id < capacity());
  shards_[shard_of_id(id)].erase(to_local(id));
}

void ShardedDictionary::touch(std::uint32_t id) {
  ZL_EXPECTS(id < capacity());
  shards_[shard_of_id(id)].touch(to_local(id));
}

}  // namespace zipline::gd
