// GD stream container: file-level compression with the ZipLine codec.
//
// The GD line of work the paper builds on also targets file compression
// for IoT time-series data (refs [35, 37]: lightweight, online, excellent
// random access). This container frames a GdEncoder's packet stream so a
// byte buffer (or file) can be compressed and reconstructed stand-alone:
//
//   magic "GDZ1" | version | m | id_bits | chunk_bits | policy | reserved
//   record*: tag (1 B: packet type, 0x7F = raw tail) | payload
//   tag 0x00 terminates the stream; a CRC-32 trailer covers the records.
//
// Types 2/3 have fixed payload sizes derived from the header parameters;
// raw tails carry an explicit 32-bit length. Both sides run the mirrored-
// learning codec, so no dictionary is stored — it rebuilds during decode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ratio.hpp"
#include "gd/codec.hpp"

namespace zipline::gd {

struct StreamStats {
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t chunks = 0;
  std::uint64_t compressed_packets = 0;
  std::uint64_t uncompressed_packets = 0;

  /// output_bytes / input_bytes — see common/ratio.hpp for the convention.
  [[nodiscard]] double ratio() const {
    return zipline::compression_ratio(input_bytes, output_bytes);
  }
};

/// File-oriented parameter defaults: no Tofino padding (there is no
/// hardware container to align), everything else as the paper.
[[nodiscard]] GdParams stream_default_params();

/// Compresses a buffer into a GD stream container.
[[nodiscard]] std::vector<std::uint8_t> gd_stream_compress(
    std::span<const std::uint8_t> input,
    const GdParams& params = stream_default_params(),
    StreamStats* stats = nullptr);

/// Decompresses a GD stream container. Throws std::runtime_error on
/// malformed input (bad magic, bad sizes, CRC mismatch).
[[nodiscard]] std::vector<std::uint8_t> gd_stream_decompress(
    std::span<const std::uint8_t> container);

// --- multi-stream batch API over the engine's worker pool -----------------
// Each input is an independent stream (its own flow, its own dictionary),
// so the units parallelize across engine::ParallelEncoder workers while
// every produced container stays byte-identical to gd_stream_compress /
// gd_stream_decompress run serially on the same input.

/// Compresses many independent buffers concurrently on `workers` threads.
/// Returns one container per input, index-aligned; `stats`, when non-null,
/// is filled with one per-stream StreamStats, index-aligned.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> gd_stream_compress_parallel(
    std::span<const std::span<const std::uint8_t>> inputs,
    const GdParams& params = stream_default_params(), std::size_t workers = 1,
    std::vector<StreamStats>* stats = nullptr);

/// Decompresses many containers concurrently on `workers` threads. All
/// containers must carry identical header parameters (one worker pool =
/// one GdParams); throws std::runtime_error otherwise, and on any
/// malformed container (bad magic, bad sizes, CRC mismatch).
[[nodiscard]] std::vector<std::vector<std::uint8_t>>
gd_stream_decompress_parallel(
    std::span<const std::span<const std::uint8_t>> containers,
    std::size_t workers = 1);

}  // namespace zipline::gd
