// GD stream container: file-level compression with the ZipLine codec.
//
// The GD line of work the paper builds on also targets file compression
// for IoT time-series data (refs [35, 37]: lightweight, online, excellent
// random access). This container frames a GdEncoder's packet stream so a
// byte buffer (or file) can be compressed and reconstructed stand-alone:
//
//   magic "GDZ1" | version | m | id_bits | chunk_bits | policy | reserved
//   record*: tag (1 B: packet type, 0x7F = raw tail) | payload
//   tag 0x00 terminates the stream; a CRC-32 trailer covers the records.
//
// Types 2/3 have fixed payload sizes derived from the header parameters;
// raw tails carry an explicit 32-bit length. Both sides run the mirrored-
// learning codec, so no dictionary is stored — it rebuilds during decode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ratio.hpp"
#include "gd/codec.hpp"

namespace zipline::gd {

struct StreamStats {
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t chunks = 0;
  std::uint64_t compressed_packets = 0;
  std::uint64_t uncompressed_packets = 0;

  /// output_bytes / input_bytes — see common/ratio.hpp for the convention.
  [[nodiscard]] double ratio() const {
    return zipline::compression_ratio(input_bytes, output_bytes);
  }
};

/// File-oriented parameter defaults: no Tofino padding (there is no
/// hardware container to align), everything else as the paper.
[[nodiscard]] GdParams stream_default_params();

/// Compresses a buffer into a GD stream container.
[[nodiscard]] std::vector<std::uint8_t> gd_stream_compress(
    std::span<const std::uint8_t> input,
    const GdParams& params = stream_default_params(),
    StreamStats* stats = nullptr);

/// Decompresses a GD stream container. Throws std::runtime_error on
/// malformed input (bad magic, bad sizes, CRC mismatch).
[[nodiscard]] std::vector<std::uint8_t> gd_stream_decompress(
    std::span<const std::uint8_t> container);

}  // namespace zipline::gd
