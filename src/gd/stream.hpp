// GD stream container: file-level compression with the ZipLine codec.
//
// The GD line of work the paper builds on also targets file compression
// for IoT time-series data (refs [35, 37]: lightweight, online, excellent
// random access). This container frames a GdEncoder's packet stream so a
// byte buffer (or file) can be compressed and reconstructed stand-alone:
//
//   magic "GDZ1" | version | m | id_bits | chunk_bits | policy | shards
//   record*: tag (1 B: packet type, 0x7F = raw tail) | payload
//   tag 0x00 terminates the stream; a CRC-32 trailer covers the records.
//
// Header version 2 (this code) records the eviction policy and the
// dictionary shard count, so a decoder rebuilds the exact dictionary the
// encoder ran — mismatched or unknown values are rejected at decode.
// Version-1 containers (LRU, single shard, reserved byte zero) still
// decode. Types 2/3 have fixed payload sizes derived from the header
// parameters; raw tails carry an explicit 32-bit length. Both sides run
// the mirrored-learning codec, so no dictionary is stored — it rebuilds
// during decode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ratio.hpp"
#include "gd/codec.hpp"

namespace zipline::gd {

struct StreamStats {
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t chunks = 0;
  std::uint64_t compressed_packets = 0;
  std::uint64_t uncompressed_packets = 0;

  /// output_bytes / input_bytes — see common/ratio.hpp for the convention.
  [[nodiscard]] double ratio() const {
    return zipline::compression_ratio(input_bytes, output_bytes);
  }
};

/// File-oriented parameter defaults: no Tofino padding (there is no
/// hardware container to align), everything else as the paper.
[[nodiscard]] GdParams stream_default_params();

/// Compresses a buffer into a GD stream container. The eviction policy and
/// dictionary shard count are recorded in the header (format v2), so the
/// decoder replays the identical dictionary; shard counts up to 255 fit
/// the header byte.
[[nodiscard]] std::vector<std::uint8_t> gd_stream_compress(
    std::span<const std::uint8_t> input,
    const GdParams& params = stream_default_params(),
    StreamStats* stats = nullptr,
    EvictionPolicy policy = EvictionPolicy::lru,
    std::size_t dictionary_shards = 1);

/// Decompresses a GD stream container. Throws std::runtime_error on
/// malformed input (bad magic, bad sizes, unknown policy, invalid shard
/// count, CRC mismatch).
[[nodiscard]] std::vector<std::uint8_t> gd_stream_decompress(
    std::span<const std::uint8_t> container);

// --- multi-stream batch API over the engine's worker pool -----------------

/// How a pool call runs its streams across the workers.
struct StreamPoolOptions {
  std::size_t workers = 1;
  /// Eviction policy / dictionary shards for the encode side (recorded in
  /// every produced header). Ignored by decompression, which follows the
  /// containers' headers.
  EvictionPolicy policy = EvictionPolicy::lru;
  std::size_t dictionary_shards = 1;
  /// false: every stream owns a private dictionary — each container is
  /// self-contained and byte-identical to the serial gd_stream_compress.
  /// true: ALL streams of the call share one dictionary service (the
  /// switch's one-table-per-direction reality, with load-aware steering
  /// and work stealing across the pool): streams deduplicate against each
  /// other and dictionary memory stays constant in the stream and worker
  /// counts — but the produced containers form a SET, decodable only by
  /// gd_stream_decompress_parallel given the same containers in the same
  /// order with shared_dictionary set.
  bool shared_dictionary = false;
};

/// Compresses many buffers concurrently. Returns one container per input,
/// index-aligned; `stats`, when non-null, is filled with one per-stream
/// StreamStats, index-aligned.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> gd_stream_compress_parallel(
    std::span<const std::span<const std::uint8_t>> inputs,
    const GdParams& params, const StreamPoolOptions& pool,
    std::vector<StreamStats>* stats = nullptr);

/// Back-compat convenience: private dictionaries on `workers` threads.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> gd_stream_compress_parallel(
    std::span<const std::span<const std::uint8_t>> inputs,
    const GdParams& params = stream_default_params(), std::size_t workers = 1,
    std::vector<StreamStats>* stats = nullptr);

/// Decompresses many containers concurrently. All containers must carry
/// identical header parameters, policy and shard count (one worker pool =
/// one dictionary configuration); throws std::runtime_error otherwise, and
/// on any malformed container. Set pool.shared_dictionary to decode a set
/// produced by a shared-dictionary compress call (same order required);
/// pool.policy / pool.dictionary_shards are taken from the headers.
[[nodiscard]] std::vector<std::vector<std::uint8_t>>
gd_stream_decompress_parallel(
    std::span<const std::span<const std::uint8_t>> containers,
    const StreamPoolOptions& pool);

/// Back-compat convenience: private dictionaries on `workers` threads.
[[nodiscard]] std::vector<std::vector<std::uint8_t>>
gd_stream_decompress_parallel(
    std::span<const std::span<const std::uint8_t>> containers,
    std::size_t workers = 1);

}  // namespace zipline::gd
