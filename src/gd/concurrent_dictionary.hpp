// Concurrent sharded basis dictionary: the shared dictionary service.
//
// The paper's switch holds ONE compression table per direction that every
// flow traversing the device shares — that is what makes the dictionary
// converge fast and stay small. This wrapper turns the deterministic
// ShardedDictionary into that service for the software pipeline: N worker
// threads of one direction operate on one dictionary. Writes (insert /
// install / erase / touch and the compound learning transitions) are
// striped: each takes the mutex of the one shard it touches. Reads go one
// of two ways, selected by ReadPath at construction:
//
//   * locked  — every operation takes its stripe mutex (the historical
//     arrangement). Simple, but BM_ConcurrentDictionaryLookup measures an
//     ~40% uncontended lock tax per op, and readers serialize on the
//     stripe count under contention.
//   * seqlock (default) — lookup / peek / contains / lookup_basis_into
//     are served from a per-shard read MIRROR guarded by a sequence
//     counter: writers bump the counter odd, publish, bump it even;
//     readers snapshot the counter, probe, and retry when it was odd or
//     changed. Readers therefore never block and scale past the stripe
//     count. The mirror is retry-safe by construction: every shared field
//     is a std::atomic in stable (never reallocated) slots, so a torn
//     read is *detected* by the sequence recheck, never dereferenced.
//     stats() and size() read lock-free shadow counters refreshed at each
//     locked operation.
//
// Seqlock reads are STATE-EQUIVALENT to their locked counterparts, which
// is what preserves byte-identity with the serial engine:
//
//   * a miss mutates nothing in either path (read-side hit/miss
//     accounting lives in wrapper counters, folded into stats());
//   * a hit under fifo/random policies mutates nothing (those policies
//     never refresh recency), so it is a pure read;
//   * a hit under CLOCK refreshes recency with ONE relaxed atomic bit
//     store into the inner dictionary's stable referenced array
//     (BasisDictionary::mark_referenced) — idempotent and safe against
//     the evicting writer's sweep, so the hit stays entirely lock-free;
//   * a hit under LRU must refresh recency — a linked-list splice — so
//     LRU hits fall back to the stripe lock and replay the exact inner
//     transition. LRU is the last policy with a locked read; clock is its
//     lock-free approximation for the contended hot-hit regime. The hot
//     encode path on fresh traffic is miss-dominated, and the ordered
//     pipeline's resolve phases use apply_batch (below) rather than
//     per-op reads, so this fallback is off the line-rate path.
//
// apply_batch executes a whole resolve plan (gd::BatchOp, one unit's
// dictionary operations) with ONE stripe acquisition per (unit, shard)
// pair: ops are grouped by shard (stable, so in-shard order equals plan
// order) and each group runs under a single lock hold. Per-shard state
// (entries, recency, free identifiers, statistics, RNG) is independent
// across shards, so the grouped execution is observationally identical to
// the serial in-order execution ShardedDictionary::apply_batch defines.
// DictionaryStats::stripe_acquisitions counts every lock acquisition so
// the one-per-(unit, shard) contract is regression-testable.
//
// Thread-safety contract: every public operation is safe to call from any
// thread. Determinism, however, is a property of the CALLER's operation
// order — the underlying ShardedDictionary replays whatever sequence it
// is fed. The parallel pipeline's ordered mode therefore sequences its
// resolve phases in global submission order (engine/parallel.hpp), which
// is what makes shared-dictionary output byte-identical to a serial
// engine and replayable by a decoder; unordered callers get thread-safety
// but no replay guarantee.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "common/bitvector.hpp"
#include "gd/sharded_dictionary.hpp"

namespace zipline::gd {

/// How the shared service serves its read operations (see file comment).
enum class ReadPath : std::uint8_t {
  locked,   ///< every operation takes its stripe mutex
  seqlock,  ///< reads validate against per-shard sequence counters
};

class ConcurrentShardedDictionary {
 public:
  ConcurrentShardedDictionary(std::size_t capacity, EvictionPolicy policy,
                              std::size_t shard_count = 1,
                              ReadPath read_path = ReadPath::seqlock,
                              std::uint64_t random_seed = 0x1dba5e5);
  ~ConcurrentShardedDictionary();

  ConcurrentShardedDictionary(const ConcurrentShardedDictionary&) = delete;
  ConcurrentShardedDictionary& operator=(const ConcurrentShardedDictionary&) =
      delete;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return dict_.capacity();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return dict_.shard_count();
  }
  [[nodiscard]] EvictionPolicy policy() const noexcept {
    return dict_.policy();
  }
  [[nodiscard]] ReadPath read_path() const noexcept { return read_path_; }

  /// Total mapped bases / aggregated statistics. Both are assembled from
  /// lock-free shadow counters (refreshed at every locked operation) plus
  /// the read-side counters, so they never block the write path; each
  /// shard's contribution is a consistent-at-sync snapshot, not a global
  /// one. stats() additionally reports stripe_acquisitions (every mutex
  /// acquisition this service ever performed) and lockfree_reads (reads
  /// served entirely by the seqlock path).
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] DictionaryStats stats() const noexcept;

  /// Lock-free view of the underlying dictionary for quiescent inspection
  /// (tests, post-flush reporting). Racy while workers are active.
  [[nodiscard]] const ShardedDictionary& unsynchronized() const noexcept {
    return dict_;
  }

  // --- thread-safe ShardedDictionary interface --------------------------
  // One content hash per operation: it routes to the shard and keys both
  // the read mirror and the in-shard map.

  [[nodiscard]] std::optional<std::uint32_t> lookup(
      const bits::BitVector& basis);

  [[nodiscard]] std::optional<std::uint32_t> peek(
      const bits::BitVector& basis) const;

  /// Membership test without touching recency or statistics (a named
  /// peek, lock-free on the seqlock path).
  [[nodiscard]] bool contains(const bits::BitVector& basis) const {
    return peek(basis).has_value();
  }

  InsertResult insert(const bits::BitVector& basis);

  /// Atomic encoder-side transition: lookup, and on a miss insert when
  /// `learn` — the compound transition holds ONE stripe acquisition, so
  /// two threads racing the same fresh basis cannot both pass the miss
  /// check and double-insert (what makes the free-running pipeline mode
  /// safe). On the seqlock path a hit under fifo/random is answered from
  /// the mirror without the lock; everything else takes the stripe lock
  /// and replays the serial engine's exact sequence (lookup, then
  /// insert).
  [[nodiscard]] std::optional<std::uint32_t> lookup_or_insert(
      const bits::BitVector& basis, bool learn);

  /// Atomic decode-side learn: insert unless already present (the peek
  /// counts no statistics), under one stripe acquisition — the mirror of
  /// lookup_or_insert for the uncompressed-packet learning path.
  void insert_if_absent(const bits::BitVector& basis);

  /// Copies the basis mapped by `id` into `out` (reusing its storage);
  /// returns false when the identifier is unmapped. Refreshes recency
  /// under LRU (which forces the stripe lock); under fifo/random the
  /// seqlock path copies straight out of the mirror. This replaces
  /// lookup_basis_ref for shared callers — a reference into the entry
  /// table cannot outlive the shard lock.
  [[nodiscard]] bool lookup_basis_into(std::uint32_t id,
                                       bits::BitVector& out);

  void install(std::uint32_t id, const bits::BitVector& basis);

  void erase(std::uint32_t id);

  void touch(std::uint32_t id);

  /// Executes a resolve plan with one stripe acquisition per (plan,
  /// shard) pair. Results land in each op's `result` / `*out` exactly as
  /// ShardedDictionary::apply_batch (the serial reference) would produce
  /// them. `scratch` carries the grow-only grouping arrays. Equivalent to
  /// group_batch followed by apply_shard_group for every shard.
  void apply_batch(std::span<BatchOp> ops, BatchScratch& scratch);

  /// Groups a resolve plan by shard into `scratch` WITHOUT executing
  /// anything: the pure first half of apply_batch, split out so the
  /// parallel pipeline can learn a unit's shard footprint before
  /// admission and then execute each shard's group independently.
  /// scratch.counts[s] is the number of ops routed to shard s.
  void group_batch(std::span<const BatchOp> ops, BatchScratch& scratch) const;

  /// Executes shard `shard`'s group of a plan grouped by group_batch,
  /// under ONE stripe acquisition (none when the group is empty). Calling
  /// this once per shard — in ANY shard order — is observationally
  /// identical to apply_batch: per-shard state is independent and the
  /// grouping preserves in-shard plan order.
  void apply_shard_group(std::span<BatchOp> ops, const BatchScratch& scratch,
                         std::size_t shard);

  /// Records one blocked per-shard turnstile admission (the parallel
  /// pipeline calls this when a unit actually waits behind an earlier
  /// unit at a shard gate); folded into stats().turnstile_waits.
  void note_turnstile_wait() noexcept {
    turnstile_waits_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Probe-stage software prefetch for a whole resolve plan: each basis op
  /// warms the mirror index slot its content hash homes to plus the
  /// stripe's seqlock word; each fetch_basis op warms its identifier's
  /// entry slots. Counted per op in stats().prefetched_probes. Purely
  /// advisory — issues prefetch hints only, never loads mirror state, so
  /// it is safe concurrently with writers.
  void prefetch_ops(std::span<const BatchOp> ops) noexcept;

 private:
  /// One cache line per shard stripe so neighbouring stripes don't false-
  /// share under contention.
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
    /// Seqlock sequence: even = mirror stable, odd = publish in progress.
    std::atomic<std::uint64_t> seq{0};
    // Read-side accounting: the inner shard never sees lock-free ops, so
    // their hit/miss contributions live here and are folded into stats().
    mutable std::atomic<std::uint64_t> read_hits{0};
    mutable std::atomic<std::uint64_t> read_misses{0};
    mutable std::atomic<std::uint64_t> read_other{0};  // peek/contains/fetch
    /// CLOCK recency marks recorded by lock-free hits (the inner shard
    /// only counts clock_touches for locked ops).
    mutable std::atomic<std::uint64_t> read_clock{0};
    // Shadow of the inner shard's statistics and size, refreshed before a
    // locked operation releases the stripe — what lets stats()/size()
    // stay off the mutex entirely.
    std::atomic<std::uint64_t> shadow_hits{0};
    std::atomic<std::uint64_t> shadow_misses{0};
    std::atomic<std::uint64_t> shadow_insertions{0};
    std::atomic<std::uint64_t> shadow_evictions{0};
    std::atomic<std::uint64_t> shadow_prefilter{0};
    std::atomic<std::uint64_t> shadow_clock{0};
    std::atomic<std::uint64_t> shadow_size{0};
  };

  /// Per-shard read mirror: stable all-atomic slots for every published
  /// (hash, basis) entry plus an open-addressing index from content hash
  /// to local identifier. Writers maintain it under the stripe mutex
  /// inside a seq-odd window; readers only ever load atomics and validate
  /// against the sequence, so no retry can fault.
  struct Mirror {
    std::unique_ptr<std::atomic<std::uint64_t>[]> entry_hash;  // [capacity]
    std::unique_ptr<std::atomic<std::uint32_t>[]> entry_bits;  // 0 = unmapped
    /// Basis word slab [capacity * width_words], allocated at the first
    /// publish (when the basis width is known). Owned raw (unique_ptr
    /// cannot be loaded atomically); freed in the destructor.
    std::atomic<std::atomic<std::uint64_t>*> words{nullptr};
    std::atomic<std::uint32_t> width_words{0};
    /// Open-addressing index: tag (content hash, 0 = never used) and
    /// local id + 1. Erases leave stale slots behind (detected by entry
    /// validation); the writer rebuilds when occupancy crosses 3/4.
    std::unique_ptr<std::atomic<std::uint64_t>[]> index_tag;
    std::unique_ptr<std::atomic<std::uint32_t>[]> index_ref;
    std::size_t index_mask = 0;
    std::size_t index_used = 0;  ///< writer-only: slots with nonzero tag
    /// Cleared (permanently falling back to locked reads for this shard)
    /// if a basis wider than the slab ever arrives — only possible with
    /// mixed basis sizes, which no engine produces.
    std::atomic<bool> enabled{true};
  };

  enum class Probe : std::uint8_t { hit, miss, retry };

  [[nodiscard]] std::unique_lock<std::mutex> acquire_stripe(
      std::size_t shard) const {
    stripe_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return std::unique_lock<std::mutex>(stripes_[shard].mutex);
  }

  [[nodiscard]] std::uint32_t to_local(std::uint32_t id) const noexcept {
    return id % static_cast<std::uint32_t>(dict_.shard_capacity());
  }
  [[nodiscard]] std::uint32_t to_global(std::size_t shard,
                                        std::uint32_t local) const noexcept {
    return static_cast<std::uint32_t>(shard * dict_.shard_capacity()) + local;
  }

  // Seqlock write window (stripe mutex held).
  void seq_begin(std::size_t shard) noexcept;
  void seq_end(std::size_t shard) noexcept;

  /// Retires a shard's mirror (readers fall back to the stripe lock),
  /// bumping the sequence so in-flight optimistic reads retry rather
  /// than validate a miss. Stripe mutex held.
  void disable_mirror(std::size_t shard);
  /// Ensures the shard's word slab can hold `basis` (allocating it on
  /// first use); returns false after retiring the mirror when it cannot.
  /// Stripe mutex held.
  [[nodiscard]] bool prepare_slab(std::size_t shard,
                                  const bits::BitVector& basis);
  /// Raw mirror stores for entry `local` = (hash, basis) + index claim.
  /// Stripe mutex held, seq window OPEN (callers bracket with
  /// seq_begin/seq_end so multi-entry updates can share one window).
  void write_entry(std::size_t shard, std::uint32_t local,
                   const bits::BitVector& basis, std::uint64_t hash);
  /// Publishes entry `local` = (hash, basis) into shard `shard`'s mirror
  /// and (re)claims its index slot, in its own seq window. Stripe mutex
  /// held.
  void publish_entry(std::size_t shard, std::uint32_t local,
                     const bits::BitVector& basis, std::uint64_t hash);
  /// Unpublishes entry `local` (its index slot goes stale, detected by
  /// validation). Stripe mutex held.
  void publish_erase(std::size_t shard, std::uint32_t local);
  void index_claim(Mirror& mirror, std::uint64_t hash, std::uint32_t local);
  void rebuild_index(Mirror& mirror);

  /// One optimistic probe of shard `shard`'s mirror for `basis`. hit
  /// fills `local`; retry means the mirror was unstable (or disabled) and
  /// the caller should fall back to the stripe lock after a few attempts.
  [[nodiscard]] Probe probe_mirror(std::size_t shard,
                                   const bits::BitVector& basis,
                                   std::uint64_t hash,
                                   std::uint32_t& local) const;
  /// One optimistic copy-out of entry `local` into `out`. hit = mapped,
  /// miss = unmapped, retry as above.
  [[nodiscard]] Probe fetch_mirror(std::size_t shard, std::uint32_t local,
                                   bits::BitVector& out) const;

  /// Inner insert + mirror publish (stripe mutex held).
  InsertResult locked_insert(std::size_t shard, const bits::BitVector& basis,
                             std::uint64_t hash);
  /// Executes one plan op against the inner dictionary (stripe mutex
  /// held), publishing any mirror changes.
  void run_locked_op(std::size_t shard, BatchOp& op);
  /// Refreshes the shard's shadow statistics (stripe mutex held; the last
  /// thing a locked operation does before releasing).
  void sync_shadow(std::size_t shard) noexcept;

  [[nodiscard]] std::size_t shard_of_op(const BatchOp& op) const noexcept {
    return op.kind == BatchOp::Kind::fetch_basis
               ? dict_.shard_of_id(op.id)
               : dict_.shard_of_hash(op.hash);
  }

  ShardedDictionary dict_;
  ReadPath read_path_;
  std::unique_ptr<Stripe[]> stripes_;
  std::unique_ptr<Mirror[]> mirrors_;
  mutable std::atomic<std::uint64_t> stripe_acquisitions_{0};
  std::atomic<std::uint64_t> turnstile_waits_{0};
  std::atomic<std::uint64_t> prefetched_probes_{0};
};

}  // namespace zipline::gd
