// Concurrent sharded basis dictionary: the shared dictionary service.
//
// The paper's switch holds ONE compression table per direction that every
// flow traversing the device shares — that is what makes the dictionary
// converge fast and stay small. This wrapper turns the deterministic
// ShardedDictionary into that service for the software pipeline: N worker
// threads of one direction operate on one dictionary, each operation
// guarded by the mutex of the one shard it touches. Shard routing already
// content-hashes, so contention stripes naturally across shards; with the
// default single shard the mutex degenerates to one uncontended lock.
//
// Thread-safety contract: every public operation is safe to call from any
// thread. Determinism, however, is a property of the CALLER's operation
// order — the underlying ShardedDictionary replays whatever sequence it is
// fed. The parallel pipeline's ordered mode therefore sequences its
// dictionary phases in global submission order (engine/parallel.hpp),
// which is what makes shared-dictionary output byte-identical to a serial
// engine and replayable by a decoder; unordered callers get thread-safety
// but no replay guarantee.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/bitvector.hpp"
#include "gd/sharded_dictionary.hpp"

namespace zipline::gd {

class ConcurrentShardedDictionary {
 public:
  ConcurrentShardedDictionary(std::size_t capacity, EvictionPolicy policy,
                              std::size_t shard_count = 1,
                              std::uint64_t random_seed = 0x1dba5e5)
      : dict_(capacity, policy, shard_count, random_seed),
        stripes_(std::make_unique<Stripe[]>(shard_count)) {}

  [[nodiscard]] std::size_t capacity() const noexcept {
    return dict_.capacity();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return dict_.shard_count();
  }
  [[nodiscard]] EvictionPolicy policy() const noexcept {
    return dict_.policy();
  }

  /// Total mapped bases / aggregated statistics, each shard read under its
  /// own lock (a consistent-per-shard snapshot, not a global one).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (std::size_t s = 0; s < dict_.shard_count(); ++s) {
      std::lock_guard<std::mutex> guard(stripes_[s].mutex);
      total += dict_.shard(s).size();
    }
    return total;
  }
  [[nodiscard]] DictionaryStats stats() const {
    DictionaryStats total;
    for (std::size_t s = 0; s < dict_.shard_count(); ++s) {
      std::lock_guard<std::mutex> guard(stripes_[s].mutex);
      total += dict_.shard(s).stats();
    }
    return total;
  }

  /// Lock-free view of the underlying dictionary for quiescent inspection
  /// (tests, post-flush reporting). Racy while workers are active.
  [[nodiscard]] const ShardedDictionary& unsynchronized() const noexcept {
    return dict_;
  }

  // --- thread-safe ShardedDictionary interface --------------------------
  // One content hash per operation: it routes to the shard, whose mutex is
  // then held for the shard-local map work.

  [[nodiscard]] std::optional<std::uint32_t> lookup(
      const bits::BitVector& basis) {
    if (dict_.shard_count() == 1) {
      // One stripe: no routing hash needed; the shard's prefilter can
      // resolve most misses without hashing the basis at all.
      std::lock_guard<std::mutex> guard(stripes_[0].mutex);
      return dict_.lookup(basis);
    }
    const std::uint64_t hash = basis.hash();
    std::lock_guard<std::mutex> guard(stripe_of_hash(hash));
    return dict_.lookup(basis, hash);
  }

  [[nodiscard]] std::optional<std::uint32_t> peek(
      const bits::BitVector& basis) const {
    const std::uint64_t hash = basis.hash();
    std::lock_guard<std::mutex> guard(stripe_of_hash(hash));
    return dict_.peek(basis, hash);
  }

  InsertResult insert(const bits::BitVector& basis) {
    const std::uint64_t hash = basis.hash();
    std::lock_guard<std::mutex> guard(stripe_of_hash(hash));
    return dict_.insert(basis, hash);
  }

  /// Atomic encoder-side transition: lookup, and on a miss insert when
  /// `learn` — all under ONE stripe acquisition. This is what makes the
  /// free-running (unordered) pipeline mode safe: two threads racing the
  /// same fresh basis cannot both pass the miss check and double-insert.
  /// The op sequence fed to the deterministic core (lookup, then insert)
  /// is exactly the serial engine's.
  [[nodiscard]] std::optional<std::uint32_t> lookup_or_insert(
      const bits::BitVector& basis, bool learn) {
    if (dict_.shard_count() == 1) {
      std::lock_guard<std::mutex> guard(stripes_[0].mutex);
      if (const auto hit = dict_.lookup(basis)) return hit;
      if (learn) (void)dict_.insert(basis);
      return std::nullopt;
    }
    const std::uint64_t hash = basis.hash();
    std::lock_guard<std::mutex> guard(stripe_of_hash(hash));
    if (const auto hit = dict_.lookup(basis, hash)) return hit;
    if (learn) (void)dict_.insert(basis, hash);
    return std::nullopt;
  }

  /// Atomic decode-side learn: insert unless already present (the peek
  /// counts no statistics), under one stripe acquisition — the mirror of
  /// lookup_or_insert for the uncompressed-packet learning path.
  void insert_if_absent(const bits::BitVector& basis) {
    const std::uint64_t hash = basis.hash();
    std::lock_guard<std::mutex> guard(stripe_of_hash(hash));
    if (!dict_.peek(basis, hash)) (void)dict_.insert(basis, hash);
  }

  /// Copies the basis mapped by `id` into `out` (reusing its storage) and
  /// refreshes recency; returns false when the identifier is unmapped.
  /// This replaces lookup_basis_ref for shared callers — a reference into
  /// the entry table cannot outlive the shard lock.
  [[nodiscard]] bool lookup_basis_into(std::uint32_t id,
                                       bits::BitVector& out) {
    std::lock_guard<std::mutex> guard(stripe_of_id(id));
    const bits::BitVector* basis = dict_.lookup_basis_ref(id);
    if (basis == nullptr) return false;
    out = *basis;
    return true;
  }

  void install(std::uint32_t id, const bits::BitVector& basis) {
    std::lock_guard<std::mutex> guard(stripe_of_id(id));
    dict_.install(id, basis);
  }

  void erase(std::uint32_t id) {
    std::lock_guard<std::mutex> guard(stripe_of_id(id));
    dict_.erase(id);
  }

  void touch(std::uint32_t id) {
    std::lock_guard<std::mutex> guard(stripe_of_id(id));
    dict_.touch(id);
  }

 private:
  /// One cache line per shard mutex so neighbouring stripes don't false-
  /// share under contention.
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
  };

  [[nodiscard]] std::mutex& stripe_of_hash(std::uint64_t hash) const {
    return stripes_[dict_.shard_of_hash(hash)].mutex;
  }
  [[nodiscard]] std::mutex& stripe_of_id(std::uint32_t id) const {
    return stripes_[dict_.shard_of_id(id)].mutex;
  }

  ShardedDictionary dict_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace zipline::gd
