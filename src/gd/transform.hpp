// The GD chunk transform: chunk <-> (excess, basis, deviation).
//
// A chunk of `chunk_bits` is split into the low n = 2^m - 1 bits (the
// Hamming word) and the high `excess` bits that travel verbatim. The
// Hamming word is canonicalized into a k-bit basis plus an m-bit syndrome
// (paper Fig. 1); the inverse regenerates the word from the basis and
// syndrome (paper Fig. 2). Lossless for every possible chunk because
// Hamming codes are perfect codes.
#pragma once

#include <cstdint>

#include "common/bitvector.hpp"
#include "gd/params.hpp"
#include "hamming/hamming.hpp"

namespace zipline::gd {

/// Decomposition of one chunk.
struct TransformedChunk {
  bits::BitVector excess;  ///< chunk_bits - n verbatim high-order bits
  bits::BitVector basis;   ///< k bits
  std::uint32_t syndrome = 0;  ///< m bits
};

class GdTransform {
 public:
  explicit GdTransform(const GdParams& params);

  [[nodiscard]] const GdParams& params() const noexcept { return params_; }
  [[nodiscard]] const hamming::HammingCode& code() const noexcept {
    return code_;
  }

  /// Forward transform; chunk.size() must equal params().chunk_bits.
  [[nodiscard]] TransformedChunk forward(const bits::BitVector& chunk) const;

  /// Inverse transform, reconstructing the exact original chunk.
  [[nodiscard]] bits::BitVector inverse(const TransformedChunk& t) const;
  [[nodiscard]] bits::BitVector inverse(const bits::BitVector& excess,
                                        const bits::BitVector& basis,
                                        std::uint32_t syndrome) const;

  // --- in-place variants (the batch engine's hot path) -----------------
  // `word_scratch` is caller-owned n-bit working storage; passing the same
  // scratch across calls makes both directions allocation-free once every
  // buffer has reached its steady-state capacity.

  /// Forward transform into `out`, reusing its vectors.
  void forward_into(const bits::BitVector& chunk, TransformedChunk& out,
                    bits::BitVector& word_scratch) const;

  /// Inverse transform into `out`, reusing its storage.
  void inverse_into(const bits::BitVector& excess,
                    const bits::BitVector& basis, std::uint32_t syndrome,
                    bits::BitVector& out, bits::BitVector& word_scratch) const;

 private:
  GdParams params_;
  hamming::HammingCode code_;
};

}  // namespace zipline::gd
