// The GD chunk transform: chunk <-> (excess, basis, syndrome).
//
// A chunk of `chunk_bits` is split into the low n = 2^m - 1 bits (the
// Hamming word) and the high `excess` bits that travel verbatim. The
// Hamming word is canonicalized into a k-bit basis plus an m-bit syndrome
// (paper Fig. 1); the inverse regenerates the word from the basis and
// syndrome (paper Fig. 2). Lossless for every possible chunk because
// Hamming codes are perfect codes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "gd/params.hpp"
#include "hamming/hamming.hpp"

namespace zipline::gd {

/// Decomposition of one chunk.
struct TransformedChunk {
  bits::BitVector excess;  ///< chunk_bits - n verbatim high-order bits
  bits::BitVector basis;   ///< k bits
  std::uint32_t syndrome = 0;  ///< m bits
};

/// Caller-owned word-plane scratch for the block transform entry points.
/// Rows live `stride` words apart with >= 8 words of tail padding past the
/// last row (the AVX-512 block kernels issue masked loads that may touch
/// one full vector per row; the padding keeps those reads inside the
/// allocation). Grow-only, like every engine arena: steady-state reuse is
/// allocation-free.
struct TransformBlockScratch {
  std::vector<std::uint64_t> chunk_plane;  ///< count rows of chunk words
  std::vector<std::uint64_t> basis_plane;  ///< count rows of basis words
  std::vector<std::uint32_t> syndromes;    ///< one per row
  std::vector<std::uint32_t> parities;     ///< expand-side fold scratch
};

class GdTransform {
 public:
  explicit GdTransform(const GdParams& params);

  [[nodiscard]] const GdParams& params() const noexcept { return params_; }
  [[nodiscard]] const hamming::HammingCode& code() const noexcept {
    return code_;
  }

  /// Forward transform; chunk.size() must equal params().chunk_bits.
  [[nodiscard]] TransformedChunk forward(const bits::BitVector& chunk) const;

  /// Inverse transform, reconstructing the exact original chunk.
  [[nodiscard]] bits::BitVector inverse(const TransformedChunk& t) const;
  [[nodiscard]] bits::BitVector inverse(const bits::BitVector& excess,
                                        const bits::BitVector& basis,
                                        std::uint32_t syndrome) const;

  // --- in-place variants (the batch engine's hot path) -----------------
  // `word_scratch` is caller-owned n-bit working storage; passing the same
  // scratch across calls makes both directions allocation-free once every
  // buffer has reached its steady-state capacity.

  /// Forward transform into `out`, reusing its vectors.
  void forward_into(const bits::BitVector& chunk, TransformedChunk& out,
                    bits::BitVector& word_scratch) const;

  /// Inverse transform into `out`, reusing its storage.
  void inverse_into(const bits::BitVector& excess,
                    const bits::BitVector& basis, std::uint32_t syndrome,
                    bits::BitVector& out, bits::BitVector& word_scratch) const;

  // --- block variants (the engine's transform fast path) ----------------
  // A whole unit's chunks move through each transform stage as ONE kernel
  // call over a contiguous word-plane (multi-stream syndrome fold, block
  // funnel shifts), instead of a per-chunk BitVector call chain. Output is
  // byte-identical to the chunk-at-a-time path at every kernel level
  // (tests/transform_block_test.cpp property-checks the matrix).

  /// Words per chunk row in the plane (ceil(chunk_bits / 64)).
  [[nodiscard]] std::size_t chunk_plane_stride() const noexcept {
    return (params_.chunk_bits + 63) / 64;
  }
  /// Words per basis row in the plane (ceil(k / 64)).
  [[nodiscard]] std::size_t basis_plane_stride() const noexcept {
    return (params_.k() + 63) / 64;
  }

  /// Forward-transforms `count` chunks of `payload` (chunk_bits % 8 == 0;
  /// payload must hold count * chunk_bits/8 bytes) into out[0..count),
  /// reusing each TransformedChunk's storage. Equivalent to
  /// forward_into per chunk.
  void forward_block(std::span<const std::uint8_t> payload, std::size_t count,
                     std::span<TransformedChunk> out,
                     TransformBlockScratch& scratch) const;

  /// Sizes the scratch for `count` inverse rows (grow-only; newly grown
  /// plane words are zero and stay zero outside the expanded region).
  void inverse_block_reserve(std::size_t count,
                             TransformBlockScratch& scratch) const;

  /// Stages one (basis, syndrome) pair into plane row `row`. Rows may be
  /// staged sparsely (the engine skips raw packets); only rows
  /// [0, count) of the following inverse_block_expand are read.
  void inverse_block_stage(TransformBlockScratch& scratch, std::size_t row,
                           const bits::BitVector& basis,
                           std::uint32_t syndrome) const;

  /// Expands every staged row [0, count) into its n-bit word in the chunk
  /// plane (one block kernel batch). Compose the full chunk by reading
  /// chunk_row(r) and accumulating the excess at bit n.
  void inverse_block_expand(TransformBlockScratch& scratch,
                            std::size_t count) const;

  /// Row `row` of the chunk plane: chunk_plane_stride() words holding the
  /// expanded n-bit word (bits at and above n zero — ready for
  /// BitVector::assign_from_words at chunk_bits).
  [[nodiscard]] std::span<const std::uint64_t> chunk_row(
      const TransformBlockScratch& scratch, std::size_t row) const noexcept {
    return {scratch.chunk_plane.data() + row * chunk_plane_stride(),
            chunk_plane_stride()};
  }

 private:
  GdParams params_;
  hamming::HammingCode code_;
};

}  // namespace zipline::gd
