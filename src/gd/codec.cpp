#include "gd/codec.hpp"

#include "common/contracts.hpp"

namespace zipline::gd {

GdEncoder::GdEncoder(const GdParams& params, EvictionPolicy policy,
                     bool learn_on_miss)
    : transform_(params),
      dictionary_(params.dictionary_capacity(), policy),
      learn_on_miss_(learn_on_miss) {}

GdPacket GdEncoder::encode_chunk(const bits::BitVector& chunk) {
  ZL_EXPECTS(chunk.size() == params().chunk_bits);
  ++stats_.chunks;
  stats_.bytes_in += params().raw_payload_bytes();

  TransformedChunk t = transform_.forward(chunk);
  GdPacket packet;
  if (const auto id = dictionary_.lookup(t.basis)) {
    packet = GdPacket::make_compressed(t.syndrome, std::move(t.excess), *id);
    ++stats_.compressed_packets;
  } else {
    if (learn_on_miss_) {
      dictionary_.insert(t.basis);
    }
    packet = GdPacket::make_uncompressed(t.syndrome, std::move(t.excess),
                                         std::move(t.basis));
    ++stats_.uncompressed_packets;
  }
  stats_.bytes_out += packet.wire_payload_bytes(params());
  return packet;
}

std::vector<GdPacket> GdEncoder::encode_payload(
    std::span<const std::uint8_t> payload) {
  const Chunker chunker(params());
  auto [chunks, tail] = chunker.split(payload);
  std::vector<GdPacket> packets;
  packets.reserve(chunks.size() + (tail.empty() ? 0 : 1));
  for (const auto& chunk : chunks) {
    packets.push_back(encode_chunk(chunk));
  }
  if (!tail.empty()) {
    ++stats_.raw_packets;
    stats_.bytes_in += tail.size();
    stats_.bytes_out += tail.size();
    packets.push_back(GdPacket::make_raw(std::move(tail)));
  }
  return packets;
}

void GdEncoder::preload(const bits::BitVector& basis) {
  ZL_EXPECTS(basis.size() == params().k());
  if (!dictionary_.peek(basis)) {
    dictionary_.insert(basis);
  }
}

GdDecoder::GdDecoder(const GdParams& params, EvictionPolicy policy,
                     bool learn_on_uncompressed)
    : transform_(params),
      dictionary_(params.dictionary_capacity(), policy),
      learn_on_uncompressed_(learn_on_uncompressed) {}

bits::BitVector GdDecoder::decode_chunk(const GdPacket& packet) {
  ++stats_.chunks;
  stats_.bytes_in += packet.wire_payload_bytes(params());
  switch (packet.type) {
    case PacketType::raw: {
      ++stats_.raw_packets;
      stats_.bytes_out += packet.raw.size();
      return bits::BitVector::from_bytes(packet.raw, packet.raw.size() * 8);
    }
    case PacketType::uncompressed: {
      ++stats_.uncompressed_packets;
      if (learn_on_uncompressed_ && !dictionary_.peek(packet.basis)) {
        dictionary_.insert(packet.basis);
      }
      stats_.bytes_out += params().raw_payload_bytes();
      return transform_.inverse(packet.excess, packet.basis, packet.syndrome);
    }
    case PacketType::compressed: {
      ++stats_.compressed_packets;
      const auto basis = dictionary_.lookup_basis(packet.basis_id);
      ZL_EXPECTS(basis.has_value() && "compressed packet with unknown ID");
      stats_.bytes_out += params().raw_payload_bytes();
      return transform_.inverse(packet.excess, *basis, packet.syndrome);
    }
  }
  ZL_ASSERT(false && "unreachable packet type");
  return {};
}

std::vector<std::uint8_t> GdDecoder::decode_payload(
    std::span<const GdPacket> packets) {
  std::vector<bits::BitVector> chunks;
  std::vector<std::uint8_t> tail;
  for (const GdPacket& p : packets) {
    if (p.type == PacketType::raw) {
      tail.insert(tail.end(), p.raw.begin(), p.raw.end());
      ++stats_.chunks;
      ++stats_.raw_packets;
      stats_.bytes_in += p.raw.size();
      stats_.bytes_out += p.raw.size();
    } else {
      chunks.push_back(decode_chunk(p));
    }
  }
  const Chunker chunker(params());
  return chunker.join(chunks, tail);
}

void GdDecoder::preload(const bits::BitVector& basis) {
  ZL_EXPECTS(basis.size() == params().k());
  if (!dictionary_.peek(basis)) {
    dictionary_.insert(basis);
  }
}

Chunker::Chunker(const GdParams& params)
    : chunk_bytes_((params.chunk_bits + 7) / 8), chunk_bits_(params.chunk_bits) {
  // Wire framing of raw chunks is byte-based; require byte-sized chunks.
  ZL_EXPECTS(params.chunk_bits % 8 == 0);
}

Chunker::Result Chunker::split(std::span<const std::uint8_t> payload) const {
  Result result;
  const std::size_t full = payload.size() / chunk_bytes_;
  result.chunks.reserve(full);
  for (std::size_t i = 0; i < full; ++i) {
    result.chunks.push_back(bits::BitVector::from_bytes(
        payload.subspan(i * chunk_bytes_, chunk_bytes_), chunk_bits_));
  }
  const std::size_t consumed = full * chunk_bytes_;
  result.tail.assign(payload.begin() + static_cast<std::ptrdiff_t>(consumed),
                     payload.end());
  return result;
}

std::vector<std::uint8_t> Chunker::join(
    std::span<const bits::BitVector> chunks,
    std::span<const std::uint8_t> tail) const {
  std::vector<std::uint8_t> out;
  out.reserve(chunks.size() * chunk_bytes_ + tail.size());
  for (const auto& chunk : chunks) {
    ZL_EXPECTS(chunk.size() == chunk_bits_);
    const auto bytes = chunk.to_bytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

}  // namespace zipline::gd
