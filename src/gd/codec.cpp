#include "gd/codec.hpp"

#include "common/contracts.hpp"

namespace zipline::gd {

GdEncoder::GdEncoder(const GdParams& params, EvictionPolicy policy,
                     bool learn_on_miss, std::size_t dictionary_shards)
    : engine_(params, policy, learn_on_miss, dictionary_shards) {}

GdEncoder::GdEncoder(const GdParams& params,
                     ConcurrentShardedDictionary& dictionary,
                     bool learn_on_miss)
    : engine_(params, dictionary, learn_on_miss) {}

GdPacket GdEncoder::encode_chunk(const bits::BitVector& chunk) {
  return engine_.encode_chunk_packet(chunk);
}

std::vector<GdPacket> GdEncoder::encode_payload(
    std::span<const std::uint8_t> payload) {
  const Chunker chunker(params());
  auto [chunks, tail] = chunker.split(payload);
  std::vector<GdPacket> packets;
  packets.reserve(chunks.size() + (tail.empty() ? 0 : 1));
  for (const auto& chunk : chunks) {
    packets.push_back(encode_chunk(chunk));
  }
  if (!tail.empty()) {
    engine_.note_raw_tail(tail.size());
    packets.push_back(GdPacket::make_raw(std::move(tail)));
  }
  return packets;
}

void GdEncoder::preload(const bits::BitVector& basis) {
  engine_.preload(basis);
}

GdDecoder::GdDecoder(const GdParams& params, EvictionPolicy policy,
                     bool learn_on_uncompressed, std::size_t dictionary_shards)
    : engine_(params, policy, learn_on_uncompressed, dictionary_shards) {}

GdDecoder::GdDecoder(const GdParams& params,
                     ConcurrentShardedDictionary& dictionary,
                     bool learn_on_uncompressed)
    : engine_(params, dictionary, learn_on_uncompressed) {}

bits::BitVector GdDecoder::decode_chunk(const GdPacket& packet) {
  return engine_.decode_packet(packet);
}

std::vector<std::uint8_t> GdDecoder::decode_payload(
    std::span<const GdPacket> packets) {
  std::vector<bits::BitVector> chunks;
  std::vector<std::uint8_t> tail;
  for (const GdPacket& p : packets) {
    if (p.type == PacketType::raw) {
      tail.insert(tail.end(), p.raw.begin(), p.raw.end());
      engine_.note_raw_passthrough(p.raw.size());
    } else {
      chunks.push_back(decode_chunk(p));
    }
  }
  const Chunker chunker(params());
  return chunker.join(chunks, tail);
}

void GdDecoder::preload(const bits::BitVector& basis) {
  engine_.preload(basis);
}

Chunker::Chunker(const GdParams& params)
    : chunk_bytes_((params.chunk_bits + 7) / 8), chunk_bits_(params.chunk_bits) {
  // Wire framing of raw chunks is byte-based; require byte-sized chunks.
  ZL_EXPECTS(params.chunk_bits % 8 == 0);
}

Chunker::Result Chunker::split(std::span<const std::uint8_t> payload) const {
  Result result;
  const std::size_t full = payload.size() / chunk_bytes_;
  result.chunks.reserve(full);
  for (std::size_t i = 0; i < full; ++i) {
    result.chunks.push_back(bits::BitVector::from_bytes(
        payload.subspan(i * chunk_bytes_, chunk_bytes_), chunk_bits_));
  }
  const std::size_t consumed = full * chunk_bytes_;
  result.tail.assign(payload.begin() + static_cast<std::ptrdiff_t>(consumed),
                     payload.end());
  return result;
}

std::vector<std::uint8_t> Chunker::join(
    std::span<const bits::BitVector> chunks,
    std::span<const std::uint8_t> tail) const {
  std::vector<std::uint8_t> out;
  out.reserve(chunks.size() * chunk_bytes_ + tail.size());
  for (const auto& chunk : chunks) {
    ZL_EXPECTS(chunk.size() == chunk_bits_);
    chunk.append_bytes_to(out);
  }
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

}  // namespace zipline::gd
