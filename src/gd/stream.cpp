#include "gd/stream.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "crc/crc32.hpp"
#include "engine/engine.hpp"
#include "engine/parallel.hpp"
#include "engine/sink.hpp"

namespace zipline::gd {

namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'D', 'Z', '1'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kTagEnd = 0x00;
constexpr std::uint8_t kTagTail = 0x7F;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t count) {
    need(count);
    const auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t count) const {
    if (pos_ + count > data_.size()) {
      throw std::runtime_error("gd stream: truncated container");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// engine::PacketSink appending GDZ1 records — tag byte, an explicit
/// 32-bit length for raw tails (types 2/3 have fixed sizes derived from
/// the header), then the wire payload straight out of the batch arena.
class ContainerRecordSink {
 public:
  explicit ContainerRecordSink(std::vector<std::uint8_t>& out) : out_(&out) {}

  void on_packet(const engine::PacketDesc& desc,
                 std::span<const std::uint8_t> payload) {
    if (desc.type == PacketType::raw) {
      out_->push_back(kTagTail);
      put_u32(*out_, static_cast<std::uint32_t>(payload.size()));
    } else {
      out_->push_back(static_cast<std::uint8_t>(desc.type));
    }
    out_->insert(out_->end(), payload.begin(), payload.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Walks the record section once, validating structure and returning the
/// byte range the CRC trailer covers. Decoding happens in a second pass so
/// corruption that still parses structurally is reported as a CRC
/// mismatch rather than a downstream decode failure (a mangled tag or
/// length still throws its structural error first, as it always has).
std::size_t scan_records(Cursor& cur, const GdParams& params) {
  for (;;) {
    const std::uint8_t tag = cur.u8();
    if (tag == kTagEnd) return cur.position();
    if (tag == kTagTail) {
      (void)cur.bytes(cur.u32());
      continue;
    }
    if (tag != static_cast<std::uint8_t>(PacketType::uncompressed) &&
        tag != static_cast<std::uint8_t>(PacketType::compressed)) {
      throw std::runtime_error("gd stream: unknown record tag");
    }
    (void)cur.bytes(tag == static_cast<std::uint8_t>(PacketType::uncompressed)
                        ? params.type2_payload_bytes()
                        : params.type3_payload_bytes());
  }
}

/// Appends the GDZ1 header for `params` to `out`.
void put_header(std::vector<std::uint8_t>& out, const GdParams& params) {
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(params.m));
  out.push_back(static_cast<std::uint8_t>(params.id_bits));
  put_u16(out, static_cast<std::uint16_t>(params.chunk_bits / 8));
  out.push_back(0);  // reserved: eviction policy (LRU only in v1)
}

/// Appends one encoded batch as a record section + terminator + CRC.
void put_records(std::vector<std::uint8_t>& out,
                 const engine::EncodeBatch& batch) {
  const std::size_t records_start = out.size();
  engine::drain(batch, ContainerRecordSink(out));
  out.push_back(kTagEnd);
  put_u32(out, crc::Crc32::of(std::span(out).subspan(records_start)));
}

/// Validated view of one container: header parameters plus the CRC-checked
/// record section.
struct ParsedContainer {
  GdParams params;
  std::span<const std::uint8_t> records;  ///< record section incl. kTagEnd
};

/// Parses and validates the fixed header only (no record scan, no CRC);
/// `cur` is left at the first record byte.
GdParams parse_header(Cursor& cur) {
  for (const std::uint8_t m : kMagic) {
    if (cur.u8() != m) throw std::runtime_error("gd stream: bad magic");
  }
  if (cur.u8() != kVersion) {
    throw std::runtime_error("gd stream: unsupported version");
  }
  GdParams params = stream_default_params();
  params.m = cur.u8();
  params.id_bits = cur.u8();
  params.chunk_bits = static_cast<std::size_t>(cur.u16()) * 8;
  (void)cur.u8();  // reserved
  try {
    params.validate();
  } catch (const ContractViolation&) {
    throw std::runtime_error("gd stream: invalid parameters in header");
  }
  return params;
}

ParsedContainer parse_container(std::span<const std::uint8_t> container) {
  Cursor cur(container);
  ParsedContainer parsed;
  parsed.params = parse_header(cur);

  // Structural scan + CRC check over the record section.
  const std::size_t records_start = cur.position();
  const std::size_t records_end = scan_records(cur, parsed.params);
  const std::uint32_t stored_crc = cur.u32();
  parsed.records = container.subspan(records_start,
                                     records_end - records_start);
  if (stored_crc != crc::Crc32::of(parsed.records)) {
    throw std::runtime_error("gd stream: CRC mismatch");
  }
  return parsed;
}

/// Walks a validated record section, invoking `on(type, payload)` per
/// record — the single place that knows the tag dispatch and per-type body
/// sizes, shared by the serial decode and the parallel staging paths.
template <typename OnRecord>
void walk_records(Cursor& records, const GdParams& params, OnRecord&& on) {
  for (;;) {
    const std::uint8_t tag = records.u8();
    if (tag == kTagEnd) return;
    if (tag == kTagTail) {
      on(PacketType::raw, records.bytes(records.u32()));
      continue;
    }
    const auto type = static_cast<PacketType>(tag);
    const std::size_t body_bytes = type == PacketType::uncompressed
                                       ? params.type2_payload_bytes()
                                       : params.type3_payload_bytes();
    on(type, records.bytes(body_bytes));
  }
}

/// Stages a validated record section as one EncodeBatch — the wire unit
/// the engine (and the parallel pipeline) decodes.
void stage_records(const ParsedContainer& parsed, engine::EncodeBatch& batch) {
  Cursor records(parsed.records);
  walk_records(records, parsed.params,
               [&](PacketType type, std::span<const std::uint8_t> payload) {
                 batch.append(type, 0, 0, payload);
               });
}

/// Worker-side stage for parallel decompression: the full container —
/// structural scan, CRC check, record staging, decode — is one unit of
/// work, so nothing but the 10-byte header check runs on the caller
/// thread. Validation failures throw here and surface at flush().
struct ContainerDecodeStage {
  using Input = std::span<const std::uint8_t>;
  using Output = engine::DecodeBatch;
  static void run(engine::Engine& eng, const Input& in, Output& out) {
    // Per-worker-thread staging arena, reused across containers.
    thread_local engine::EncodeBatch staged;
    staged.clear();
    stage_records(parse_container(in), staged);
    out.clear();
    eng.decode_batch(staged, out);
  }
};

void fill_stats(StreamStats& stats, std::size_t input_bytes,
                std::size_t output_bytes, const engine::EngineStats& engine) {
  stats.input_bytes = input_bytes;
  stats.output_bytes = output_bytes;
  stats.chunks = engine.chunks;
  stats.compressed_packets = engine.compressed_packets;
  stats.uncompressed_packets = engine.uncompressed_packets;
}

}  // namespace

GdParams stream_default_params() {
  GdParams params;
  params.model_tofino_padding = false;
  return params;
}

std::vector<std::uint8_t> gd_stream_compress(
    std::span<const std::uint8_t> input, const GdParams& params,
    StreamStats* stats) {
  params.validate();
  ZL_EXPECTS(params.chunk_bits % 8 == 0);
  ZL_EXPECTS(params.chunk_bits / 8 <= 0xFFFF);

  std::vector<std::uint8_t> out;
  put_header(out, params);
  engine::Engine engine{params};
  engine::EncodeBatch batch;
  engine.encode_payload(input, batch);
  put_records(out, batch);

  if (stats != nullptr) {
    fill_stats(*stats, input.size(), out.size(), engine.stats());
  }
  return out;
}

std::vector<std::uint8_t> gd_stream_decompress(
    std::span<const std::uint8_t> container) {
  // Pass 1: structural scan + CRC check over the record section.
  const ParsedContainer parsed = parse_container(container);

  // Pass 2: decode records straight into the output arena — no
  // intermediate GdPacket vector.
  Cursor records(parsed.records);
  engine::Engine engine{parsed.params};
  engine::DecodeBatch out;
  walk_records(records, parsed.params,
               [&](PacketType type, std::span<const std::uint8_t> payload) {
                 engine.decode_wire(type, payload, out);
               });
  return out.release_bytes();
}

std::vector<std::vector<std::uint8_t>> gd_stream_compress_parallel(
    std::span<const std::span<const std::uint8_t>> inputs,
    const GdParams& params, std::size_t workers,
    std::vector<StreamStats>* stats) {
  params.validate();
  ZL_EXPECTS(params.chunk_bits % 8 == 0);
  ZL_EXPECTS(params.chunk_bits / 8 <= 0xFFFF);
  ZL_EXPECTS(workers >= 1);

  std::vector<std::vector<std::uint8_t>> outputs(inputs.size());
  {
    // One flow per input: each stream gets a private engine, so every
    // container is byte-identical to the serial gd_stream_compress.
    engine::ParallelEncoder pool(
        params, {.workers = workers},
        [&](const engine::ParallelEncoder::Unit& unit) {
          std::vector<std::uint8_t>& out = outputs[unit.seq];
          put_header(out, params);
          put_records(out, *unit.output);
        });
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      pool.submit(static_cast<std::uint32_t>(i), inputs[i]);
    }
    pool.flush();

    if (stats != nullptr) {
      stats->assign(inputs.size(), StreamStats{});
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const engine::EngineStats* engine_stats =
            pool.flow_stats(static_cast<std::uint32_t>(i));
        ZL_ASSERT(engine_stats != nullptr);
        fill_stats((*stats)[i], inputs[i].size(), outputs[i].size(),
                   *engine_stats);
      }
    }
  }
  return outputs;
}

std::vector<std::vector<std::uint8_t>> gd_stream_decompress_parallel(
    std::span<const std::span<const std::uint8_t>> containers,
    std::size_t workers) {
  ZL_EXPECTS(workers >= 1);
  if (containers.empty()) return {};

  // Only the fixed headers are read up front (one worker pool = one
  // GdParams); the expensive work — structural scan, CRC, staging, decode
  // — happens inside the workers, one container per unit.
  GdParams params;
  for (std::size_t i = 0; i < containers.size(); ++i) {
    Cursor cur(containers[i]);
    const GdParams header = parse_header(cur);
    if (i == 0) {
      params = header;
    } else if (header.m != params.m || header.id_bits != params.id_bits ||
               header.chunk_bits != params.chunk_bits) {
      throw std::runtime_error(
          "gd stream: mixed parameters across parallel containers");
    }
  }

  std::vector<std::vector<std::uint8_t>> outputs(containers.size());
  engine::ParallelPipeline<ContainerDecodeStage> pool(
      params, {.workers = workers},
      [&](const engine::ParallelPipeline<ContainerDecodeStage>::Unit& unit) {
        const auto bytes = unit.output->bytes();
        outputs[unit.seq].assign(bytes.begin(), bytes.end());
      });
  for (std::size_t i = 0; i < containers.size(); ++i) {
    pool.submit(static_cast<std::uint32_t>(i), containers[i]);
  }
  pool.flush();
  return outputs;
}

}  // namespace zipline::gd
