#include "gd/stream.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "crc/crc32.hpp"
#include "engine/engine.hpp"
#include "engine/sink.hpp"

namespace zipline::gd {

namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'D', 'Z', '1'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kTagEnd = 0x00;
constexpr std::uint8_t kTagTail = 0x7F;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t count) {
    need(count);
    const auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t count) const {
    if (pos_ + count > data_.size()) {
      throw std::runtime_error("gd stream: truncated container");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// engine::PacketSink appending GDZ1 records — tag byte, an explicit
/// 32-bit length for raw tails (types 2/3 have fixed sizes derived from
/// the header), then the wire payload straight out of the batch arena.
class ContainerRecordSink {
 public:
  explicit ContainerRecordSink(std::vector<std::uint8_t>& out) : out_(&out) {}

  void on_packet(const engine::PacketDesc& desc,
                 std::span<const std::uint8_t> payload) {
    if (desc.type == PacketType::raw) {
      out_->push_back(kTagTail);
      put_u32(*out_, static_cast<std::uint32_t>(payload.size()));
    } else {
      out_->push_back(static_cast<std::uint8_t>(desc.type));
    }
    out_->insert(out_->end(), payload.begin(), payload.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Walks the record section once, validating structure and returning the
/// byte range the CRC trailer covers. Decoding happens in a second pass so
/// corruption that still parses structurally is reported as a CRC
/// mismatch rather than a downstream decode failure (a mangled tag or
/// length still throws its structural error first, as it always has).
std::size_t scan_records(Cursor& cur, const GdParams& params) {
  for (;;) {
    const std::uint8_t tag = cur.u8();
    if (tag == kTagEnd) return cur.position();
    if (tag == kTagTail) {
      (void)cur.bytes(cur.u32());
      continue;
    }
    if (tag != static_cast<std::uint8_t>(PacketType::uncompressed) &&
        tag != static_cast<std::uint8_t>(PacketType::compressed)) {
      throw std::runtime_error("gd stream: unknown record tag");
    }
    (void)cur.bytes(tag == static_cast<std::uint8_t>(PacketType::uncompressed)
                        ? params.type2_payload_bytes()
                        : params.type3_payload_bytes());
  }
}

}  // namespace

GdParams stream_default_params() {
  GdParams params;
  params.model_tofino_padding = false;
  return params;
}

std::vector<std::uint8_t> gd_stream_compress(
    std::span<const std::uint8_t> input, const GdParams& params,
    StreamStats* stats) {
  params.validate();
  ZL_EXPECTS(params.chunk_bits % 8 == 0);
  ZL_EXPECTS(params.chunk_bits / 8 <= 0xFFFF);

  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(params.m));
  out.push_back(static_cast<std::uint8_t>(params.id_bits));
  put_u16(out, static_cast<std::uint16_t>(params.chunk_bits / 8));
  out.push_back(0);  // reserved: eviction policy (LRU only in v1)

  const std::size_t records_start = out.size();
  engine::Engine engine{params};
  engine::EncodeBatch batch;
  engine.encode_payload(input, batch);
  engine::drain(batch, ContainerRecordSink(out));
  out.push_back(kTagEnd);
  put_u32(out, crc::Crc32::of(std::span(out).subspan(records_start)));

  if (stats != nullptr) {
    stats->input_bytes = input.size();
    stats->output_bytes = out.size();
    stats->chunks = engine.stats().chunks;
    stats->compressed_packets = engine.stats().compressed_packets;
    stats->uncompressed_packets = engine.stats().uncompressed_packets;
  }
  return out;
}

std::vector<std::uint8_t> gd_stream_decompress(
    std::span<const std::uint8_t> container) {
  Cursor cur(container);
  for (const std::uint8_t m : kMagic) {
    if (cur.u8() != m) throw std::runtime_error("gd stream: bad magic");
  }
  if (cur.u8() != kVersion) {
    throw std::runtime_error("gd stream: unsupported version");
  }
  GdParams params = stream_default_params();
  params.m = cur.u8();
  params.id_bits = cur.u8();
  params.chunk_bits = static_cast<std::size_t>(cur.u16()) * 8;
  (void)cur.u8();  // reserved
  try {
    params.validate();
  } catch (const ContractViolation&) {
    throw std::runtime_error("gd stream: invalid parameters in header");
  }

  // Pass 1: structural scan + CRC check over the record section.
  const std::size_t records_start = cur.position();
  const std::size_t records_end = scan_records(cur, params);
  const std::uint32_t stored_crc = cur.u32();
  const std::uint32_t computed = crc::Crc32::of(
      container.subspan(records_start, records_end - records_start));
  if (stored_crc != computed) {
    throw std::runtime_error("gd stream: CRC mismatch");
  }

  // Pass 2: decode records straight into the output arena — no
  // intermediate GdPacket vector.
  Cursor records(container.subspan(records_start, records_end - records_start));
  engine::Engine engine{params};
  engine::DecodeBatch out;
  for (;;) {
    const std::uint8_t tag = records.u8();
    if (tag == kTagEnd) break;
    if (tag == kTagTail) {
      engine.decode_wire(PacketType::raw, records.bytes(records.u32()), out);
      continue;
    }
    const auto type = static_cast<PacketType>(tag);
    const std::size_t body_bytes = type == PacketType::uncompressed
                                       ? params.type2_payload_bytes()
                                       : params.type3_payload_bytes();
    engine.decode_wire(type, records.bytes(body_bytes), out);
  }
  return out.release_bytes();
}

}  // namespace zipline::gd
