#include "gd/stream.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "crc/crc32.hpp"
#include "engine/engine.hpp"
#include "engine/parallel.hpp"
#include "engine/sink.hpp"

namespace zipline::gd {

namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'D', 'Z', '1'};
constexpr std::uint8_t kVersion = 2;
constexpr std::uint8_t kVersionPolicyless = 1;  ///< LRU / 1 shard implied
constexpr std::uint8_t kTagEnd = 0x00;
constexpr std::uint8_t kTagTail = 0x7F;
constexpr std::size_t kMaxHeaderShards = 0xFF;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::span<const std::uint8_t> bytes(std::size_t count) {
    need(count);
    const auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t count) const {
    if (pos_ + count > data_.size()) {
      throw std::runtime_error("gd stream: truncated container");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// engine::PacketSink appending GDZ1 records — tag byte, an explicit
/// 32-bit length for raw tails (types 2/3 have fixed sizes derived from
/// the header), then the wire payload straight out of the batch arena.
class ContainerRecordSink {
 public:
  explicit ContainerRecordSink(std::vector<std::uint8_t>& out) : out_(&out) {}

  void on_packet(const engine::PacketDesc& desc,
                 std::span<const std::uint8_t> payload) {
    if (desc.type == PacketType::raw) {
      out_->push_back(kTagTail);
      put_u32(*out_, static_cast<std::uint32_t>(payload.size()));
    } else {
      out_->push_back(static_cast<std::uint8_t>(desc.type));
    }
    out_->insert(out_->end(), payload.begin(), payload.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Walks the record section once, validating structure and returning the
/// byte range the CRC trailer covers. Decoding happens in a second pass so
/// corruption that still parses structurally is reported as a CRC
/// mismatch rather than a downstream decode failure (a mangled tag or
/// length still throws its structural error first, as it always has).
std::size_t scan_records(Cursor& cur, const GdParams& params) {
  for (;;) {
    const std::uint8_t tag = cur.u8();
    if (tag == kTagEnd) return cur.position();
    if (tag == kTagTail) {
      (void)cur.bytes(cur.u32());
      continue;
    }
    if (tag != static_cast<std::uint8_t>(PacketType::uncompressed) &&
        tag != static_cast<std::uint8_t>(PacketType::compressed)) {
      throw std::runtime_error("gd stream: unknown record tag");
    }
    (void)cur.bytes(tag == static_cast<std::uint8_t>(PacketType::uncompressed)
                        ? params.type2_payload_bytes()
                        : params.type3_payload_bytes());
  }
}

/// Appends the GDZ1 v2 header to `out`: parameters plus the dictionary
/// configuration (eviction policy, shard count) the decoder must replay.
void put_header(std::vector<std::uint8_t>& out, const GdParams& params,
                EvictionPolicy policy, std::size_t shards) {
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(params.m));
  out.push_back(static_cast<std::uint8_t>(params.id_bits));
  put_u16(out, static_cast<std::uint16_t>(params.chunk_bits / 8));
  out.push_back(static_cast<std::uint8_t>(policy));
  out.push_back(static_cast<std::uint8_t>(shards));
}

/// Appends one encoded batch as a record section + terminator + CRC.
void put_records(std::vector<std::uint8_t>& out,
                 const engine::EncodeBatch& batch) {
  const std::size_t records_start = out.size();
  engine::drain(batch, ContainerRecordSink(out));
  out.push_back(kTagEnd);
  put_u32(out, crc::Crc32::of(std::span(out).subspan(records_start)));
}

/// Fully parsed GDZ1 header: transform parameters plus the dictionary
/// configuration the decode engine must be built with.
struct StreamHeader {
  GdParams params;
  EvictionPolicy policy = EvictionPolicy::lru;
  std::size_t shards = 1;
};

/// Validated view of one container: header plus the CRC-checked record
/// section.
struct ParsedContainer {
  StreamHeader header;
  std::span<const std::uint8_t> records;  ///< record section incl. kTagEnd
};

/// Parses and validates the fixed header only (no record scan, no CRC);
/// `cur` is left at the first record byte.
StreamHeader parse_header(Cursor& cur) {
  for (const std::uint8_t m : kMagic) {
    if (cur.u8() != m) throw std::runtime_error("gd stream: bad magic");
  }
  const std::uint8_t version = cur.u8();
  if (version != kVersion && version != kVersionPolicyless) {
    throw std::runtime_error("gd stream: unsupported version");
  }
  StreamHeader header;
  header.params = stream_default_params();
  header.params.m = cur.u8();
  header.params.id_bits = cur.u8();
  header.params.chunk_bits = static_cast<std::size_t>(cur.u16()) * 8;
  if (version == kVersionPolicyless) {
    // v1: one reserved byte, always written zero — LRU, single shard.
    if (cur.u8() != 0) {
      throw std::runtime_error("gd stream: invalid reserved byte");
    }
  } else {
    const std::uint8_t policy = cur.u8();
    if (policy > static_cast<std::uint8_t>(EvictionPolicy::clock)) {
      throw std::runtime_error("gd stream: unknown eviction policy");
    }
    header.policy = static_cast<EvictionPolicy>(policy);
    header.shards = cur.u8();
  }
  try {
    header.params.validate();
  } catch (const ContractViolation&) {
    throw std::runtime_error("gd stream: invalid parameters in header");
  }
  const std::size_t capacity = header.params.dictionary_capacity();
  if (header.shards < 1 || header.shards > capacity ||
      capacity % header.shards != 0) {
    throw std::runtime_error("gd stream: invalid dictionary shard count");
  }
  return header;
}

ParsedContainer parse_container(std::span<const std::uint8_t> container) {
  Cursor cur(container);
  ParsedContainer parsed;
  parsed.header = parse_header(cur);

  // Structural scan + CRC check over the record section.
  const std::size_t records_start = cur.position();
  const std::size_t records_end = scan_records(cur, parsed.header.params);
  const std::uint32_t stored_crc = cur.u32();
  parsed.records = container.subspan(records_start,
                                     records_end - records_start);
  if (stored_crc != crc::Crc32::of(parsed.records)) {
    throw std::runtime_error("gd stream: CRC mismatch");
  }
  return parsed;
}

/// Walks a validated record section, invoking `on(type, payload)` per
/// record — the single place that knows the tag dispatch and per-type body
/// sizes, shared by the serial decode and the parallel staging paths.
template <typename OnRecord>
void walk_records(Cursor& records, const GdParams& params, OnRecord&& on) {
  for (;;) {
    const std::uint8_t tag = records.u8();
    if (tag == kTagEnd) return;
    if (tag == kTagTail) {
      on(PacketType::raw, records.bytes(records.u32()));
      continue;
    }
    const auto type = static_cast<PacketType>(tag);
    const std::size_t body_bytes = type == PacketType::uncompressed
                                       ? params.type2_payload_bytes()
                                       : params.type3_payload_bytes();
    on(type, records.bytes(body_bytes));
  }
}

/// Stages a validated record section as one EncodeBatch — the wire unit
/// the engine (and the parallel pipeline) decodes.
void stage_records(const ParsedContainer& parsed, engine::EncodeBatch& batch) {
  Cursor records(parsed.records);
  walk_records(records, parsed.header.params,
               [&](PacketType type, std::span<const std::uint8_t> payload) {
                 batch.append(type, 0, 0, payload);
               });
}

/// Worker-side stage for parallel decompression: the full container —
/// structural scan, CRC check, record staging, decode — is one unit of
/// work, so nothing but the fixed header check runs on the caller thread.
/// Validation failures throw here and surface at flush(). The split-phase
/// hooks let the shared-dictionary mode sequence only the dictionary
/// (resolve) half while parsing and inverse transforms run concurrently.
struct ContainerDecodeStage {
  using Input = std::span<const std::uint8_t>;
  using Output = engine::DecodeBatch;
  struct Scratch {
    engine::EncodeBatch staged;
    engine::DecodeUnit unit;
  };
  static void run(engine::Engine& eng, const Input& in, Output& out) {
    // Per-worker-thread staging arena, reused across containers.
    thread_local engine::EncodeBatch staged;
    staged.clear();
    stage_records(parse_container(in), staged);
    out.clear();
    eng.decode_batch(staged, out);
  }
  static void transform(engine::Engine& eng, const Input& in,
                        Scratch& scratch) {
    scratch.staged.clear();
    stage_records(parse_container(in), scratch.staged);
    eng.decode_parse(scratch.staged, scratch.unit);
  }
  static void resolve(engine::Engine& eng, Scratch& scratch) {
    eng.decode_resolve(scratch.unit);
  }
  static void plan(engine::Engine& eng, Scratch& scratch) {
    eng.decode_resolve_plan(scratch.unit);
  }
  static void finish(engine::Engine& eng, Scratch& scratch) {
    eng.decode_resolve_finish(scratch.unit);
  }
  static void emit(engine::Engine& eng, const Scratch& scratch, const Input&,
                   Output& out) {
    out.clear();
    eng.decode_emit(scratch.unit, out);
  }
};

void fill_stats(StreamStats& stats, std::size_t input_bytes,
                std::size_t output_bytes, const engine::EngineStats& engine) {
  stats.input_bytes = input_bytes;
  stats.output_bytes = output_bytes;
  stats.chunks = engine.chunks;
  stats.compressed_packets = engine.compressed_packets;
  stats.uncompressed_packets = engine.uncompressed_packets;
}

/// Shared-dictionary pools have no per-flow engine to read stats from;
/// the per-stream packet counts are reconstructed from the stream's own
/// encoded batch instead (identical accounting: chunks = types 2 + 3).
void fill_stats_from_batch(StreamStats& stats, std::size_t input_bytes,
                           std::size_t output_bytes,
                           const engine::EncodeBatch& batch) {
  stats.input_bytes = input_bytes;
  stats.output_bytes = output_bytes;
  for (const engine::PacketDesc& desc : batch.packets()) {
    if (desc.type == PacketType::compressed) {
      ++stats.compressed_packets;
    } else if (desc.type == PacketType::uncompressed) {
      ++stats.uncompressed_packets;
    }
  }
  stats.chunks = stats.compressed_packets + stats.uncompressed_packets;
}

engine::ParallelOptions pool_pipeline_options(const StreamPoolOptions& pool,
                                              EvictionPolicy policy,
                                              std::size_t shards) {
  engine::ParallelOptions options;
  options.workers = pool.workers;
  options.policy = policy;
  options.dictionary_shards = shards;
  if (pool.shared_dictionary) {
    options.ownership = engine::DictionaryOwnership::shared;
    options.steering = engine::FlowSteering::load_aware;
    options.work_stealing = true;
  }
  return options;
}

}  // namespace

GdParams stream_default_params() {
  GdParams params;
  params.model_tofino_padding = false;
  return params;
}

std::vector<std::uint8_t> gd_stream_compress(
    std::span<const std::uint8_t> input, const GdParams& params,
    StreamStats* stats, EvictionPolicy policy, std::size_t dictionary_shards) {
  params.validate();
  ZL_EXPECTS(params.chunk_bits % 8 == 0);
  ZL_EXPECTS(params.chunk_bits / 8 <= 0xFFFF);
  ZL_EXPECTS(dictionary_shards >= 1 && dictionary_shards <= kMaxHeaderShards);

  std::vector<std::uint8_t> out;
  put_header(out, params, policy, dictionary_shards);
  engine::Engine engine{params, policy, /*learn=*/true, dictionary_shards};
  engine::EncodeBatch batch;
  engine.encode_payload(input, batch);
  put_records(out, batch);

  if (stats != nullptr) {
    fill_stats(*stats, input.size(), out.size(), engine.stats());
  }
  return out;
}

std::vector<std::uint8_t> gd_stream_decompress(
    std::span<const std::uint8_t> container) {
  // Pass 1: structural scan + CRC check over the record section.
  const ParsedContainer parsed = parse_container(container);

  // Pass 2: decode records straight into the output arena — no
  // intermediate GdPacket vector — replaying the dictionary configuration
  // the header records.
  Cursor records(parsed.records);
  engine::Engine engine{parsed.header.params, parsed.header.policy,
                        /*learn=*/true, parsed.header.shards};
  engine::DecodeBatch out;
  walk_records(records, parsed.header.params,
               [&](PacketType type, std::span<const std::uint8_t> payload) {
                 engine.decode_wire(type, payload, out);
               });
  return out.release_bytes();
}

std::vector<std::vector<std::uint8_t>> gd_stream_compress_parallel(
    std::span<const std::span<const std::uint8_t>> inputs,
    const GdParams& params, const StreamPoolOptions& pool,
    std::vector<StreamStats>* stats) {
  params.validate();
  ZL_EXPECTS(params.chunk_bits % 8 == 0);
  ZL_EXPECTS(params.chunk_bits / 8 <= 0xFFFF);
  ZL_EXPECTS(pool.workers >= 1);
  ZL_EXPECTS(pool.dictionary_shards >= 1 &&
             pool.dictionary_shards <= kMaxHeaderShards);

  if (stats != nullptr) stats->assign(inputs.size(), StreamStats{});
  std::vector<std::vector<std::uint8_t>> outputs(inputs.size());
  {
    // One flow per input. Private mode: each stream gets a private engine,
    // so every container is byte-identical to the serial
    // gd_stream_compress. Shared mode: the pool's one dictionary service
    // deduplicates ACROSS streams (ordered resolve keeps the op sequence
    // identical to a serial engine fed the same submission order).
    engine::ParallelEncoder pipeline(
        params, pool_pipeline_options(pool, pool.policy,
                                      pool.dictionary_shards),
        [&](const engine::ParallelEncoder::Unit& unit) {
          std::vector<std::uint8_t>& out = outputs[unit.seq];
          put_header(out, params, pool.policy, pool.dictionary_shards);
          put_records(out, *unit.output);
          if (stats != nullptr && pool.shared_dictionary) {
            fill_stats_from_batch((*stats)[unit.seq], inputs[unit.seq].size(),
                                  out.size(), *unit.output);
          }
        });
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      pipeline.submit(static_cast<std::uint32_t>(i), inputs[i]);
    }
    pipeline.flush();

    if (stats != nullptr && !pool.shared_dictionary) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const engine::EngineStats* engine_stats =
            pipeline.flow_stats(static_cast<std::uint32_t>(i));
        ZL_ASSERT(engine_stats != nullptr);
        fill_stats((*stats)[i], inputs[i].size(), outputs[i].size(),
                   *engine_stats);
      }
    }
  }
  return outputs;
}

std::vector<std::vector<std::uint8_t>> gd_stream_compress_parallel(
    std::span<const std::span<const std::uint8_t>> inputs,
    const GdParams& params, std::size_t workers,
    std::vector<StreamStats>* stats) {
  StreamPoolOptions pool;
  pool.workers = workers;
  return gd_stream_compress_parallel(inputs, params, pool, stats);
}

std::vector<std::vector<std::uint8_t>> gd_stream_decompress_parallel(
    std::span<const std::span<const std::uint8_t>> containers,
    const StreamPoolOptions& pool) {
  ZL_EXPECTS(pool.workers >= 1);
  if (containers.empty()) return {};

  // Only the fixed headers are read up front (one worker pool = one
  // dictionary configuration); the expensive work — structural scan, CRC,
  // staging, decode — happens inside the workers, one container per unit.
  StreamHeader header;
  for (std::size_t i = 0; i < containers.size(); ++i) {
    Cursor cur(containers[i]);
    const StreamHeader h = parse_header(cur);
    if (i == 0) {
      header = h;
    } else if (h.params.m != header.params.m ||
               h.params.id_bits != header.params.id_bits ||
               h.params.chunk_bits != header.params.chunk_bits ||
               h.policy != header.policy || h.shards != header.shards) {
      throw std::runtime_error(
          "gd stream: mixed parameters across parallel containers");
    }
  }

  std::vector<std::vector<std::uint8_t>> outputs(containers.size());
  engine::ParallelPipeline<ContainerDecodeStage> pipeline(
      header.params,
      pool_pipeline_options(pool, header.policy, header.shards),
      [&](const engine::ParallelPipeline<ContainerDecodeStage>::Unit& unit) {
        const auto bytes = unit.output->bytes();
        outputs[unit.seq].assign(bytes.begin(), bytes.end());
      });
  for (std::size_t i = 0; i < containers.size(); ++i) {
    pipeline.submit(static_cast<std::uint32_t>(i), containers[i]);
  }
  pipeline.flush();
  return outputs;
}

std::vector<std::vector<std::uint8_t>> gd_stream_decompress_parallel(
    std::span<const std::span<const std::uint8_t>> containers,
    std::size_t workers) {
  StreamPoolOptions pool;
  pool.workers = workers;
  return gd_stream_decompress_parallel(containers, pool);
}

}  // namespace zipline::gd
