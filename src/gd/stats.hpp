// Codec-level statistics, shared by the per-chunk adapters (GdEncoder /
// GdDecoder) and the batch engine so both report through one accounting
// scheme. Byte counts follow the Fig. 3 accounting: bytes_in is payload
// bytes entering the codec, bytes_out is wire payload bytes leaving it.
#pragma once

#include <cstdint>

#include "common/ratio.hpp"

namespace zipline::gd {

struct CodecStats {
  std::uint64_t chunks = 0;
  std::uint64_t raw_packets = 0;
  std::uint64_t uncompressed_packets = 0;  // type 2
  std::uint64_t compressed_packets = 0;    // type 3
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  /// bytes_out / bytes_in — see common/ratio.hpp for the convention.
  [[nodiscard]] double compression_ratio() const {
    return zipline::compression_ratio(bytes_in, bytes_out);
  }
};

}  // namespace zipline::gd
