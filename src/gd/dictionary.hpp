// Basis dictionary with identifier recycling.
//
// The dictionary owns the pool of 2^id_bits short identifiers. When a new
// basis arrives and no identifier is free, one is recycled according to
// the eviction policy; the paper's control plane uses LRU driven by
// per-entry TTLs (§5). The same class is used on the encoder side
// (basis -> ID), the decoder side (ID -> basis) and inside the control
// plane, because the deterministic streaming codec relies on both sides
// replaying identical allocation decisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace zipline::gd {

enum class EvictionPolicy : std::uint8_t {
  lru,     ///< paper's choice: least recently used (TTL-based on hardware)
  fifo,    ///< recycle in insertion order (ablation)
  random,  ///< recycle uniformly at random, seeded (ablation)
  /// LRU approximation via per-entry referenced bits and a second-chance
  /// sweep (the classic CLOCK algorithm). Recency refresh is a single
  /// relaxed atomic bit store, so the concurrent wrapper serves hits
  /// lock-free where LRU must take the stripe lock to splice its list.
  /// Deterministic like the others: the bit-set is idempotent and every
  /// dictionary MUTATION is sequenced, so encoder and decoder replaying
  /// the same op stream sweep identical bit states and evict identically.
  clock,
};

struct DictionaryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Misses resolved by the short-fingerprint prefilter alone, i.e. without
  /// hashing the full basis (a subset of `misses`).
  std::uint64_t prefilter_skips = 0;
  /// Stripe-mutex acquisitions (ConcurrentShardedDictionary only; a plain
  /// BasisDictionary takes no locks). The batched resolve contract —
  /// at most one acquisition per (unit, shard) pair — regression-tests
  /// against this counter.
  std::uint64_t stripe_acquisitions = 0;
  /// Reads served entirely by the seqlock (lock-free) path
  /// (ConcurrentShardedDictionary only).
  std::uint64_t lockfree_reads = 0;
  /// Recency marks recorded under EvictionPolicy::clock: referenced-bit
  /// stores from touch/maybe_touch plus the concurrent wrapper's lock-free
  /// hit path (where an LRU hit would have taken the stripe lock).
  std::uint64_t clock_touches = 0;
  /// Per-shard resolve admissions that actually blocked behind an earlier
  /// unit touching the same dictionary shard (engine::ParallelPipeline's
  /// per-shard turnstiles; recorded by the shared service). Disjoint shard
  /// footprints admit without waiting and leave this at zero.
  std::uint64_t turnstile_waits = 0;
  /// Dictionary slots software-prefetched by the engine's probe stage
  /// ahead of resolve: prefilter buckets (private mode) or shard-index +
  /// read-mirror slots (shared mode), one count per probed op. Purely a
  /// memory-latency knob — output bytes never depend on it.
  std::uint64_t prefetched_probes = 0;

  DictionaryStats& operator+=(const DictionaryStats& other) noexcept {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    prefilter_skips += other.prefilter_skips;
    stripe_acquisitions += other.stripe_acquisitions;
    lockfree_reads += other.lockfree_reads;
    clock_touches += other.clock_touches;
    turnstile_waits += other.turnstile_waits;
    prefetched_probes += other.prefetched_probes;
    return *this;
  }
};

/// Outcome of inserting a basis.
struct InsertResult {
  std::uint32_t id = 0;
  std::optional<bits::BitVector> evicted;  ///< basis that lost its ID
};

namespace detail {

/// Map key carrying the basis's content hash so it is computed exactly
/// once per dictionary operation: the caller (or the sharded router, which
/// needs the same hash anyway) passes it in, and rehashing the table never
/// touches the basis bits again.
struct HashedBasis {
  std::uint64_t hash = 0;
  bits::BitVector basis;
};

/// Borrowed-key view for heterogeneous lookup (C++20): probes with a
/// precomputed hash and no BitVector copy.
struct BasisRef {
  std::uint64_t hash = 0;
  const bits::BitVector* basis = nullptr;
};

struct HashedBasisHash {
  using is_transparent = void;
  std::size_t operator()(const HashedBasis& k) const noexcept {
    return static_cast<std::size_t>(k.hash);
  }
  std::size_t operator()(const BasisRef& k) const noexcept {
    return static_cast<std::size_t>(k.hash);
  }
};

struct HashedBasisEq {
  using is_transparent = void;
  bool operator()(const HashedBasis& a, const HashedBasis& b) const {
    return a.basis == b.basis;
  }
  bool operator()(const HashedBasis& a, const BasisRef& b) const {
    return a.basis == *b.basis;
  }
  bool operator()(const BasisRef& a, const HashedBasis& b) const {
    return *a.basis == b.basis;
  }
};

}  // namespace detail

class BasisDictionary {
 public:
  BasisDictionary(std::size_t capacity, EvictionPolicy policy,
                  std::uint64_t random_seed = 0x1dba5e5);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return by_basis_.size(); }
  [[nodiscard]] EvictionPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const DictionaryStats& stats() const noexcept { return stats_; }

  /// Encoder-side lookup. Counts a hit/miss and refreshes recency on hit.
  /// The two-argument form takes the basis's precomputed content hash
  /// (`basis.hash()`) so callers that already hold it — the sharded
  /// router does — never hash the basis twice.
  [[nodiscard]] std::optional<std::uint32_t> lookup(const bits::BitVector& basis);
  [[nodiscard]] std::optional<std::uint32_t> lookup(const bits::BitVector& basis,
                                                    std::uint64_t hash);

  /// Peek without touching recency or statistics.
  [[nodiscard]] std::optional<std::uint32_t> peek(const bits::BitVector& basis) const;
  [[nodiscard]] std::optional<std::uint32_t> peek(const bits::BitVector& basis,
                                                  std::uint64_t hash) const;

  /// Decoder-side lookup. Refreshes recency (mirrors the encoder's hit).
  [[nodiscard]] std::optional<bits::BitVector> lookup_basis(std::uint32_t id);

  /// Copy-free lookup_basis for the batch decode hot path: returns a
  /// pointer into the entry table (invalidated by the next mutation), or
  /// nullptr when the identifier is unmapped. Refreshes recency.
  [[nodiscard]] const bits::BitVector* lookup_basis_ref(std::uint32_t id);

  /// Const entry inspection: the basis mapped by `id` (nullptr when
  /// unmapped) WITHOUT touching recency or statistics. Used by the
  /// concurrent wrapper to resync its lock-free read mirror.
  [[nodiscard]] const bits::BitVector* peek_basis(std::uint32_t id) const;

  /// The stored content hash of `id`'s basis (only meaningful while the
  /// identifier is mapped) — pairs with peek_basis for mirror resync.
  [[nodiscard]] std::uint64_t entry_hash(std::uint32_t id) const {
    ZL_EXPECTS(id < capacity_);
    return entries_[id].hash;
  }

  /// Inserts a new basis, allocating (possibly recycling) an identifier.
  /// The basis must not already be present.
  InsertResult insert(const bits::BitVector& basis);
  InsertResult insert(const bits::BitVector& basis, std::uint64_t hash);

  /// Installs an explicit (id, basis) mapping — the control-plane path.
  /// Replaces whatever the identifier previously mapped to.
  void install(std::uint32_t id, const bits::BitVector& basis);
  void install(std::uint32_t id, const bits::BitVector& basis,
               std::uint64_t hash);

  /// Removes a mapping by identifier (control-plane eviction), freeing it.
  void erase(std::uint32_t id);

  /// Refreshes the recency of an identifier (a TTL refresh).
  void touch(std::uint32_t id);

  /// CLOCK recency mark: sets `id`'s referenced bit with one relaxed
  /// atomic store. Unlike touch(), this is SAFE to call concurrently with
  /// a writer sweeping the bits under its own synchronization — it is the
  /// hook the concurrent wrapper's lock-free hit path uses — and therefore
  /// records no statistics (single-threaded callers go through
  /// touch()/maybe_touch(), which count clock_touches). No-op under other
  /// policies. Precondition: id < capacity().
  void mark_referenced(std::uint32_t id) noexcept {
    if (policy_ != EvictionPolicy::clock) return;
    referenced_[id].store(1, std::memory_order_relaxed);
  }

  /// The referenced bit of `id` (clock policy only; tests/diagnostics).
  [[nodiscard]] bool referenced(std::uint32_t id) const noexcept {
    return policy_ == EvictionPolicy::clock &&
           referenced_[id].load(std::memory_order_relaxed) != 0;
  }

  /// Probe-stage software prefetch: issues a prefetch for the prefilter
  /// bucket the basis will hit, so a later lookup() finds it warm. Counts
  /// DictionaryStats::prefetched_probes; never changes lookup results.
  void prefetch(const bits::BitVector& basis) noexcept {
    __builtin_prefetch(&fingerprints_[fingerprint(basis)]);
    ++stats_.prefetched_probes;
  }

 private:
  /// Recency refresh on hit; a no-op under FIFO/random so those policies
  /// evict purely by insertion order / chance.
  void maybe_touch(std::uint32_t id);

  // --- short-fingerprint prefilter ---------------------------------------
  // Encoder-side lookups are mostly misses on fresh traffic, and each miss
  // used to hash the full 247-bit basis just to learn that. The prefilter
  // keeps a counted table of short fingerprints derived from the basis's
  // low word only; a zero count proves the basis is absent without touching
  // the full hash. Counts (not bits) so erasures stay exact. The table is
  // sized to ~8 buckets per identifier (clamped to [2^12, 2^20]) so it
  // stays mostly empty even when the dictionary is full — at the default
  // 32,768 identifiers that is 2^18 buckets, ~88% of random misses
  // short-circuiting at 100% occupancy.
  [[nodiscard]] static std::uint32_t fingerprint_bits_for(
      std::size_t capacity) noexcept {
    std::uint32_t bits = 12;
    while (bits < 20 && (std::size_t{1} << bits) < capacity * 8) ++bits;
    return bits;
  }

  [[nodiscard]] std::size_t fingerprint(
      const bits::BitVector& basis) const noexcept {
    const auto words = basis.words();
    const std::uint64_t low = words.empty() ? 0 : words[0];
    return static_cast<std::size_t>((low * 0x9E3779B97F4A7C15ULL) >>
                                    (64 - fingerprint_bits_));
  }
  void fingerprint_add(const bits::BitVector& basis) {
    ++fingerprints_[fingerprint(basis)];
  }
  void fingerprint_remove(const bits::BitVector& basis) {
    std::uint32_t& count = fingerprints_[fingerprint(basis)];
    ZL_EXPECTS(count > 0);
    --count;
  }

  struct Entry {
    bits::BitVector basis;
    std::uint64_t hash = 0;  ///< content hash of `basis` (computed once)
    bool used = false;
    // Intrusive doubly-linked recency list over identifiers.
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  void list_remove(std::uint32_t id);
  void list_push_front(std::uint32_t id);  // most recently used end
  [[nodiscard]] std::uint32_t pick_victim();
  /// Drops identifier `id`'s key from by_basis_ using the stored hash.
  void erase_key(std::uint32_t id);
  /// Post-prefilter map probe shared by both lookup overloads (so neither
  /// runs the prefilter twice).
  [[nodiscard]] std::optional<std::uint32_t> probe(const bits::BitVector& basis,
                                                   std::uint64_t hash);

  std::size_t capacity_;
  EvictionPolicy policy_;
  Rng rng_;
  std::vector<Entry> entries_;
  std::uint32_t fingerprint_bits_;
  std::vector<std::uint32_t> fingerprints_;  // 2^fingerprint_bits_ counts
  std::vector<std::uint32_t> free_ids_;  // stack; top = next to allocate
  std::unordered_map<detail::HashedBasis, std::uint32_t,
                     detail::HashedBasisHash, detail::HashedBasisEq>
      by_basis_;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  // CLOCK state (policy == clock only): one referenced bit per identifier
  // in a STABLE atomic array — the concurrent wrapper's lock-free hit path
  // stores into it without the stripe lock while the evicting writer
  // sweeps it — plus the sweep hand. unique_ptr keeps the dictionary
  // movable (shards live in a std::vector) without moving the atomics.
  std::unique_ptr<std::atomic<std::uint8_t>[]> referenced_;
  std::uint32_t clock_hand_ = 0;
  DictionaryStats stats_;
};

}  // namespace zipline::gd
