// ZLF1 — the length-prefixed frame layer of a compressed-link session.
//
// On the wire, a session is a byte stream of frames:
//
//     0   1   2   3   4 ... 4+n-1
//   +---+---+---+---+---------------------------+
//   |       n       |     frame payload (n B)   |
//   +---+---+---+---+---------------------------+
//
// n is a 32-bit big-endian length. n == 0 and n > max_frame_bytes are
// protocol errors (a zero frame carries nothing and an unbounded one is a
// memory-exhaustion attack); either closes the session. This is the
// m_ziplink shape: TCP gives no message boundaries, so a frame routinely
// arrives split across reads — the length prefix itself can split — and
// the decoder rebuffers exactly the partial state and resumes where it
// left off (tests/frame_codec_test.cpp proves byte-identical reassembly
// at EVERY split point).
//
// For the transport's sessions, the frame payload begins with a fixed
// link header carrying what a Burst descriptor needs to cross the wire —
// the packet type, the flow id (sessions multiplexed over one link each
// keep their identity), and the GD syndrome/basis-id fields:
//
//   offset 0  u8      packet type (gd::PacketType: 1 raw, 2 uncomp, 3 comp)
//   offset 1  u32 BE  flow id
//   offset 5  u32 BE  syndrome
//   offset 9  u32 BE  basis id
//   offset 13 ...     packet payload
//
// FrameDecoder assembles frame payloads directly into io::BufferPool
// segments, so a completed frame enters the burst layer zero-copy
// (Burst::append_segment) and every hop downstream moves refs, not bytes
// — the PR 8 segment contract, now fed from a socket.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "gd/packet.hpp"
#include "io/buffer_pool.hpp"

namespace zipline::netio {

inline constexpr std::size_t kFramePrefixBytes = 4;
inline constexpr std::size_t kLinkHeaderBytes = 13;
/// Default ceiling on one frame's payload. Far above any GD wire packet
/// (a unit is a handful of 32-byte chunks) but small enough that a
/// hostile length prefix cannot balloon memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// The per-frame link header (see file comment for the byte layout).
struct LinkHeader {
  gd::PacketType type = gd::PacketType::raw;
  std::uint32_t flow = 0;
  std::uint32_t syndrome = 0;
  std::uint32_t basis_id = 0;
};

namespace wire {

inline void put_u32_be(std::uint8_t* dst, std::uint32_t v) noexcept {
  dst[0] = static_cast<std::uint8_t>(v >> 24);
  dst[1] = static_cast<std::uint8_t>(v >> 16);
  dst[2] = static_cast<std::uint8_t>(v >> 8);
  dst[3] = static_cast<std::uint8_t>(v);
}

inline std::uint32_t get_u32_be(const std::uint8_t* src) noexcept {
  return (static_cast<std::uint32_t>(src[0]) << 24) |
         (static_cast<std::uint32_t>(src[1]) << 16) |
         (static_cast<std::uint32_t>(src[2]) << 8) |
         static_cast<std::uint32_t>(src[3]);
}

}  // namespace wire

/// Serializes the link header into `dst` (>= kLinkHeaderBytes).
inline void write_link_header(std::uint8_t* dst,
                              const LinkHeader& header) noexcept {
  dst[0] = static_cast<std::uint8_t>(header.type);
  wire::put_u32_be(dst + 1, header.flow);
  wire::put_u32_be(dst + 5, header.syndrome);
  wire::put_u32_be(dst + 9, header.basis_id);
}

/// Parses the link header off the front of a frame payload. False when
/// the frame is too short or the type byte is not a gd::PacketType.
[[nodiscard]] inline bool parse_link_header(
    std::span<const std::uint8_t> frame, LinkHeader& out) noexcept {
  if (frame.size() < kLinkHeaderBytes) return false;
  const std::uint8_t type = frame[0];
  if (type < 1 || type > 3) return false;
  out.type = static_cast<gd::PacketType>(type);
  out.flow = wire::get_u32_be(frame.data() + 1);
  out.syndrome = wire::get_u32_be(frame.data() + 5);
  out.basis_id = wire::get_u32_be(frame.data() + 9);
  return true;
}

/// Framing writers: append one complete ZLF1 frame to a byte queue (the
/// session's outbound buffer, a test's wire image).
struct FrameEncoder {
  /// Prefix + opaque payload.
  static void append_frame(std::vector<std::uint8_t>& out,
                           std::span<const std::uint8_t> payload) {
    ZL_EXPECTS(!payload.empty());
    const std::size_t base = out.size();
    out.resize(base + kFramePrefixBytes + payload.size());
    wire::put_u32_be(out.data() + base,
                     static_cast<std::uint32_t>(payload.size()));
    std::memcpy(out.data() + base + kFramePrefixBytes, payload.data(),
                payload.size());
  }

  /// Prefix + link header + packet payload (the transport's tx shape).
  static void append_frame(std::vector<std::uint8_t>& out,
                           const LinkHeader& header,
                           std::span<const std::uint8_t> payload) {
    const std::size_t frame_bytes = kLinkHeaderBytes + payload.size();
    const std::size_t base = out.size();
    out.resize(base + kFramePrefixBytes + frame_bytes);
    wire::put_u32_be(out.data() + base,
                     static_cast<std::uint32_t>(frame_bytes));
    write_link_header(out.data() + base + kFramePrefixBytes, header);
    if (!payload.empty()) {
      std::memcpy(out.data() + base + kFramePrefixBytes + kLinkHeaderBytes,
                  payload.data(), payload.size());
    }
  }
};

enum class FrameError : std::uint8_t {
  none,
  zero_length,  ///< prefix declared n == 0
  oversize,     ///< prefix declared n > max_frame_bytes
};

/// Incremental ZLF1 reassembler. feed() arbitrary byte chunks in arrival
/// order; each completed frame is handed to the sink as a span over pool
/// segment memory plus the SegmentRef keeping it alive — the sink copies
/// the ref (e.g. into a Burst via append_segment) and the bytes never
/// move again. Protocol violations stop consumption immediately and latch
/// the decoder dead (the session closes; no resync exists mid-stream).
class FrameDecoder {
 public:
  /// Frames are assembled into segments acquired from `pool` (one
  /// acquire per frame; oversize-vs-segment requests fall back to the
  /// pool's counted overflow path, so any frame <= max_frame_bytes
  /// assembles without failure). The pool must outlive the decoder.
  explicit FrameDecoder(io::BufferPool& pool,
                        std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : pool_(&pool), max_frame_bytes_(max_frame_bytes) {
    ZL_EXPECTS(max_frame_bytes_ >= 1);
  }

  /// Consumes `bytes`, invoking `on_frame(span, const SegmentRef&)` once
  /// per completed frame (possibly several times — back-to-back frames in
  /// one read). Returns the first protocol error hit, leaving the
  /// violating prefix unconsumed; FrameError::none otherwise.
  template <typename OnFrame>
  FrameError feed(std::span<const std::uint8_t> bytes, OnFrame&& on_frame) {
    if (dead_) return error_;
    while (!bytes.empty()) {
      if (!segment_) {
        // Accumulating the 4-byte prefix (which can itself split).
        const std::size_t want = kFramePrefixBytes - prefix_fill_;
        const std::size_t take = std::min(want, bytes.size());
        std::memcpy(prefix_ + prefix_fill_, bytes.data(), take);
        prefix_fill_ += take;
        bytes = bytes.subspan(take);
        if (prefix_fill_ < kFramePrefixBytes) break;
        const std::uint32_t n = wire::get_u32_be(prefix_);
        if (n == 0) return fail(FrameError::zero_length);
        if (n > max_frame_bytes_) return fail(FrameError::oversize);
        frame_bytes_ = n;
        frame_fill_ = 0;
        segment_ = pool_->acquire(frame_bytes_);
      } else {
        const std::size_t want = frame_bytes_ - frame_fill_;
        const std::size_t take = std::min(want, bytes.size());
        std::memcpy(segment_.data() + frame_fill_, bytes.data(), take);
        frame_fill_ += take;
        bytes = bytes.subspan(take);
        if (frame_fill_ < frame_bytes_) break;
        ++frames_decoded_;
        on_frame(std::span<const std::uint8_t>(segment_.data(), frame_bytes_),
                 static_cast<const io::SegmentRef&>(segment_));
        segment_.reset();
        prefix_fill_ = 0;
      }
    }
    // Whatever is held across this feed boundary is the partial state a
    // later read resumes from — the rebuffering the wire format exists
    // to make cheap.
    bytes_rebuffered_ += partial_bytes();
    return FrameError::none;
  }

  /// Bytes currently held mid-frame (prefix + payload fill).
  [[nodiscard]] std::size_t partial_bytes() const noexcept {
    return segment_ ? kFramePrefixBytes + frame_fill_ : prefix_fill_;
  }
  [[nodiscard]] std::uint64_t frames_decoded() const noexcept {
    return frames_decoded_;
  }
  /// Sum over feed() calls of the partial bytes carried across each call
  /// boundary — the cumulative rebuffering cost of how the stream was
  /// chunked (0 when every read delivers whole frames).
  [[nodiscard]] std::uint64_t bytes_rebuffered() const noexcept {
    return bytes_rebuffered_;
  }
  [[nodiscard]] bool dead() const noexcept { return dead_; }
  [[nodiscard]] FrameError error() const noexcept { return error_; }

 private:
  FrameError fail(FrameError e) noexcept {
    dead_ = true;
    error_ = e;
    segment_.reset();
    return e;
  }

  io::BufferPool* pool_;
  std::size_t max_frame_bytes_;
  std::uint8_t prefix_[kFramePrefixBytes] = {};
  std::size_t prefix_fill_ = 0;
  io::SegmentRef segment_;  ///< engaged while a frame body is assembling
  std::size_t frame_bytes_ = 0;
  std::size_t frame_fill_ = 0;
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t bytes_rebuffered_ = 0;
  bool dead_ = false;
  FrameError error_ = FrameError::none;
};

}  // namespace zipline::netio
