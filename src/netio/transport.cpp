#include "netio/transport.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace zipline::netio {

SocketTransport::SocketTransport(TransportOptions options)
    : options_(options),
      loop_(options.backend),
      pool_(options.pool_segment_bytes, options.pool_segments) {
  ZL_EXPECTS(options_.burst_frames >= 1);
  ZL_EXPECTS(options_.max_ready_frames >= 1);
  read_scratch_.resize(std::max<std::size_t>(options_.read_budget_bytes / 4,
                                             4096));
}

SocketTransport::~SocketTransport() {
  if (listener_) loop_.remove(listener_.get());
  // Sessions unhook themselves from loop_ (still alive — declaration
  // order) without invoking on_close.
  sessions_.clear();
}

std::uint16_t SocketTransport::listen(std::uint16_t port) {
  ZL_EXPECTS(!listener_);
  std::uint16_t bound = 0;
  listener_ = listen_tcp(port, options_.listen_backlog, &bound);
  ZL_ENSURES(static_cast<bool>(listener_));
  loop_.add(listener_.get(), EventLoop::kReadable,
            [this](std::uint32_t) { accept_pending(); });
  return bound;
}

void SocketTransport::accept_pending() {
  for (;;) {
    bool would_block = false;
    Fd fd = accept_one(listener_.get(), &would_block);
    if (!fd) {
      // Drained (would_block) or a transient accept failure — either
      // way this readiness round is done; level-triggered polling
      // re-reports anything still pending.
      return;
    }
    (void)would_block;
    adopt(std::move(fd));
    ++closed_totals_.sessions_accepted;
  }
}

std::uint32_t SocketTransport::adopt(Fd fd) {
  const std::uint32_t flow = next_flow_++;
  SessionEnv env;
  env.loop = &loop_;
  env.pool = &pool_;
  env.ready = &ready_;
  env.read_scratch = &read_scratch_;
  env.paused = &paused_;
  env.on_close = [this](std::uint32_t f) { dead_flows_.push_back(f); };
  env.max_frame_bytes = options_.max_frame_bytes;
  env.max_outbound_bytes = options_.max_outbound_bytes;
  env.read_budget_bytes = options_.read_budget_bytes;
  env.max_ready_frames = options_.max_ready_frames;
  sessions_.emplace(flow,
                    std::make_unique<Session>(std::move(env), std::move(fd),
                                              flow));
  return flow;
}

std::uint32_t SocketTransport::connect(std::uint16_t port) {
  Fd fd = connect_tcp(port);
  if (!fd) return 0;
  const std::uint32_t flow = adopt(std::move(fd));
  ++closed_totals_.sessions_connected;
  return flow;
}

int SocketTransport::poll(int timeout_ms) {
  reap_closed();
  const int dispatched = loop_.poll(timeout_ms);
  reap_closed();
  return dispatched;
}

void SocketTransport::reap_closed() {
  if (dead_flows_.empty()) return;
  for (const std::uint32_t flow : dead_flows_) {
    const auto it = sessions_.find(flow);
    if (it == sessions_.end()) continue;
    Session* session = it->second.get();
    const SessionStats s = session->stats();
    closed_totals_.frames_rx += s.frames_rx;
    closed_totals_.frames_tx += s.frames_tx;
    closed_totals_.bytes_rx += s.bytes_rx;
    closed_totals_.bytes_tx += s.bytes_tx;
    closed_totals_.frames_dropped += s.frames_dropped;
    closed_totals_.partial_writes += s.partial_writes;
    closed_totals_.bytes_rebuffered += s.bytes_rebuffered;
    ++closed_totals_.sessions_closed;
    switch (s.close_reason) {
      case CloseReason::local: ++closed_totals_.closed_local; break;
      case CloseReason::peer_eof: ++closed_totals_.closed_peer_eof; break;
      case CloseReason::peer_reset: ++closed_totals_.closed_peer_reset; break;
      case CloseReason::protocol: ++closed_totals_.closed_protocol; break;
      case CloseReason::io_error: ++closed_totals_.closed_io_error; break;
      case CloseReason::none: break;  // unreachable: close() latches one
    }
    paused_.erase(std::remove(paused_.begin(), paused_.end(), session),
                  paused_.end());
    sessions_.erase(it);
  }
  dead_flows_.clear();
}

std::size_t SocketTransport::rx_burst(io::Burst& out) {
  out.clear();
  std::size_t delivered = 0;
  while (delivered < options_.burst_frames && !ready_.empty()) {
    ReadyFrame& f = ready_.front();
    io::PacketMeta meta;
    meta.flow = options_.flow_mode == FlowIdMode::per_session
                    ? f.session_flow
                    : f.header.flow;
    meta.ether_type = gd::ether_type_for(f.header.type);
    meta.process = true;
    out.append_segment(f.header.type, f.header.syndrome, f.header.basis_id,
                       {f.payload, f.payload_bytes}, f.segment, meta);
    ready_.pop_front();
    ++delivered;
  }
  // Hysteresis: resume paused sessions once the queue has real room, not
  // at every single free slot (which would thrash pause/resume).
  if (!paused_.empty() && ready_.size() <= options_.max_ready_frames / 2) {
    for (Session* session : paused_) session->resume_rx();
    paused_.clear();
  }
  return delivered;
}

bool SocketTransport::send_frame(std::uint32_t flow, const LinkHeader& header,
                                 std::span<const std::uint8_t> payload) {
  const auto it = sessions_.find(flow);
  if (it == sessions_.end()) {
    ++closed_totals_.frames_dropped;
    return false;
  }
  return it->second->send_frame(header, payload);
}

void SocketTransport::close_session(std::uint32_t flow) {
  const auto it = sessions_.find(flow);
  if (it == sessions_.end()) return;
  it->second->close(CloseReason::local);
  reap_closed();
}

Session* SocketTransport::session(std::uint32_t flow) noexcept {
  const auto it = sessions_.find(flow);
  return it == sessions_.end() ? nullptr : it->second.get();
}

TransportStats SocketTransport::stats() const {
  TransportStats total = closed_totals_;
  for (const auto& [flow, session] : sessions_) {
    const SessionStats s = session->stats();
    total.frames_rx += s.frames_rx;
    total.frames_tx += s.frames_tx;
    total.bytes_rx += s.bytes_rx;
    total.bytes_tx += s.bytes_tx;
    total.frames_dropped += s.frames_dropped;
    total.partial_writes += s.partial_writes;
    total.bytes_rebuffered += s.bytes_rebuffered;
  }
  return total;
}

}  // namespace zipline::netio
