// netio::SocketTransport — framed compressed-link sessions as a burst
// backend.
//
// One transport owns one EventLoop, an optional listener, any number of
// sessions (accepted or connected out), a BufferPool for frame payloads,
// and the ready-frame queue between the socket side and the burst side:
//
//   sockets --readable--> Session rx --> FrameDecoder --> ready queue
//        --> SocketSource::rx_burst --> zipline::Node --> SocketSink
//        --> Session tx --> sockets
//
// SocketSource / SocketSink satisfy the duck-typed PacketSource /
// PacketSink concepts (io/burst.hpp), so a Node serves live TCP sessions
// through exactly the machinery that serves rings and pcap files —
// steering, shared dictionaries, zero-copy splicing all unchanged. Frame
// payloads live in pool segments from the moment the decoder assembles
// them: rx_burst appends them with Burst::append_segment, every hop
// downstream moves refs, and the bytes are touched exactly once more (by
// the engine, or by the tx serialization into a session's outbound
// queue).
//
// Flow identity: every session owns a transport-unique flow id (assigned
// at accept/connect). FlowIdMode picks what rx stamps into PacketMeta:
//   * per_session — the session's own id. The edge listener shape: each
//     client connection is one flow, whatever the peer claims.
//   * from_header — the frame's link-header flow. The multiplexed-trunk
//     shape: many flows ride one session (the WAN link between an
//     encode/decode proxy pair) and keep their identity.
// On tx, SocketSink routes each packet to the session owning meta.flow
// (by_flow) or pushes everything onto one designated session (single —
// the uplink), writing meta.flow into the link header either way.
//
// The driving loop (one thread): poll() pumps readiness once;
// io::Runner's idle-hook overload calls it whenever rx_burst reports
// empty, so the loop BLOCKS in epoll_wait when nothing is in flight
// instead of spinning. wake()/request_stop() are the only thread-safe
// entry points — everything else stays on the loop thread.
//
// Lifetime: bursts filled by rx_burst hold refs into this transport's
// pool; drop or clear them before the transport dies (the BufferPool
// contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "io/buffer_pool.hpp"
#include "io/burst.hpp"
#include "netio/event_loop.hpp"
#include "netio/session.hpp"

namespace zipline::netio {

enum class FlowIdMode : std::uint8_t { per_session, from_header };

struct TransportOptions {
  LoopBackend backend = default_backend();
  FlowIdMode flow_mode = FlowIdMode::per_session;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-session outbound byte ceiling (drop-and-count beyond it).
  std::size_t max_outbound_bytes = 4u << 20;
  std::size_t read_budget_bytes = 256u << 10;
  /// Ready-frame ceiling; reaching it pauses session reads (TCP
  /// backpressure), draining below half resumes them.
  std::size_t max_ready_frames = 8192;
  /// Frames delivered per rx_burst call.
  std::size_t burst_frames = 256;
  std::size_t pool_segment_bytes = 16u << 10;
  std::size_t pool_segments = 1024;
  int listen_backlog = 1024;
};

/// Aggregate over every session this transport ever carried: live
/// sessions contribute their current counters, closed ones their final
/// tally (latched at close).
struct TransportStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_connected = 0;
  std::uint64_t sessions_closed = 0;
  // Close reasons (sum == sessions_closed).
  std::uint64_t closed_local = 0;
  std::uint64_t closed_peer_eof = 0;
  std::uint64_t closed_peer_reset = 0;
  std::uint64_t closed_protocol = 0;
  std::uint64_t closed_io_error = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t bytes_rebuffered = 0;
};

class SocketTransport {
 public:
  explicit SocketTransport(TransportOptions options = {});
  ~SocketTransport();

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Starts accepting on a loopback port (0 = kernel-assigned). Returns
  /// the bound port. One listener per transport.
  std::uint16_t listen(std::uint16_t port = 0);

  /// Opens an outbound session to a loopback port. Returns its flow id,
  /// or 0 on connection failure (flow ids start at 1).
  std::uint32_t connect(std::uint16_t port);

  /// Pumps readiness once: accepts, reads (filling the ready queue),
  /// resumes writes. Blocks up to timeout_ms (-1 = until ready/wake).
  /// Returns the number of event callbacks dispatched.
  int poll(int timeout_ms);

  /// Thread-safe: unblocks a concurrent/next poll().
  void wake() noexcept { loop_.wake(); }
  /// Thread-safe stop flag + wake; the driving loop observes
  /// stop_requested() from its idle hook and exits.
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_release);
    loop_.wake();
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  /// PacketSource face (SocketSource forwards here): drains up to
  /// burst_frames ready frames into `out` as segment-backed packets.
  std::size_t rx_burst(io::Burst& out);

  /// Frames `payload` (link header carrying `header`) onto the session
  /// owning `flow`. False = dropped and counted (unknown/closed session,
  /// or its outbound queue is full).
  bool send_frame(std::uint32_t flow, const LinkHeader& header,
                  std::span<const std::uint8_t> payload);

  /// Closes one session locally (graceful teardown, counted as
  /// closed_local). No-op on unknown flows.
  void close_session(std::uint32_t flow);

  [[nodiscard]] Session* session(std::uint32_t flow) noexcept;
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }
  [[nodiscard]] std::size_t ready_frames() const noexcept {
    return ready_.size();
  }
  [[nodiscard]] TransportStats stats() const;
  [[nodiscard]] io::BufferPool& pool() noexcept { return pool_; }
  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] const TransportOptions& options() const noexcept {
    return options_;
  }

 private:
  void accept_pending();
  std::uint32_t adopt(Fd fd);
  void reap_closed();

  TransportOptions options_;
  EventLoop loop_;          // declared before anything that unhooks from it
  io::BufferPool pool_;     // declared before anything holding SegmentRefs
  std::vector<std::uint8_t> read_scratch_;
  std::deque<ReadyFrame> ready_;
  std::vector<Session*> paused_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Session>> sessions_;
  Fd listener_;
  std::vector<std::uint32_t> dead_flows_;
  std::uint32_t next_flow_ = 1;
  std::atomic<bool> stop_{false};
  TransportStats closed_totals_;  ///< latched stats of reaped sessions
};

/// PacketSource face of a transport, for io::Runner / Node plumbing.
class SocketSource {
 public:
  explicit SocketSource(SocketTransport& transport)
      : transport_(&transport) {}
  std::size_t rx_burst(io::Burst& out) { return transport_->rx_burst(out); }

 private:
  SocketTransport* transport_;
};

/// PacketSink face: frames every packet of a burst onto sessions. The
/// default routes each packet to the session owning meta.flow; the
/// uplink form pushes everything onto one session (the multiplexed trunk
/// of a proxy pair), preserving per-packet flow ids in the link header.
class SocketSink {
 public:
  explicit SocketSink(SocketTransport& transport) : transport_(&transport) {}
  SocketSink(SocketTransport& transport, std::uint32_t uplink_flow)
      : transport_(&transport), uplink_(uplink_flow) {}

  void tx_burst(const io::Burst& burst) {
    for (std::size_t i = 0; i < burst.size(); ++i) {
      const engine::PacketDesc& d = burst.desc(i);
      LinkHeader header;
      header.type = d.type;
      header.flow = burst.meta(i).flow;
      header.syndrome = d.syndrome;
      header.basis_id = d.basis_id;
      const std::uint32_t to = uplink_.value_or(header.flow);
      if (!transport_->send_frame(to, header, burst.payload(i))) {
        ++dropped_frames_;
      }
    }
  }

  [[nodiscard]] std::uint64_t dropped_frames() const noexcept {
    return dropped_frames_;
  }

 private:
  SocketTransport* transport_;
  std::optional<std::uint32_t> uplink_;
  std::uint64_t dropped_frames_ = 0;
};

}  // namespace zipline::netio
