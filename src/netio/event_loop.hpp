// netio::EventLoop — readiness multiplexing over thousands of fds.
//
// The InspIRCd socketengine shape: one loop object owns the OS readiness
// facility, callers register an fd with an interest mask and a callback,
// and poll() blocks until something is ready (or wake() is called from
// another thread), then dispatches. Two backends behind one interface:
//
//   * epoll (Linux, the default there) — O(ready) dispatch, the facility
//     the "thousands of concurrent sessions" target needs.
//   * poll  — portable fallback, O(watched) per call. Always compiled,
//     selectable at construction, so the fallback is continuously tested
//     on Linux too instead of rotting behind an #ifdef.
//
// Level-triggered semantics in both backends: a callback that does not
// drain its fd is simply called again next poll — sessions can bound
// their per-event work (read budgets, paused reads under backpressure)
// without losing wakeups.
//
// Threading: everything except wake() must be called from the loop's
// owning thread. wake() is async-signal-unsafe but thread-safe — it
// writes the self-pipe, so a blocked poll() returns immediately (the
// transport's stop path).
//
// Callbacks may add/remove fds — including their own — during dispatch:
// the ready set is snapshotted first and each entry is revalidated (by fd
// + registration generation) before its callback runs.
#pragma once

#include <poll.h>

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "netio/socket_ops.hpp"

namespace zipline::netio {

enum class LoopBackend : std::uint8_t { epoll, poll };

/// The backend a plain EventLoop{} gets: epoll on Linux, poll elsewhere.
[[nodiscard]] LoopBackend default_backend() noexcept;

class EventLoop {
 public:
  /// Readiness bits, both for interest masks and callback events.
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  /// Delivered (never requested): error/hangup on the fd. The callback
  /// decides — usually a read to collect the error, then teardown.
  static constexpr std::uint32_t kError = 1u << 2;

  using Callback = std::function<void(std::uint32_t events)>;

  explicit EventLoop(LoopBackend backend = default_backend());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] LoopBackend backend() const noexcept { return backend_; }

  /// Registers `fd` (not yet registered) with an interest mask.
  void add(int fd, std::uint32_t interest, Callback callback);
  /// Replaces the interest mask of a registered fd.
  void set_interest(int fd, std::uint32_t interest);
  [[nodiscard]] std::uint32_t interest(int fd) const;
  /// Unregisters; safe to call from inside a callback (even the fd's own).
  void remove(int fd);
  [[nodiscard]] std::size_t watched() const noexcept { return entries_.size(); }

  /// Blocks up to timeout_ms (-1 = until something is ready or wake()),
  /// then dispatches every ready callback. Returns the number of
  /// callbacks dispatched (wake-pipe drain not counted).
  int poll(int timeout_ms);

  /// Thread-safe: makes a concurrent (or the next) poll() return
  /// promptly. Coalesces — many wakes, one drain.
  void wake() noexcept;

 private:
  struct Entry {
    std::uint32_t interest = 0;
    std::uint64_t generation = 0;  ///< revalidates snapshotted ready fds
    Callback callback;
  };

  void backend_add(int fd, std::uint32_t interest);
  void backend_modify(int fd, std::uint32_t interest);
  void backend_remove(int fd);
  int wait_epoll(int timeout_ms);
  int wait_poll(int timeout_ms);
  int dispatch();

  LoopBackend backend_;
  std::unordered_map<int, Entry> entries_;
  Fd epoll_fd_;
  Fd wake_read_;
  Fd wake_write_;
  /// Ready snapshot of one poll() round: (fd, generation, events).
  struct Ready {
    int fd;
    std::uint64_t generation;
    std::uint32_t events;
  };
  std::vector<Ready> ready_;
  std::uint64_t generation_ = 0;
  std::vector<::pollfd> pollfds_;  ///< poll backend scratch
};

}  // namespace zipline::netio
