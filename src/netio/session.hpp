// netio::Session — one framed compressed-link connection.
//
// A session owns a nonblocking fd and the two halves of the ZLF1 stream
// over it (the inspsocket.cpp buffered-socket shape):
//
//   rx: readable events drain the socket into a shared scratch buffer and
//       feed the FrameDecoder, which reassembles frames into pool
//       segments; each completed frame is parsed (link header) and pushed
//       onto the transport's ready queue, where rx_burst picks it up
//       zero-copy. A full ready queue PAUSES the session — readable
//       interest is dropped so level-triggered polling does not spin, and
//       TCP backpressure propagates to the peer; the transport resumes
//       paused sessions once the queue drains.
//   tx: send_frame() appends prefix + link header + payload to the
//       outbound byte queue and flushes opportunistically. A short or
//       blocked write leaves the remainder queued and arms writable
//       interest; the next writable event resumes EXACTLY where the
//       stream stopped (partial-frame resumption on the write side).
//       The queue is bounded: a frame that would exceed
//       max_outbound_bytes is dropped and counted, never queued —
//       MemoryRing's drop-and-count overflow policy, applied per session.
//
// Teardown is always graceful and always counted: peer EOF, peer reset
// (ECONNRESET/EPIPE), protocol violation (zero-length/oversize frame,
// malformed link header), local close, or an unexpected socket error
// each land in SessionStats::close_reason, which the transport
// aggregates into per-reason counters.
//
// Threading: a session lives on its transport's loop thread; nothing
// here is thread-safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "io/buffer_pool.hpp"
#include "netio/event_loop.hpp"
#include "netio/frame_codec.hpp"
#include "netio/socket_ops.hpp"

namespace zipline::netio {

class Session;

enum class CloseReason : std::uint8_t {
  none,       ///< still open
  local,      ///< we closed it (shutdown, transport teardown)
  peer_eof,   ///< orderly peer shutdown (read returned 0)
  peer_reset, ///< ECONNRESET / EPIPE surfaced by a read or write
  protocol,   ///< ZLF1 violation: zero/oversize frame, bad link header
  io_error,   ///< unexpected errno (stats carry no further detail)
};

struct SessionStats {
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t bytes_rx = 0;          ///< raw socket bytes read
  std::uint64_t bytes_tx = 0;          ///< raw socket bytes written
  std::uint64_t frames_dropped = 0;    ///< tx overflow drop-and-count
  std::uint64_t partial_writes = 0;    ///< writes resumed by a later event
  std::uint64_t bytes_rebuffered = 0;  ///< FrameDecoder rebuffering odometer
  CloseReason close_reason = CloseReason::none;
};

/// One reassembled frame awaiting rx_burst: the parsed link header plus a
/// payload view into the pool segment the ref keeps alive.
struct ReadyFrame {
  LinkHeader header;
  io::SegmentRef segment;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_bytes = 0;
  std::uint32_t session_flow = 0;
};

/// Knobs and shared machinery a transport hands each session. All
/// pointers outlive the session.
struct SessionEnv {
  EventLoop* loop = nullptr;
  io::BufferPool* pool = nullptr;
  std::deque<ReadyFrame>* ready = nullptr;
  std::vector<std::uint8_t>* read_scratch = nullptr;  ///< shared, loop thread
  std::vector<Session*>* paused = nullptr;  ///< sessions awaiting rx resume
  /// Invoked once, from close(); the transport reaps the session after
  /// the current dispatch round.
  std::function<void(std::uint32_t flow)> on_close;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t max_outbound_bytes = 4u << 20;
  /// Per readable event, stop after this many bytes so one firehose
  /// session cannot starve the rest (level-triggered polling re-reports).
  std::size_t read_budget_bytes = 256u << 10;
  std::size_t max_ready_frames = 8192;
};

class Session {
 public:
  /// Takes ownership of `fd` (already nonblocking) and registers with the
  /// env's loop for readable events.
  Session(SessionEnv env, Fd fd, std::uint32_t flow);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] std::uint32_t flow() const noexcept { return flow_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool open() const noexcept { return static_cast<bool>(fd_); }
  [[nodiscard]] SessionStats stats() const noexcept {
    SessionStats s = stats_;
    s.bytes_rebuffered = decoder_.bytes_rebuffered();
    return s;
  }
  /// Outbound bytes queued but not yet written.
  [[nodiscard]] std::size_t outbound_pending() const noexcept {
    return outbound_.size() - outbound_head_;
  }

  /// Queues one framed packet and flushes opportunistically. False (and
  /// a counted drop) when the bounded outbound queue cannot take it;
  /// false too on a closed session.
  bool send_frame(const LinkHeader& header,
                  std::span<const std::uint8_t> payload);

  /// Event-loop callback (readable/writable/error).
  void on_event(std::uint32_t events);

  /// Re-arms readable interest after a ready-queue pause.
  void resume_rx();

  void close(CloseReason reason);

 private:
  void on_readable();
  void on_writable();
  void flush_writes();
  void update_interest();

  SessionEnv env_;
  Fd fd_;
  std::uint32_t flow_;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> outbound_;
  std::size_t outbound_head_ = 0;
  bool want_write_ = false;
  bool rx_paused_ = false;
  SessionStats stats_;
};

}  // namespace zipline::netio
