#include "netio/event_loop.hpp"

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/contracts.hpp"

namespace zipline::netio {

LoopBackend default_backend() noexcept {
#ifdef __linux__
  return LoopBackend::epoll;
#else
  return LoopBackend::poll;
#endif
}

namespace {

#ifdef __linux__
std::uint32_t to_epoll(std::uint32_t interest) noexcept {
  std::uint32_t events = 0;
  if ((interest & EventLoop::kReadable) != 0) events |= EPOLLIN;
  if ((interest & EventLoop::kWritable) != 0) events |= EPOLLOUT;
  return events;
}

std::uint32_t from_epoll(std::uint32_t events) noexcept {
  std::uint32_t out = 0;
  if ((events & (EPOLLIN | EPOLLHUP)) != 0) out |= EventLoop::kReadable;
  if ((events & EPOLLOUT) != 0) out |= EventLoop::kWritable;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) out |= EventLoop::kError;
  return out;
}
#endif

short to_poll(std::uint32_t interest) noexcept {
  short events = 0;
  if ((interest & EventLoop::kReadable) != 0) events |= POLLIN;
  if ((interest & EventLoop::kWritable) != 0) events |= POLLOUT;
  return events;
}

std::uint32_t from_poll(short revents) noexcept {
  std::uint32_t out = 0;
  if ((revents & (POLLIN | POLLHUP)) != 0) out |= EventLoop::kReadable;
  if ((revents & POLLOUT) != 0) out |= EventLoop::kWritable;
  if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    out |= EventLoop::kError;
  }
  return out;
}

}  // namespace

EventLoop::EventLoop(LoopBackend backend) : backend_(backend) {
#ifndef __linux__
  // epoll does not exist off Linux; fall back silently so callers can
  // default-construct portably.
  backend_ = LoopBackend::poll;
#endif
#ifdef __linux__
  if (backend_ == LoopBackend::epoll) {
    epoll_fd_ = Fd(::epoll_create1(0));
    ZL_ENSURES(static_cast<bool>(epoll_fd_));
  }
#endif
  // Self-pipe wake channel (a socketpair, so the send/recv-based
  // read_some/write_some helpers apply), both ends nonblocking: wake()
  // writes one byte (EAGAIN = a wake is already pending, which is fine —
  // wakes coalesce), the loop drains on readiness.
  int pipe_fds[2];
  ZL_ENSURES(::socketpair(AF_UNIX, SOCK_STREAM, 0, pipe_fds) == 0);
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);
  ZL_ENSURES(set_nonblocking(wake_read_.get()));
  ZL_ENSURES(set_nonblocking(wake_write_.get()));
#ifdef __linux__
  if (backend_ == LoopBackend::epoll) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_.get();
    ZL_ENSURES(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_read_.get(),
                           &ev) == 0);
  }
#endif
}

EventLoop::~EventLoop() = default;

void EventLoop::backend_add(int fd, std::uint32_t interest) {
#ifdef __linux__
  if (backend_ == LoopBackend::epoll) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    ZL_ENSURES(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) == 0);
    return;
  }
#endif
  (void)fd;
  (void)interest;  // poll backend rebuilds its fd array per poll()
}

void EventLoop::backend_modify(int fd, std::uint32_t interest) {
#ifdef __linux__
  if (backend_ == LoopBackend::epoll) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    ZL_ENSURES(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0);
    return;
  }
#endif
  (void)fd;
  (void)interest;
}

void EventLoop::backend_remove(int fd) {
#ifdef __linux__
  if (backend_ == LoopBackend::epoll) {
    (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  (void)fd;
}

void EventLoop::add(int fd, std::uint32_t interest, Callback callback) {
  ZL_EXPECTS(fd >= 0);
  ZL_EXPECTS(entries_.find(fd) == entries_.end());
  Entry entry;
  entry.interest = interest;
  entry.generation = ++generation_;
  entry.callback = std::move(callback);
  entries_.emplace(fd, std::move(entry));
  backend_add(fd, interest);
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = entries_.find(fd);
  ZL_EXPECTS(it != entries_.end());
  if (it->second.interest == interest) return;
  it->second.interest = interest;
  backend_modify(fd, interest);
}

std::uint32_t EventLoop::interest(int fd) const {
  const auto it = entries_.find(fd);
  ZL_EXPECTS(it != entries_.end());
  return it->second.interest;
}

void EventLoop::remove(int fd) {
  const auto it = entries_.find(fd);
  ZL_EXPECTS(it != entries_.end());
  entries_.erase(it);
  backend_remove(fd);
}

int EventLoop::wait_epoll(int timeout_ms) {
#ifdef __linux__
  // +1 slot for the wake pipe.
  std::vector<epoll_event> events(entries_.size() + 1);
  int n;
  for (;;) {
    n = ::epoll_wait(epoll_fd_.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n >= 0 || errno != EINTR) break;
  }
  if (n <= 0) return 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wake_read_.get()) {
      std::uint8_t drain[64];
      while (read_some(fd, drain).status == IoStatus::ok) {}
      continue;
    }
    const auto it = entries_.find(fd);
    if (it == entries_.end()) continue;
    ready_.push_back(
        {fd, it->second.generation,
         from_epoll(events[static_cast<std::size_t>(i)].events)});
  }
  return n;
#else
  (void)timeout_ms;
  return 0;
#endif
}

int EventLoop::wait_poll(int timeout_ms) {
  pollfds_.clear();
  pollfds_.push_back({wake_read_.get(), POLLIN, 0});
  for (const auto& [fd, entry] : entries_) {
    pollfds_.push_back({fd, to_poll(entry.interest), 0});
  }
  int n;
  for (;;) {
    n = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
    if (n >= 0 || errno != EINTR) break;
  }
  if (n <= 0) return 0;
  for (const struct pollfd& p : pollfds_) {
    if (p.revents == 0) continue;
    if (p.fd == wake_read_.get()) {
      std::uint8_t drain[64];
      while (read_some(p.fd, drain).status == IoStatus::ok) {}
      continue;
    }
    const auto it = entries_.find(p.fd);
    if (it == entries_.end()) continue;
    ready_.push_back({p.fd, it->second.generation, from_poll(p.revents)});
  }
  return n;
}

int EventLoop::dispatch() {
  int dispatched = 0;
  for (const Ready& r : ready_) {
    // Revalidate: an earlier callback this round may have removed (or
    // removed-and-readded — the generation check) this fd.
    const auto it = entries_.find(r.fd);
    if (it == entries_.end() || it->second.generation != r.generation) {
      continue;
    }
    // The callback may mutate entries_, invalidating `it`; copying the
    // std::function keeps it alive through self-removal.
    const Callback callback = it->second.callback;
    callback(r.events);
    ++dispatched;
  }
  ready_.clear();
  return dispatched;
}

int EventLoop::poll(int timeout_ms) {
  ready_.clear();
  if (backend_ == LoopBackend::epoll) {
    wait_epoll(timeout_ms);
  } else {
    wait_poll(timeout_ms);
  }
  return dispatch();
}

void EventLoop::wake() noexcept {
  const std::uint8_t one = 1;
  (void)write_some(wake_write_.get(), {&one, 1});
}

}  // namespace zipline::netio
