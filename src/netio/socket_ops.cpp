#include "netio/socket_ops.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace zipline::netio {

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    // POSIX leaves the fd state unspecified after close(EINTR); retrying
    // risks closing a recycled descriptor, so close once and move on.
    ::close(fd_);
    fd_ = -1;
  }
}

IoResult read_some(int fd, std::span<std::uint8_t> buf) noexcept {
  for (;;) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n > 0) return {IoStatus::ok, static_cast<std::size_t>(n), 0};
    if (n == 0) return {IoStatus::closed, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::would_block, 0, 0};
    }
    if (errno == ECONNRESET) return {IoStatus::closed, 0, errno};
    return {IoStatus::error, 0, errno};
  }
}

IoResult write_some(int fd, std::span<const std::uint8_t> buf) noexcept {
  for (;;) {
    const ssize_t n = ::send(fd, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::ok, static_cast<std::size_t>(n), 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::would_block, 0, 0};
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      return {IoStatus::closed, 0, errno};
    }
    return {IoStatus::error, 0, errno};
  }
}

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_tcp_nodelay(int fd) noexcept {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Fd listen_tcp(std::uint16_t port, int backlog,
              std::uint16_t* bound_port) noexcept {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) return {};
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return {};
  }
  if (::listen(fd.get(), backlog) != 0) return {};
  if (bound_port != nullptr) {
    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return {};
    }
    *bound_port = ntohs(addr.sin_port);
  }
  if (!set_nonblocking(fd.get())) return {};
  return fd;
}

Fd connect_tcp(std::uint16_t port) noexcept {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return {};
  }
  if (!set_nonblocking(fd.get())) return {};
  set_tcp_nodelay(fd.get());
  return fd;
}

Fd accept_one(int listen_fd, bool* would_block) noexcept {
  if (would_block != nullptr) *would_block = false;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      Fd owned(fd);
      if (!set_nonblocking(fd)) return {};
      set_tcp_nodelay(fd);
      return owned;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (would_block != nullptr) *would_block = true;
      return {};
    }
    return {};
  }
}

}  // namespace zipline::netio
