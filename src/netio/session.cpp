#include "netio/session.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace zipline::netio {

namespace {
/// Compact the outbound queue once the consumed prefix dominates; keeps
/// the amortized cost linear without shuffling bytes on every write.
constexpr std::size_t kCompactBytes = 1u << 20;
}  // namespace

Session::Session(SessionEnv env, Fd fd, std::uint32_t flow)
    : env_(std::move(env)),
      fd_(std::move(fd)),
      flow_(flow),
      decoder_(*env_.pool, env_.max_frame_bytes) {
  ZL_EXPECTS(static_cast<bool>(fd_));
  ZL_EXPECTS(env_.loop != nullptr && env_.pool != nullptr &&
             env_.ready != nullptr && env_.read_scratch != nullptr &&
             env_.paused != nullptr);
  env_.loop->add(fd_.get(), EventLoop::kReadable,
                 [this](std::uint32_t events) { on_event(events); });
}

Session::~Session() {
  if (open()) {
    // Teardown without the on_close callback: the transport is either
    // destroying us from its own close handling or being destroyed
    // itself — the loop entry still needs unhooking.
    env_.loop->remove(fd_.get());
    fd_.reset();
    stats_.close_reason = CloseReason::local;
  }
}

void Session::close(CloseReason reason) {
  if (!open()) return;
  env_.loop->remove(fd_.get());
  fd_.reset();
  stats_.close_reason = reason;
  if (env_.on_close) env_.on_close(flow_);
}

void Session::update_interest() {
  if (!open()) return;
  std::uint32_t interest = rx_paused_ ? 0u : EventLoop::kReadable;
  if (want_write_) interest |= EventLoop::kWritable;
  env_.loop->set_interest(fd_.get(), interest);
}

void Session::on_event(std::uint32_t events) {
  if (!open()) return;
  if ((events & EventLoop::kWritable) != 0) on_writable();
  if (!open()) return;
  if ((events & (EventLoop::kReadable | EventLoop::kError)) != 0) {
    // kError with nothing readable still lands here: the read collects
    // the error (reset/EOF) and the session tears down gracefully.
    on_readable();
  }
}

void Session::on_readable() {
  std::vector<std::uint8_t>& scratch = *env_.read_scratch;
  std::size_t consumed = 0;
  while (open() && consumed < env_.read_budget_bytes) {
    if (env_.ready->size() >= env_.max_ready_frames) {
      // Ready queue full: stop reading and drop readable interest so a
      // level-triggered loop does not spin on data we refuse to take.
      // TCP's receive window now pushes back on the peer; the transport
      // resumes us when rx_burst drains the queue.
      if (!rx_paused_) {
        rx_paused_ = true;
        env_.paused->push_back(this);
        update_interest();
      }
      return;
    }
    const IoResult r = read_some(fd_.get(), scratch);
    if (r.status == IoStatus::would_block) return;
    if (r.status == IoStatus::closed) {
      close(r.error != 0 ? CloseReason::peer_reset : CloseReason::peer_eof);
      return;
    }
    if (r.status == IoStatus::error) {
      close(CloseReason::io_error);
      return;
    }
    stats_.bytes_rx += r.bytes;
    consumed += r.bytes;
    bool malformed = false;
    const FrameError err = decoder_.feed(
        std::span<const std::uint8_t>(scratch.data(), r.bytes),
        [&](std::span<const std::uint8_t> frame, const io::SegmentRef& seg) {
          ReadyFrame ready;
          if (!parse_link_header(frame, ready.header)) {
            malformed = true;
            return;
          }
          ready.segment = seg;
          ready.payload = frame.data() + kLinkHeaderBytes;
          ready.payload_bytes = frame.size() - kLinkHeaderBytes;
          ready.session_flow = flow_;
          env_.ready->push_back(std::move(ready));
          ++stats_.frames_rx;
        });
    if (err != FrameError::none || malformed) {
      close(CloseReason::protocol);
      return;
    }
  }
}

bool Session::send_frame(const LinkHeader& header,
                         std::span<const std::uint8_t> payload) {
  if (!open()) {
    ++stats_.frames_dropped;
    return false;
  }
  const std::size_t frame_total =
      kFramePrefixBytes + kLinkHeaderBytes + payload.size();
  if (outbound_pending() + frame_total > env_.max_outbound_bytes) {
    ++stats_.frames_dropped;
    return false;
  }
  if (outbound_head_ >= kCompactBytes && outbound_head_ >= outbound_.size() / 2) {
    outbound_.erase(outbound_.begin(),
                    outbound_.begin() +
                        static_cast<std::ptrdiff_t>(outbound_head_));
    outbound_head_ = 0;
  }
  FrameEncoder::append_frame(outbound_, header, payload);
  ++stats_.frames_tx;
  flush_writes();
  return true;
}

void Session::on_writable() {
  flush_writes();
}

void Session::flush_writes() {
  while (open() && outbound_head_ < outbound_.size()) {
    const std::span<const std::uint8_t> pending(
        outbound_.data() + outbound_head_, outbound_.size() - outbound_head_);
    const IoResult r = write_some(fd_.get(), pending);
    if (r.status == IoStatus::ok && r.bytes > 0) {
      stats_.bytes_tx += r.bytes;
      outbound_head_ += r.bytes;
      if (r.bytes < pending.size()) {
        // Short write: the kernel buffer is full mid-frame. Count it and
        // keep the tail queued — the next writable event resumes at the
        // exact byte the stream stopped at.
        ++stats_.partial_writes;
      }
      continue;
    }
    if (r.status == IoStatus::would_block) {
      ++stats_.partial_writes;
      if (!want_write_) {
        want_write_ = true;
        update_interest();
      }
      return;
    }
    close(r.status == IoStatus::closed ? CloseReason::peer_reset
                                       : CloseReason::io_error);
    return;
  }
  if (outbound_head_ == outbound_.size()) {
    outbound_.clear();
    outbound_head_ = 0;
    if (want_write_) {
      want_write_ = false;
      update_interest();
    }
  }
}

void Session::resume_rx() {
  if (!open() || !rx_paused_) return;
  rx_paused_ = false;
  update_interest();
  // Whatever arrived while paused is still in the kernel buffer; the
  // level-triggered loop reports it on the next poll.
}

}  // namespace zipline::netio
