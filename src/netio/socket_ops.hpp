// zipline::netio — thin, signal-safe wrappers over BSD sockets.
//
// Everything above this file (event loop, sessions, transport) speaks in
// terms of these four ideas:
//
//   * Fd — RAII ownership of one file descriptor. Move-only; closing is
//     the destructor's job and nobody else's.
//   * IoResult — every read/write classified into the four outcomes a
//     nonblocking loop actually branches on: ok (n bytes moved),
//     would_block (EAGAIN/EWOULDBLOCK — re-arm interest and move on),
//     closed (orderly EOF on read, EPIPE/ECONNRESET on write — the peer
//     is gone, tear the session down gracefully), error (anything else).
//   * EINTR never escapes: read_some/write_some retry internally, so the
//     callers need no signal handling at all.
//   * SIGPIPE never fires: writes go through send(MSG_NOSIGNAL), so a
//     peer close surfaces as IoStatus::closed, not a process signal.
//
// All helpers are loopback/TCP oriented (the compressed-link sessions of
// netio/transport.hpp); none of them block except connect_tcp, which
// performs the handshake blocking and hands back a nonblocking fd — the
// accepting side runs an event loop, so a loopback handshake completes as
// soon as the kernel queues it.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

namespace zipline::netio {

/// RAII file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] explicit operator bool() const noexcept { return fd_ >= 0; }
  /// Releases ownership (caller closes).
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

enum class IoStatus : std::uint8_t {
  ok,           ///< `bytes` moved
  would_block,  ///< EAGAIN/EWOULDBLOCK — nothing moved, re-arm interest
  closed,       ///< peer gone: EOF on read; EPIPE/ECONNRESET on write
  error,        ///< anything else; `error` holds errno
};

struct IoResult {
  IoStatus status = IoStatus::ok;
  std::size_t bytes = 0;
  int error = 0;
};

/// recv() with EINTR retry. 0-byte reads report IoStatus::closed (orderly
/// shutdown); ECONNRESET also maps to closed.
[[nodiscard]] IoResult read_some(int fd, std::span<std::uint8_t> buf) noexcept;

/// send(MSG_NOSIGNAL) with EINTR retry — a dead peer yields
/// IoStatus::closed (EPIPE/ECONNRESET), never SIGPIPE. May move fewer
/// bytes than asked (short write); callers keep the rest queued.
[[nodiscard]] IoResult write_some(int fd,
                                  std::span<const std::uint8_t> buf) noexcept;

[[nodiscard]] bool set_nonblocking(int fd) noexcept;
/// Nagle off — the framed sessions write whole frames and want them on
/// the wire now.
void set_tcp_nodelay(int fd) noexcept;

/// Nonblocking loopback listener on `port` (0 = kernel-assigned).
/// `bound_port` receives the actual port. Invalid Fd on failure.
[[nodiscard]] Fd listen_tcp(std::uint16_t port, int backlog,
                            std::uint16_t* bound_port) noexcept;

/// Blocking loopback connect (the handshake), then the fd is switched to
/// nonblocking and TCP_NODELAY before it is returned. Invalid Fd on
/// failure.
[[nodiscard]] Fd connect_tcp(std::uint16_t port) noexcept;

/// accept() with EINTR retry; the returned fd is nonblocking +
/// TCP_NODELAY. Invalid Fd when the queue is empty (would_block) or on
/// error; `would_block` distinguishes the two.
[[nodiscard]] Fd accept_one(int listen_fd, bool* would_block) noexcept;

}  // namespace zipline::netio
