#include "crc/crc32.hpp"

#include <array>

namespace zipline::crc {

namespace {
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}
}  // namespace

void Crc32::update(std::uint8_t byte) noexcept {
  state_ = table()[(state_ ^ byte) & 0xFF] ^ (state_ >> 8);
}

void Crc32::update(std::span<const std::uint8_t> data) noexcept {
  for (const std::uint8_t b : data) update(b);
}

std::uint32_t Crc32::of(std::span<const std::uint8_t> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace zipline::crc
