// Standard reflected CRC-32 (IEEE 802.3 polynomial 0xEDB88320).
//
// Used by the gzip container of the DEFLATE baseline and by the Ethernet
// frame check sequence in the net substrate. This is the conventional CRC
// (init 0xFFFFFFFF, reflected, final XOR), distinct from the syndrome-mode
// plain remainder used by the GD transform.
#pragma once

#include <cstdint>
#include <span>

namespace zipline::crc {

class Crc32 {
 public:
  Crc32() = default;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::uint8_t byte) noexcept;

  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

  /// One-shot convenience.
  [[nodiscard]] static std::uint32_t of(std::span<const std::uint8_t> data) noexcept;

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace zipline::crc
