#include "crc/syndrome_crc.hpp"

#include "common/contracts.hpp"
#include "common/simd.hpp"

namespace zipline::crc {

SyndromeCrc::SyndromeCrc(Gf2Poly g, std::size_t n) : g_(g), m_(g.degree()), n_(n) {
  ZL_EXPECTS(m_ >= 1 && m_ <= 31);
  ZL_EXPECTS(n >= 1);
  const std::size_t byte_positions = (n + 7) / 8;
  tables_.resize(byte_positions);
  // x^(8j + k) mod g, built incrementally: start from x^0 and multiply by x.
  Gf2Poly power(1);
  for (std::size_t j = 0; j < byte_positions; ++j) {
    std::array<std::uint32_t, 256> single{};
    std::array<std::uint32_t, 8> bit_contrib{};
    for (int k = 0; k < 8; ++k) {
      bit_contrib[static_cast<std::size_t>(k)] =
          static_cast<std::uint32_t>(power.bits());
      power = (power * Gf2Poly(2)).mod(g_);
    }
    for (int b = 0; b < 256; ++b) {
      std::uint32_t acc = 0;
      for (int k = 0; k < 8; ++k) {
        if ((b >> k) & 1) acc ^= bit_contrib[static_cast<std::size_t>(k)];
      }
      single[static_cast<std::size_t>(b)] = acc;
    }
    tables_[j] = single;
  }
}

std::uint32_t SyndromeCrc::compute(const bits::BitVector& word) const {
  ZL_EXPECTS(word.size() == n_);
  // The syndrome is a plain XOR of per-(position, byte) contributions with
  // no loop-carried dependency, so every full 64-bit word folds through
  // the runtime-dispatched kernel (scalar slicing-by-8, or the vectorized
  // gather fold on hosts that have one — byte-identical by contract).
  const auto words = word.words();
  const std::size_t total_bytes = tables_.size();
  const std::size_t groups = total_bytes / 8;
  std::uint32_t acc =
      simd::active().crc_fold(tables_.data(), words.data(), groups);
  std::size_t byte_pos = groups * 8;
  if (byte_pos < total_bytes) {
    std::uint64_t value = words[groups];
    for (; byte_pos < total_bytes; ++byte_pos) {
      acc ^= tables_[byte_pos][value & 0xFF];
      value >>= 8;
    }
  }
  return acc;
}

void SyndromeCrc::compute_block(const std::uint64_t* words,
                                std::size_t stride, std::size_t count,
                                std::uint32_t* out) const {
  const std::size_t total_bytes = tables_.size();
  const std::size_t groups = total_bytes / 8;
  ZL_EXPECTS(stride >= (n_ + 63) / 64);
  simd::active().crc_fold_multi(tables_.data(), words, stride, groups, out,
                                count);
  if (groups * 8 == total_bytes) return;
  // Partial top word (n % 64 in (0, 56]): same scalar byte tail as
  // compute(), per row.
  for (std::size_t c = 0; c < count; ++c) {
    std::uint64_t value = words[c * stride + groups];
    std::uint32_t acc = out[c];
    for (std::size_t byte_pos = groups * 8; byte_pos < total_bytes;
         ++byte_pos) {
      acc ^= tables_[byte_pos][value & 0xFF];
      value >>= 8;
    }
    out[c] = acc;
  }
}

std::uint32_t SyndromeCrc::single_bit(std::size_t position) const {
  ZL_EXPECTS(position < n_);
  return tables_[position / 8][std::size_t{1} << (position % 8)];
}

std::uint32_t SyndromeCrc::compute_slow(Gf2Poly g, const bits::BitVector& word) {
  const int m = g.degree();
  ZL_EXPECTS(m >= 1 && m <= 31);
  std::uint32_t rem = 0;
  const std::uint32_t top = std::uint32_t{1} << m;
  const auto gbits = static_cast<std::uint32_t>(g.bits());
  for (std::size_t i = word.size(); i-- > 0;) {
    rem = (rem << 1) | static_cast<std::uint32_t>(word.get(i));
    if (rem & top) rem ^= gbits;
  }
  return rem;
}

}  // namespace zipline::crc
