#include "crc/syndrome_crc.hpp"

#include "common/contracts.hpp"

namespace zipline::crc {

SyndromeCrc::SyndromeCrc(Gf2Poly g, std::size_t n) : g_(g), m_(g.degree()), n_(n) {
  ZL_EXPECTS(m_ >= 1 && m_ <= 31);
  ZL_EXPECTS(n >= 1);
  const std::size_t byte_positions = (n + 7) / 8;
  tables_.resize(byte_positions);
  // x^(8j + k) mod g, built incrementally: start from x^0 and multiply by x.
  Gf2Poly power(1);
  for (std::size_t j = 0; j < byte_positions; ++j) {
    std::array<std::uint32_t, 256> single{};
    std::array<std::uint32_t, 8> bit_contrib{};
    for (int k = 0; k < 8; ++k) {
      bit_contrib[static_cast<std::size_t>(k)] =
          static_cast<std::uint32_t>(power.bits());
      power = (power * Gf2Poly(2)).mod(g_);
    }
    for (int b = 0; b < 256; ++b) {
      std::uint32_t acc = 0;
      for (int k = 0; k < 8; ++k) {
        if ((b >> k) & 1) acc ^= bit_contrib[static_cast<std::size_t>(k)];
      }
      single[static_cast<std::size_t>(b)] = acc;
    }
    tables_[j] = single;
  }
}

std::uint32_t SyndromeCrc::compute(const bits::BitVector& word) const {
  ZL_EXPECTS(word.size() == n_);
  std::uint32_t acc = 0;
  const auto words = word.words();
  const std::size_t total_bytes = tables_.size();
  std::size_t byte_pos = 0;
  for (const std::uint64_t w : words) {
    if (byte_pos + 8 <= total_bytes) {
      // Slicing-by-8: the syndrome is a plain XOR of per-(position, byte)
      // contributions, so a full 64-bit word folds into eight independent
      // table loads with no loop-carried dependency and no branches.
      const auto* t = &tables_[byte_pos];
      acc ^= t[0][w & 0xFF] ^ t[1][(w >> 8) & 0xFF] ^ t[2][(w >> 16) & 0xFF] ^
             t[3][(w >> 24) & 0xFF] ^ t[4][(w >> 32) & 0xFF] ^
             t[5][(w >> 40) & 0xFF] ^ t[6][(w >> 48) & 0xFF] ^
             t[7][(w >> 56) & 0xFF];
      byte_pos += 8;
      continue;
    }
    std::uint64_t value = w;
    for (; byte_pos < total_bytes; ++byte_pos) {
      acc ^= tables_[byte_pos][value & 0xFF];
      value >>= 8;
    }
  }
  return acc;
}

std::uint32_t SyndromeCrc::single_bit(std::size_t position) const {
  ZL_EXPECTS(position < n_);
  return tables_[position / 8][std::size_t{1} << (position % 8)];
}

std::uint32_t SyndromeCrc::compute_slow(Gf2Poly g, const bits::BitVector& word) {
  const int m = g.degree();
  ZL_EXPECTS(m >= 1 && m <= 31);
  std::uint32_t rem = 0;
  const std::uint32_t top = std::uint32_t{1} << m;
  const auto gbits = static_cast<std::uint32_t>(g.bits());
  for (std::size_t i = word.size(); i-- > 0;) {
    rem = (rem << 1) | static_cast<std::uint32_t>(word.get(i));
    if (rem & top) rem ^= gbits;
  }
  return rem;
}

}  // namespace zipline::crc
