// Polynomials over GF(2) with degree < 64, bit i = coefficient of x^i.
//
// These back the Hamming-code generator polynomials from paper Table 1 and
// the primitivity checks that guarantee the codes are perfect (every
// non-zero m-bit syndrome corresponds to exactly one single-bit error
// position, which is what makes the GD transform total).
#pragma once

#include <cstdint>
#include <string>

namespace zipline::crc {

class Gf2Poly {
 public:
  constexpr Gf2Poly() = default;
  constexpr explicit Gf2Poly(std::uint64_t bits) : bits_(bits) {}

  /// Builds x^m + (lower terms given by `crc_param`), the encoding used by
  /// the "Parameter for CRC-m" column of paper Table 1.
  static constexpr Gf2Poly from_crc_param(int m, std::uint64_t crc_param) {
    return Gf2Poly((std::uint64_t{1} << m) | crc_param);
  }

  [[nodiscard]] constexpr std::uint64_t bits() const noexcept { return bits_; }

  /// The CRC-m parameter form: polynomial minus its leading term.
  [[nodiscard]] std::uint64_t crc_param() const;

  [[nodiscard]] int degree() const noexcept;  // -1 for the zero polynomial
  [[nodiscard]] constexpr bool is_zero() const noexcept { return bits_ == 0; }

  [[nodiscard]] friend constexpr bool operator==(Gf2Poly, Gf2Poly) = default;

  [[nodiscard]] Gf2Poly operator^(Gf2Poly o) const noexcept {
    return Gf2Poly(bits_ ^ o.bits_);
  }

  /// Carry-less product; the degrees must sum below 64.
  [[nodiscard]] Gf2Poly operator*(Gf2Poly o) const;

  /// Remainder of this modulo `g` (g non-zero).
  [[nodiscard]] Gf2Poly mod(Gf2Poly g) const;

  /// Polynomial GCD.
  [[nodiscard]] static Gf2Poly gcd(Gf2Poly a, Gf2Poly b);

  /// x^e mod g, with e allowed to be large (square and multiply).
  [[nodiscard]] static Gf2Poly x_pow_mod(std::uint64_t e, Gf2Poly g);

  /// True if this polynomial is irreducible over GF(2).
  [[nodiscard]] bool is_irreducible() const;

  /// True if this polynomial is primitive (irreducible and x generates the
  /// full multiplicative group of GF(2^deg)). Primitive generators are what
  /// Hamming codes require.
  [[nodiscard]] bool is_primitive() const;

  /// Human-readable form such as "x^8 + x^4 + x^3 + x^2 + 1".
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t bits_ = 0;
};

/// Default (paper Table 1) generator polynomial for Hamming(2^m-1, 2^m-m-1);
/// valid for m in [3, 15].
Gf2Poly default_hamming_generator(int m);

}  // namespace zipline::crc
