// Syndrome-mode CRC: the plain polynomial remainder B(x) mod g(x).
//
// This is the formulation ZipLine programs into the Tofino CRC extern: no
// pre-multiplication by x^m, no initial value, no reflection, no final
// XOR. Under it, the CRC of an n-bit word equals the Hamming syndrome
// B·Hᵀ (paper §2, verified against Table 2), and the CRC of a zero-padded
// basis u(x)·x^m equals the parity bits truncated by the encoder.
//
// The engine is built for a fixed input length n and precomputes
// byte-granular contribution tables (the matrix form CRC(B) = B·Hᵀ from
// §2: the CRC of every single-bit word is precomputed and byte-folded), so
// computing a 255-bit syndrome costs 32 table lookups.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitvector.hpp"
#include "crc/polynomial.hpp"

namespace zipline::crc {

class SyndromeCrc {
 public:
  /// g must have degree m in [1, 31]; n is the fixed input width in bits.
  SyndromeCrc(Gf2Poly g, std::size_t n);

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] Gf2Poly generator() const noexcept { return g_; }

  /// Syndrome of an n-bit word (word.size() must equal n).
  [[nodiscard]] std::uint32_t compute(const bits::BitVector& word) const;

  /// Syndromes of `count` n-bit words laid out as a word-plane: row c is
  /// words[c*stride .. c*stride + words_for(n)), trimmed to n bits (bits
  /// at and above n zero). stride must be >= words_for(n) = ceil(n/64).
  /// Writes out[0..count). Equivalent to calling compute() per row, but
  /// folds every row through the multi-stream kernel — the independent
  /// XOR chains hide the table-load latency one chain cannot.
  void compute_block(const std::uint64_t* words, std::size_t stride,
                     std::size_t count, std::uint32_t* out) const;

  /// Syndrome of the single-bit word x^position (position < n).
  [[nodiscard]] std::uint32_t single_bit(std::size_t position) const;

  /// Reference bit-serial implementation, any length (used for testing and
  /// for inputs whose width differs from n).
  [[nodiscard]] static std::uint32_t compute_slow(Gf2Poly g,
                                                  const bits::BitVector& word);

 private:
  Gf2Poly g_;
  int m_;
  std::size_t n_;
  // tables_[j][b] = contribution of byte value b at byte position j, where
  // byte position j covers polynomial powers [8j, 8j+8).
  std::vector<std::array<std::uint32_t, 256>> tables_;
};

}  // namespace zipline::crc
