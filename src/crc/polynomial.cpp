#include "crc/polynomial.hpp"

#include <array>
#include <bit>

#include "common/contracts.hpp"

namespace zipline::crc {

std::uint64_t Gf2Poly::crc_param() const {
  const int d = degree();
  ZL_EXPECTS(d >= 0);
  return bits_ ^ (std::uint64_t{1} << d);
}

int Gf2Poly::degree() const noexcept {
  return bits_ == 0 ? -1 : 63 - std::countl_zero(bits_);
}

Gf2Poly Gf2Poly::operator*(Gf2Poly o) const {
  if (bits_ == 0 || o.bits_ == 0) return Gf2Poly(0);
  ZL_EXPECTS(degree() + o.degree() < 64);
  std::uint64_t acc = 0;
  std::uint64_t a = bits_;
  const std::uint64_t b = o.bits_;
  for (int shift = 0; a != 0; ++shift, a >>= 1) {
    if (a & 1) acc ^= b << shift;
  }
  return Gf2Poly(acc);
}

Gf2Poly Gf2Poly::mod(Gf2Poly g) const {
  ZL_EXPECTS(!g.is_zero());
  std::uint64_t rem = bits_;
  const int gd = g.degree();
  for (int d = degree(); d >= gd; --d) {
    if ((rem >> d) & 1) rem ^= g.bits_ << (d - gd);
  }
  return Gf2Poly(rem);
}

Gf2Poly Gf2Poly::gcd(Gf2Poly a, Gf2Poly b) {
  while (!b.is_zero()) {
    const Gf2Poly r = a.mod(b);
    a = b;
    b = r;
  }
  return a;
}

Gf2Poly Gf2Poly::x_pow_mod(std::uint64_t e, Gf2Poly g) {
  ZL_EXPECTS(g.degree() >= 1);
  Gf2Poly result(1);            // x^0
  Gf2Poly base = Gf2Poly(2).mod(g);  // x mod g
  while (e != 0) {
    if (e & 1) result = (result * base).mod(g);
    base = (base * base).mod(g);
    e >>= 1;
  }
  return result;
}

bool Gf2Poly::is_irreducible() const {
  const int m = degree();
  if (m < 1) return false;
  if (m == 1) return true;
  // Rabin's test: x^(2^m) == x mod f, and gcd(x^(2^(m/p)) - x, f) == 1 for
  // every prime p dividing m.
  auto frobenius_power = [&](int i) {
    // Computes x^(2^i) mod *this by repeated squaring of x.
    Gf2Poly acc = Gf2Poly(2).mod(*this);
    for (int j = 0; j < i; ++j) acc = (acc * acc).mod(*this);
    return acc;
  };
  if (frobenius_power(m) != Gf2Poly(2).mod(*this)) return false;
  for (int p = 2; p <= m; ++p) {
    if (m % p != 0) continue;
    bool prime = true;
    for (int q = 2; q * q <= p; ++q) {
      if (p % q == 0) prime = false;
    }
    if (!prime) continue;
    const Gf2Poly h = frobenius_power(m / p) ^ Gf2Poly(2).mod(*this);
    if (gcd(h, *this).degree() != 0) return false;
  }
  return true;
}

bool Gf2Poly::is_primitive() const {
  const int m = degree();
  if (m < 1 || !is_irreducible()) return false;
  if ((bits_ & 1) == 0) return false;  // x divides it -> not primitive
  const std::uint64_t order = (std::uint64_t{1} << m) - 1;
  if (x_pow_mod(order, *this) != Gf2Poly(1)) return false;
  // x must not have any smaller order: check all maximal proper divisors
  // order / p for the prime factors p of order.
  std::uint64_t n = order;
  for (std::uint64_t p = 2; p * p <= n; ++p) {
    if (n % p != 0) continue;
    while (n % p == 0) n /= p;
    if (x_pow_mod(order / p, *this) == Gf2Poly(1)) return false;
  }
  if (n > 1 && n != order) {
    if (x_pow_mod(order / n, *this) == Gf2Poly(1)) return false;
  }
  return true;
}

std::string Gf2Poly::to_string() const {
  if (bits_ == 0) return "0";
  std::string s;
  for (int d = degree(); d >= 0; --d) {
    if (!((bits_ >> d) & 1)) continue;
    if (!s.empty()) s += " + ";
    if (d == 0) {
      s += "1";
    } else if (d == 1) {
      s += "x";
    } else {
      s += "x^" + std::to_string(d);
    }
  }
  return s;
}

Gf2Poly default_hamming_generator(int m) {
  ZL_EXPECTS(m >= 3 && m <= 15);
  // Paper Table 1 (first row for each m). Bits include the leading x^m term.
  static constexpr std::array<std::uint64_t, 16> table = {
      0,      0,      0,
      0xB,    // m=3:  x^3 + x + 1
      0x13,   // m=4:  x^4 + x + 1
      0x25,   // m=5:  x^5 + x^2 + 1
      0x43,   // m=6:  x^6 + x + 1
      0x89,   // m=7:  x^7 + x^3 + 1
      0x11D,  // m=8:  x^8 + x^4 + x^3 + x^2 + 1
      0x211,  // m=9:  x^9 + x^4 + 1
      0x409,  // m=10: x^10 + x^3 + 1
      0x805,  // m=11: x^11 + x^2 + 1
      0x1053, // m=12: x^12 + x^6 + x^4 + x + 1
      0x201B, // m=13: x^13 + x^4 + x^3 + x + 1
      0x4143, // m=14: x^14 + x^8 + x^6 + x + 1
      0x8003, // m=15: x^15 + x + 1
  };
  return Gf2Poly(table[static_cast<std::size_t>(m)]);
}

}  // namespace zipline::crc
