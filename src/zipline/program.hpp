// The ZipLine switch program: GD encode/decode as a Tofino pipeline.
//
// Encoding (paper Fig. 1) runs in the ingress control:
//   1. CRC extern computes the syndrome of the chunk's low n bits;
//   2. a constant-entry mask table maps the syndrome to the bit-flip mask;
//   3. the XOR produces the canonical word; parity truncation leaves the
//      basis;
//   4. the basis table (managed by the control plane) either yields a short
//      identifier (packet type 3) or misses, emitting a digest and leaving
//      the packet as basis + syndrome (type 2).
// Decoding (paper Fig. 2) runs in the egress control — the paper's §6
// lesson about artificially extending the pipeline:
//   1. the identifier table restores the basis (type 3 only);
//   2. a second CRC extern instance regenerates the parity bits from the
//      zero-padded basis;
//   3. the same syndrome mask table flips the deviation bit back.
// Per-packet-type counters mirror §5's classification statistics.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>

#include "engine/batch.hpp"
#include "gd/packet.hpp"
#include "gd/params.hpp"
#include "hamming/hamming.hpp"
#include "tofino/externs.hpp"
#include "tofino/pipeline.hpp"
#include "tofino/table.hpp"

namespace zipline::prog {

enum class SwitchOp : std::uint8_t {
  forward,  ///< plain L2 forwarding ("no op" baseline in Figs. 4/5)
  encode,   ///< GD compression
  decode,   ///< GD decompression
};

enum class LearningMode : std::uint8_t {
  none,           ///< static table: misses stay type 2, no digests
  control_plane,  ///< paper's shipped design: digests + CP installs
  data_plane,     ///< paper's abandoned register design (instant learning)
};

/// Packet classification counter indices (§5: "packets are classified
/// according to how they are transformed").
enum class PacketClass : std::size_t {
  passthrough = 0,
  raw_to_type2,
  raw_to_type3,
  type2_to_raw,
  type3_to_raw,
  decode_unknown_id,  ///< type 3 with no mapping: dropped
  count,
};

struct ZipLineConfig {
  gd::GdParams params;
  SwitchOp op = SwitchOp::forward;
  LearningMode learning = LearningMode::control_plane;
  /// Idle timeout used by basis/identifier table entries (TNA per-entry
  /// TTL); 0 disables expiry.
  SimTime table_ttl = 0;
};

class ZipLineProgram final : public tofino::PipelineProgram {
 public:
  explicit ZipLineProgram(const ZipLineConfig& config);

  // --- PipelineProgram -------------------------------------------------
  void parse(const net::EthernetFrame& frame, tofino::Phv& phv) override;
  void ingress(tofino::Phv& phv) override;
  void egress(tofino::Phv& phv) override;
  [[nodiscard]] net::EthernetFrame deparse(const tofino::Phv& phv) override;
  [[nodiscard]] std::string resource_report() const override;

  // --- wiring (control-plane / simulator access) -----------------------

  /// Sets static port forwarding: frames entering `in` leave through `out`.
  void set_port_forward(tofino::PortId in, tofino::PortId out);

  [[nodiscard]] const ZipLineConfig& config() const noexcept { return config_; }

  /// Encoder-side basis -> identifier table (control-plane managed).
  [[nodiscard]] tofino::ExactMatchTable& basis_table() { return basis_table_; }
  /// Decoder-side identifier -> basis table.
  [[nodiscard]] tofino::ExactMatchTable& id_table() { return id_table_; }
  /// Digest stream announcing unknown bases to the control plane.
  [[nodiscard]] tofino::DigestStream& digests() { return digests_; }
  /// Classification counters.
  [[nodiscard]] const tofino::CounterArray& class_counters() const {
    return class_counters_;
  }
  [[nodiscard]] std::uint64_t class_packets(PacketClass c) const {
    return class_counters_.packets(static_cast<std::size_t>(c));
  }
  [[nodiscard]] std::uint64_t class_bytes(PacketClass c) const {
    return class_counters_.bytes(static_cast<std::size_t>(c));
  }

  /// Convenience used by experiments: preloads one basis/identifier pair
  /// into both tables (static-table mode).
  void install_mapping(std::uint32_t id, const bits::BitVector& basis,
                       SimTime now);

  /// Control-plane two-phase installs (§5): the decoder-side ID->basis
  /// mapping must exist before the encoder-side basis->ID mapping so that
  /// compressed packets can always be uncompressed.
  void install_decoder_mapping(std::uint32_t id, const bits::BitVector& basis,
                               SimTime now);
  void install_encoder_mapping(std::uint32_t id, const bits::BitVector& basis,
                               SimTime now);

 private:
  void encode_chunk(tofino::Phv& phv);
  void decode_packet(tofino::Phv& phv, gd::PacketType type);
  void classify(tofino::Phv& phv, PacketClass cls, std::size_t payload_bytes);

  [[nodiscard]] std::uint32_t register_slot(const bits::BitVector& basis) const;

  ZipLineConfig config_;
  hamming::HammingCode code_;

  // Data-plane resources.
  tofino::CrcExtern syndrome_crc_;      // chunk word -> syndrome
  tofino::CrcExtern parity_crc_;        // zero-padded basis -> parity
  tofino::ExactMatchTable mask_table_;  // syndrome -> flip mask (constant)
  tofino::ExactMatchTable basis_table_; // basis -> id (encode side)
  tofino::ExactMatchTable id_table_;    // id -> basis (decode side)
  tofino::DigestStream digests_;
  tofino::CounterArray class_counters_;

  // Register-based learning (ablation of the paper's abandoned design).
  tofino::RegisterArray reg_bases_;
  tofino::RegisterArray reg_valid_;

  std::unordered_map<tofino::PortId, tofino::PortId> port_forward_;
};

struct BatchRunResult {
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  SimTime end_time = 0;  ///< timestamp after the last packet
};

/// Batch entry into the switch model: runs every packet of `in` through
/// the full parse/ingress/egress/deparse pipeline as a ZipLine frame
/// entering `ingress_port`, one per `gap` ns starting at `start_at`.
/// Surviving output packets are appended to `out` (when non-null) with
/// their wire type taken from the output EtherType; descriptor metadata
/// (syndrome/basis_id) is zero, as for any packet observed on the wire.
/// One frame buffer is reused across the batch, so the per-packet cost is
/// the pipeline itself rather than allocation.
BatchRunResult run_batch(tofino::SwitchModel& sw,
                         const engine::EncodeBatch& in,
                         engine::EncodeBatch* out,
                         tofino::PortId ingress_port, SimTime start_at = 0,
                         SimTime gap = 1);

/// Runs several staged batches through the pipeline back to back — the
/// shape the parallel stager (engine/parallel.hpp) produces, one unit per
/// batch in submission order. The switch model is a single pipeline (as
/// the hardware is) with ONE table per direction, so batches staged by a
/// shared-dictionary stager (engine::DictionaryOwnership::shared) enter in
/// exactly the dictionary order they were encoded with; counters and the
/// returned totals aggregate across the whole span.
BatchRunResult run_batches(tofino::SwitchModel& sw,
                           std::span<const engine::EncodeBatch> in,
                           engine::EncodeBatch* out,
                           tofino::PortId ingress_port, SimTime start_at = 0,
                           SimTime gap = 1);

}  // namespace zipline::prog
