// The ZipLine control plane (paper §5, "Recording a new basis-ID mapping
// is done in two phases").
//
// The paper implements this in Python over BfRt; here it is a C++ model
// with explicit latencies so the headline dynamic-learning number
// (1.77 ± 0.08 ms from digest-worthy packet to first compressed packet)
// is reproduced from its constituent delays rather than asserted:
//
//   digest export  ->  CP wakeup + processing  ->  install ID->basis in the
//   decoder (destination switch)  ->  install basis->ID in the encoder
//
// Identifier management: unused identifiers are handed out first (least
// recently used order); once exhausted, the LRU mapping is evicted and its
// identifier recycled — recency being tracked through the encoder table's
// per-entry TTL/last-hit timestamps, the TNA feature the paper leans on.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "gd/dictionary.hpp"
#include "zipline/program.hpp"

namespace zipline::prog {

struct ControlPlaneTiming {
  /// Data plane -> CP digest export/transport latency.
  SimTime digest_export = 250000;  // 0.25 ms
  /// CP wakeup, dedupe, identifier selection.
  SimTime processing = 520000;  // 0.52 ms
  /// BfRt table write on the decoder (destination) switch.
  SimTime install_decoder = 500000;  // 0.50 ms
  /// BfRt table write on the encoder (source) switch.
  SimTime install_encoder = 500000;  // 0.50 ms
  /// Gaussian jitter applied to each stage (scaled by stage share).
  SimTime jitter_sigma = 40000;  // 0.04 ms overall

  [[nodiscard]] SimTime total() const {
    return digest_export + processing + install_decoder + install_encoder;
  }
};

struct ControllerStats {
  std::uint64_t digests_seen = 0;
  std::uint64_t duplicate_digests = 0;  ///< basis already learned/in flight
  std::uint64_t mappings_installed = 0;
  std::uint64_t evictions = 0;
};

class Controller {
 public:
  /// `encoder` is the switch program whose basis table is fed; `decoder`
  /// is the destination-side program (may be the same object when a single
  /// switch handles both directions, as in the paper's testbed).
  Controller(Scheduler& scheduler, ZipLineProgram& encoder,
             ZipLineProgram& decoder, ControlPlaneTiming timing = {},
             std::uint64_t seed = 0xC0117011);

  /// Polls the encoder's digest stream; call after pipeline activity.
  /// Schedules the learning pipeline for each new digest.
  void poll_digests();

  /// Pre-populates both switches (and the identifier pool) — the paper's
  /// "static table" configuration.
  void preload(const bits::BitVector& basis);

  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ControlPlaneTiming& timing() const noexcept {
    return timing_;
  }

 private:
  void on_digest(const bits::BitVector& basis);
  void begin_learning(const bits::BitVector& basis);
  [[nodiscard]] SimTime jittered(SimTime nominal, double share);

  Scheduler& scheduler_;
  ZipLineProgram& encoder_;
  ZipLineProgram& decoder_;
  ControlPlaneTiming timing_;
  Rng rng_;

  /// CP-side identifier pool; recency mirrors data-plane hits only at
  /// eviction time (see pick_identifier).
  gd::BasisDictionary pool_;
  std::unordered_set<bits::BitVector, bits::BitVectorHash> in_flight_;
  ControllerStats stats_;
};

}  // namespace zipline::prog
