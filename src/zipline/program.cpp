#include "zipline/program.hpp"

#include <sstream>

#include "common/contracts.hpp"

namespace zipline::prog {

namespace {
// PHV field names (grouped like P4 header instances).
constexpr const char* kEthDst = "eth.dst";
constexpr const char* kEthSrc = "eth.src";
constexpr const char* kEthType = "eth.type";
constexpr const char* kChunk = "gd.chunk";
constexpr const char* kSyndrome = "gd.syndrome";
constexpr const char* kExcess = "gd.excess";
constexpr const char* kBasis = "gd.basis";
constexpr const char* kId = "gd.id";
constexpr const char* kOutType = "meta.out_type";  // gd::PacketType
constexpr const char* kProcessed = "meta.processed";

bits::BitVector mac_to_bits(const net::MacAddress& mac) {
  bits::BitVector v(48);
  std::uint64_t value = 0;
  for (const auto octet : mac.octets()) {
    value = (value << 8) | octet;
  }
  return bits::BitVector(48, value);
}

net::MacAddress bits_to_mac(const bits::BitVector& v) {
  const std::uint64_t value = v.to_uint64();
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    octets[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * (5 - i)));
  }
  return net::MacAddress(octets);
}
}  // namespace

ZipLineProgram::ZipLineProgram(const ZipLineConfig& config)
    : config_(config),
      code_(config.params.m, config.params.resolved_generator()),
      syndrome_crc_(config.params.resolved_generator(), config.params.n()),
      parity_crc_(config.params.resolved_generator(), config.params.n()),
      mask_table_("syndrome_mask", std::size_t{1} << config.params.m),
      basis_table_("basis_to_id", config.params.dictionary_capacity(),
                   config.table_ttl),
      id_table_("id_to_basis", config.params.dictionary_capacity(),
                config.table_ttl),
      digests_("unknown_basis"),
      class_counters_("packet_class",
                      static_cast<std::size_t>(PacketClass::count)),
      reg_bases_("reg_bases", config.params.dictionary_capacity(),
                 config.params.k()),
      reg_valid_("reg_valid", config.params.dictionary_capacity(), 1) {
  config_.params.validate();
  // Constant mask-table entries, precomputed offline exactly as the paper
  // does with its Boost.CRC helper program (§5): syndrome -> n-bit flip
  // mask. Syndrome 0 is absent: the P4 table miss leaves the word as-is.
  const std::size_t n = config_.params.n();
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::uint32_t s = code_.syndrome_of_position(pos);
    bits::BitVector mask(n);
    mask.set(pos);
    mask_table_.install(
        bits::BitVector(static_cast<std::size_t>(config_.params.m), s), mask,
        /*now=*/0);
  }
  // Default two-port wiring used by all experiments.
  port_forward_ = {{1, 2}, {2, 1}};
}

void ZipLineProgram::set_port_forward(tofino::PortId in, tofino::PortId out) {
  port_forward_[in] = out;
}

void ZipLineProgram::parse(const net::EthernetFrame& frame,
                           tofino::Phv& phv) {
  phv.declare(kEthDst, 48);
  phv.declare(kEthSrc, 48);
  phv.declare(kEthType, 16);
  phv.declare(kOutType, 8);
  phv.declare(kProcessed, 1);
  phv.set(kEthDst, mac_to_bits(frame.dst));
  phv.set(kEthSrc, mac_to_bits(frame.src));
  phv.set_uint(kEthType, frame.ether_type);
  phv.set_uint(kProcessed, 0);
  phv.payload = frame.payload;
}

void ZipLineProgram::classify(tofino::Phv& phv, PacketClass cls,
                              std::size_t payload_bytes) {
  (void)phv;
  class_counters_.count(static_cast<std::size_t>(cls), payload_bytes);
}

std::uint32_t ZipLineProgram::register_slot(
    const bits::BitVector& basis) const {
  return static_cast<std::uint32_t>(basis.hash() %
                                    config_.params.dictionary_capacity());
}

void ZipLineProgram::ingress(tofino::Phv& phv) {
  // L2 forwarding decision first (both directions, all ops).
  const auto it = phv.meta.ingress_port == 0
                      ? port_forward_.end()
                      : port_forward_.find(phv.meta.ingress_port);
  if (it == port_forward_.end()) {
    phv.meta.drop = true;
    return;
  }
  phv.meta.egress_port = it->second;

  if (config_.op != SwitchOp::encode) return;

  // Only frames marked with the ZipLine raw EtherType carry a chunk; the
  // parser extracts it as a fixed-size header, ignoring any minimum-frame
  // padding behind it (P4 parsers extract fixed-width headers the same
  // way). Everything else passes through untouched.
  const auto ether = static_cast<std::uint16_t>(phv.get_uint(kEthType));
  const bool is_chunk =
      gd::is_zipline_ether_type(ether) &&
      gd::packet_type_for_ether(ether) == gd::PacketType::raw &&
      phv.payload.size() >= config_.params.raw_payload_bytes();
  if (!is_chunk) {
    classify(phv, PacketClass::passthrough, phv.payload.size());
    return;
  }
  encode_chunk(phv);
}

void ZipLineProgram::encode_chunk(tofino::Phv& phv) {
  const auto& p = config_.params;
  const SimTime now = phv.meta.ingress_timestamp;

  // Load the chunk into the PHV (parser would place it in header fields);
  // only the first raw_payload_bytes() are the chunk, the rest is L2
  // minimum-frame padding.
  phv.declare(kChunk, p.chunk_bits);
  phv.set(kChunk,
          bits::BitVector::from_bytes(
              std::span(phv.payload).first(p.raw_payload_bytes()),
              p.chunk_bits));
  const bits::BitVector chunk = phv.get(kChunk);

  // Fig. 1 step 2: syndrome via the CRC extern.
  bits::BitVector word = chunk.slice(0, p.n());
  const std::uint32_t syndrome = syndrome_crc_.compute(word);

  // Fig. 1 steps 3-4: constant mask table + XOR. A zero syndrome misses
  // the table, leaving the word untouched.
  if (syndrome != 0) {
    const auto mask = mask_table_.lookup(
        bits::BitVector(static_cast<std::size_t>(p.m), syndrome), now);
    ZL_ASSERT(mask.has_value());
    word ^= *mask;
  }

  // Fig. 1 step 5: truncate parity -> basis; excess bits ride along.
  phv.declare(kBasis, p.k());
  phv.declare(kExcess, p.excess_bits());
  phv.declare(kSyndrome, static_cast<std::size_t>(p.m));
  phv.set(kBasis, word.slice(static_cast<std::size_t>(p.m), p.k()));
  phv.set(kExcess, chunk.slice(p.n(), p.excess_bits()));
  phv.set_uint(kSyndrome, syndrome);

  // Fig. 1 steps 6-7: basis table lookup / learning.
  const bits::BitVector& basis = phv.get(kBasis);
  std::optional<bits::BitVector> id_bits;
  switch (config_.learning) {
    case LearningMode::none:
    case LearningMode::control_plane:
      id_bits = basis_table_.lookup(basis, now);
      if (!id_bits && config_.learning == LearningMode::control_plane) {
        digests_.emit(basis, now);
      }
      break;
    case LearningMode::data_plane: {
      // The abandoned register design (§6): slot = hash(basis); learn
      // instantly in the data plane.
      const std::uint32_t slot = register_slot(basis);
      const bool valid = reg_valid_.read(slot).get(0);
      if (valid && reg_bases_.read(slot) == basis) {
        id_bits = bits::BitVector(p.id_bits, slot);
      } else {
        reg_bases_.write(slot, basis);
        bits::BitVector one(1);
        one.set(0);
        reg_valid_.write(slot, one);
      }
      break;
    }
  }

  phv.set_uint(kProcessed, 1);
  if (id_bits) {
    phv.declare(kId, p.id_bits);
    phv.set(kId, bits::BitVector(p.id_bits, id_bits->to_uint64()));
    phv.set_uint(kOutType,
                 static_cast<std::uint64_t>(gd::PacketType::compressed));
    classify(phv, PacketClass::raw_to_type3, p.type3_payload_bytes());
  } else {
    phv.set_uint(kOutType,
                 static_cast<std::uint64_t>(gd::PacketType::uncompressed));
    classify(phv, PacketClass::raw_to_type2, p.type2_payload_bytes());
  }
}

void ZipLineProgram::egress(tofino::Phv& phv) {
  if (config_.op != SwitchOp::decode) return;
  const auto ether = static_cast<std::uint16_t>(phv.get_uint(kEthType));
  if (!gd::is_zipline_ether_type(ether)) {
    classify(phv, PacketClass::passthrough, phv.payload.size());
    return;
  }
  const gd::PacketType type = gd::packet_type_for_ether(ether);
  if (type == gd::PacketType::raw) {
    classify(phv, PacketClass::passthrough, phv.payload.size());
    return;
  }
  decode_packet(phv, type);
}

void ZipLineProgram::decode_packet(tofino::Phv& phv, gd::PacketType type) {
  const auto& p = config_.params;
  const SimTime now = phv.meta.ingress_timestamp;
  const gd::GdPacket packet = gd::GdPacket::parse(p, type, phv.payload);

  bits::BitVector basis;
  if (type == gd::PacketType::compressed) {
    // Fig. 2 step 2: identifier -> basis.
    std::optional<bits::BitVector> found;
    if (config_.learning == LearningMode::data_plane) {
      const std::uint32_t slot = packet.basis_id;
      if (reg_valid_.read(slot).get(0)) found = reg_bases_.read(slot);
    } else {
      found = id_table_.lookup(bits::BitVector(p.id_bits, packet.basis_id), now);
    }
    if (!found) {
      // A compressed packet whose mapping is unknown cannot be restored;
      // drop and count. The two-phase install protocol (§5) exists to make
      // this impossible in a healthy deployment.
      classify(phv, PacketClass::decode_unknown_id, p.type3_payload_bytes());
      phv.meta.drop = true;
      return;
    }
    basis = *found;
  } else {
    basis = packet.basis;
    if (config_.learning == LearningMode::data_plane) {
      // Register design: the decoder learns from type-2 packets instantly.
      const std::uint32_t slot = register_slot(basis);
      reg_bases_.write(slot, basis);
      bits::BitVector one(1);
      one.set(0);
      reg_valid_.write(slot, one);
    }
  }

  // Fig. 2 steps 3-4: zero-pad the basis and regenerate parity by CRC.
  const std::uint32_t parity = parity_crc_.compute(
      basis.shifted_up(static_cast<std::size_t>(p.m)));
  bits::BitVector word = bits::BitVector::concat(
      basis, bits::BitVector(static_cast<std::size_t>(p.m), parity));

  // Fig. 2 steps 5-6: the same syndrome mask table restores the flip.
  if (packet.syndrome != 0) {
    const auto mask = mask_table_.lookup(
        bits::BitVector(static_cast<std::size_t>(p.m), packet.syndrome), now);
    ZL_ASSERT(mask.has_value());
    word ^= *mask;
  }

  // Fig. 2 step 7: re-attach the excess bits; packet leaves as raw.
  phv.declare(kChunk, p.chunk_bits);
  phv.set(kChunk, bits::BitVector::concat(packet.excess, word));
  phv.set_uint(kProcessed, 1);
  phv.set_uint(kOutType, static_cast<std::uint64_t>(gd::PacketType::raw));
  classify(phv,
           type == gd::PacketType::compressed ? PacketClass::type3_to_raw
                                              : PacketClass::type2_to_raw,
           p.raw_payload_bytes());
}

net::EthernetFrame ZipLineProgram::deparse(const tofino::Phv& phv) {
  net::EthernetFrame frame;
  frame.dst = bits_to_mac(phv.get(kEthDst));
  frame.src = bits_to_mac(phv.get(kEthSrc));
  if (phv.get_uint(kProcessed) == 0) {
    frame.ether_type = static_cast<std::uint16_t>(phv.get_uint(kEthType));
    frame.payload = phv.payload;
    return frame;
  }
  const auto& p = config_.params;
  const auto out_type = static_cast<gd::PacketType>(phv.get_uint(kOutType));
  frame.ether_type = gd::ether_type_for(out_type);
  switch (out_type) {
    case gd::PacketType::raw: {
      frame.payload = phv.get(kChunk).to_bytes();
      break;
    }
    case gd::PacketType::uncompressed: {
      const auto pkt = gd::GdPacket::make_uncompressed(
          static_cast<std::uint32_t>(phv.get_uint(kSyndrome)),
          phv.get(kExcess), phv.get(kBasis));
      frame.payload = pkt.serialize(p);
      break;
    }
    case gd::PacketType::compressed: {
      const auto pkt = gd::GdPacket::make_compressed(
          static_cast<std::uint32_t>(phv.get_uint(kSyndrome)),
          phv.get(kExcess),
          static_cast<std::uint32_t>(phv.get_uint(kId)));
      frame.payload = pkt.serialize(p);
      break;
    }
  }
  return frame;
}

void ZipLineProgram::install_mapping(std::uint32_t id,
                                     const bits::BitVector& basis,
                                     SimTime now) {
  // Decoder-side mapping first, then encoder-side — the two-phase order
  // that guarantees compressed packets can always be uncompressed (§5).
  install_decoder_mapping(id, basis, now);
  install_encoder_mapping(id, basis, now);
}

void ZipLineProgram::install_decoder_mapping(std::uint32_t id,
                                             const bits::BitVector& basis,
                                             SimTime now) {
  ZL_EXPECTS(basis.size() == config_.params.k());
  ZL_EXPECTS(id < config_.params.dictionary_capacity());
  id_table_.install(bits::BitVector(config_.params.id_bits, id), basis, now);
}

void ZipLineProgram::install_encoder_mapping(std::uint32_t id,
                                             const bits::BitVector& basis,
                                             SimTime now) {
  ZL_EXPECTS(basis.size() == config_.params.k());
  ZL_EXPECTS(id < config_.params.dictionary_capacity());
  basis_table_.install(basis, bits::BitVector(config_.params.id_bits, id),
                       now);
}

BatchRunResult run_batch(tofino::SwitchModel& sw,
                         const engine::EncodeBatch& in,
                         engine::EncodeBatch* out,
                         tofino::PortId ingress_port, SimTime start_at,
                         SimTime gap) {
  net::EthernetFrame frame;
  frame.dst = net::MacAddress::local(2);
  frame.src = net::MacAddress::local(1);
  BatchRunResult result;
  SimTime t = start_at;
  for (const engine::PacketDesc& desc : in.packets()) {
    const auto payload = in.payload(desc);
    frame.ether_type = gd::ether_type_for(desc.type);
    frame.payload.assign(payload.begin(), payload.end());
    const auto processed = sw.process(frame, ingress_port, t);
    t += gap;
    if (processed.dropped) {
      ++result.dropped;
      continue;
    }
    ++result.forwarded;
    if (out != nullptr) {
      const gd::PacketType type =
          gd::is_zipline_ether_type(processed.frame.ether_type)
              ? gd::packet_type_for_ether(processed.frame.ether_type)
              : gd::PacketType::raw;
      out->append(type, 0, 0, processed.frame.payload);
    }
  }
  result.end_time = t;
  return result;
}

BatchRunResult run_batches(tofino::SwitchModel& sw,
                           std::span<const engine::EncodeBatch> in,
                           engine::EncodeBatch* out,
                           tofino::PortId ingress_port, SimTime start_at,
                           SimTime gap) {
  BatchRunResult total;
  total.end_time = start_at;
  for (const engine::EncodeBatch& batch : in) {
    const BatchRunResult result =
        run_batch(sw, batch, out, ingress_port, total.end_time, gap);
    total.forwarded += result.forwarded;
    total.dropped += result.dropped;
    total.end_time = result.end_time;
  }
  return total;
}

std::string ZipLineProgram::resource_report() const {
  const auto& p = config_.params;
  std::ostringstream out;
  out << "ZipLine program resources (m=" << p.m << ", n=" << p.n()
      << ", k=" << p.k() << ", id_bits=" << p.id_bits << ")\n";
  out << "  mask table:   " << mask_table_.size() << "/"
      << mask_table_.capacity() << " entries, "
      << mask_table_.sram_bits_estimate() / 8 << " B SRAM (constant)\n";
  out << "  basis table:  " << basis_table_.size() << "/"
      << basis_table_.capacity() << " entries, "
      << basis_table_.sram_bits_estimate() / 8 << " B SRAM\n";
  out << "  id table:     " << id_table_.size() << "/" << id_table_.capacity()
      << " entries, " << id_table_.sram_bits_estimate() / 8 << " B SRAM\n";
  out << "  CRC externs:  syndrome=" << syndrome_crc_.invocations()
      << " invocations, parity=" << parity_crc_.invocations()
      << " invocations\n";
  out << "  digests:      " << digests_.emitted() << " emitted, "
      << digests_.dropped() << " dropped\n";
  out << "  type-2 padding: "
      << (p.model_tofino_padding ? p.type2_extra_pad_bits : 0)
      << " bits/packet (container alignment, paper's 3% overhead)\n";
  return out.str();
}

}  // namespace zipline::prog
