#include "zipline/controller.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace zipline::prog {

Controller::Controller(Scheduler& scheduler, ZipLineProgram& encoder,
                       ZipLineProgram& decoder, ControlPlaneTiming timing,
                       std::uint64_t seed)
    : scheduler_(scheduler),
      encoder_(encoder),
      decoder_(decoder),
      timing_(timing),
      rng_(seed),
      pool_(encoder.config().params.dictionary_capacity(),
            gd::EvictionPolicy::lru) {
  ZL_EXPECTS(encoder.config().params.dictionary_capacity() ==
             decoder.config().params.dictionary_capacity());
}

SimTime Controller::jittered(SimTime nominal, double share) {
  const double sigma = static_cast<double>(timing_.jitter_sigma) * share;
  const double value =
      static_cast<double>(nominal) + rng_.next_normal(0.0, sigma);
  return std::max<SimTime>(static_cast<SimTime>(value), 0);
}

void Controller::poll_digests() {
  const auto records = encoder_.digests().drain(scheduler_.now());
  for (const auto& record : records) {
    // Digest transport to the CP process.
    const SimTime arrival =
        record.emitted_at + jittered(timing_.digest_export, 0.25);
    scheduler_.schedule(std::max(arrival, scheduler_.now()),
                        [this, basis = record.payload] { on_digest(basis); });
  }
}

void Controller::on_digest(const bits::BitVector& basis) {
  ++stats_.digests_seen;
  // Duplicate suppression: every packet of a still-unlearned basis emits a
  // digest; only the first one starts the learning pipeline.
  if (in_flight_.contains(basis) || pool_.peek(basis).has_value()) {
    ++stats_.duplicate_digests;
    return;
  }
  in_flight_.insert(basis);
  scheduler_.schedule(scheduler_.now() + jittered(timing_.processing, 0.5),
                      [this, basis] { begin_learning(basis); });
}

void Controller::begin_learning(const bits::BitVector& basis) {
  // Identifier selection (§5). Unused identifiers are handed out first;
  // when none remain, the eviction victim is the entry whose TTL in the
  // encoder's data-plane table is stalest — the table tracks hits, the CP
  // pool does not, so recency is grounded in the data plane.
  std::optional<bits::BitVector> evicted_basis;
  if (pool_.size() == pool_.capacity()) {
    std::optional<bits::BitVector> victim =
        encoder_.basis_table().least_recently_used();
    if (!victim || !pool_.peek(*victim)) {
      // Fall back to the pool's own insertion-order recency (e.g. when the
      // encoder table lags behind the pool due to in-flight installs).
      victim.reset();
    }
    if (victim) {
      const std::uint32_t victim_id = *pool_.peek(*victim);
      pool_.erase(victim_id);
      evicted_basis = victim;
      ++stats_.evictions;
    }
  }
  const gd::InsertResult inserted = pool_.insert(basis);
  if (inserted.evicted) {
    // Reached only through the fallback path above.
    evicted_basis = inserted.evicted;
    ++stats_.evictions;
  }
  const std::uint32_t id = inserted.id;

  // Phase 1: decoder-side install (destination switch first).
  scheduler_.schedule(
      scheduler_.now() + jittered(timing_.install_decoder, 0.5),
      [this, basis, id, evicted_basis] {
        if (evicted_basis) {
          decoder_.id_table().remove(bits::BitVector(
              decoder_.config().params.id_bits, id));
        }
        decoder_.install_decoder_mapping(id, basis, scheduler_.now());
        // Phase 2: encoder-side install only after phase 1 completed.
        scheduler_.schedule(
            scheduler_.now() + jittered(timing_.install_encoder, 0.5),
            [this, basis, id, evicted_basis] {
              if (evicted_basis) {
                encoder_.basis_table().remove(*evicted_basis);
              }
              encoder_.install_encoder_mapping(id, basis, scheduler_.now());
              in_flight_.erase(basis);
              ++stats_.mappings_installed;
            });
      });
}

void Controller::preload(const bits::BitVector& basis) {
  if (pool_.peek(basis)) return;
  const gd::InsertResult inserted = pool_.insert(basis);
  ZL_EXPECTS(!inserted.evicted.has_value() &&
             "static preload exceeds dictionary capacity");
  decoder_.install_decoder_mapping(inserted.id, basis, scheduler_.now());
  encoder_.install_encoder_mapping(inserted.id, basis, scheduler_.now());
}

}  // namespace zipline::prog
