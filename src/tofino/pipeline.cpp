#include "tofino/pipeline.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace zipline::tofino {

SwitchModel::SwitchModel(std::string name,
                         std::shared_ptr<PipelineProgram> program,
                         PipelineTiming timing)
    : name_(std::move(name)), program_(std::move(program)), timing_(timing) {
  ZL_EXPECTS(program_ != nullptr);
  ZL_EXPECTS(timing_.pipeline_latency >= 0);
  ZL_EXPECTS(timing_.max_packets_per_second > 0);
}

ForwardResult SwitchModel::process(const net::EthernetFrame& frame,
                                   PortId ingress_port, SimTime now) {
  ++stats_.packets_in;
  stats_.bytes_in += frame.frame_bytes();

  // Enforce the ASIC packet-rate ceiling (a no-op at 100G port speeds).
  const auto service_ns =
      static_cast<SimTime>(1e9 / timing_.max_packets_per_second);
  const SimTime start = std::max(now, next_free_);
  next_free_ = start + std::max<SimTime>(service_ns, 0);

  Phv phv;
  phv.meta.ingress_port = ingress_port;
  phv.meta.ingress_timestamp = now;
  program_->parse(frame, phv);
  program_->ingress(phv);
  if (phv.meta.drop) {
    ++stats_.packets_dropped;
    return ForwardResult{true, 0, {}, start + timing_.pipeline_latency};
  }
  program_->egress(phv);
  if (phv.meta.drop) {
    ++stats_.packets_dropped;
    return ForwardResult{true, 0, {}, start + timing_.pipeline_latency};
  }
  ForwardResult result;
  result.dropped = false;
  result.egress_port = phv.meta.egress_port;
  result.frame = program_->deparse(phv);
  result.ready_at = start + timing_.pipeline_latency;
  ++stats_.packets_out;
  stats_.bytes_out += result.frame.frame_bytes();
  return result;
}

}  // namespace zipline::tofino
