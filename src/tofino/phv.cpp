#include "tofino/phv.hpp"

#include "common/contracts.hpp"

namespace zipline::tofino {

void Phv::declare(const std::string& name, std::size_t bits) {
  ZL_EXPECTS(bits >= 1 && bits <= 4096);
  const auto [it, inserted] =
      fields_.emplace(name, Field{bits, bits::BitVector(bits)});
  if (!inserted) {
    ZL_EXPECTS(it->second.bits == bits && "redeclared with different width");
    it->second.value = bits::BitVector(bits);
  }
}

bool Phv::has(const std::string& name) const {
  return fields_.find(name) != fields_.end();
}

const bits::BitVector& Phv::get(const std::string& name) const {
  const auto it = fields_.find(name);
  ZL_EXPECTS(it != fields_.end() && "read of undeclared PHV field");
  return it->second.value;
}

std::uint64_t Phv::get_uint(const std::string& name) const {
  return get(name).to_uint64();
}

void Phv::set(const std::string& name, const bits::BitVector& value) {
  const auto it = fields_.find(name);
  ZL_EXPECTS(it != fields_.end() && "write to undeclared PHV field");
  ZL_EXPECTS(it->second.bits == value.size() && "PHV field width mismatch");
  it->second.value = value;
}

void Phv::set_uint(const std::string& name, std::uint64_t value) {
  const auto it = fields_.find(name);
  ZL_EXPECTS(it != fields_.end() && "write to undeclared PHV field");
  set(name, bits::BitVector(it->second.bits, value));
}

std::size_t Phv::container_bits() const {
  std::size_t total = 0;
  for (const auto& [name, field] : fields_) {
    total += (field.bits + 7) / 8 * 8;
  }
  return total;
}

std::size_t Phv::field_bits() const {
  std::size_t total = 0;
  for (const auto& [name, field] : fields_) total += field.bits;
  return total;
}

}  // namespace zipline::tofino
