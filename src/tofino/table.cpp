#include "tofino/table.hpp"

#include <algorithm>

namespace zipline::tofino {

ExactMatchTable::ExactMatchTable(std::string name, std::size_t capacity,
                                 SimTime default_ttl)
    : name_(std::move(name)), capacity_(capacity), default_ttl_(default_ttl) {
  ZL_EXPECTS(capacity >= 1);
  entries_.reserve(capacity);
}

std::optional<bits::BitVector> ExactMatchTable::lookup(
    const bits::BitVector& key, SimTime now) {
  ++stats_.lookups;
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  it->second.last_hit = now;
  return it->second.value;
}

void ExactMatchTable::install(const bits::BitVector& key,
                              const bits::BitVector& value, SimTime now) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = value;
    it->second.installed = now;
    it->second.last_hit = now;
    ++stats_.installs;
    return;
  }
  ZL_EXPECTS(!full() && "table full: control plane must remove entries first");
  entries_.emplace(key, Entry{value, now, now});
  ++stats_.installs;
}

bool ExactMatchTable::remove(const bits::BitVector& key) {
  const bool erased = entries_.erase(key) > 0;
  if (erased) ++stats_.removes;
  return erased;
}

std::vector<bits::BitVector> ExactMatchTable::idle_keys(SimTime now) const {
  std::vector<bits::BitVector> idle;
  if (default_ttl_ <= 0) return idle;
  for (const auto& [key, entry] : entries_) {
    if (now - entry.last_hit >= default_ttl_) idle.push_back(key);
  }
  return idle;
}

std::vector<bits::BitVector> ExactMatchTable::expire_idle(SimTime now) {
  std::vector<bits::BitVector> idle = idle_keys(now);
  for (const auto& key : idle) {
    entries_.erase(key);
    ++stats_.idle_expiries;
  }
  return idle;
}

std::optional<bits::BitVector> ExactMatchTable::least_recently_used() const {
  if (entries_.empty()) return std::nullopt;
  const auto it = std::min_element(
      entries_.begin(), entries_.end(), [](const auto& a, const auto& b) {
        return a.second.last_hit < b.second.last_hit;
      });
  return it->first;
}

std::vector<bits::BitVector> ExactMatchTable::keys() const {
  std::vector<bits::BitVector> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

std::size_t ExactMatchTable::sram_bits_estimate() const {
  std::size_t bits = 0;
  for (const auto& [key, entry] : entries_) {
    bits += (key.size() + 7) / 8 * 8;
    bits += (entry.value.size() + 7) / 8 * 8;
  }
  return bits;
}

}  // namespace zipline::tofino
