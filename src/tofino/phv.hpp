// Packet header vector (PHV) — the per-packet state that flows through a
// Tofino-style match-action pipeline.
//
// Hardware PHVs are collections of 8/16/32-bit containers; header fields
// are byte-aligned on the wire (the paper's §6 lesson: "header declarations
// in P4-16 must be aligned on byte boundaries", forcing padding bits for
// the never-byte-aligned Hamming sizes). This model keeps named fields of
// arbitrary bit width but accounts the container cost of each field the
// way the hardware would, so programs can report the padding overhead the
// paper measured.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"
#include "common/time.hpp"

namespace zipline::tofino {

using PortId = std::uint16_t;

/// Per-packet intrinsic metadata (subset of TNA's ig_intr_md / tm_md).
struct IntrinsicMetadata {
  PortId ingress_port = 0;
  PortId egress_port = 0;
  bool drop = false;
  SimTime ingress_timestamp = 0;
};

class Phv {
 public:
  /// Declares a field of `bits` width; fields must be declared before use
  /// (parser does this), mirroring P4's typed headers.
  void declare(const std::string& name, std::size_t bits);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Field accessors. Reading an undeclared field throws.
  [[nodiscard]] const bits::BitVector& get(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  void set(const std::string& name, const bits::BitVector& value);
  void set_uint(const std::string& name, std::uint64_t value);

  /// Total container bits consumed, rounding each field up to the next
  /// whole byte (the alignment cost the paper's §6 describes).
  [[nodiscard]] std::size_t container_bits() const;
  /// Total declared (logical) bits.
  [[nodiscard]] std::size_t field_bits() const;

  IntrinsicMetadata meta;

  /// Opaque payload bytes not parsed into fields.
  std::vector<std::uint8_t> payload;

 private:
  struct Field {
    std::size_t bits = 0;
    bits::BitVector value;
  };
  std::unordered_map<std::string, Field> fields_;
};

}  // namespace zipline::tofino
