// Exact-match match-action table with per-entry idle timeout (TTL).
//
// Mirrors the TNA features ZipLine leans on (§5/§6): the data plane can
// only *look up* entries; all mutation goes through the control-plane API
// (install/remove). Entries carry an idle timeout: hits refresh the entry's
// last-hit timestamp, and `expire_idle` reports entries whose TTL elapsed —
// the mechanism the paper uses to drive its LRU identifier recycling from
// the control plane.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"
#include "common/contracts.hpp"
#include "common/time.hpp"

namespace zipline::tofino {

struct TableStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t installs = 0;
  std::uint64_t removes = 0;
  std::uint64_t idle_expiries = 0;
};

/// Exact-match table mapping a BitVector key to a BitVector action value.
/// Keys of differing widths are allowed by the model but a single table is
/// normally homogeneous (the program decides).
class ExactMatchTable {
 public:
  /// `capacity` bounds the number of entries, as SRAM does on hardware.
  /// `default_ttl` == 0 disables idle timeout tracking.
  ExactMatchTable(std::string name, std::size_t capacity,
                  SimTime default_ttl = 0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool full() const noexcept { return size() >= capacity_; }
  [[nodiscard]] const TableStats& stats() const noexcept { return stats_; }

  // --- data-plane API ------------------------------------------------------

  /// Lookup; a hit refreshes the entry's last-hit time.
  [[nodiscard]] std::optional<bits::BitVector> lookup(
      const bits::BitVector& key, SimTime now);

  // --- control-plane API ---------------------------------------------------

  /// Installs or overwrites an entry. Throws when the table is full and the
  /// key is new (the control plane must free space first, as on hardware).
  void install(const bits::BitVector& key, const bits::BitVector& value,
               SimTime now);

  /// Removes an entry; returns false when the key is absent.
  bool remove(const bits::BitVector& key);

  /// Returns (and counts) keys idle for at least the TTL at time `now` —
  /// the model of TNA's idle-timeout notifications.
  [[nodiscard]] std::vector<bits::BitVector> idle_keys(SimTime now) const;

  /// Removes idle entries and returns them.
  std::vector<bits::BitVector> expire_idle(SimTime now);

  /// The key least recently hit (what the paper's control plane evicts).
  [[nodiscard]] std::optional<bits::BitVector> least_recently_used() const;

  /// Iteration support for the control plane (snapshot of keys).
  [[nodiscard]] std::vector<bits::BitVector> keys() const;

  /// Estimated SRAM bits consumed (key + value, byte-aligned words), for
  /// the resource accounting the paper's §6 discusses.
  [[nodiscard]] std::size_t sram_bits_estimate() const;

 private:
  struct Entry {
    bits::BitVector value;
    SimTime last_hit = 0;
    SimTime installed = 0;
  };

  std::string name_;
  std::size_t capacity_;
  SimTime default_ttl_;
  std::unordered_map<bits::BitVector, Entry, bits::BitVectorHash> entries_;
  TableStats stats_;
};

}  // namespace zipline::tofino
