// The switch pipeline model: parser -> ingress -> traffic manager ->
// egress -> deparser, with Tofino-style timing and the vendor's guarantee
// the paper confirms in §7: any program that compiles runs at line rate, so
// per-packet latency is a (nearly) constant pipeline delay, independent of
// what the MAU stages compute — as long as there is no recirculation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "net/ethernet.hpp"
#include "tofino/phv.hpp"

namespace zipline::tofino {

/// A P4-program equivalent: parse/ingress/egress/deparse hooks the switch
/// model drives for every packet.
class PipelineProgram {
 public:
  virtual ~PipelineProgram() = default;

  /// Parser: frame -> PHV (declare and fill fields, stash payload).
  virtual void parse(const net::EthernetFrame& frame, Phv& phv) = 0;

  /// Ingress match-action control.
  virtual void ingress(Phv& phv) = 0;

  /// Egress match-action control (ZipLine places GD decoding here, §6).
  virtual void egress(Phv& phv) = 0;

  /// Deparser: PHV -> frame.
  [[nodiscard]] virtual net::EthernetFrame deparse(const Phv& phv) = 0;

  /// Human-readable resource report (tables, SRAM estimate, externs).
  [[nodiscard]] virtual std::string resource_report() const { return {}; }
};

struct PipelineTiming {
  /// Port-to-port latency of the pipeline (Tofino-class: several hundred
  /// ns). Constant per the line-rate guarantee.
  SimTime pipeline_latency = 600;  // ns
  /// Packet-rate ceiling of the forwarding ASIC. The Wedge100BF-32X
  /// datasheet quotes 4.7 Gpkt/s, far above what one 100G port can offer;
  /// modeled so the guarantee is checkable rather than assumed.
  double max_packets_per_second = 4.7e9;
};

struct SwitchStats {
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Outcome of pushing one packet through the pipeline.
struct ForwardResult {
  bool dropped = false;
  PortId egress_port = 0;
  net::EthernetFrame frame;
  SimTime ready_at = 0;  ///< ingress time + pipeline latency
};

/// A single-pipeline Tofino switch model executing one PipelineProgram.
class SwitchModel {
 public:
  SwitchModel(std::string name, std::shared_ptr<PipelineProgram> program,
              PipelineTiming timing = {});

  /// Runs one frame through parse/ingress/egress/deparse.
  [[nodiscard]] ForwardResult process(const net::EthernetFrame& frame,
                                      PortId ingress_port, SimTime now);

  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const PipelineTiming& timing() const noexcept {
    return timing_;
  }
  [[nodiscard]] PipelineProgram& program() noexcept { return *program_; }

 private:
  std::string name_;
  std::shared_ptr<PipelineProgram> program_;
  PipelineTiming timing_;
  SwitchStats stats_;
  SimTime next_free_ = 0;  ///< ASIC packet-rate ceiling enforcement
};

}  // namespace zipline::tofino
