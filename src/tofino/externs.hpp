// Data-plane externs: the CRC unit, register arrays, counters and digest
// streams that the ZipLine program uses on the Tofino model.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "common/contracts.hpp"
#include "common/time.hpp"
#include "crc/polynomial.hpp"
#include "crc/syndrome_crc.hpp"

namespace zipline::tofino {

/// The Tofino CRC engine, configured with a custom generator polynomial in
/// plain-remainder mode — exactly the configuration that makes CRC-m emit
/// Hamming syndromes (paper §2, Table 1). One instance per polynomial and
/// input width, as on hardware where the hash unit is statically
/// configured per use.
class CrcExtern {
 public:
  CrcExtern(crc::Gf2Poly generator, std::size_t input_bits)
      : crc_(generator, input_bits) {}

  [[nodiscard]] std::uint32_t compute(const bits::BitVector& input) const {
    ++invocations_;
    return crc_.compute(input);
  }

  [[nodiscard]] std::size_t input_bits() const noexcept { return crc_.n(); }
  [[nodiscard]] int width() const noexcept { return crc_.m(); }
  [[nodiscard]] std::uint64_t invocations() const noexcept {
    return invocations_;
  }

 private:
  crc::SyndromeCrc crc_;
  mutable std::uint64_t invocations_ = 0;
};

/// Register array: data-plane state with constant-time read-modify-write,
/// the mechanism behind the paper's abandoned "instant learning" design
/// (§6). Cell width is fixed at construction.
class RegisterArray {
 public:
  RegisterArray(std::string name, std::size_t cells, std::size_t cell_bits)
      : name_(std::move(name)), cell_bits_(cell_bits),
        cells_(cells, bits::BitVector(cell_bits)) {
    ZL_EXPECTS(cells >= 1);
    ZL_EXPECTS(cell_bits >= 1);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t cell_bits() const noexcept { return cell_bits_; }

  [[nodiscard]] const bits::BitVector& read(std::size_t index) const {
    ZL_EXPECTS(index < cells_.size());
    return cells_[index];
  }

  void write(std::size_t index, const bits::BitVector& value) {
    ZL_EXPECTS(index < cells_.size());
    ZL_EXPECTS(value.size() == cell_bits_);
    cells_[index] = value;
  }

 private:
  std::string name_;
  std::size_t cell_bits_;
  std::vector<bits::BitVector> cells_;
};

/// Indexed packet/byte counters (the paper adds these for per-packet-type
/// statistics, §5 last paragraph).
class CounterArray {
 public:
  CounterArray(std::string name, std::size_t size)
      : name_(std::move(name)), packets_(size, 0), bytes_(size, 0) {}

  void count(std::size_t index, std::size_t packet_bytes) {
    ZL_EXPECTS(index < packets_.size());
    ++packets_[index];
    bytes_[index] += packet_bytes;
  }

  [[nodiscard]] std::uint64_t packets(std::size_t index) const {
    ZL_EXPECTS(index < packets_.size());
    return packets_[index];
  }
  [[nodiscard]] std::uint64_t bytes(std::size_t index) const {
    ZL_EXPECTS(index < bytes_.size());
    return bytes_[index];
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return packets_.size(); }

 private:
  std::string name_;
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> bytes_;
};

/// Digest stream: the data plane's message channel to the control plane
/// (TNA digests). Records are timestamped at emission; the control plane
/// receives them after its own modeled delay.
struct DigestRecord {
  SimTime emitted_at = 0;
  bits::BitVector payload;
};

class DigestStream {
 public:
  explicit DigestStream(std::string name, std::size_t queue_limit = 4096)
      : name_(std::move(name)), queue_limit_(queue_limit) {}

  /// Emits a digest; returns false (and drops) when the queue is full —
  /// hardware digests are lossy under pressure.
  bool emit(const bits::BitVector& payload, SimTime now) {
    if (queue_.size() >= queue_limit_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(DigestRecord{now, payload});
    ++emitted_;
    return true;
  }

  /// Drains all digests emitted at or before `until`.
  [[nodiscard]] std::vector<DigestRecord> drain(SimTime until) {
    std::vector<DigestRecord> out;
    while (!queue_.empty() && queue_.front().emitted_at <= until) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::size_t queue_limit_;
  std::deque<DigestRecord> queue_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace zipline::tofino
