// io::BufferPool — mbuf-style payload segments for the zero-copy burst path.
//
// A pool owns a fixed set of equal-sized, reference-counted byte segments,
// allocated once in one slab. acquire() hands out a SegmentRef; copies of
// the ref bump an atomic count, and when the last ref drops the segment
// returns to the pool's lock-free free list — so in steady state a
// source → ring → node → ring → sink loop recycles the same segments
// forever without touching the heap. When the pool is exhausted (or a
// request is larger than one segment), acquire() falls back to a heap-
// owned segment and counts it (PoolStats::overflow_allocations): the data
// path degrades to allocation, never to failure.
//
// This is the software contract a kernel-bypass backend drops into: a
// DPDK mbuf or an AF_XDP umem chunk is just another segment provider —
// fixed-size, refcounted, recycled to a free ring — and a Burst holds
// payload VIEWS into segments instead of copying bytes into an arena
// (see burst.hpp). Refcounts are atomic, so refs may be created and
// released on different threads (the SPSC burst hand-off between pipeline
// threads moves refs, not bytes); the pool itself must outlive every ref.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>

#include "common/contracts.hpp"

namespace zipline::io {

class BufferPool;

namespace detail {

/// Control block of one segment. Pooled segments live in the pool's
/// control array with `data` pointing into the slab; overflow segments are
/// heap blocks (control + bytes in one allocation) with `pool == nullptr`.
struct Segment {
  std::atomic<std::uint32_t> refs{0};
  std::uint32_t index = 0;        ///< slot in the pool's free list space
  BufferPool* pool = nullptr;     ///< nullptr = overflow-owned, freed on release
  std::uint8_t* data = nullptr;
  std::size_t capacity = 0;
};

void release_segment(Segment* segment) noexcept;

}  // namespace detail

/// Shared handle to one segment: copy = refcount bump, destruction =
/// release (recycle to the pool, or free an overflow block). Thread-safe
/// the way std::shared_ptr is: distinct refs may be used concurrently,
/// one ref needs external ordering.
class SegmentRef {
 public:
  SegmentRef() = default;
  SegmentRef(const SegmentRef& other) noexcept : segment_(other.segment_) {
    if (segment_ != nullptr) {
      segment_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  SegmentRef(SegmentRef&& other) noexcept : segment_(other.segment_) {
    other.segment_ = nullptr;
  }
  SegmentRef& operator=(const SegmentRef& other) noexcept {
    SegmentRef copy(other);
    swap(copy);
    return *this;
  }
  SegmentRef& operator=(SegmentRef&& other) noexcept {
    SegmentRef stolen(std::move(other));
    swap(stolen);
    return *this;
  }
  ~SegmentRef() { reset(); }

  void reset() noexcept {
    if (segment_ != nullptr) {
      detail::release_segment(segment_);
      segment_ = nullptr;
    }
  }
  void swap(SegmentRef& other) noexcept {
    detail::Segment* tmp = segment_;
    segment_ = other.segment_;
    other.segment_ = tmp;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return segment_ != nullptr;
  }
  [[nodiscard]] std::uint8_t* data() const noexcept { return segment_->data; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return segment_->capacity;
  }
  /// True when both refs share one segment (the zero-copy dedup test).
  [[nodiscard]] bool same_segment(const SegmentRef& other) const noexcept {
    return segment_ != nullptr && segment_ == other.segment_;
  }
  /// Current reference count (racy by nature — tests and diagnostics).
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return segment_ == nullptr
               ? 0
               : segment_->refs.load(std::memory_order_relaxed);
  }
  /// True for an overflow (heap-owned) segment, false for a pooled one.
  [[nodiscard]] bool overflow() const noexcept {
    return segment_ != nullptr && segment_->pool == nullptr;
  }

 private:
  friend class BufferPool;
  explicit SegmentRef(detail::Segment* segment) noexcept : segment_(segment) {}

  detail::Segment* segment_ = nullptr;
};

struct PoolStats {
  std::uint64_t acquired = 0;              ///< successful pooled acquires
  std::uint64_t recycled = 0;              ///< segments returned to the free list
  std::uint64_t overflow_allocations = 0;  ///< heap fallbacks (pool dry or oversize)
};

class BufferPool {
 public:
  /// `segment_count` segments of `segment_bytes` each, allocated up front
  /// in one slab.
  BufferPool(std::size_t segment_bytes, std::size_t segment_count);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A segment of at least `bytes` capacity, refcount 1. Requests that fit
  /// a pool segment are served from the free list when possible; an empty
  /// free list or an oversize request falls back to a heap-owned segment
  /// (counted, released on the last ref drop like any other). Never fails.
  [[nodiscard]] SegmentRef acquire(std::size_t bytes);

  [[nodiscard]] std::size_t segment_bytes() const noexcept {
    return segment_bytes_;
  }
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segment_count_;
  }
  /// Free segments right now (racy under concurrent release — tests).
  [[nodiscard]] std::size_t free_segments() const noexcept;
  [[nodiscard]] PoolStats stats() const noexcept;

 private:
  friend void detail::release_segment(detail::Segment* segment) noexcept;

  void push_free(std::uint32_t index) noexcept;
  [[nodiscard]] bool try_pop_free(std::uint32_t& index) noexcept;

  std::size_t segment_bytes_;
  std::size_t segment_count_;
  std::unique_ptr<std::uint8_t[]> slab_;
  std::unique_ptr<detail::Segment[]> segments_;
  /// Next-pointers of the intrusive free stack (index + 1; 0 = end).
  std::unique_ptr<std::atomic<std::uint32_t>[]> next_;
  /// Treiber stack head: (generation << 32) | (index + 1); low 0 = empty.
  /// The generation tag makes the CAS pop immune to ABA when two threads
  /// race a pop against a pop-then-push of the same segment.
  alignas(64) std::atomic<std::uint64_t> free_head_{0};
  alignas(64) std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> overflow_allocations_{0};
};

/// Bump allocator over pool segments, for sources whose backing store is
/// transient (a pcap read buffer, a sim egress arena): pay ONE copy into
/// segment memory at ingest, and every hop downstream moves refs instead
/// of bytes. Consecutive writes pack into the current segment until it is
/// full, so a burst of small payloads shares one segment (and, via
/// Burst's ref dedup, one ref). Single-threaded, like the sources that
/// own it; the pool must outlive every span handed out.
class SegmentWriter {
 public:
  explicit SegmentWriter(BufferPool& pool) : pool_(&pool) {}

  /// Copies `bytes` into segment memory and returns the stable span.
  /// Pair the result with segment() in Burst::append_segment.
  [[nodiscard]] std::span<const std::uint8_t> write(
      std::span<const std::uint8_t> bytes) {
    if (!current_ || used_ + bytes.size() > current_.capacity()) {
      current_ = pool_->acquire(bytes.size());
      used_ = 0;
    }
    std::uint8_t* dst = current_.data() + used_;
    if (!bytes.empty()) {
      std::memcpy(dst, bytes.data(), bytes.size());
    }
    used_ += bytes.size();
    return {dst, bytes.size()};
  }

  /// The segment the last write() landed in.
  [[nodiscard]] const SegmentRef& segment() const noexcept {
    return current_;
  }

 private:
  BufferPool* pool_;
  SegmentRef current_;
  std::size_t used_ = 0;
};

}  // namespace zipline::io
