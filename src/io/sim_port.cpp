#include "io/sim_port.hpp"

#include "common/contracts.hpp"
#include "gd/packet.hpp"

namespace zipline::io {

SimPort::SimPort(tofino::SwitchModel& model, tofino::PortId ingress_port,
                 SimTime start_at, SimTime gap, std::size_t burst_size)
    : model_(&model),
      port_(ingress_port),
      now_(start_at),
      gap_(gap),
      burst_size_(burst_size) {
  ZL_EXPECTS(burst_size_ >= 1);
  totals_.end_time = start_at;
}

void SimPort::tx_burst(const Burst& burst) {
  const prog::BatchRunResult result =
      prog::run_batch(*model_, burst.batch(), &egress_, port_, now_, gap_);
  totals_.forwarded += result.forwarded;
  totals_.dropped += result.dropped;
  totals_.end_time = result.end_time;
  now_ = result.end_time;
}

std::size_t SimPort::rx_burst(Burst& out) {
  out.clear();
  while (out.size() < burst_size_ && egress_cursor_ < egress_.size()) {
    const engine::PacketDesc& desc = egress_.packet(egress_cursor_);
    PacketMeta meta;
    // run_batch frames carry the fixed local(1) -> local(2) addressing;
    // flow identity does not survive the pipeline, so egress packets sit
    // on one flow (re-key downstream if steering matters).
    meta.src = net::MacAddress::local(1);
    meta.dst = net::MacAddress::local(2);
    meta.ether_type = gd::ether_type_for(desc.type);
    meta.timestamp_us = 0;
    out.append(desc.type, desc.syndrome, desc.basis_id,
               egress_.payload(desc), meta);
    ++egress_cursor_;
  }
  if (egress_cursor_ == egress_.size()) {
    // Fully drained: recycle the arena instead of growing forever.
    egress_.clear();
    egress_cursor_ = 0;
  }
  return out.size();
}

void HostTxSink::tx_burst(const Burst& burst) {
  staged_.push_back(burst.batch());
  staged_packets_ += burst.size();
}

void HostTxSink::launch(SimTime start_at, std::uint64_t repeat) {
  if (staged_.empty()) return;
  host_->start_batch_stream(dst_, staged_, start_at, repeat);
}

}  // namespace zipline::io
