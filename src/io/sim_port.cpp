#include "io/sim_port.hpp"

#include "common/contracts.hpp"
#include "gd/packet.hpp"

namespace zipline::io {

SimPort::SimPort(tofino::SwitchModel& model, tofino::PortId ingress_port,
                 SimTime start_at, SimTime gap, std::size_t burst_size)
    : model_(&model),
      port_(ingress_port),
      now_(start_at),
      gap_(gap),
      burst_size_(burst_size),
      // 16 KiB segments comfortably pack a burst of frames; the pool
      // overflows to owned blocks rather than failing if a drain lags.
      pool_(16384, 64) {
  ZL_EXPECTS(burst_size_ >= 1);
  totals_.end_time = start_at;
}

void SimPort::tx_burst(const Burst& burst) {
  burst.copy_to_batch(ingress_scratch_);
  const prog::BatchRunResult result =
      prog::run_batch(*model_, ingress_scratch_, &egress_, port_, now_, gap_);
  totals_.forwarded += result.forwarded;
  totals_.dropped += result.dropped;
  totals_.end_time = result.end_time;
  now_ = result.end_time;
}

std::size_t SimPort::rx_burst(Burst& out) {
  out.clear();
  while (out.size() < burst_size_ && egress_cursor_ < egress_.size()) {
    const engine::PacketDesc& desc = egress_.packet(egress_cursor_);
    PacketMeta meta;
    // run_batch frames carry the fixed local(1) -> local(2) addressing;
    // flow identity does not survive the pipeline, so egress packets sit
    // on one flow (re-key downstream if steering matters).
    meta.src = net::MacAddress::local(1);
    meta.dst = net::MacAddress::local(2);
    meta.ether_type = gd::ether_type_for(desc.type);
    meta.timestamp_us = 0;
    // One copy out of the transient egress arena into segment memory;
    // downstream hops share the ref instead of re-copying.
    out.append_segment(desc.type, desc.syndrome, desc.basis_id,
                       writer_.write(egress_.payload(desc)),
                       writer_.segment(), meta);
    ++egress_cursor_;
  }
  if (egress_cursor_ == egress_.size()) {
    // Fully drained: recycle the arena instead of growing forever.
    egress_.clear();
    egress_cursor_ = 0;
  }
  return out.size();
}

void HostTxSink::tx_burst(const Burst& burst) {
  staged_.emplace_back();
  burst.copy_to_batch(staged_.back());
  staged_packets_ += burst.size();
}

void HostTxSink::launch(SimTime start_at, std::uint64_t repeat) {
  if (staged_.empty()) return;
  host_->start_batch_stream(dst_, staged_, start_at, repeat);
}

}  // namespace zipline::io
