// TraceSource: a workload generator as a burst source.
//
// Wraps the payload vectors the trace generators produce
// (trace::synthetic, trace::dns) and serves them as bursts of raw
// packets, so examples and benches feed a zipline::Node (or any other
// sink) without hand-rolled staging loops. Flow keys come from a
// per-payload callback (default: one flow, the single-sensor /
// single-port arrangement); timestamps advance at a configurable pace.
//
// The payload table is stable for the source's lifetime, so rx_burst
// serves VIEWS (Burst::append_view) — zero copies at rx. Keep the source
// alive while served bursts are read; any Burst copy (e.g. a ring push)
// materializes the views and is then self-contained.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "gd/packet.hpp"
#include "io/burst.hpp"
#include "trace/dns.hpp"
#include "trace/synthetic.hpp"

namespace zipline::io {

struct TraceSourceOptions {
  std::size_t burst_size = 256;
  /// Flow key per payload index; nullptr = every payload on flow 0.
  std::function<std::uint32_t(std::size_t)> flow_of;
  /// Timestamps: start + index * gap (the pcap pacing convention).
  std::uint64_t start_us = 0;
  std::uint64_t gap_us = 1;
  net::MacAddress src = net::MacAddress::local(1);
  net::MacAddress dst = net::MacAddress::local(2);
};

class TraceSource {
 public:
  TraceSource(std::vector<std::vector<std::uint8_t>> payloads,
              TraceSourceOptions options = {})
      : payloads_(std::move(payloads)), options_(std::move(options)) {}

  /// The paper's synthetic sensor fleet (trace/synthetic.hpp).
  static TraceSource synthetic_sensor(
      const trace::SyntheticSensorConfig& config,
      TraceSourceOptions options = {}) {
    return TraceSource(trace::generate_synthetic_sensor(config),
                       std::move(options));
  }

  /// The paper's DNS workload, transaction IDs already stripped
  /// (trace/dns.hpp).
  static TraceSource dns(const trace::DnsTraceConfig& config,
                         TraceSourceOptions options = {}) {
    return TraceSource(
        trace::strip_transaction_ids(trace::generate_dns_queries(config)),
        std::move(options));
  }

  std::size_t rx_burst(Burst& out) {
    out.clear();
    while (out.size() < options_.burst_size && cursor_ < payloads_.size()) {
      PacketMeta meta;
      meta.flow = options_.flow_of
                      ? options_.flow_of(cursor_)
                      : 0;
      meta.timestamp_us = options_.start_us + cursor_ * options_.gap_us;
      meta.src = options_.src;
      meta.dst = options_.dst;
      meta.ether_type = gd::ether_type_for(gd::PacketType::raw);
      meta.process = true;
      out.append_view(gd::PacketType::raw, 0, 0, payloads_[cursor_], meta);
      ++cursor_;
    }
    return out.size();
  }

  /// Rewind for another pass over the same trace.
  void reset() noexcept { cursor_ = 0; }

  [[nodiscard]] std::size_t payload_count() const noexcept {
    return payloads_.size();
  }
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& payloads()
      const noexcept {
    return payloads_;
  }

 private:
  std::vector<std::vector<std::uint8_t>> payloads_;
  TraceSourceOptions options_;
  std::size_t cursor_ = 0;
};

}  // namespace zipline::io
