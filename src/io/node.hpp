// zipline::Node — ONE facade over every way this repo runs the codec.
//
// A Node is the software network element the paper's switch is in
// hardware: bursts of packets enter one side, processed (or passthrough)
// packets leave the other, in order. Behind the facade the node selects
// the engine arrangement from NodeOptions:
//
//   * workers == 1            -> serial engine(s), no threads. per_flow
//     ownership keeps one private Engine per flow key; shared ownership
//     keeps ONE engine for the whole direction (the switch's single
//     table), processing units in submission order.
//   * workers > 1             -> engine::ParallelPipeline with the
//     ordered drain, per_flow or shared dictionary ownership, pinned or
//     load-aware steering, optional work stealing (shared mode).
//
// All arrangements are byte-identical for the same (flow, payload) unit
// sequence: per-flow modes per flow, shared modes globally (the ordered
// resolve turnstile — see engine/parallel.hpp). tests/io_backend_test.cpp
// property-tests the full matrix against the serial references.
//
// The unit of work is one source packet: on encode, a packet's payload
// becomes one engine unit (possibly several wire packets: chunks + raw
// tail); on decode, one wire packet becomes one recovered raw packet.
// Packets whose meta says process == false traverse untouched, keeping
// their position — the switch's passthrough for non-ZipLine traffic.
//
// Drive a Node with io::Runner (runner.hpp): source -> node -> sink until
// the source drains. One process() call is one flush boundary; the
// dictionary lives in the node, across bursts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/simd.hpp"
#include "engine/engine.hpp"
#include "engine/parallel.hpp"
#include "io/burst.hpp"

namespace zipline::io {

enum class Direction : std::uint8_t { encode, decode };

/// Builder-style configuration: chain the with_* setters, hand the result
/// to Node. Example:
///
///   Node node(NodeOptions{}
///                 .with_direction(Direction::encode)
///                 .with_workers(8)
///                 .with_shared_dictionary()
///                 .with_steering(engine::FlowSteering::load_aware)
///                 .with_work_stealing(true));
struct NodeOptions {
  Direction direction = Direction::encode;
  gd::GdParams params{};
  /// 1 = serial (no threads); >1 = engine::ParallelPipeline worker pool.
  std::size_t workers = 1;
  std::size_t dictionary_shards = 1;
  /// Read path of the shared dictionary service (parallel shared mode):
  /// the default seqlock path serves lookups/peeks/fetches lock-free from
  /// a per-shard read mirror; `locked` takes a stripe mutex per op.
  /// Output bytes are identical either way; this is purely a throughput
  /// knob. Ignored when workers == 1 (the serial shared arrangement has
  /// one engine and a private dictionary) or in per_flow ownership.
  gd::ReadPath read_path = gd::ReadPath::seqlock;
  gd::EvictionPolicy policy = gd::EvictionPolicy::lru;
  bool learn = true;
  engine::DictionaryOwnership ownership =
      engine::DictionaryOwnership::per_flow;
  engine::FlowSteering steering = engine::FlowSteering::pinned;
  /// Requires shared ownership (enforced by the pipeline); ignored when
  /// workers == 1 (there is nobody to steal from).
  bool work_stealing = false;
  /// In-flight units per worker in parallel modes.
  std::size_t queue_depth = 16;
  /// Flush window inside one process() call: at most this many units are
  /// in flight (and, on decode, staged) at once; the pipeline drains at
  /// each window boundary. Has no effect on output bytes — flush
  /// boundaries never change the dictionary op order.
  std::size_t burst_size = 256;
  /// Cache-domain index per worker for topology_aware steering; empty =
  /// probe the machine (common/topology.hpp). Ignored by other steering
  /// policies. Placement never affects output bytes.
  std::vector<std::uint32_t> worker_domains;
  /// Passthrough packets are spliced into `out` by VIEW (segment refs
  /// shared, owned/external payloads viewed into `in`) instead of copied.
  /// Output bytes are identical either way — this is purely the memory-
  /// traffic knob, and `false` preserves the pre-zero-copy data path as
  /// the frozen baseline `BM_NodeEncodeBurst` measures against (the same
  /// role ByteLoopBitWriter plays for bit I/O). With `true`, `out` may
  /// reference `in`'s payload memory until `out` is cleared, copied, or
  /// `in` is mutated — io::Runner's pump and a ring push both satisfy
  /// this (a Burst copy materializes foreign views).
  bool zero_copy = true;

  NodeOptions& with_direction(Direction d) { direction = d; return *this; }
  NodeOptions& with_params(const gd::GdParams& p) { params = p; return *this; }
  NodeOptions& with_workers(std::size_t n) { workers = n; return *this; }
  NodeOptions& with_shards(std::size_t n) { dictionary_shards = n; return *this; }
  NodeOptions& with_read_path(gd::ReadPath r) { read_path = r; return *this; }
  NodeOptions& with_policy(gd::EvictionPolicy p) { policy = p; return *this; }
  NodeOptions& with_learn(bool on) { learn = on; return *this; }
  NodeOptions& with_ownership(engine::DictionaryOwnership o) {
    ownership = o;
    return *this;
  }
  NodeOptions& with_shared_dictionary() {
    ownership = engine::DictionaryOwnership::shared;
    return *this;
  }
  NodeOptions& with_steering(engine::FlowSteering s) { steering = s; return *this; }
  NodeOptions& with_work_stealing(bool on) { work_stealing = on; return *this; }
  NodeOptions& with_queue_depth(std::size_t n) { queue_depth = n; return *this; }
  NodeOptions& with_burst_size(std::size_t n) { burst_size = n; return *this; }
  NodeOptions& with_worker_domains(std::vector<std::uint32_t> domains) {
    worker_domains = std::move(domains);
    return *this;
  }
  NodeOptions& with_zero_copy(bool on) { zero_copy = on; return *this; }
};

/// Aggregate view over the node's internal engines. Quiescent-only in
/// parallel modes (between process() calls), like the pipeline's own
/// aggregate_stats().
struct NodeStats {
  engine::EngineStats engine;      ///< summed over every internal engine
  std::uint64_t bursts = 0;        ///< process() calls
  std::uint64_t units = 0;         ///< packets run through an engine
  std::uint64_t passthrough = 0;   ///< packets carried through untouched
  /// Bases resident across the node's dictionaries. In per_flow parallel
  /// mode the flow dictionaries live inside the pipeline workers and are
  /// not aggregated here (reported as 0).
  std::size_t dictionary_bases = 0;
  /// Dictionary operation counters summed over the node's dictionaries
  /// (hits, inserts, evictions, clock_touches, turnstile_waits, ...).
  /// Zero in per_flow parallel mode, like dictionary_bases.
  gd::DictionaryStats dictionary;
  std::size_t workers = 1;
  /// Resolved zipline::simd kernel level the node's hot loops (syndrome
  /// fold, bit packing, block shifts) dispatch to. Process-wide, recorded
  /// here so bench JSON can say which code path actually ran on the
  /// producing host.
  simd::KernelLevel kernel_level = simd::KernelLevel::scalar;
  /// The level that was ASKED for (ZIPLINE_SIMD override or CPU probe)
  /// before build-support clamping. kernel_level_requested != kernel_level
  /// makes a clamped request — e.g. avx512 forced on a non-AVX-512 build —
  /// visible in stats instead of silently downgrading.
  simd::KernelLevel kernel_level_requested = simd::KernelLevel::scalar;
  /// Per-slot resolved levels from the active kernel table (indexed by
  /// simd::KernelSlot). Slots without an implementation at the table's
  /// headline level report the tier that actually serves them (e.g. block
  /// shifts run scalar inside an sse42 table).
  std::array<simd::KernelLevel, simd::kKernelSlotCount> kernel_slot_levels{};
  /// Payload bytes the node physically copied while producing output:
  /// engine output appended into `out`, passthrough payloads when
  /// zero_copy is off, and parallel-decode unit staging. View splices and
  /// segment-ref shares cost 0 here — this is the number the zero-copy
  /// path exists to shrink (burst-level deltas of Burst::bytes_copied).
  std::uint64_t bytes_copied = 0;
  /// bytes_copied averaged over input packets (units + passthrough) —
  /// the per-packet memory-traffic price of traversing the node, the
  /// headline counter of BM_NodeEncodeBurst's passthrough sweep.
  double copies_per_packet = 0.0;
};

class Node {
 public:
  explicit Node(NodeOptions options);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Runs one burst through the node, appending results to `out` (which
  /// callers clear between bursts to recycle its arena) in input order.
  /// One call is one flush boundary: every unit of `in` is delivered
  /// before it returns. `in` must stay valid for the duration of the
  /// call (unit inputs are views into its payloads) — and, with
  /// options().zero_copy, until `out` is cleared, copied, or consumed:
  /// passthrough packets in `out` may VIEW `in`'s payload memory
  /// (segment-backed ones carry their own refs and are lifetime-safe
  /// regardless).
  void process(const Burst& in, Burst& out);

  [[nodiscard]] const NodeOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] NodeStats stats() const;

 private:
  [[nodiscard]] engine::Engine& serial_engine(std::uint32_t flow);
  void append_unit_output(const engine::EncodeBatch& unit,
                          const PacketMeta& in_meta, Burst& out) const;
  void append_unit_output(const engine::DecodeBatch& unit,
                          const PacketMeta& in_meta, Burst& out) const;
  void copy_passthrough(const Burst& in, Burst& out, std::size_t end);
  void process_serial(const Burst& in, Burst& out);
  void process_parallel(const Burst& in, Burst& out);

  NodeOptions options_;

  // Serial arrangement: engines created on first use, reused forever.
  std::unordered_map<std::uint32_t, engine::Engine> flow_engines_;
  std::optional<engine::Engine> shared_engine_;
  engine::EncodeBatch encode_scratch_;
  engine::DecodeBatch decode_scratch_;

  // Parallel arrangement (one direction per node).
  std::unique_ptr<engine::ParallelEncoder> parallel_encoder_;
  std::unique_ptr<engine::ParallelDecoder> parallel_decoder_;
  /// Per-unit staging for parallel decode: one single-packet EncodeBatch
  /// per in-flight unit of the current burst, arenas recycled across
  /// bursts. Grown (if needed) before any submit, so element addresses
  /// are stable while units are in flight.
  std::vector<engine::EncodeBatch> staged_;

  // Per-burst delivery state (valid inside process()): the ordered drain
  // delivers units in submission order, so one cursor splices passthrough
  // packets back in at their original positions.
  const Burst* in_ = nullptr;
  Burst* out_ = nullptr;
  std::vector<std::uint32_t> unit_index_;  ///< unit # within burst -> packet
  std::uint64_t burst_base_seq_ = 0;
  std::size_t next_input_ = 0;

  // Counters (engine stats live in the engines themselves).
  std::uint64_t bursts_ = 0;
  std::uint64_t units_ = 0;
  std::uint64_t passthrough_ = 0;
  std::uint64_t bytes_copied_ = 0;
};

}  // namespace zipline::io

namespace zipline {
// The facade names, at the namespace the rest of the library lives in.
using io::Node;      // NOLINT(misc-unused-using-decls)
using io::NodeOptions;  // NOLINT(misc-unused-using-decls)
}  // namespace zipline
