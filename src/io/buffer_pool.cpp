#include "io/buffer_pool.hpp"

#include <new>

namespace zipline::io {

namespace {

constexpr std::uint64_t kIndexMask = 0xFFFFFFFFull;

/// Overflow segments pack the control block and the payload bytes into one
/// heap allocation (control block first) so release is a single delete.
detail::Segment* allocate_overflow(std::size_t bytes) {
  const std::size_t total = sizeof(detail::Segment) + bytes;
  auto* raw = static_cast<std::uint8_t*>(::operator new(total));
  auto* segment = new (raw) detail::Segment{};
  segment->refs.store(1, std::memory_order_relaxed);
  segment->pool = nullptr;
  segment->data = raw + sizeof(detail::Segment);
  segment->capacity = bytes;
  return segment;
}

void free_overflow(detail::Segment* segment) noexcept {
  segment->~Segment();
  ::operator delete(static_cast<void*>(segment));
}

}  // namespace

namespace detail {

void release_segment(Segment* segment) noexcept {
  if (segment->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
  if (segment->pool != nullptr) {
    BufferPool* pool = segment->pool;
    pool->recycled_.fetch_add(1, std::memory_order_relaxed);
    pool->push_free(segment->index);
  } else {
    free_overflow(segment);
  }
}

}  // namespace detail

BufferPool::BufferPool(std::size_t segment_bytes, std::size_t segment_count)
    : segment_bytes_(segment_bytes), segment_count_(segment_count) {
  ZL_EXPECTS(segment_bytes > 0);
  ZL_EXPECTS(segment_count > 0);
  ZL_EXPECTS(segment_count < kIndexMask);
  slab_ = std::make_unique<std::uint8_t[]>(segment_bytes_ * segment_count_);
  segments_ = std::make_unique<detail::Segment[]>(segment_count_);
  next_ = std::make_unique<std::atomic<std::uint32_t>[]>(segment_count_);
  for (std::size_t i = 0; i < segment_count_; ++i) {
    detail::Segment& s = segments_[i];
    s.index = static_cast<std::uint32_t>(i);
    s.pool = this;
    s.data = slab_.get() + i * segment_bytes_;
    s.capacity = segment_bytes_;
    // Seed the free stack i -> i+1 -> ... -> end without CAS traffic.
    next_[i].store(i + 1 < segment_count_
                       ? static_cast<std::uint32_t>(i + 2)
                       : 0u,
                   std::memory_order_relaxed);
  }
  free_head_.store(1u, std::memory_order_release);  // index 0, generation 0
}

BufferPool::~BufferPool() {
  // Every ref must have been released; a live ref here would be a
  // use-after-free in the caller. Cheap sanity check in assert builds.
  for (std::size_t i = 0; i < segment_count_; ++i) {
    ZL_EXPECTS(segments_[i].refs.load(std::memory_order_relaxed) == 0);
  }
}

void BufferPool::push_free(std::uint32_t index) noexcept {
  std::uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    next_[index].store(static_cast<std::uint32_t>(head & kIndexMask),
                       std::memory_order_relaxed);
    const std::uint64_t tag = (head >> 32) + 1;
    const std::uint64_t next_head = (tag << 32) | (index + 1);
    if (free_head_.compare_exchange_weak(head, next_head,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

bool BufferPool::try_pop_free(std::uint32_t& index) noexcept {
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t slot = static_cast<std::uint32_t>(head & kIndexMask);
    if (slot == 0) {
      return false;
    }
    const std::uint32_t next = next_[slot - 1].load(std::memory_order_relaxed);
    const std::uint64_t tag = (head >> 32) + 1;
    const std::uint64_t next_head = (tag << 32) | next;
    if (free_head_.compare_exchange_weak(head, next_head,
                                         std::memory_order_acquire,
                                         std::memory_order_acquire)) {
      index = slot - 1;
      return true;
    }
  }
}

SegmentRef BufferPool::acquire(std::size_t bytes) {
  if (bytes <= segment_bytes_) {
    std::uint32_t index = 0;
    if (try_pop_free(index)) {
      detail::Segment& s = segments_[index];
      s.refs.store(1, std::memory_order_relaxed);
      acquired_.fetch_add(1, std::memory_order_relaxed);
      return SegmentRef(&s);
    }
  }
  overflow_allocations_.fetch_add(1, std::memory_order_relaxed);
  return SegmentRef(allocate_overflow(bytes));
}

std::size_t BufferPool::free_segments() const noexcept {
  std::size_t count = 0;
  std::uint32_t slot = static_cast<std::uint32_t>(
      free_head_.load(std::memory_order_acquire) & kIndexMask);
  while (slot != 0) {
    ++count;
    slot = next_[slot - 1].load(std::memory_order_relaxed);
  }
  return count;
}

PoolStats BufferPool::stats() const noexcept {
  PoolStats out;
  out.acquired = acquired_.load(std::memory_order_relaxed);
  out.recycled = recycled_.load(std::memory_order_relaxed);
  out.overflow_allocations =
      overflow_allocations_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace zipline::io
