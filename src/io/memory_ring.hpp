// DPDK-style fixed-capacity burst rings in memory.
//
// A MemoryRing is a bounded FIFO of Burst slots, preallocated at
// construction and recycled forever. A push copy-assigns INTO a slot —
// which, with view-based Bursts (burst.hpp), moves payload bytes only
// for owned/external backings: segment-backed payloads cross the ring as
// refcount bumps, exactly how a real descriptor ring hands off mbufs. A
// pop SWAPS the slot out instead of copying (the slot inherits the
// caller's grown capacities, the caller inherits the slot's — vector
// capacities circulate), so a ring cycling same-shaped bursts performs
// zero heap allocations in steady state (tests/engine_alloc_test.cpp
// asserts it) and zero payload copies for pooled traffic
// (tests/io_backend_test.cpp asserts THAT via RingStats::bytes_copied).
//
// MemoryRingSource / MemoryRingSink are the PacketSource / PacketSink
// faces of one ring — the in-process stand-in for a NIC queue pair, and
// the contract a DPDK PMD backend would implement against real descriptor
// rings (rx_burst ~ rte_eth_rx_burst, tx_burst ~ rte_eth_tx_burst; see
// io/README.md).
//
// Overflow policy matches a NIC queue, not a std container: a full ring
// DROPS the burst and counts it (MemoryRingSink::dropped). Single
// producer, single consumer, no internal locking — same as the engine's
// SPSC job rings; callers needing cross-thread hand-off add their own
// ordering (segment refcounts are atomic, so the bursts themselves are
// safe to hand across threads).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "io/burst.hpp"

namespace zipline::io {

/// Copy-cost accounting for one ring (cumulative).
struct RingStats {
  std::uint64_t pushed_bursts = 0;
  std::uint64_t pushed_packets = 0;
  /// Payload bytes physically copied by pushes (owned arenas + external
  /// views materialized into the slot). Segment-backed payloads cost 0.
  std::uint64_t bytes_copied = 0;
};

class MemoryRing {
 public:
  /// `capacity` burst slots, allocated up front.
  explicit MemoryRing(std::size_t capacity) : slots_(capacity) {
    ZL_EXPECTS(capacity >= 1);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool full() const noexcept { return count_ == slots_.size(); }

  /// Copies `burst` into the next free slot; false (and no effect) when
  /// full. "Copies" per the Burst copy contract: segment refs are shared,
  /// only owned/external payload bytes actually move — the per-push byte
  /// cost lands in stats().bytes_copied.
  [[nodiscard]] bool try_push(const Burst& burst) {
    if (full()) return false;
    Burst& slot = slots_[tail_];
    const std::uint64_t before = slot.bytes_copied();
    slot = burst;
    stats_.bytes_copied += slot.bytes_copied() - before;
    ++stats_.pushed_bursts;
    stats_.pushed_packets += burst.size();
    tail_ = next(tail_);
    ++count_;
    return true;
  }

  /// Moves the oldest burst out into `out` (replacing its contents) by
  /// swapping with the slot — no payload copies, and `out`'s old
  /// capacities stay in circulation as the slot's next landing pad.
  /// False when empty.
  [[nodiscard]] bool try_pop(Burst& out) {
    if (empty()) return false;
    std::swap(out, slots_[head_]);
    slots_[head_].clear();  // drop stale refs/views, keep capacity
    head_ = next(head_);
    --count_;
    return true;
  }

  [[nodiscard]] const RingStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return i + 1 == slots_.size() ? 0 : i + 1;
  }

  std::vector<Burst> slots_;
  std::size_t head_ = 0;   // oldest
  std::size_t tail_ = 0;   // next free
  std::size_t count_ = 0;
  RingStats stats_;
};

/// RX face of a ring: pops one burst per rx_burst call.
class MemoryRingSource {
 public:
  explicit MemoryRingSource(MemoryRing& ring) : ring_(&ring) {}

  std::size_t rx_burst(Burst& out) {
    out.clear();
    // Skip legally-pushed empty bursts: the contract's 0 return means
    // "drained", and an empty burst must not strand what sits behind it.
    while (ring_->try_pop(out)) {
      if (!out.empty()) return out.size();
    }
    return 0;
  }

 private:
  MemoryRing* ring_;
};

/// TX face of a ring: pushes each burst; full ring drops it (counted).
class MemoryRingSink {
 public:
  explicit MemoryRingSink(MemoryRing& ring) : ring_(&ring) {}

  void tx_burst(const Burst& burst) {
    if (!ring_->try_push(burst)) {
      ++dropped_bursts_;
      dropped_packets_ += burst.size();
    }
  }

  [[nodiscard]] std::uint64_t dropped_bursts() const noexcept {
    return dropped_bursts_;
  }
  [[nodiscard]] std::uint64_t dropped_packets() const noexcept {
    return dropped_packets_;
  }

 private:
  MemoryRing* ring_;
  std::uint64_t dropped_bursts_ = 0;
  std::uint64_t dropped_packets_ = 0;
};

}  // namespace zipline::io
