// Pcap burst backends: a capture file as a packet source / sink.
//
// PcapSource reads Ethernet frames out of a classic (or nanosecond-
// precision) pcap via net::PcapReader, classifies each frame for the
// configured node direction — processable ZipLine traffic vs passthrough,
// exactly the switch's rule — and extracts a flow key from the MAC pair
// or, for IPv4 frames, the 5-tuple. Payloads are copied ONCE out of the
// transient parse buffer into BufferPool segments; every hop downstream
// (ring push, node passthrough splice) then shares segment refs instead
// of re-copying, so the source must outlive the bursts it fills. PcapSink
// writes each burst packet back out as one frame through net::PcapWriter,
// preserving per-packet timestamps, MAC addresses and EtherType from the
// burst metadata.
//
// zipline_pcap is these two backends around a zipline::Node; the replay
// is byte-identical to the pre-io hand-rolled window loop
// (tests/io_backend_test.cpp asserts it file-for-file).
#pragma once

#include <cstdint>
#include <string>

#include "gd/params.hpp"
#include "io/buffer_pool.hpp"
#include "io/burst.hpp"
#include "io/node.hpp"
#include "net/ethernet.hpp"
#include "net/pcap.hpp"

namespace zipline::io {

/// What identifies a flow in a capture.
enum class FlowKey : std::uint8_t {
  mac_pair,    ///< hash of (src MAC, dst MAC) — one direction of a pair
  five_tuple,  ///< IPv4 (src, dst, proto, sport, dport); MAC pair otherwise
};

struct PcapSourceOptions {
  /// Frames per rx burst — the node's flush window when replayed through
  /// a Runner (memory stays constant in the trace size).
  std::size_t burst_size = 4096;
  /// Direction of the node the frames are headed for: decides which
  /// frames are processable (raw chunk frames for encode, type-2/3
  /// frames with a full body for decode) and which pass through.
  Direction direction = Direction::encode;
  /// Chunk geometry for the processable test.
  gd::GdParams params{};
  FlowKey flow_key = FlowKey::mac_pair;
};

/// Hash of one direction of a MAC pair (FNV-1a over src then dst).
[[nodiscard]] std::uint32_t mac_pair_flow(const net::EthernetFrame& frame);

/// 5-tuple flow key: IPv4 frames hash (addresses, protocol, ports when
/// TCP/UDP); anything else falls back to the MAC pair.
[[nodiscard]] std::uint32_t five_tuple_flow(const net::EthernetFrame& frame);

class PcapSource {
 public:
  explicit PcapSource(const std::string& path,
                      const PcapSourceOptions& options = {});

  /// Fills up to burst_size frames; 0 at end of capture.
  std::size_t rx_burst(Burst& out);

  [[nodiscard]] std::uint64_t frames_read() const noexcept {
    return frames_read_;
  }

 private:
  net::PcapReader reader_;
  PcapSourceOptions options_;
  net::EthernetFrame frame_;  // reused across records
  std::uint64_t frames_read_ = 0;
  BufferPool pool_;           // segment backing for served payloads
  SegmentWriter writer_{pool_};
};

class PcapSink {
 public:
  explicit PcapSink(const std::string& path);

  /// One frame per burst packet: MACs, EtherType and timestamp from the
  /// packet's metadata, payload from the burst arena.
  void tx_burst(const Burst& burst);

  [[nodiscard]] std::uint64_t frames_written() const noexcept {
    return writer_.records_written();
  }

 private:
  net::PcapWriter writer_;
  net::EthernetFrame frame_;  // reused across packets
};

}  // namespace zipline::io
