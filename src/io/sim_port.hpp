// Simulator burst backends: the modeled switch and hosts as io endpoints.
//
// SimPort adapts prog::run_batch — one port of a tofino::SwitchModel as a
// duplex burst endpoint: bursts TX'd into the port run through the full
// parse/ingress/egress/deparse pipeline immediately (one frame per `gap`
// ns of pipeline time), and whatever egresses accumulates until pulled
// with rx_burst. SimPortSink / SimPortSource are the two concept faces of
// one port, so a Runner can pump traffic in while another drains the
// egress side.
//
// HostTxSink adapts sim::Host::start_batch_stream — the TX port of a
// simulated server: bursts accumulate into staged EncodeBatch windows,
// and launch() hands the whole set to the host's paced transmit path
// (CPU cap, NIC latency, the raw_ethernet_bw retransmit pattern). The
// sink must outlive the stream, which owns views into the staged
// batches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/scheduler.hpp"
#include "io/buffer_pool.hpp"
#include "io/burst.hpp"
#include "sim/host.hpp"
#include "zipline/program.hpp"

namespace zipline::io {

class SimPort {
 public:
  /// Frames enter the pipeline at `ingress_port`, one per `gap` ns of
  /// pipeline timestamp, starting at `start_at`.
  explicit SimPort(tofino::SwitchModel& model, tofino::PortId ingress_port,
                   SimTime start_at = 0, SimTime gap = 1,
                   std::size_t burst_size = 256);

  /// Runs every packet of the burst through the switch now (materialized
  /// into a reused arena — the switch model wants the flat batch shape);
  /// survivors land on the egress side.
  void tx_burst(const Burst& burst);

  /// Drains up to burst_size egress frames. Payloads are copied ONCE out
  /// of the transient egress arena into pool segments, so the served
  /// burst is lifetime-safe (refs, not views into `egress_`) and every
  /// downstream hop shares refs instead of re-copying. Flow keys are the
  /// MAC pair (what the wire still knows); syndrome/basis_id are zero, as
  /// for any packet observed on the wire. The port must outlive bursts
  /// holding its segments.
  std::size_t rx_burst(Burst& out);

  [[nodiscard]] const prog::BatchRunResult& totals() const noexcept {
    return totals_;
  }

 private:
  tofino::SwitchModel* model_;
  tofino::PortId port_;
  SimTime now_;
  SimTime gap_;
  std::size_t burst_size_;
  prog::BatchRunResult totals_;
  engine::EncodeBatch ingress_scratch_;  // materialized TX bursts, reused
  engine::EncodeBatch egress_;      // accumulated switch output
  std::size_t egress_cursor_ = 0;   // next undrained egress packet
  BufferPool pool_;                 // rx segment backing
  SegmentWriter writer_{pool_};
};

/// Ingress face of a SimPort.
class SimPortSink {
 public:
  explicit SimPortSink(SimPort& port) : port_(&port) {}
  void tx_burst(const Burst& burst) { port_->tx_burst(burst); }

 private:
  SimPort* port_;
};

/// Egress face of a SimPort.
class SimPortSource {
 public:
  explicit SimPortSource(SimPort& port) : port_(&port) {}
  std::size_t rx_burst(Burst& out) { return port_->rx_burst(out); }

 private:
  SimPort* port_;
};

/// Burst sink feeding a simulated host's paced TX path. Stage bursts,
/// then launch() once; the staged batches must stay put until the stream
/// finishes (keep the sink alive through the event-loop run).
class HostTxSink {
 public:
  HostTxSink(sim::Host& host, net::MacAddress dst)
      : host_(&host), dst_(dst) {}

  /// Stages the burst, materialized into one EncodeBatch window.
  void tx_burst(const Burst& burst);

  /// Hands every staged window to Host::start_batch_stream, cycling the
  /// set `repeat` times. Call after the last tx_burst.
  void launch(SimTime start_at = 0, std::uint64_t repeat = 1);

  [[nodiscard]] std::size_t staged_bursts() const noexcept {
    return staged_.size();
  }
  [[nodiscard]] std::uint64_t staged_packets() const noexcept {
    return staged_packets_;
  }

 private:
  sim::Host* host_;
  net::MacAddress dst_;
  std::vector<engine::EncodeBatch> staged_;
  std::uint64_t staged_packets_ = 0;
};

}  // namespace zipline::io
