#include "io/pcap_io.hpp"

#include <array>

#include "common/contracts.hpp"
#include "gd/packet.hpp"

namespace zipline::io {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint8_t byte) {
  return (h ^ byte) * 0x100000001b3ULL;
}

std::uint32_t fold(std::uint64_t h) {
  return static_cast<std::uint32_t>(h >> 32) ^ static_cast<std::uint32_t>(h);
}

}  // namespace

std::uint32_t mac_pair_flow(const net::EthernetFrame& frame) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : frame.src.octets()) h = fnv1a(h, byte);
  for (const std::uint8_t byte : frame.dst.octets()) h = fnv1a(h, byte);
  return fold(h);
}

std::uint32_t five_tuple_flow(const net::EthernetFrame& frame) {
  // IPv4 only; anything else (including ZipLine's own EtherTypes) keys on
  // the MAC pair, so pure layer-2 traffic still spreads across workers.
  constexpr std::uint16_t kEtherIpv4 = 0x0800;
  const auto& p = frame.payload;
  if (frame.ether_type != kEtherIpv4 || p.size() < 20 || (p[0] >> 4) != 4) {
    return mac_pair_flow(frame);
  }
  const std::size_t ihl = static_cast<std::size_t>(p[0] & 0x0F) * 4;
  if (ihl < 20 || p.size() < ihl) return mac_pair_flow(frame);
  const std::uint8_t proto = p[9];
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 12; i < 20; ++i) h = fnv1a(h, p[i]);  // src + dst
  h = fnv1a(h, proto);
  constexpr std::uint8_t kTcp = 6;
  constexpr std::uint8_t kUdp = 17;
  if ((proto == kTcp || proto == kUdp) && p.size() >= ihl + 4) {
    for (std::size_t i = ihl; i < ihl + 4; ++i) h = fnv1a(h, p[i]);
  }
  return fold(h);
}

PcapSource::PcapSource(const std::string& path,
                       const PcapSourceOptions& options)
    : reader_(path),
      options_(options),
      // 64 KiB segments × 256: covers a couple of outstanding full-size
      // bursts of MTU frames; a lagging consumer overflows to owned
      // blocks instead of failing.
      pool_(65536, 256) {
  ZL_EXPECTS(options_.burst_size >= 1);
}

std::size_t PcapSource::rx_burst(Burst& out) {
  out.clear();
  const gd::GdParams& params = options_.params;
  const std::size_t chunk_bytes = params.raw_payload_bytes();
  while (out.size() < options_.burst_size) {
    const auto record = reader_.next();
    if (!record) break;
    ++frames_read_;
    frame_ = net::EthernetFrame::parse(record->data, /*verify_fcs=*/false);
    PacketMeta meta;
    meta.timestamp_us = record->timestamp_us;
    meta.src = frame_.src;
    meta.dst = frame_.dst;
    meta.ether_type = frame_.ether_type;
    meta.flow = options_.flow_key == FlowKey::five_tuple
                    ? five_tuple_flow(frame_)
                    : mac_pair_flow(frame_);
    if (options_.direction == Direction::encode) {
      // Raw chunk frames are the encodable traffic; the chunk is the
      // payload prefix, the rest is Ethernet minimum-frame padding the
      // switch also strips on encode.
      if (frame_.ether_type == gd::ether_type_for(gd::PacketType::raw) &&
          frame_.payload.size() >= chunk_bytes) {
        meta.process = true;
        out.append_segment(
            gd::PacketType::raw, 0, 0,
            writer_.write(std::span(frame_.payload).first(chunk_bytes)),
            writer_.segment(), meta);
        continue;
      }
    } else {
      // A ZipLine frame decodes only if it actually carries a full packet
      // body; anything shorter (e.g. clipped by a capture snap length)
      // passes through instead of aborting the replay.
      if (gd::is_zipline_ether_type(frame_.ether_type)) {
        const gd::PacketType type =
            gd::packet_type_for_ether(frame_.ether_type);
        if (type != gd::PacketType::raw) {
          const std::size_t body = type == gd::PacketType::uncompressed
                                       ? params.type2_payload_bytes()
                                       : params.type3_payload_bytes();
          if (frame_.payload.size() >= body) {
            meta.process = true;
            out.append_segment(type, 0, 0, writer_.write(frame_.payload),
                               writer_.segment(), meta);
            continue;
          }
        }
      }
    }
    meta.process = false;
    out.append_segment(gd::PacketType::raw, 0, 0,
                       writer_.write(frame_.payload), writer_.segment(),
                       meta);
  }
  return out.size();
}

PcapSink::PcapSink(const std::string& path) : writer_(path) {}

void PcapSink::tx_burst(const Burst& burst) {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const PacketMeta& meta = burst.meta(i);
    frame_.src = meta.src;
    frame_.dst = meta.dst;
    frame_.ether_type = meta.ether_type;
    const auto payload = burst.payload(i);
    frame_.payload.assign(payload.begin(), payload.end());
    writer_.write_frame(frame_, meta.timestamp_us);
  }
}

}  // namespace zipline::io
