// zipline::io — the symmetric burst-I/O seam every backend plugs into.
//
// The engine consumes and produces flat batch arenas (engine/batch.hpp);
// what was missing is the RECEIVE half of the seam: engine/sink.hpp only
// says where packets go, while every example, bench and the sim hand-
// rolled its own loop for where packets come from. This header closes the
// loop with one currency — the Burst — and two duck-typed concepts:
//
//   * PacketSource — rx_burst(Burst&) -> size_t: fill a burst, return the
//     number of packets delivered (0 = drained). The DPDK rte_eth_rx_burst
//     shape, which is exactly the contract a future PMD backend drops
//     into (see io/README.md).
//   * PacketSink — tx_burst(const Burst&): consume a burst. Mirrors the
//     per-packet engine::PacketSink (sink.hpp) one level up: a whole
//     burst per call instead of a packet per call, so a backend can
//     amortize its per-call cost (syscall, DMA doorbell, file write).
//
// A Burst is an engine::EncodeBatch — descriptors + one flat payload
// arena, no per-packet heap objects — plus the per-packet metadata the
// batch deliberately does not carry: flow key, timestamp, MAC addresses
// and the on-wire EtherType. The metadata rides in a parallel array
// indexed like the descriptors. clear() keeps all capacities, so a burst
// recycled through a source→node→sink loop stops allocating once it has
// seen the largest burst — the same steady-state discipline as the
// engine arenas (asserted in tests/io_backend_test.cpp).
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/batch.hpp"
#include "net/mac.hpp"

namespace zipline::io {

/// Per-packet metadata riding alongside an EncodeBatch descriptor: what a
/// network element knows about a packet besides its (type, payload).
struct PacketMeta {
  /// Flow identity — the steering key of Node's parallel modes. Backends
  /// extract it from what they have (MAC pair or 5-tuple for pcap, caller
  /// choice for memory rings and traces).
  std::uint32_t flow = 0;
  /// Capture/emission timestamp (carried through the node untouched).
  std::uint64_t timestamp_us = 0;
  net::MacAddress src{};
  net::MacAddress dst{};
  /// EtherType as seen (source side) or to be written (sink side). The
  /// node rewrites it from the wire packet type for processed packets and
  /// leaves it alone for passthrough ones.
  std::uint16_t ether_type = 0;
  /// false: the packet must traverse the node untouched (non-ZipLine
  /// traffic, clipped captures) — exactly the switch's passthrough.
  bool process = true;
};

/// One burst of packets: a flat batch arena plus index-aligned metadata.
class Burst {
 public:
  /// Drops all packets, keeping every capacity.
  void clear() noexcept {
    batch_.clear();
    meta_.clear();
  }

  void reserve(std::size_t packet_count, std::size_t storage_bytes) {
    batch_.reserve(packet_count, storage_bytes);
    meta_.reserve(packet_count);
  }

  [[nodiscard]] bool empty() const noexcept { return batch_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return batch_.size(); }

  [[nodiscard]] const engine::EncodeBatch& batch() const noexcept {
    return batch_;
  }
  [[nodiscard]] const engine::PacketDesc& desc(std::size_t i) const {
    return batch_.packet(i);
  }
  [[nodiscard]] std::span<const std::uint8_t> payload(std::size_t i) const {
    return batch_.payload(i);
  }
  [[nodiscard]] const PacketMeta& meta(std::size_t i) const {
    return meta_[i];
  }
  [[nodiscard]] PacketMeta& meta(std::size_t i) { return meta_[i]; }
  [[nodiscard]] std::span<const PacketMeta> metas() const noexcept {
    return meta_;
  }

  /// Appends one packet: wire descriptor fields + payload + metadata.
  void append(gd::PacketType type, std::uint32_t syndrome,
              std::uint32_t basis_id, std::span<const std::uint8_t> bytes,
              const PacketMeta& meta) {
    batch_.append(type, syndrome, basis_id, bytes);
    meta_.push_back(meta);
  }

  /// Copies packet `i` of `from` verbatim (the passthrough move).
  void append_from(const Burst& from, std::size_t i) {
    const engine::PacketDesc& d = from.desc(i);
    append(d.type, d.syndrome, d.basis_id, from.payload(i), from.meta(i));
  }

 private:
  engine::EncodeBatch batch_;
  std::vector<PacketMeta> meta_;
};

/// A backend that fills bursts: returns the number of packets delivered
/// into `burst` (which the source must clear() first); 0 means drained.
template <typename S>
concept PacketSource = requires(S source, Burst& burst) {
  { source.rx_burst(burst) } -> std::convertible_to<std::size_t>;
};

/// A backend that consumes bursts.
template <typename S>
concept PacketSink = requires(S sink, const Burst& burst) {
  sink.tx_burst(burst);
};

/// Discards bursts (bench harness for a bare node).
struct NullBurstSink {
  std::uint64_t packets = 0;
  void tx_burst(const Burst& burst) { packets += burst.size(); }
};

/// Counts packets and payload bytes per wire type — the burst-level
/// sibling of engine::CountingSink.
struct CountingBurstSink {
  std::uint64_t bursts = 0;
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t raw = 0;
  std::uint64_t uncompressed = 0;
  std::uint64_t compressed = 0;

  void tx_burst(const Burst& burst) {
    ++bursts;
    for (std::size_t i = 0; i < burst.size(); ++i) {
      ++packets;
      payload_bytes += burst.payload(i).size();
      switch (burst.desc(i).type) {
        case gd::PacketType::raw: ++raw; break;
        case gd::PacketType::uncompressed: ++uncompressed; break;
        case gd::PacketType::compressed: ++compressed; break;
      }
    }
  }
};

}  // namespace zipline::io
