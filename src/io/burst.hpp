// zipline::io — the symmetric burst-I/O seam every backend plugs into.
//
// The engine consumes and produces flat batch arenas (engine/batch.hpp);
// what was missing is the RECEIVE half of the seam: engine/sink.hpp only
// says where packets go, while every example, bench and the sim hand-
// rolled its own loop for where packets come from. This header closes the
// loop with one currency — the Burst — and two duck-typed concepts:
//
//   * PacketSource — rx_burst(Burst&) -> size_t: fill a burst, return the
//     number of packets delivered (0 = drained). The DPDK rte_eth_rx_burst
//     shape, which is exactly the contract a future PMD backend drops
//     into (see io/README.md).
//   * PacketSink — tx_burst(const Burst&): consume a burst. Mirrors the
//     per-packet engine::PacketSink (sink.hpp) one level up: a whole
//     burst per call instead of a packet per call, so a backend can
//     amortize its per-call cost (syscall, DMA doorbell, file write).
//
// A Burst is descriptors + per-packet payload VIEWS + per-packet metadata
// (flow key, timestamp, MACs, EtherType). Each payload has one of three
// backings, so the copy happens only where it must:
//
//   * owned  — bytes live in the burst's flat arena (the legacy shape;
//     append() copies into it). Self-contained, survives anything.
//   * segment — bytes live in a refcounted io::BufferPool segment
//     (buffer_pool.hpp); the burst holds a SegmentRef keeper. Copying the
//     burst bumps the refcount instead of moving bytes — the mbuf model,
//     and the backing a DPDK/AF_XDP backend supplies.
//   * external — bytes live in memory some third party keeps alive
//     (a TraceSource's payload table, an in-burst arena during a node's
//     passthrough splice). Zero-copy while that party holds still;
//     copying the burst MATERIALIZES these into the owned arena, so a
//     burst copy (e.g. a MemoryRing push) is always self-contained.
//
// bytes_copied() counts every payload byte physically copied INTO the
// burst — appends into the arena, materialized external views, copy-
// assignment — and is deliberately cumulative (clear() keeps it), so a
// hop that recycles one burst reads deltas to price itself. That is the
// number behind NodeStats::bytes_copied / copies_per_packet.
//
// clear() keeps all capacities (and releases segment refs), so a burst
// recycled through a source→node→sink loop stops allocating once it has
// seen the largest burst — the same steady-state discipline as the
// engine arenas (asserted in tests/engine_alloc_test.cpp).
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "engine/batch.hpp"
#include "io/buffer_pool.hpp"
#include "net/mac.hpp"

namespace zipline::io {

/// Per-packet metadata riding alongside a packet descriptor: what a
/// network element knows about a packet besides its (type, payload).
struct PacketMeta {
  /// Flow identity — the steering key of Node's parallel modes. Backends
  /// extract it from what they have (MAC pair or 5-tuple for pcap, caller
  /// choice for memory rings and traces).
  std::uint32_t flow = 0;
  /// Capture/emission timestamp (carried through the node untouched).
  std::uint64_t timestamp_us = 0;
  net::MacAddress src{};
  net::MacAddress dst{};
  /// EtherType as seen (source side) or to be written (sink side). The
  /// node rewrites it from the wire packet type for processed packets and
  /// leaves it alone for passthrough ones.
  std::uint16_t ether_type = 0;
  /// false: the packet must traverse the node untouched (non-ZipLine
  /// traffic, clipped captures) — exactly the switch's passthrough.
  bool process = true;
};

/// One burst of packets: descriptors + payload views + aligned metadata.
class Burst {
 public:
  Burst() = default;
  /// Copying a burst must leave the copy self-contained: owned arena
  /// bytes are copied, segment views share the segment (refcount bump,
  /// no byte moves), and raw external views are MATERIALIZED into the
  /// copy's arena — external lifetime promises don't transfer.
  Burst(const Burst& other) { assign_from(other); }
  Burst& operator=(const Burst& other) {
    if (this != &other) assign_from(other);
    return *this;
  }
  /// Moves transfer everything (views, refs, counters) and are what the
  /// ring's swap-out pop circulates — no bytes touched.
  Burst(Burst&&) noexcept = default;
  Burst& operator=(Burst&&) noexcept = default;
  ~Burst() = default;

  /// Drops all packets and segment refs, keeping every capacity.
  /// bytes_copied() survives — it is a lifetime odometer, not contents.
  void clear() noexcept {
    descs_.clear();
    slots_.clear();
    meta_.clear();
    arena_.clear();
    segments_.clear();
  }

  void reserve(std::size_t packet_count, std::size_t storage_bytes) {
    descs_.reserve(packet_count);
    slots_.reserve(packet_count);
    meta_.reserve(packet_count);
    segments_.reserve(packet_count);
    arena_.reserve(storage_bytes);
  }

  [[nodiscard]] bool empty() const noexcept { return descs_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return descs_.size(); }

  [[nodiscard]] const engine::PacketDesc& desc(std::size_t i) const {
    return descs_[i];
  }
  [[nodiscard]] std::span<const std::uint8_t> payload(std::size_t i) const {
    const engine::PacketDesc& d = descs_[i];
    const Slot& s = slots_[i];
    if (s.backing == Backing::owned) {
      return std::span(arena_).subspan(d.offset, d.size);
    }
    return {s.view, d.size};
  }
  [[nodiscard]] const PacketMeta& meta(std::size_t i) const {
    return meta_[i];
  }
  [[nodiscard]] PacketMeta& meta(std::size_t i) { return meta_[i]; }
  [[nodiscard]] std::span<const PacketMeta> metas() const noexcept {
    return meta_;
  }

  /// Payload bytes physically copied into this burst over its lifetime
  /// (cumulative across clear(); hops read deltas).
  [[nodiscard]] std::uint64_t bytes_copied() const noexcept {
    return bytes_copied_;
  }
  /// Live segment refs held (diagnostics: sharing dedups against the
  /// last-appended segment, so contiguous packets from one segment cost
  /// one ref).
  [[nodiscard]] std::size_t segment_refs() const noexcept {
    return segments_.size();
  }

  /// Appends one packet by COPY: wire descriptor fields + payload bytes
  /// (into the owned arena) + metadata. The always-safe path.
  void append(gd::PacketType type, std::uint32_t syndrome,
              std::uint32_t basis_id, std::span<const std::uint8_t> bytes,
              const PacketMeta& meta) {
    push_desc(type, syndrome, basis_id, bytes.size(), meta);
    descs_.back().offset = copy_into_arena(bytes);
    slots_.push_back(Slot{Backing::owned, nullptr, 0});
  }

  /// Appends one packet as a raw VIEW of `bytes` — zero copy. The caller
  /// vouches that `bytes` outlives every read of this burst (e.g. a
  /// source's stable payload table, or an input burst that stays put for
  /// the duration of a node's process() call). Copying the burst
  /// materializes the view, so lifetime bugs cannot escape through a
  /// ring push.
  void append_view(gd::PacketType type, std::uint32_t syndrome,
                   std::uint32_t basis_id,
                   std::span<const std::uint8_t> bytes,
                   const PacketMeta& meta) {
    push_desc(type, syndrome, basis_id, bytes.size(), meta);
    slots_.push_back(Slot{Backing::external, bytes.data(), 0});
  }

  /// Appends one packet whose bytes live inside the pool segment
  /// `segment` — zero copy, and the burst keeps the segment alive via a
  /// ref. `bytes` must point into the segment's memory. Consecutive
  /// appends from the same segment share one ref.
  void append_segment(gd::PacketType type, std::uint32_t syndrome,
                      std::uint32_t basis_id,
                      std::span<const std::uint8_t> bytes,
                      const SegmentRef& segment, const PacketMeta& meta) {
    ZL_EXPECTS(static_cast<bool>(segment));
    push_desc(type, syndrome, basis_id, bytes.size(), meta);
    std::uint32_t index;
    if (!segments_.empty() && segments_.back().same_segment(segment)) {
      index = static_cast<std::uint32_t>(segments_.size() - 1);
    } else {
      segments_.push_back(segment);
      index = static_cast<std::uint32_t>(segments_.size() - 1);
    }
    slots_.push_back(Slot{Backing::segment, bytes.data(), index});
  }

  /// Copies packet `i` of `from` verbatim (the legacy passthrough move —
  /// payload bytes land in this burst's arena). Kept for external callers
  /// and as the measurable pre-zero-copy baseline.
  void append_from(const Burst& from, std::size_t i) {
    const engine::PacketDesc& d = from.descs_[i];
    append(d.type, d.syndrome, d.basis_id, from.payload(i), from.meta_[i]);
  }

  /// Splices packet `i` of `from` by VIEW — no payload bytes move.
  /// Segment-backed packets share the segment ref (safe across any
  /// lifetime); owned/external-backed ones become raw views into `from`,
  /// valid until `from` is cleared or mutated. Byte-identical to
  /// append_from by contract (tests/io_backend_test.cpp).
  void append_view_from(const Burst& from, std::size_t i) {
    const engine::PacketDesc& d = from.descs_[i];
    const Slot& s = from.slots_[i];
    if (s.backing == Backing::segment) {
      append_segment(d.type, d.syndrome, d.basis_id, from.payload(i),
                     from.segments_[s.segment], from.meta_[i]);
    } else {
      append_view(d.type, d.syndrome, d.basis_id, from.payload(i),
                  from.meta_[i]);
    }
  }

  /// Materializes the burst into a flat EncodeBatch (descriptors +
  /// copied payload bytes) — for consumers that need the engine's arena
  /// shape (the switch model's run_batch, host TX staging). `out` is
  /// cleared first; its capacity is reused.
  void copy_to_batch(engine::EncodeBatch& out) const {
    out.clear();
    for (std::size_t i = 0; i < size(); ++i) {
      const engine::PacketDesc& d = descs_[i];
      out.append(d.type, d.syndrome, d.basis_id, payload(i));
    }
  }

 private:
  enum class Backing : std::uint8_t { owned, external, segment };

  struct Slot {
    Backing backing = Backing::owned;
    const std::uint8_t* view = nullptr;  ///< external/segment payload start
    std::uint32_t segment = 0;           ///< index into segments_ (segment)
  };

  void push_desc(gd::PacketType type, std::uint32_t syndrome,
                 std::uint32_t basis_id, std::size_t size,
                 const PacketMeta& meta) {
    ZL_EXPECTS(size <= 0xFFFFFFFFu);
    engine::PacketDesc d;
    d.type = type;
    d.offset = 0;
    d.size = static_cast<std::uint32_t>(size);
    d.syndrome = syndrome;
    d.basis_id = basis_id;
    descs_.push_back(d);
    meta_.push_back(meta);
  }

  [[nodiscard]] std::uint32_t copy_into_arena(
      std::span<const std::uint8_t> bytes) {
    ZL_EXPECTS(arena_.size() + bytes.size() <= 0xFFFFFFFFu);
    const auto offset = static_cast<std::uint32_t>(arena_.size());
    arena_.insert(arena_.end(), bytes.begin(), bytes.end());
    bytes_copied_ += bytes.size();
    return offset;
  }

  void assign_from(const Burst& other) {
    descs_.assign(other.descs_.begin(), other.descs_.end());
    slots_.assign(other.slots_.begin(), other.slots_.end());
    meta_.assign(other.meta_.begin(), other.meta_.end());
    segments_ = other.segments_;  // refcount bumps, zero byte moves
    arena_.assign(other.arena_.begin(), other.arena_.end());
    bytes_copied_ += other.arena_.size();
    // Raw external views point at memory whose lifetime this copy cannot
    // vouch for — materialize them so the copy is self-contained.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.backing != Backing::external) continue;
      engine::PacketDesc& d = descs_[i];
      d.offset = copy_into_arena({s.view, d.size});
      s = Slot{Backing::owned, nullptr, 0};
    }
  }

  std::vector<engine::PacketDesc> descs_;
  std::vector<Slot> slots_;
  std::vector<PacketMeta> meta_;
  std::vector<SegmentRef> segments_;
  std::vector<std::uint8_t> arena_;
  std::uint64_t bytes_copied_ = 0;
};

/// A backend that fills bursts: returns the number of packets delivered
/// into `burst` (which the source must clear() first); 0 means drained.
template <typename S>
concept PacketSource = requires(S source, Burst& burst) {
  { source.rx_burst(burst) } -> std::convertible_to<std::size_t>;
};

/// A backend that consumes bursts.
template <typename S>
concept PacketSink = requires(S sink, const Burst& burst) {
  sink.tx_burst(burst);
};

/// Discards bursts (bench harness for a bare node).
struct NullBurstSink {
  std::uint64_t packets = 0;
  void tx_burst(const Burst& burst) { packets += burst.size(); }
};

/// Counts packets and payload bytes per wire type — the burst-level
/// sibling of engine::CountingSink.
struct CountingBurstSink {
  std::uint64_t bursts = 0;
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t raw = 0;
  std::uint64_t uncompressed = 0;
  std::uint64_t compressed = 0;

  void tx_burst(const Burst& burst) {
    ++bursts;
    for (std::size_t i = 0; i < burst.size(); ++i) {
      ++packets;
      payload_bytes += burst.payload(i).size();
      switch (burst.desc(i).type) {
        case gd::PacketType::raw: ++raw; break;
        case gd::PacketType::uncompressed: ++uncompressed; break;
        case gd::PacketType::compressed: ++compressed; break;
      }
    }
  }
};

}  // namespace zipline::io
