// io::Runner — the one loop every consumer used to hand-roll.
//
// A Runner pumps source -> node -> sink until the source drains (rx_burst
// returns 0), reusing two Burst arenas across the whole run so the loop
// itself allocates nothing in steady state. The node is the flush
// boundary per burst; its dictionary persists across bursts, so a whole
// trace shares one table exactly as on the switch. The no-node overload
// pumps source -> sink directly for staging paths that do no codec work
// (e.g. feeding raw traffic to a simulated host).
//
// For finite backends (trace tables, pcap files, pre-filled rings) an
// empty rx_burst means DONE, and the drain overloads return. A live
// backend (netio's socket sessions) is merely IDLE when empty — more
// traffic arrives whenever peers send it — so the idle-hook overloads
// keep running: each time the source reports empty the hook is invoked,
// and the loop continues (hook returned true) or ends (false). The hook
// is where the loop blocks — a socket transport parks in epoll_wait
// until readiness or a cross-thread wake — so an idle session-serving
// loop costs no CPU instead of spinning on rx_burst.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

#include "io/burst.hpp"
#include "io/node.hpp"

namespace zipline::io {

/// The idle hook contract: called when the source reports empty; blocks
/// until more work may exist (or a timeout/wake); returns false to end
/// the run.
template <typename H>
concept IdleHook = requires(H hook) {
  { hook() } -> std::convertible_to<bool>;
};

struct RunnerStats {
  std::uint64_t bursts = 0;
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t payload_bytes_in = 0;
  std::uint64_t payload_bytes_out = 0;
};

class Runner {
 public:
  /// Pumps until `source` drains. Returns what flowed; per-engine detail
  /// (classification counters, dictionary occupancy) stays on
  /// `node.stats()`.
  template <PacketSource Source, PacketSink Sink>
  RunnerStats run(Source& source, Node& node, Sink& sink) {
    RunnerStats stats;
    while (source.rx_burst(in_) > 0) {
      ++stats.bursts;
      stats.packets_in += in_.size();
      for (std::size_t i = 0; i < in_.size(); ++i) {
        stats.payload_bytes_in += in_.payload(i).size();
      }
      out_.clear();
      node.process(in_, out_);
      stats.packets_out += out_.size();
      for (std::size_t i = 0; i < out_.size(); ++i) {
        stats.payload_bytes_out += out_.payload(i).size();
      }
      sink.tx_burst(out_);
    }
    return stats;
  }

  /// Pass-through pump: source -> sink, no codec work.
  template <PacketSource Source, PacketSink Sink>
  RunnerStats run(Source& source, Sink& sink) {
    RunnerStats stats;
    while (source.rx_burst(in_) > 0) {
      ++stats.bursts;
      stats.packets_in += in_.size();
      stats.packets_out += in_.size();
      for (std::size_t i = 0; i < in_.size(); ++i) {
        stats.payload_bytes_in += in_.payload(i).size();
        stats.payload_bytes_out += in_.payload(i).size();
      }
      sink.tx_burst(in_);
    }
    return stats;
  }

  /// Live pump: an empty source is idle, not done. `idle()` runs every
  /// time rx_burst reports empty — block there (epoll_wait) and return
  /// true to keep serving, false to end the run.
  template <PacketSource Source, PacketSink Sink, IdleHook Idle>
  RunnerStats run(Source& source, Node& node, Sink& sink, Idle&& idle) {
    RunnerStats stats;
    for (;;) {
      if (source.rx_burst(in_) == 0) {
        if (!idle()) return stats;
        continue;
      }
      ++stats.bursts;
      stats.packets_in += in_.size();
      for (std::size_t i = 0; i < in_.size(); ++i) {
        stats.payload_bytes_in += in_.payload(i).size();
      }
      out_.clear();
      node.process(in_, out_);
      stats.packets_out += out_.size();
      for (std::size_t i = 0; i < out_.size(); ++i) {
        stats.payload_bytes_out += out_.payload(i).size();
      }
      sink.tx_burst(out_);
    }
  }

  /// Live pass-through pump (no codec work), same idle contract.
  template <PacketSource Source, PacketSink Sink, IdleHook Idle>
  RunnerStats run(Source& source, Sink& sink, Idle&& idle) {
    RunnerStats stats;
    for (;;) {
      if (source.rx_burst(in_) == 0) {
        if (!idle()) return stats;
        continue;
      }
      ++stats.bursts;
      stats.packets_in += in_.size();
      stats.packets_out += in_.size();
      for (std::size_t i = 0; i < in_.size(); ++i) {
        stats.payload_bytes_in += in_.payload(i).size();
        stats.payload_bytes_out += in_.payload(i).size();
      }
      sink.tx_burst(in_);
    }
  }

 private:
  Burst in_;   // recycled across bursts (grow-only arenas)
  Burst out_;
};

}  // namespace zipline::io
