#include "io/node.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "gd/packet.hpp"

namespace zipline::io {

namespace {

engine::ParallelOptions parallel_options(const NodeOptions& o) {
  engine::ParallelOptions p;
  p.workers = o.workers;
  p.queue_depth = o.queue_depth;
  p.dictionary_shards = o.dictionary_shards;
  p.read_path = o.read_path;
  p.policy = o.policy;
  p.learn = o.learn;
  // Output order == input order is part of the Node contract (and what
  // makes every arrangement byte-identical to the serial references).
  p.ordered = true;
  p.ownership = o.ownership;
  p.steering = o.steering;
  p.work_stealing = o.work_stealing;
  p.worker_domains = o.worker_domains;
  return p;
}

void accumulate(engine::EngineStats& total, const engine::EngineStats& s) {
  total.chunks += s.chunks;
  total.raw_packets += s.raw_packets;
  total.uncompressed_packets += s.uncompressed_packets;
  total.compressed_packets += s.compressed_packets;
  total.bytes_in += s.bytes_in;
  total.bytes_out += s.bytes_out;
  total.batches += s.batches;
}

}  // namespace

Node::Node(NodeOptions options) : options_(options) {
  ZL_EXPECTS(options_.workers >= 1);
  ZL_EXPECTS(options_.burst_size >= 1);
  if (options_.workers == 1) return;  // serial engines, created on first use
  const engine::ParallelOptions popts = parallel_options(options_);
  if (options_.direction == Direction::encode) {
    parallel_encoder_ = std::make_unique<engine::ParallelEncoder>(
        options_.params, popts,
        [this](const engine::ParallelEncoder::Unit& unit) {
          const std::size_t target =
              unit_index_[unit.seq - burst_base_seq_];
          copy_passthrough(*in_, *out_, target);
          append_unit_output(*unit.output, in_->meta(target), *out_);
          next_input_ = target + 1;
        });
  } else {
    parallel_decoder_ = std::make_unique<engine::ParallelDecoder>(
        options_.params, popts,
        [this](const engine::ParallelDecoder::Unit& unit) {
          const std::size_t target =
              unit_index_[unit.seq - burst_base_seq_];
          copy_passthrough(*in_, *out_, target);
          append_unit_output(*unit.output, in_->meta(target), *out_);
          next_input_ = target + 1;
        });
  }
}

Node::~Node() = default;

engine::Engine& Node::serial_engine(std::uint32_t flow) {
  if (options_.ownership == engine::DictionaryOwnership::shared) {
    // The switch's one-table-per-direction reality: one engine (hence
    // one dictionary) sees every flow's units in submission order.
    if (!shared_engine_) {
      shared_engine_.emplace(options_.params, options_.policy, options_.learn,
                             options_.dictionary_shards);
    }
    return *shared_engine_;
  }
  const auto [it, inserted] = flow_engines_.try_emplace(
      flow, options_.params, options_.policy, options_.learn,
      options_.dictionary_shards);
  return it->second;
}

void Node::append_unit_output(const engine::EncodeBatch& unit,
                              const PacketMeta& in_meta, Burst& out) const {
  for (const engine::PacketDesc& desc : unit.packets()) {
    PacketMeta meta = in_meta;
    meta.ether_type = gd::ether_type_for(desc.type);
    out.append(desc.type, desc.syndrome, desc.basis_id, unit.payload(desc),
               meta);
  }
}

void Node::append_unit_output(const engine::DecodeBatch& unit,
                              const PacketMeta& in_meta, Burst& out) const {
  PacketMeta meta = in_meta;
  meta.ether_type = gd::ether_type_for(gd::PacketType::raw);
  out.append(gd::PacketType::raw, 0, 0, unit.bytes(), meta);
}

void Node::copy_passthrough(const Burst& in, Burst& out, std::size_t end) {
  for (; next_input_ < end; ++next_input_) {
    // Deliveries arrive in submission (== input) order, so a processed
    // packet the cursor crosses belongs to a FAILED unit: the pipeline
    // delivered it without invoking the sink and ferried its error to
    // flush(), which rethrows after the burst drains. Its output is
    // dropped here; everything else is passthrough, spliced by view
    // (zero_copy) or copied verbatim (the frozen baseline path).
    if (in.meta(next_input_).process) continue;
    if (options_.zero_copy) {
      out.append_view_from(in, next_input_);
    } else {
      out.append_from(in, next_input_);
    }
    ++passthrough_;
  }
}

void Node::process(const Burst& in, Burst& out) {
  ++bursts_;
  next_input_ = 0;
  const std::uint64_t out_before = out.bytes_copied();
  if (options_.workers > 1) {
    process_parallel(in, out);
  } else {
    process_serial(in, out);
  }
  bytes_copied_ += out.bytes_copied() - out_before;
}

void Node::process_serial(const Burst& in, Burst& out) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    const PacketMeta& meta = in.meta(i);
    if (!meta.process) {
      if (options_.zero_copy) {
        out.append_view_from(in, i);
      } else {
        out.append_from(in, i);
      }
      ++passthrough_;
      continue;
    }
    engine::Engine& eng = serial_engine(meta.flow);
    ++units_;
    if (options_.direction == Direction::encode) {
      encode_scratch_.clear();
      eng.encode_payload(in.payload(i), encode_scratch_);
      append_unit_output(encode_scratch_, meta, out);
    } else {
      decode_scratch_.clear();
      eng.decode_wire(in.desc(i).type, in.payload(i), decode_scratch_);
      append_unit_output(decode_scratch_, meta, out);
    }
  }
}

void Node::process_parallel(const Burst& in, Burst& out) {
  in_ = &in;
  out_ = &out;
  unit_index_.clear();
  burst_base_seq_ = options_.direction == Direction::encode
                        ? parallel_encoder_->submitted()
                        : parallel_decoder_->submitted();
  const auto flush = [this] {
    if (options_.direction == Direction::encode) {
      parallel_encoder_->flush();
    } else {
      parallel_decoder_->flush();
    }
  };
  if (options_.direction == Direction::decode) {
    // Grow the unit staging pool BEFORE any submit: in-flight units hold
    // pointers into staged_, which must not reallocate under them. The
    // flush window bounds it — slots recycle at each window boundary.
    std::size_t processed = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (in.meta(i).process) ++processed;
    }
    const std::size_t target = std::min(processed, options_.burst_size);
    if (staged_.size() < target) staged_.resize(target);
  }
  try {
    // Units flush in windows of burst_size: bounds the in-flight set
    // (and the decode staging pool) without changing the output — flush
    // boundaries never affect the dictionary op order.
    std::size_t in_window = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const PacketMeta& meta = in.meta(i);
      if (!meta.process) continue;  // spliced back in by the drain cursor
      unit_index_.push_back(static_cast<std::uint32_t>(i));
      ++units_;
      if (options_.direction == Direction::encode) {
        parallel_encoder_->submit(meta.flow, in.payload(i));
      } else {
        engine::EncodeBatch& staged = staged_[in_window];
        staged.clear();
        const engine::PacketDesc& d = in.desc(i);
        staged.append(d.type, d.syndrome, d.basis_id, in.payload(i));
        bytes_copied_ += in.payload(i).size();  // unit staging is a real copy
        parallel_decoder_->submit(meta.flow, &staged);
      }
      if (++in_window == options_.burst_size) {
        flush();
        in_window = 0;
      }
    }
    flush();
  } catch (...) {
    // A failed unit surfaced at flush(), which drains every in-flight
    // unit before rethrowing — the pipeline is quiescent and the node
    // stays usable for the next burst; only this burst's output is
    // incomplete. Drop the burst-local views before rethrowing.
    in_ = nullptr;
    out_ = nullptr;
    throw;
  }
  copy_passthrough(in, out, in.size());
  in_ = nullptr;
  out_ = nullptr;
}

NodeStats Node::stats() const {
  NodeStats s;
  s.bursts = bursts_;
  s.units = units_;
  s.passthrough = passthrough_;
  s.workers = options_.workers;
  s.kernel_level = simd::level();
  s.kernel_level_requested = simd::requested();
  s.kernel_slot_levels = simd::active().slot_levels;
  s.bytes_copied = bytes_copied_;
  const std::uint64_t packets_in = units_ + passthrough_;
  s.copies_per_packet =
      packets_in == 0 ? 0.0
                      : static_cast<double>(bytes_copied_) /
                            static_cast<double>(packets_in);
  if (parallel_encoder_ != nullptr) {
    s.engine = parallel_encoder_->aggregate_stats();
    if (const auto* dict = parallel_encoder_->shared_dictionary()) {
      s.dictionary_bases = dict->size();
      s.dictionary = dict->stats();
    }
  } else if (parallel_decoder_ != nullptr) {
    s.engine = parallel_decoder_->aggregate_stats();
    if (const auto* dict = parallel_decoder_->shared_dictionary()) {
      s.dictionary_bases = dict->size();
      s.dictionary = dict->stats();
    }
  } else {
    if (shared_engine_.has_value()) {
      accumulate(s.engine, shared_engine_->stats());
      s.dictionary_bases += shared_engine_->dictionary().size();
      s.dictionary += shared_engine_->dictionary_handle().stats();
    }
    for (const auto& [flow, eng] : flow_engines_) {
      accumulate(s.engine, eng.stats());
      s.dictionary_bases += eng.dictionary().size();
      s.dictionary += eng.dictionary_handle().stats();
    }
  }
  return s;
}

}  // namespace zipline::io
