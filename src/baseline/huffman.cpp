#include "baseline/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/contracts.hpp"

namespace zipline::baseline {

namespace {

/// Assigns canonical codes given lengths (RFC 1951 §3.2.2).
void assign_canonical_codes(HuffmanCode& hc) {
  const int max_bits =
      hc.lengths.empty()
          ? 0
          : *std::max_element(hc.lengths.begin(), hc.lengths.end());
  std::vector<std::uint32_t> bl_count(static_cast<std::size_t>(max_bits) + 1, 0);
  for (const auto l : hc.lengths) {
    if (l > 0) ++bl_count[l];
  }
  std::vector<std::uint32_t> next_code(static_cast<std::size_t>(max_bits) + 1, 0);
  std::uint32_t code = 0;
  for (int bits = 1; bits <= max_bits; ++bits) {
    code = (code + bl_count[static_cast<std::size_t>(bits) - 1]) << 1;
    next_code[static_cast<std::size_t>(bits)] = code;
  }
  hc.codes.assign(hc.lengths.size(), 0);
  for (std::size_t sym = 0; sym < hc.lengths.size(); ++sym) {
    const auto l = hc.lengths[sym];
    if (l != 0) {
      hc.codes[sym] = static_cast<std::uint16_t>(next_code[l]++);
    }
  }
}

}  // namespace

HuffmanCode build_huffman(std::span<const std::uint64_t> freqs, int max_bits) {
  ZL_EXPECTS(max_bits >= 1 && max_bits <= 15);
  ZL_EXPECTS(!freqs.empty());
  HuffmanCode hc;
  hc.lengths.assign(freqs.size(), 0);

  struct Node {
    std::uint64_t freq;
    int index;  // < 0: internal node id offset
  };
  // Build a plain Huffman tree via two-queue / priority-queue merge.
  struct Item {
    std::uint64_t freq;
    std::uint32_t order;  // tie-break for determinism
    int node;
  };
  struct Cmp {
    bool operator()(const Item& a, const Item& b) const {
      if (a.freq != b.freq) return a.freq > b.freq;
      return a.order > b.order;
    }
  };

  std::vector<std::pair<int, int>> children;  // internal nodes
  std::priority_queue<Item, std::vector<Item>, Cmp> heap;
  std::uint32_t order = 0;
  int live_symbols = 0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      heap.push(Item{freqs[s], order++, static_cast<int>(s)});
      ++live_symbols;
    }
  }
  ZL_EXPECTS(live_symbols >= 1);
  if (live_symbols == 1) {
    // A single symbol still needs one bit on the wire.
    hc.lengths[static_cast<std::size_t>(heap.top().node)] = 1;
    assign_canonical_codes(hc);
    return hc;
  }
  while (heap.size() > 1) {
    const Item a = heap.top();
    heap.pop();
    const Item b = heap.top();
    heap.pop();
    children.emplace_back(a.node, b.node);
    const int internal = -static_cast<int>(children.size());
    heap.push(Item{a.freq + b.freq, order++, internal});
  }
  // Depth-first traversal to find code lengths.
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{heap.top().node, 0}};
  int overlong = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node >= 0) {
      const int depth = std::max(1, f.depth);
      if (depth > max_bits) {
        ++overlong;
        hc.lengths[static_cast<std::size_t>(f.node)] =
            static_cast<std::uint8_t>(max_bits);
      } else {
        hc.lengths[static_cast<std::size_t>(f.node)] =
            static_cast<std::uint8_t>(depth);
      }
    } else {
      const auto [left, right] = children[static_cast<std::size_t>(-f.node - 1)];
      stack.push_back({left, f.depth + 1});
      stack.push_back({right, f.depth + 1});
    }
  }
  if (overlong > 0) {
    // Repair Kraft inequality after clamping: repeatedly demote the
    // shallowest leaf at depth < max_bits (zlib's bl_count fixup).
    std::vector<std::uint32_t> bl_count(static_cast<std::size_t>(max_bits) + 1,
                                        0);
    for (const auto l : hc.lengths) {
      if (l > 0) ++bl_count[l];
    }
    auto kraft = [&] {
      std::uint64_t sum = 0;
      for (int b = 1; b <= max_bits; ++b) {
        sum += static_cast<std::uint64_t>(bl_count[static_cast<std::size_t>(b)])
               << (max_bits - b);
      }
      return sum;
    };
    const std::uint64_t budget = std::uint64_t{1} << max_bits;
    while (kraft() > budget) {
      // Find a leaf at the deepest level below max_bits and push it down.
      int bits = max_bits - 1;
      while (bits > 0 && bl_count[static_cast<std::size_t>(bits)] == 0) --bits;
      ZL_ASSERT(bits > 0);
      --bl_count[static_cast<std::size_t>(bits)];
      ++bl_count[static_cast<std::size_t>(bits) + 1];
    }
    // Reassign lengths by frequency rank: rarer symbols get longer codes.
    std::vector<std::size_t> live;
    for (std::size_t s = 0; s < freqs.size(); ++s) {
      if (freqs[s] > 0) live.push_back(s);
    }
    std::sort(live.begin(), live.end(), [&](std::size_t a, std::size_t b) {
      if (freqs[a] != freqs[b]) return freqs[a] > freqs[b];
      return a < b;
    });
    std::size_t idx = 0;
    for (int bits = 1; bits <= max_bits; ++bits) {
      for (std::uint32_t i = 0; i < bl_count[static_cast<std::size_t>(bits)];
           ++i) {
        hc.lengths[live[idx++]] = static_cast<std::uint8_t>(bits);
      }
    }
    ZL_ASSERT(idx == live.size());
  }
  assign_canonical_codes(hc);
  return hc;
}

HuffmanCode codes_from_lengths(std::span<const std::uint8_t> lengths) {
  HuffmanCode hc;
  hc.lengths.assign(lengths.begin(), lengths.end());
  assign_canonical_codes(hc);
  return hc;
}

HuffmanDecoder::HuffmanDecoder(const HuffmanCode& code) {
  max_bits_ = code.lengths.empty()
                  ? 0
                  : *std::max_element(code.lengths.begin(), code.lengths.end());
  count_.assign(static_cast<std::size_t>(max_bits_) + 1, 0);
  for (const auto l : code.lengths) {
    if (l > 0) ++count_[l];
  }
  // Symbols sorted by (length, symbol) — canonical order.
  std::vector<std::uint16_t> offsets(static_cast<std::size_t>(max_bits_) + 2, 0);
  for (int l = 1; l <= max_bits_; ++l) {
    offsets[static_cast<std::size_t>(l) + 1] = static_cast<std::uint16_t>(
        offsets[static_cast<std::size_t>(l)] + count_[static_cast<std::size_t>(l)]);
  }
  symbols_.resize(offsets[static_cast<std::size_t>(max_bits_) + 1]);
  std::vector<std::uint16_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t sym = 0; sym < code.lengths.size(); ++sym) {
    const auto l = code.lengths[sym];
    if (l > 0) symbols_[cursor[l]++] = static_cast<std::uint16_t>(sym);
  }
  // first_code_[l]: canonical code value of the first code of length l;
  // first_symbol_[l]: index into symbols_ of that code.
  first_code_.assign(static_cast<std::size_t>(max_bits_) + 1, 0);
  first_symbol_.assign(static_cast<std::size_t>(max_bits_) + 1, 0);
  std::uint32_t c = 0;
  std::uint32_t sym_index = 0;
  for (int l = 1; l <= max_bits_; ++l) {
    c <<= 1;
    first_code_[static_cast<std::size_t>(l)] = c;
    first_symbol_[static_cast<std::size_t>(l)] = sym_index;
    c += count_[static_cast<std::size_t>(l)];
    sym_index += count_[static_cast<std::size_t>(l)];
  }
}

int HuffmanDecoder::feed(bool bit) {
  code_ = (code_ << 1) | static_cast<std::uint32_t>(bit);
  ++length_;
  ZL_EXPECTS(length_ <= max_bits_ && "invalid Huffman stream");
  const auto l = static_cast<std::size_t>(length_);
  if (count_[l] != 0 && code_ - first_code_[l] < count_[l]) {
    const int sym = symbols_[first_symbol_[l] + (code_ - first_code_[l])];
    reset();
    return sym;
  }
  return -1;
}

}  // namespace zipline::baseline
