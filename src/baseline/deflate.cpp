#include "baseline/deflate.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "baseline/huffman.hpp"
#include "common/contracts.hpp"
#include "crc/crc32.hpp"

namespace zipline::baseline {

namespace {

// ---------------------------------------------------------------------------
// DEFLATE constants (RFC 1951 §3.2.5)
// ---------------------------------------------------------------------------

constexpr int kEndOfBlock = 256;
constexpr int kNumLitLenSymbols = 286;
constexpr int kNumDistSymbols = 30;
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr std::size_t kWindowSize = 32768;

struct LengthCode {
  int symbol;
  int extra_bits;
  int base;
};

// length -> (symbol 257..285, extra bits, base length)
constexpr std::array<LengthCode, 29> kLengthCodes = {{
    {257, 0, 3},   {258, 0, 4},   {259, 0, 5},   {260, 0, 6},   {261, 0, 7},
    {262, 0, 8},   {263, 0, 9},   {264, 0, 10},  {265, 1, 11},  {266, 1, 13},
    {267, 1, 15},  {268, 1, 17},  {269, 2, 19},  {270, 2, 23},  {271, 2, 27},
    {272, 2, 31},  {273, 3, 35},  {274, 3, 43},  {275, 3, 51},  {276, 3, 59},
    {277, 4, 67},  {278, 4, 83},  {279, 4, 99},  {280, 4, 115}, {281, 5, 131},
    {282, 5, 163}, {283, 5, 195}, {284, 5, 227}, {285, 0, 258},
}};

struct DistCode {
  int symbol;
  int extra_bits;
  int base;
};

constexpr std::array<DistCode, 30> kDistCodes = {{
    {0, 0, 1},      {1, 0, 2},      {2, 0, 3},     {3, 0, 4},
    {4, 1, 5},      {5, 1, 7},      {6, 2, 9},     {7, 2, 13},
    {8, 3, 17},     {9, 3, 25},     {10, 4, 33},   {11, 4, 49},
    {12, 5, 65},    {13, 5, 97},    {14, 6, 129},  {15, 6, 193},
    {16, 7, 257},   {17, 7, 385},   {18, 8, 513},  {19, 8, 769},
    {20, 9, 1025},  {21, 9, 1537},  {22, 10, 2049}, {23, 10, 3073},
    {24, 11, 4097}, {25, 11, 6145}, {26, 12, 8193}, {27, 12, 12289},
    {28, 13, 16385}, {29, 13, 24577},
}};

// Order in which code-length-code lengths are stored (RFC 1951 §3.2.7).
constexpr std::array<int, 19> kClclOrderReal = {16, 17, 18, 0, 8,  7, 9,
                                                6,  10, 5,  11, 4, 12, 3,
                                                13, 2,  14, 1,  15};

int length_code_index(int length) {
  ZL_ASSERT(length >= kMinMatch && length <= kMaxMatch);
  // Binary search for the entry with the largest base <= length. Length 258
  // lands exactly on the dedicated zero-extra entry (symbol 285).
  int lo = 0;
  int hi = static_cast<int>(kLengthCodes.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (kLengthCodes[static_cast<std::size_t>(mid)].base <= length) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int dist_code_index(int dist) {
  ZL_ASSERT(dist >= 1 && dist <= 32768);
  int lo = 0;
  int hi = static_cast<int>(kDistCodes.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (kDistCodes[static_cast<std::size_t>(mid)].base <= dist) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// ---------------------------------------------------------------------------
// LSB-first bit I/O (DEFLATE bit order)
// ---------------------------------------------------------------------------

class LsbBitWriter {
 public:
  /// Writes `count` bits of `value`, least-significant bit first.
  void write_bits(std::uint32_t value, int count) {
    for (int i = 0; i < count; ++i) {
      push_bit((value >> i) & 1);
    }
  }

  /// Writes a Huffman code: DEFLATE packs code bits MSB-first.
  void write_huffman(std::uint32_t code, int length) {
    for (int i = length - 1; i >= 0; --i) {
      push_bit((code >> i) & 1);
    }
  }

  void align_to_byte() {
    while (bit_pos_ != 0) push_bit(0);
  }

  void write_byte(std::uint8_t byte) {
    ZL_ASSERT(bit_pos_ == 0);
    bytes_.push_back(byte);
  }

  [[nodiscard]] std::size_t bit_count() const {
    return bytes_.size() * 8 - (bit_pos_ == 0 ? 0 : 8 - bit_pos_);
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  void push_bit(std::uint32_t b) {
    if (bit_pos_ == 0) bytes_.push_back(0);
    if (b) bytes_.back() |= static_cast<std::uint8_t>(1u << bit_pos_);
    bit_pos_ = (bit_pos_ + 1) % 8;
  }

  std::vector<std::uint8_t> bytes_;
  int bit_pos_ = 0;
};

class LsbBitReader {
 public:
  explicit LsbBitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t read_bits(int count) {
    std::uint32_t value = 0;
    for (int i = 0; i < count; ++i) {
      value |= static_cast<std::uint32_t>(read_bit()) << i;
    }
    return value;
  }

  [[nodiscard]] bool read_bit() {
    if (pos_ >= bytes_.size() * 8) {
      throw std::runtime_error("deflate: truncated stream");
    }
    const bool b = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1;
    ++pos_;
    return b;
  }

  void align_to_byte() { pos_ = (pos_ + 7) / 8 * 8; }

  [[nodiscard]] std::uint8_t read_aligned_byte() {
    ZL_ASSERT(pos_ % 8 == 0);
    if (pos_ / 8 >= bytes_.size()) {
      throw std::runtime_error("deflate: truncated stored block");
    }
    const std::uint8_t byte = bytes_[pos_ / 8];
    pos_ += 8;
    return byte;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// LZ77 tokenization
// ---------------------------------------------------------------------------

struct Token {
  // literal when dist == 0 (value in length), else (length, dist) match
  std::uint16_t length = 0;
  std::uint16_t dist = 0;
};

class HashChainMatcher {
 public:
  explicit HashChainMatcher(std::span<const std::uint8_t> data,
                            const DeflateOptions& options)
      : data_(data),
        options_(options),
        head_(kHashSize, kNil),
        prev_(data.size(), kNil) {}

  struct Match {
    int length = 0;
    int dist = 0;
  };

  [[nodiscard]] Match find(std::size_t pos) const {
    Match best;
    if (pos + kMinMatch > data_.size()) return best;
    const std::size_t window_start = pos >= kWindowSize ? pos - kWindowSize : 0;
    std::uint32_t candidate = head_[hash_at(pos)];
    int chain = options_.max_chain;
    const int max_len =
        static_cast<int>(std::min<std::size_t>(kMaxMatch, data_.size() - pos));
    while (candidate != kNil && candidate >= window_start && chain-- > 0) {
      const int len = match_length(candidate, pos, max_len);
      if (len > best.length) {
        best.length = len;
        best.dist = static_cast<int>(pos - candidate);
        if (len >= options_.good_enough_length || len == max_len) break;
      }
      candidate = prev_[candidate];
    }
    if (best.length < kMinMatch) return {};
    return best;
  }

  void insert(std::size_t pos) {
    if (pos + kMinMatch > data_.size()) return;
    const std::uint32_t h = hash_at(pos);
    prev_[pos] = head_[h];
    head_[h] = static_cast<std::uint32_t>(pos);
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kHashSize = 1 << 15;

  [[nodiscard]] std::uint32_t hash_at(std::size_t pos) const {
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos]) |
                            (static_cast<std::uint32_t>(data_[pos + 1]) << 8) |
                            (static_cast<std::uint32_t>(data_[pos + 2]) << 16);
    return (v * 2654435761u) >> 17;
  }

  [[nodiscard]] int match_length(std::size_t candidate, std::size_t pos,
                                 int max_len) const {
    int len = 0;
    while (len < max_len && data_[candidate + static_cast<std::size_t>(len)] ==
                                data_[pos + static_cast<std::size_t>(len)]) {
      ++len;
    }
    return len;
  }

  std::span<const std::uint8_t> data_;
  const DeflateOptions& options_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> prev_;
};

std::vector<Token> tokenize(std::span<const std::uint8_t> input,
                            const DeflateOptions& options) {
  std::vector<Token> tokens;
  tokens.reserve(input.size() / 2 + 16);
  HashChainMatcher matcher(input, options);
  std::size_t pos = 0;
  while (pos < input.size()) {
    HashChainMatcher::Match match = matcher.find(pos);
    if (options.lazy_matching && match.length >= kMinMatch &&
        match.length < options.good_enough_length && pos + 1 < input.size()) {
      // Peek one byte ahead; emit a literal if the next match is longer.
      matcher.insert(pos);
      const HashChainMatcher::Match next = matcher.find(pos + 1);
      if (next.length > match.length) {
        tokens.push_back(Token{input[pos], 0});
        ++pos;
        continue;  // matcher already indexed pos
      }
      // Keep the current match; pos already indexed.
      for (std::size_t i = pos + 1;
           i < pos + static_cast<std::size_t>(match.length); ++i) {
        matcher.insert(i);
      }
      tokens.push_back(Token{static_cast<std::uint16_t>(match.length),
                             static_cast<std::uint16_t>(match.dist)});
      pos += static_cast<std::size_t>(match.length);
      continue;
    }
    if (match.length >= kMinMatch) {
      for (std::size_t i = pos; i < pos + static_cast<std::size_t>(match.length);
           ++i) {
        matcher.insert(i);
      }
      tokens.push_back(Token{static_cast<std::uint16_t>(match.length),
                             static_cast<std::uint16_t>(match.dist)});
      pos += static_cast<std::size_t>(match.length);
    } else {
      matcher.insert(pos);
      tokens.push_back(Token{input[pos], 0});
      ++pos;
    }
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Block encoding
// ---------------------------------------------------------------------------

/// Fixed litlen code lengths (RFC 1951 §3.2.6).
HuffmanCode fixed_litlen_code() {
  std::vector<std::uint8_t> lengths(288);
  for (int s = 0; s <= 143; ++s) lengths[static_cast<std::size_t>(s)] = 8;
  for (int s = 144; s <= 255; ++s) lengths[static_cast<std::size_t>(s)] = 9;
  for (int s = 256; s <= 279; ++s) lengths[static_cast<std::size_t>(s)] = 7;
  for (int s = 280; s <= 287; ++s) lengths[static_cast<std::size_t>(s)] = 8;
  return codes_from_lengths(lengths);
}

HuffmanCode fixed_dist_code() {
  std::vector<std::uint8_t> lengths(30, 5);
  return codes_from_lengths(lengths);
}

struct TokenHistogram {
  std::array<std::uint64_t, kNumLitLenSymbols> litlen{};
  std::array<std::uint64_t, kNumDistSymbols> dist{};
};

TokenHistogram histogram(std::span<const Token> tokens) {
  TokenHistogram h;
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      ++h.litlen[t.length];
    } else {
      ++h.litlen[static_cast<std::size_t>(
          kLengthCodes[static_cast<std::size_t>(length_code_index(t.length))]
              .symbol)];
      ++h.dist[static_cast<std::size_t>(dist_code_index(t.dist))];
    }
  }
  ++h.litlen[kEndOfBlock];
  return h;
}

void write_tokens(LsbBitWriter& out, std::span<const Token> tokens,
                  const HuffmanCode& litlen, const HuffmanCode& dist) {
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      out.write_huffman(litlen.codes[t.length], litlen.lengths[t.length]);
    } else {
      const LengthCode& lc =
          kLengthCodes[static_cast<std::size_t>(length_code_index(t.length))];
      const auto lsym = static_cast<std::size_t>(lc.symbol);
      out.write_huffman(litlen.codes[lsym], litlen.lengths[lsym]);
      out.write_bits(static_cast<std::uint32_t>(t.length - lc.base),
                     lc.extra_bits);
      const DistCode& dc =
          kDistCodes[static_cast<std::size_t>(dist_code_index(t.dist))];
      const auto dsym = static_cast<std::size_t>(dc.symbol);
      out.write_huffman(dist.codes[dsym], dist.lengths[dsym]);
      out.write_bits(static_cast<std::uint32_t>(t.dist - dc.base),
                     dc.extra_bits);
    }
  }
  out.write_huffman(litlen.codes[kEndOfBlock], litlen.lengths[kEndOfBlock]);
}

/// Run-length encodes code lengths with symbols 16/17/18 (RFC 1951 §3.2.7).
struct ClclSymbol {
  int symbol;
  int extra_value;
  int extra_bits;
};

std::vector<ClclSymbol> rle_code_lengths(std::span<const std::uint8_t> lengths) {
  std::vector<ClclSymbol> out;
  std::size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t value = lengths[i];
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == value) ++run;
    if (value == 0) {
      std::size_t remaining = run;
      while (remaining >= 11) {
        const int n = static_cast<int>(std::min<std::size_t>(remaining, 138));
        out.push_back({18, n - 11, 7});
        remaining -= static_cast<std::size_t>(n);
      }
      while (remaining >= 3) {
        const int n = static_cast<int>(std::min<std::size_t>(remaining, 10));
        out.push_back({17, n - 3, 3});
        remaining -= static_cast<std::size_t>(n);
      }
      for (std::size_t j = 0; j < remaining; ++j) out.push_back({0, 0, 0});
    } else {
      out.push_back({value, 0, 0});
      std::size_t remaining = run - 1;
      while (remaining >= 3) {
        const int n = static_cast<int>(std::min<std::size_t>(remaining, 6));
        out.push_back({16, n - 3, 2});
        remaining -= static_cast<std::size_t>(n);
      }
      for (std::size_t j = 0; j < remaining; ++j) {
        out.push_back({value, 0, 0});
      }
    }
    i += run;
  }
  return out;
}

void write_dynamic_block(LsbBitWriter& out, std::span<const Token> tokens,
                         bool final_block) {
  const TokenHistogram h = histogram(tokens);
  HuffmanCode litlen = build_huffman(h.litlen, 15);
  // The distance alphabet may be empty (all literals): RFC requires at
  // least one distance code length to be present.
  std::array<std::uint64_t, kNumDistSymbols> dist_freqs = h.dist;
  if (std::all_of(dist_freqs.begin(), dist_freqs.end(),
                  [](std::uint64_t f) { return f == 0; })) {
    dist_freqs[0] = 1;
  }
  HuffmanCode dist = build_huffman(dist_freqs, 15);

  // HLIT/HDIST: trim trailing zero lengths (minimums 257 and 1).
  int hlit = kNumLitLenSymbols;
  while (hlit > 257 && litlen.lengths[static_cast<std::size_t>(hlit) - 1] == 0) {
    --hlit;
  }
  int hdist = kNumDistSymbols;
  while (hdist > 1 && dist.lengths[static_cast<std::size_t>(hdist) - 1] == 0) {
    --hdist;
  }

  // Concatenate litlen + dist lengths, RLE them, Huffman-code the RLE.
  std::vector<std::uint8_t> all_lengths;
  all_lengths.insert(all_lengths.end(), litlen.lengths.begin(),
                     litlen.lengths.begin() + hlit);
  all_lengths.insert(all_lengths.end(), dist.lengths.begin(),
                     dist.lengths.begin() + hdist);
  const std::vector<ClclSymbol> rle = rle_code_lengths(all_lengths);

  std::array<std::uint64_t, 19> clcl_freqs{};
  for (const auto& s : rle) ++clcl_freqs[static_cast<std::size_t>(s.symbol)];
  const HuffmanCode clcl = build_huffman(clcl_freqs, 7);

  int hclen = 19;
  while (hclen > 4 &&
         clcl.lengths[static_cast<std::size_t>(
             kClclOrderReal[static_cast<std::size_t>(hclen) - 1])] == 0) {
    --hclen;
  }

  out.write_bits(final_block ? 1 : 0, 1);
  out.write_bits(0b10, 2);  // BTYPE=10 dynamic
  out.write_bits(static_cast<std::uint32_t>(hlit - 257), 5);
  out.write_bits(static_cast<std::uint32_t>(hdist - 1), 5);
  out.write_bits(static_cast<std::uint32_t>(hclen - 4), 4);
  for (int i = 0; i < hclen; ++i) {
    out.write_bits(
        clcl.lengths[static_cast<std::size_t>(
            kClclOrderReal[static_cast<std::size_t>(i)])],
        3);
  }
  for (const auto& s : rle) {
    const auto sym = static_cast<std::size_t>(s.symbol);
    out.write_huffman(clcl.codes[sym], clcl.lengths[sym]);
    if (s.extra_bits > 0) {
      out.write_bits(static_cast<std::uint32_t>(s.extra_value), s.extra_bits);
    }
  }
  write_tokens(out, tokens, litlen, dist);
}

void write_fixed_block(LsbBitWriter& out, std::span<const Token> tokens,
                       bool final_block) {
  out.write_bits(final_block ? 1 : 0, 1);
  out.write_bits(0b01, 2);  // BTYPE=01 fixed
  write_tokens(out, tokens, fixed_litlen_code(), fixed_dist_code());
}

void write_stored_block(LsbBitWriter& out, std::span<const std::uint8_t> data,
                        bool final_block) {
  ZL_ASSERT(data.size() <= 0xFFFF);
  out.write_bits(final_block ? 1 : 0, 1);
  out.write_bits(0b00, 2);  // BTYPE=00 stored
  out.align_to_byte();
  const auto len = static_cast<std::uint16_t>(data.size());
  out.write_byte(static_cast<std::uint8_t>(len & 0xFF));
  out.write_byte(static_cast<std::uint8_t>(len >> 8));
  out.write_byte(static_cast<std::uint8_t>(~len & 0xFF));
  out.write_byte(static_cast<std::uint8_t>((~len >> 8) & 0xFF));
  for (const auto b : data) out.write_byte(b);
}

}  // namespace

std::vector<std::uint8_t> deflate_compress(std::span<const std::uint8_t> input,
                                           const DeflateOptions& options) {
  LsbBitWriter out;
  if (input.empty()) {
    write_stored_block(out, input, /*final_block=*/true);
    return out.take();
  }
  const std::vector<Token> tokens = tokenize(input, options);
  // Emit blocks of options.block_tokens tokens; choose the cheaper of
  // dynamic and fixed per block by trial encoding.
  std::size_t emitted = 0;
  while (emitted < tokens.size()) {
    const std::size_t count =
        std::min(options.block_tokens, tokens.size() - emitted);
    const std::span<const Token> block(tokens.data() + emitted, count);
    const bool final_block = emitted + count == tokens.size();

    LsbBitWriter dynamic_trial;
    write_dynamic_block(dynamic_trial, block, final_block);
    LsbBitWriter fixed_trial;
    write_fixed_block(fixed_trial, block, final_block);
    if (dynamic_trial.bit_count() <= fixed_trial.bit_count()) {
      write_dynamic_block(out, block, final_block);
    } else {
      write_fixed_block(out, block, final_block);
    }
    emitted += count;
  }
  return out.take();
}

namespace {

int decode_symbol(LsbBitReader& in, HuffmanDecoder& decoder) {
  decoder.reset();
  for (;;) {
    const int sym = decoder.feed(in.read_bit());
    if (sym >= 0) return sym;
  }
}

}  // namespace

std::vector<std::uint8_t> deflate_decompress(
    std::span<const std::uint8_t> compressed) {
  LsbBitReader in(compressed);
  std::vector<std::uint8_t> out;
  bool final_block = false;
  while (!final_block) {
    final_block = in.read_bit();
    const std::uint32_t btype = in.read_bits(2);
    if (btype == 0b00) {
      in.align_to_byte();
      const std::uint32_t len = in.read_aligned_byte() |
                                (static_cast<std::uint32_t>(
                                     in.read_aligned_byte())
                                 << 8);
      const std::uint32_t nlen = in.read_aligned_byte() |
                                 (static_cast<std::uint32_t>(
                                      in.read_aligned_byte())
                                  << 8);
      if ((len ^ nlen) != 0xFFFF) {
        throw std::runtime_error("deflate: stored block LEN/NLEN mismatch");
      }
      for (std::uint32_t i = 0; i < len; ++i) {
        out.push_back(in.read_aligned_byte());
      }
      continue;
    }
    HuffmanCode litlen_code;
    HuffmanCode dist_code;
    if (btype == 0b01) {
      litlen_code = fixed_litlen_code();
      dist_code = fixed_dist_code();
    } else if (btype == 0b10) {
      const int hlit = static_cast<int>(in.read_bits(5)) + 257;
      const int hdist = static_cast<int>(in.read_bits(5)) + 1;
      const int hclen = static_cast<int>(in.read_bits(4)) + 4;
      std::vector<std::uint8_t> clcl_lengths(19, 0);
      for (int i = 0; i < hclen; ++i) {
        clcl_lengths[static_cast<std::size_t>(
            kClclOrderReal[static_cast<std::size_t>(i)])] =
            static_cast<std::uint8_t>(in.read_bits(3));
      }
      const HuffmanCode clcl = codes_from_lengths(clcl_lengths);
      HuffmanDecoder clcl_decoder(clcl);
      std::vector<std::uint8_t> lengths;
      lengths.reserve(static_cast<std::size_t>(hlit + hdist));
      while (lengths.size() < static_cast<std::size_t>(hlit + hdist)) {
        const int sym = decode_symbol(in, clcl_decoder);
        if (sym < 16) {
          lengths.push_back(static_cast<std::uint8_t>(sym));
        } else if (sym == 16) {
          if (lengths.empty()) {
            throw std::runtime_error("deflate: repeat with no previous length");
          }
          const int repeat = static_cast<int>(in.read_bits(2)) + 3;
          lengths.insert(lengths.end(), static_cast<std::size_t>(repeat),
                         lengths.back());
        } else if (sym == 17) {
          const int repeat = static_cast<int>(in.read_bits(3)) + 3;
          lengths.insert(lengths.end(), static_cast<std::size_t>(repeat), 0);
        } else {
          const int repeat = static_cast<int>(in.read_bits(7)) + 11;
          lengths.insert(lengths.end(), static_cast<std::size_t>(repeat), 0);
        }
      }
      if (lengths.size() != static_cast<std::size_t>(hlit + hdist)) {
        throw std::runtime_error("deflate: code length overflow");
      }
      litlen_code = codes_from_lengths(
          std::span(lengths).first(static_cast<std::size_t>(hlit)));
      dist_code = codes_from_lengths(
          std::span(lengths).subspan(static_cast<std::size_t>(hlit)));
    } else {
      throw std::runtime_error("deflate: invalid block type 11");
    }

    HuffmanDecoder litlen_decoder(litlen_code);
    HuffmanDecoder dist_decoder(dist_code);
    for (;;) {
      const int sym = decode_symbol(in, litlen_decoder);
      if (sym == kEndOfBlock) break;
      if (sym < 256) {
        out.push_back(static_cast<std::uint8_t>(sym));
        continue;
      }
      if (sym > 285) throw std::runtime_error("deflate: bad length symbol");
      const LengthCode& lc = kLengthCodes[static_cast<std::size_t>(sym - 257)];
      const int length =
          lc.base + static_cast<int>(in.read_bits(lc.extra_bits));
      const int dsym = decode_symbol(in, dist_decoder);
      if (dsym >= kNumDistSymbols) {
        throw std::runtime_error("deflate: bad distance symbol");
      }
      const DistCode& dc = kDistCodes[static_cast<std::size_t>(dsym)];
      const int dist = dc.base + static_cast<int>(in.read_bits(dc.extra_bits));
      if (static_cast<std::size_t>(dist) > out.size()) {
        throw std::runtime_error("deflate: distance beyond output");
      }
      for (int i = 0; i < length; ++i) {
        out.push_back(out[out.size() - static_cast<std::size_t>(dist)]);
      }
    }
  }
  return out;
}

}  // namespace zipline::baseline

namespace zipline::baseline {

std::vector<std::uint8_t> gzip_compress(std::span<const std::uint8_t> input,
                                        const DeflateOptions& options) {
  std::vector<std::uint8_t> out = {
      0x1F, 0x8B,  // magic
      0x08,        // CM = deflate
      0x00,        // FLG
      0, 0, 0, 0,  // MTIME
      0x00,        // XFL
      0xFF,        // OS = unknown
  };
  const auto body = deflate_compress(input, options);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t crc = crc::Crc32::of(input);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  const auto isize = static_cast<std::uint32_t>(input.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(isize >> (8 * i)));
  }
  return out;
}

std::vector<std::uint8_t> gzip_decompress(
    std::span<const std::uint8_t> container) {
  if (container.size() < 18) {
    throw std::runtime_error("gzip: container too short");
  }
  if (container[0] != 0x1F || container[1] != 0x8B || container[2] != 0x08) {
    throw std::runtime_error("gzip: bad magic or method");
  }
  const std::uint8_t flg = container[3];
  std::size_t offset = 10;
  if (flg & 0x04) {  // FEXTRA
    const std::size_t xlen = container[offset] |
                             (static_cast<std::size_t>(container[offset + 1])
                              << 8);
    offset += 2 + xlen;
  }
  if (flg & 0x08) {  // FNAME
    while (offset < container.size() && container[offset] != 0) ++offset;
    ++offset;
  }
  if (flg & 0x10) {  // FCOMMENT
    while (offset < container.size() && container[offset] != 0) ++offset;
    ++offset;
  }
  if (flg & 0x02) offset += 2;  // FHCRC
  if (offset + 8 > container.size()) {
    throw std::runtime_error("gzip: truncated container");
  }
  const auto body = container.subspan(offset, container.size() - offset - 8);
  auto output = deflate_decompress(body);
  const std::size_t trailer = container.size() - 8;
  std::uint32_t stored_crc = 0;
  std::uint32_t stored_size = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(
                      container[trailer + static_cast<std::size_t>(i)])
                  << (8 * i);
    stored_size |= static_cast<std::uint32_t>(
                       container[trailer + 4 + static_cast<std::size_t>(i)])
                   << (8 * i);
  }
  if (stored_size != static_cast<std::uint32_t>(output.size())) {
    throw std::runtime_error("gzip: ISIZE mismatch");
  }
  if (stored_crc != crc::Crc32::of(output)) {
    throw std::runtime_error("gzip: CRC mismatch");
  }
  return output;
}

}  // namespace zipline::baseline
