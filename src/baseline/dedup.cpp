#include "baseline/dedup.hpp"

#include "common/contracts.hpp"

namespace zipline::baseline {

ExactDedup::ExactDedup(const gd::GdParams& params, gd::EvictionPolicy policy)
    : params_(params),
      dictionary_(params.dictionary_capacity(), policy) {
  params_.validate();
}

std::size_t ExactDedup::process_chunk(const bits::BitVector& chunk) {
  ZL_EXPECTS(chunk.size() == params_.chunk_bits);
  ++stats_.chunks;
  stats_.bytes_in += params_.raw_payload_bytes();
  std::size_t cost;
  if (dictionary_.lookup(chunk)) {
    // Identifier-only reference (round up to bytes, as on the wire).
    cost = (params_.id_bits + 7) / 8;
    ++stats_.duplicate_chunks;
  } else {
    dictionary_.insert(chunk);
    cost = params_.raw_payload_bytes();
    ++stats_.unique_chunks;
  }
  stats_.bytes_out += cost;
  return cost;
}

}  // namespace zipline::baseline
