// Canonical Huffman coding for the DEFLATE baseline (RFC 1951 §3.2).
//
// DEFLATE uses canonical codes defined entirely by their per-symbol code
// lengths: codes of the same length are assigned consecutive values in
// symbol order. This module builds length-limited codes from symbol
// frequencies (package-merge-free heuristic with depth limiting, as zlib
// does) and provides a decoder table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace zipline::baseline {

struct HuffmanCode {
  std::vector<std::uint8_t> lengths;  ///< per-symbol code length, 0 = unused
  std::vector<std::uint16_t> codes;   ///< canonical code bits (MSB-first value)

  [[nodiscard]] std::size_t symbol_count() const { return lengths.size(); }
};

/// Builds a length-limited canonical Huffman code from frequencies.
/// Symbols with zero frequency get length 0 (no code). At least one symbol
/// must have non-zero frequency. max_bits <= 15 (DEFLATE limit).
[[nodiscard]] HuffmanCode build_huffman(std::span<const std::uint64_t> freqs,
                                        int max_bits);

/// Computes canonical codes from an externally supplied length vector
/// (used by the inflater and for the fixed DEFLATE tables).
[[nodiscard]] HuffmanCode codes_from_lengths(
    std::span<const std::uint8_t> lengths);

/// Decoder for canonical codes, bit-by-bit (simple and correct; the
/// baseline is about compression ratios, not decompression speed).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const HuffmanCode& code);

  /// Feeds one bit (LSB-first DEFLATE bit order mapped by the caller);
  /// returns the decoded symbol or -1 if more bits are needed.
  [[nodiscard]] int feed(bool bit);

  void reset() noexcept {
    code_ = 0;
    length_ = 0;
  }

 private:
  // first_code_[l] / first_symbol_[l]: canonical decoding tables.
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_symbol_;
  std::vector<std::uint16_t> symbols_;  // symbols sorted by (length, symbol)
  std::vector<std::uint16_t> count_;    // codes per length
  std::uint32_t code_ = 0;
  int length_ = 0;
  int max_bits_ = 0;
};

}  // namespace zipline::baseline
