// Classic (exact) deduplication baseline.
//
// GD generalizes exact chunk deduplication (paper §2): classic dedup only
// collapses chunks that are bit-identical, while GD first canonicalizes
// them, letting thousands of near-identical chunks share one dictionary
// entry. This baseline quantifies that difference on the same traces.
#pragma once

#include <cstdint>
#include <span>

#include "gd/dictionary.hpp"
#include "gd/params.hpp"

namespace zipline::baseline {

struct DedupStats {
  std::uint64_t chunks = 0;
  std::uint64_t duplicate_chunks = 0;  ///< replaced by an identifier
  std::uint64_t unique_chunks = 0;     ///< transmitted in full
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  [[nodiscard]] double compression_ratio() const {
    return bytes_in == 0 ? 1.0
                         : static_cast<double>(bytes_out) /
                               static_cast<double>(bytes_in);
  }
};

/// Exact dedup with the same dictionary capacity and identifier width as a
/// GD configuration, so the two are byte-for-byte comparable: a duplicate
/// chunk costs id_bits (+ excess framing), a unique chunk travels whole.
class ExactDedup {
 public:
  explicit ExactDedup(const gd::GdParams& params,
                      gd::EvictionPolicy policy = gd::EvictionPolicy::lru);

  /// Processes one chunk; returns the bytes this chunk costs on the wire.
  std::size_t process_chunk(const bits::BitVector& chunk);

  [[nodiscard]] const DedupStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const gd::BasisDictionary& dictionary() const noexcept {
    return dictionary_;
  }

 private:
  gd::GdParams params_;
  gd::BasisDictionary dictionary_;
  DedupStats stats_;
};

}  // namespace zipline::baseline
