// DEFLATE (RFC 1951) compressor and decompressor, from scratch.
//
// This is the baseline the paper compares ZipLine against (§7: "we extract
// all payloads in a regular file that we compress with the gzip
// compression tool"). The compressor implements LZ77 with a 32 KiB window,
// hash-chain match search with lazy matching, and emits stored, fixed- or
// dynamic-Huffman blocks, whichever is smallest. The paper's point that
// DEFLATE "requires a minimum of 3 kB to compress data" (its window and
// code tables) is what makes it infeasible in-switch — here it runs on the
// host as the comparison point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace zipline::baseline {

struct DeflateOptions {
  /// Maximum hash-chain probes per position (compression effort).
  int max_chain = 128;
  /// Matches at least this good stop the search early.
  int good_enough_length = 64;
  /// Enable one-byte-lookahead lazy matching (zlib levels >= 4).
  bool lazy_matching = true;
  /// Token count per DEFLATE block.
  std::size_t block_tokens = 1 << 16;
};

/// Compresses `input` into a raw DEFLATE stream.
[[nodiscard]] std::vector<std::uint8_t> deflate_compress(
    std::span<const std::uint8_t> input, const DeflateOptions& options = {});

/// Decompresses a raw DEFLATE stream. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] std::vector<std::uint8_t> deflate_decompress(
    std::span<const std::uint8_t> compressed);

/// Compresses into a gzip (RFC 1952) container (header + DEFLATE + CRC-32
/// + size), byte-compatible with the `gzip` tool's format.
[[nodiscard]] std::vector<std::uint8_t> gzip_compress(
    std::span<const std::uint8_t> input, const DeflateOptions& options = {});

/// Decompresses a gzip container, verifying CRC-32 and length.
[[nodiscard]] std::vector<std::uint8_t> gzip_decompress(
    std::span<const std::uint8_t> container);

}  // namespace zipline::baseline
